"""Regenerate ``examples/sample_flows.csv``, the bundled service-mode trace.

The trace is two hours of synthetic OD flow records over the 11-PoP Abilene
topology (24 bins of 300 s, one record per OD pair per bin), produced from a
seeded gravity-like volume model so the file is deterministic and small
enough to commit.  The CI service-smoke job replays it through ``repro
serve`` at high speed-up; the README's "Service mode" quickstart uses it
too.

Usage::

    PYTHONPATH=src python scripts/make_sample_trace.py [output.csv]
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

from repro.ingest.records import write_flow_csv
from repro.topology.library import abilene_topology

BIN_SECONDS = 300.0
N_BINS = 24
SEED = 1006


def rows():
    topology = abilene_topology()
    nodes = topology.nodes
    n = len(nodes)
    rng = np.random.default_rng(SEED)
    # Gravity-like structure: per-node masses with diurnal modulation and
    # lognormal per-record noise, zero diagonal (no intra-PoP records).
    mass = rng.lognormal(mean=0.0, sigma=0.6, size=n)
    for bin_index in range(N_BINS):
        level = 1.0 + 0.4 * np.sin(2 * np.pi * bin_index / N_BINS)
        volumes = np.outer(mass, mass) * level * 1e6
        volumes *= rng.lognormal(mean=0.0, sigma=0.25, size=(n, n))
        time = bin_index * BIN_SECONDS
        for i in range(n):
            for j in range(n):
                if i == j:
                    continue
                yield time, nodes[i], nodes[j], round(float(volumes[i, j]), 1)


def main() -> int:
    output = Path(sys.argv[1]) if len(sys.argv) > 1 else (
        Path(__file__).resolve().parent.parent / "examples" / "sample_flows.csv"
    )
    count = write_flow_csv(output, rows())
    print(f"wrote {count} records ({N_BINS} bins x {BIN_SECONDS:.0f}s, Abilene) to {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

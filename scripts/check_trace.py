"""Validate the schema of a ``--trace``/``REPRO_TRACE`` JSONL span trace.

Used by the CI ``obs-smoke`` job: after a traced run, assert the trace file
is well-formed — every line parses as JSON, the header is a ``trace_start``
event, every span carries the required fields with sane values, every
``parent`` reference resolves to a span in the same file, and all events
share one trace id (the distributed-sweep merge invariant).

    PYTHONPATH=src python scripts/check_trace.py TRACE.jsonl \
        --require sweep_cell --require remote_worker

``--require NAME`` (repeatable) additionally asserts at least one span with
that name is present.  ``--min-workers N`` asserts the spans come from at
least N distinct workers.  Exits non-zero with a message on the first
violation; prints a one-line summary on success.  Stdlib only.
"""

from __future__ import annotations

import argparse
import json
import sys

SPAN_REQUIRED = {"trace", "span", "name", "worker", "pid", "start_unix", "duration_s"}


def check_trace(path: str, *, require: list[str], min_workers: int) -> str:
    """Return a summary line, or raise ``ValueError`` naming the violation."""
    events = []
    with open(path, encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_no}: not valid JSON: {exc}") from exc
            if not isinstance(event, dict) or "kind" not in event:
                raise ValueError(f"{path}:{line_no}: event has no 'kind' field")
            events.append((line_no, event))
    if not events:
        raise ValueError(f"{path}: trace is empty")
    if events[0][1]["kind"] != "trace_start":
        raise ValueError(
            f"{path}: first event is {events[0][1]['kind']!r}, expected 'trace_start'"
        )

    spans = [(line_no, e) for line_no, e in events if e["kind"] == "span"]
    if not spans:
        raise ValueError(f"{path}: no span events")
    trace_ids = {e["trace"] for _, e in events if "trace" in e}
    if len(trace_ids) != 1:
        raise ValueError(f"{path}: {len(trace_ids)} distinct trace ids (expected 1)")

    span_ids = set()
    for line_no, span in spans:
        missing = SPAN_REQUIRED - span.keys()
        if missing:
            raise ValueError(f"{path}:{line_no}: span missing fields {sorted(missing)}")
        if not isinstance(span["name"], str) or not span["name"]:
            raise ValueError(f"{path}:{line_no}: span name must be a non-empty string")
        if float(span["duration_s"]) < 0:
            raise ValueError(f"{path}:{line_no}: negative duration_s")
        if float(span["start_unix"]) <= 0:
            raise ValueError(f"{path}:{line_no}: non-positive start_unix")
        if span["span"] in span_ids:
            raise ValueError(f"{path}:{line_no}: duplicate span id {span['span']!r}")
        span_ids.add(span["span"])
    for line_no, span in spans:
        parent = span.get("parent")
        if parent is not None and parent not in span_ids:
            raise ValueError(
                f"{path}:{line_no}: parent {parent!r} does not resolve to a span"
            )

    names = {span["name"] for _, span in spans}
    for name in require:
        if name not in names:
            raise ValueError(
                f"{path}: required span {name!r} not found (have: {sorted(names)})"
            )
    workers = {span["worker"] for _, span in spans}
    if len(workers) < min_workers:
        raise ValueError(
            f"{path}: spans from {len(workers)} worker(s), expected >= {min_workers}"
        )
    return (
        f"{path}: ok — {len(spans)} spans, {len(names)} span names, "
        f"{len(workers)} worker(s), trace {next(iter(trace_ids))}"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("traces", nargs="+", help="JSONL trace files to validate")
    parser.add_argument("--require", action="append", default=[], metavar="NAME",
                        help="assert at least one span with this name (repeatable)")
    parser.add_argument("--min-workers", type=int, default=1,
                        help="assert spans from at least this many workers")
    args = parser.parse_args(argv)
    for path in args.traces:
        try:
            print(check_trace(path, require=args.require, min_workers=args.min_workers))
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

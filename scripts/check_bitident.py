"""Hash every registered experiment's numerical outputs.

Used to verify that refactors of the numerical spine leave the fig3-fig13
experiment outputs bit-identical: run once on the old code, once on the new,
and diff the printed digests.

    PYTHONPATH=src python scripts/check_bitident.py > /tmp/hashes.txt
"""

from __future__ import annotations

import hashlib
import sys

import numpy as np

from repro.registry import EXPERIMENTS_REGISTRY


def _digest_value(hasher: "hashlib._Hash", value) -> None:
    if isinstance(value, np.ndarray):
        hasher.update(np.ascontiguousarray(value).tobytes())
    elif isinstance(value, (list, tuple)):
        for item in value:
            _digest_value(hasher, item)
    elif isinstance(value, dict):
        for key in sorted(value):
            hasher.update(str(key).encode())
            _digest_value(hasher, value[key])
    elif isinstance(value, (int, float, str, bool)) or value is None:
        hasher.update(repr(value).encode())


def digest_result(result) -> str:
    hasher = hashlib.sha256()
    hasher.update(result.format_table().encode())
    state = getattr(result, "__dict__", None)
    if state is None and hasattr(result, "__dataclass_fields__"):
        state = {name: getattr(result, name) for name in result.__dataclass_fields__}
    if state:
        for key in sorted(state):
            value = state[key]
            if isinstance(value, (np.ndarray, list, tuple, dict, int, float, str, bool)):
                hasher.update(key.encode())
                _digest_value(hasher, value)
    return hasher.hexdigest()


def main() -> int:
    for name in EXPERIMENTS_REGISTRY.names():
        result = EXPERIMENTS_REGISTRY.get(name)()
        print(f"{name} {digest_result(result)}")
        sys.stdout.flush()
    return 0


if __name__ == "__main__":
    sys.exit(main())

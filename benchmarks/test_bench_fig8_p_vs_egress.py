"""Benchmark / regeneration of Figure 8: preference versus normalised egress counts.

Paper shape: above the median traffic level, a node's egress volume is a poor
predictor of its preference, and preference is uncorrelated with activity.
"""

from __future__ import annotations

import pytest
from _bench_utils import emit

from repro.experiments.fig8_preference_vs_egress import run_preference_vs_egress


@pytest.mark.parametrize("dataset", ["geant", "totem"])
def test_fig8_preference_vs_egress(benchmark, run_once, dataset):
    result = run_once(run_preference_vs_egress, dataset)
    emit(
        benchmark,
        result,
        dataset=dataset,
        correlation_all=result.correlation_all,
        correlation_above_median=result.correlation_above_median,
        preference_activity_correlation=result.preference_activity_correlation,
    )
    assert result.correlation_above_median < 0.95
    assert abs(result.preference_activity_correlation) < 0.7

"""Benchmark / regeneration of Figure 3: IC-model fit improvement over gravity.

Paper shape: the stable-fP IC model fits both datasets better than the
gravity model (Geant improvement roughly 20-25 %, Totem roughly 6-8 %)
despite having about half the degrees of freedom.
"""

from __future__ import annotations

import pytest
from _bench_utils import emit

from repro.experiments.fig3_model_fit import run_model_fit


@pytest.mark.parametrize("dataset", ["geant", "totem"])
def test_fig3_model_fit(benchmark, run_once, dataset):
    result = run_once(run_model_fit, dataset)
    emit(
        benchmark,
        result,
        dataset=dataset,
        mean_improvement_percent=result.mean_improvement,
        fitted_f=result.fitted_f,
        ic_dof=result.ic_dof,
        gravity_dof=result.gravity_dof,
    )
    assert result.mean_improvement > 0.0
    assert result.ic_dof < result.gravity_dof

"""Benchmark / regeneration of Figure 11: TM estimation, all IC parameters measured.

Paper shape: with f, P and A(t) all measured, the IC prior gives the largest
improvement over the gravity prior through the same tomogravity + IPF
pipeline (paper: 10-20 % Geant, 20-30 % Totem).
"""

from __future__ import annotations

import pytest
from _bench_utils import emit

from repro.experiments.fig11_estimation_measured import run_estimation_measured


@pytest.mark.parametrize("dataset", ["geant", "totem"])
def test_fig11_estimation_measured(benchmark, run_once, dataset):
    result = run_once(run_estimation_measured, dataset)
    emit(
        benchmark,
        result,
        dataset=dataset,
        mean_improvement_percent=result.mean_improvement,
    )
    assert result.mean_improvement > 0.0

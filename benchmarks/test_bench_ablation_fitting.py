"""Ablation: fitting strategy (plain ALS vs scipy-refined) and model variants.

DESIGN.md calls out the replacement of the paper's Matlab nonlinear program
with alternating least squares as a design choice worth ablating: the refined
variant re-optimises f with a bounded scalar search, and the stable-f /
time-varying variants trade extra degrees of freedom for fit quality.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fitting import fit_stable_f, fit_stable_fp, fit_time_varying
from repro.experiments._common import get_dataset


@pytest.fixture(scope="module")
def fitting_week():
    return get_dataset("geant", n_weeks=1, bins_per_week=96).week(0)


def test_ablation_als_fit(benchmark, fitting_week):
    fit = benchmark.pedantic(fit_stable_fp, args=(fitting_week,), rounds=1, iterations=1)
    print(f"\nALS stable-fP: f={fit.forward_fraction:.3f} mean_error={fit.mean_error:.4f}")
    benchmark.extra_info["mean_error"] = fit.mean_error
    assert fit.mean_error < 1.0


def test_ablation_refined_fit(benchmark, fitting_week):
    fit = benchmark.pedantic(
        fit_stable_fp, args=(fitting_week,), kwargs={"refine": True}, rounds=1, iterations=1
    )
    plain = fit_stable_fp(fitting_week)
    print(
        f"\nrefined stable-fP: f={fit.forward_fraction:.3f} mean_error={fit.mean_error:.4f} "
        f"(plain ALS: {plain.mean_error:.4f})"
    )
    benchmark.extra_info["mean_error"] = fit.mean_error
    benchmark.extra_info["plain_mean_error"] = plain.mean_error
    assert fit.objective <= plain.objective + 1e-6


def test_ablation_model_variant_ordering(benchmark, fitting_week):
    """More flexible variants must fit at least as well (stable-fP >= stable-f >= time-varying error)."""

    def run_all():
        return (
            fit_stable_fp(fitting_week),
            fit_stable_f(fitting_week),
            fit_time_varying(fitting_week),
        )

    stable_fp, stable_f, time_varying = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print(
        f"\nmean errors: stable-fP={stable_fp.mean_error:.4f} "
        f"stable-f={stable_f.mean_error:.4f} time-varying={time_varying.mean_error:.4f}"
    )
    benchmark.extra_info["stable_fp_error"] = stable_fp.mean_error
    benchmark.extra_info["stable_f_error"] = stable_f.mean_error
    benchmark.extra_info["time_varying_error"] = time_varying.mean_error
    assert stable_f.mean_error <= stable_fp.mean_error + 1e-3
    assert time_varying.mean_error <= stable_f.mean_error + 1e-3
    assert np.isfinite(time_varying.mean_error)

"""Micro-benchmarks of the computational building blocks.

These are conventional pytest-benchmark timings (multiple rounds) of the
hot paths a user of the library will exercise: model evaluation, gravity
reconstruction, stable-fP fitting, routing-matrix construction, tomogravity
refinement and IPF.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fitting import fit_stable_fp
from repro.core.gravity import gravity_series
from repro.core.ic_model import simplified_ic_series
from repro.core.priors import GravityPrior
from repro.estimation.ipf import iterative_proportional_fitting
from repro.estimation.linear_system import simulate_link_loads
from repro.estimation.tomogravity import tomogravity_estimate
from repro.experiments._common import get_dataset
from repro.topology.library import geant_topology
from repro.topology.routing import build_routing_matrix


@pytest.fixture(scope="module")
def week():
    return get_dataset("geant", n_weeks=1, bins_per_week=96).week(0)


@pytest.fixture(scope="module")
def measurement_system(week):
    return simulate_link_loads(geant_topology(), week[:8], noise_std=0.0)


def test_component_ic_series_evaluation(benchmark):
    rng = np.random.default_rng(0)
    activity = rng.random((2016, 22)) * 1e6
    preference = rng.random(22)
    result = benchmark(simplified_ic_series, 0.25, activity, preference)
    assert result.shape == (2016, 22, 22)


def test_component_gravity_series(benchmark, week):
    result = benchmark(gravity_series, week)
    assert result.n_timesteps == week.n_timesteps


def test_component_stable_fp_fit(benchmark, week):
    fit = benchmark.pedantic(fit_stable_fp, args=(week,), rounds=3, iterations=1)
    assert fit.mean_error < 1.0


def test_component_routing_matrix_build(benchmark):
    routing = benchmark(build_routing_matrix, geant_topology())
    assert routing.matrix.shape[1] == 22 * 22


def test_component_tomogravity(benchmark, week, measurement_system):
    prior = GravityPrior().series(
        measurement_system.ingress, measurement_system.egress, nodes=week.nodes
    )
    matrix, observations = measurement_system.augmented_system()
    vector = prior.to_vectors()[0]
    refined = benchmark(tomogravity_estimate, vector, matrix, observations[0])
    assert refined.shape == vector.shape


def test_component_ipf(benchmark, week):
    matrix = np.array(week.values[0], copy=True)
    rows = week.ingress[1]
    cols = week.egress[1]
    fitted = benchmark(iterative_proportional_fitting, matrix, rows, cols)
    np.testing.assert_allclose(fitted.sum(axis=1), rows * (0.5 * (rows.sum() + cols.sum()) / rows.sum()), rtol=1e-3)

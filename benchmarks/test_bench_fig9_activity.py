"""Benchmark / regeneration of Figure 9: activity time series of large/medium/small nodes.

Paper shape: fitted activity shows strong daily periodicity, reduced weekend
levels and a more pronounced pattern for larger nodes.
"""

from __future__ import annotations

from _bench_utils import emit

from repro.experiments.fig9_activity_timeseries import run_activity_timeseries


def test_fig9_activity_timeseries(benchmark, run_once):
    # A full week of 5-minute bins so both the daily period and the weekend
    # dip are measurable.
    result = run_once(run_activity_timeseries, "geant", bins_per_week=2016)
    emit(
        benchmark,
        result,
        diurnal_period_days=result.diurnal_period_days,
        weekend_ratio_largest=result.weekend_ratios["largest"],
        mean_largest=float(result.selected_series["largest"].mean()),
        mean_smallest=float(result.selected_series["smallest"].mean()),
    )
    assert 0.7 < result.diurnal_period_days < 1.3
    assert result.weekend_ratios["largest"] < 1.0
    assert result.selected_series["largest"].mean() > result.selected_series["smallest"].mean()

"""Shared fixtures for the benchmark harness.

Every benchmark runs one experiment (one paper figure) exactly once under
``pytest-benchmark`` timing, records the headline numbers in
``benchmark.extra_info`` and prints the experiment's ASCII table so that a
``pytest benchmarks/ --benchmark-only`` run regenerates the complete set of
results recorded in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Make the sibling _bench_utils module importable regardless of how pytest
# was invoked (rootdir, installed package, etc.).
sys.path.insert(0, str(Path(__file__).resolve().parent))


@pytest.fixture
def run_once(benchmark):
    """Run ``func`` exactly once under benchmark timing and return its result."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner

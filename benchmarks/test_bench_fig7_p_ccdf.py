"""Benchmark / regeneration of Figure 7: preference CCDF and tail fits.

Paper shape: the preference distribution is long-tailed; a lognormal fits
its tail better than an exponential (paper MLE: mu ~ -4.3, sigma ~ 1.7).
"""

from __future__ import annotations

import pytest
from _bench_utils import emit

from repro.experiments.fig7_preference_ccdf import run_preference_ccdf


@pytest.mark.parametrize("dataset", ["geant", "totem"])
def test_fig7_preference_ccdf(benchmark, run_once, dataset):
    result = run_once(run_preference_ccdf, dataset)
    lognormal = result.fits["lognormal"]
    emit(
        benchmark,
        result,
        dataset=dataset,
        lognormal_mu=lognormal.parameters["mu"],
        lognormal_sigma=lognormal.parameters["sigma"],
        lognormal_preferred=result.lognormal_preferred,
    )
    assert result.lognormal_preferred

"""Ablation: effect of netflow sampling rate on OD-volume and f recovery.

The paper's D1/D2 matrices come from 1/1000 sampled netflow.  This ablation
quantifies how the sampling rate degrades (a) total OD-volume accuracy and
(b) the forward fraction implied by the sampled volumes, using the trace
substrate's ground truth.
"""

from __future__ import annotations

import numpy as np

from repro.traces.netflow import NetflowSampler, od_flows_from_connections
from repro.traces.trace_generator import BidirectionalTraceGenerator

RATES = (1, 10, 100, 1000)


def test_ablation_sampling_rate(benchmark):
    generator = BidirectionalTraceGenerator("IPLS", "CLEV", connections_per_hour=8000, seed=17)
    pair = generator.generate(7200)
    nodes = ["IPLS", "CLEV"]
    exact = od_flows_from_connections(pair.connections, nodes)

    def sweep():
        errors = {}
        for rate in RATES:
            sampler = NetflowSampler(rate, seed=rate)
            sampled = od_flows_from_connections(pair.connections, nodes, sampler=sampler)
            errors[rate] = float(np.abs(sampled - exact).sum() / exact.sum())
        return errors

    errors = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nsampling-rate ablation (relative OD volume error):")
    for rate, error in errors.items():
        print(f"  1/{rate:<5d}  {error:.4f}")
        benchmark.extra_info[f"error_rate_{rate}"] = error
    assert errors[1] == 0.0
    assert errors[1000] >= errors[10]

"""Ablation: simplified (single-f) versus general (per-pair f_ij) IC fitting.

DESIGN.md calls out the simplified-vs-general choice (Section 5.6 of the
paper): under responder-dependent f and routing asymmetry, how much fit
accuracy does the single-f simplification give up, and what does the general
fit cost in time?
"""

from __future__ import annotations

import numpy as np

from repro.core.fitting import fit_stable_fp
from repro.core.general_fitting import fit_general_ic
from repro.experiments._common import get_dataset


def test_ablation_general_vs_simplified_fit(benchmark):
    week = get_dataset("geant", n_weeks=1, bins_per_week=96).week(0)
    simplified = fit_stable_fp(week)

    general = benchmark.pedantic(
        fit_general_ic, args=(week,), kwargs={"base_fit": simplified}, rounds=1, iterations=1
    )
    print(
        f"\nsimplified fit error: {simplified.mean_error:.4f}\n"
        f"general fit error:    {general.mean_error:.4f}\n"
        f"max |f_ij - f_ji|/2:  {np.abs(general.asymmetry).max():.3f}"
    )
    benchmark.extra_info["simplified_error"] = simplified.mean_error
    benchmark.extra_info["general_error"] = general.mean_error
    assert general.mean_error <= simplified.mean_error + 1e-9

"""Benchmark / regeneration of Figure 5: stability of fitted f across weeks.

Paper shape: the fitted f of seven consecutive Totem weeks is nearly
constant and sits around 0.2.
"""

from __future__ import annotations

from _bench_utils import emit

from repro.experiments.fig5_f_stability import run_f_stability


def test_fig5_f_stability(benchmark, run_once):
    result = run_once(run_f_stability, "totem", n_weeks=7)
    emit(
        benchmark,
        result,
        weekly_f=[float(value) for value in result.weekly_f],
        coefficient_of_variation=result.stability.coefficient_of_variation,
    )
    assert result.weekly_f.shape == (7,)
    assert result.stability.coefficient_of_variation < 0.15
    assert all(0.05 < value < 0.45 for value in result.weekly_f)

"""Benchmark / regeneration of the Figure 2 worked example (Section 3)."""

from __future__ import annotations

from _bench_utils import emit

from repro.experiments.example_network import run_example_network


def test_fig2_example_network(benchmark, run_once):
    result = run_once(run_example_network)
    emit(
        benchmark,
        result,
        p_e_a_given_i_a=result.conditional_egress_given_ingress["A"],
        p_e_a_given_i_b=result.conditional_egress_given_ingress["B"],
        p_e_a_given_i_c=result.conditional_egress_given_ingress["C"],
        p_e_a=result.marginal_egress,
    )
    # Paper values: 0.50, 0.93, 0.95 and 0.65.
    assert abs(result.conditional_egress_given_ingress["A"] - 0.50) < 0.01
    assert abs(result.conditional_egress_given_ingress["B"] - 0.93) < 0.01
    assert abs(result.conditional_egress_given_ingress["C"] - 0.95) < 0.01
    assert abs(result.marginal_egress - 0.65) < 0.01

"""Benchmark / regeneration of Figure 6: stability of fitted preferences across weeks.

Paper shape: per-node preference values are nearly identical from week to
week (3 weeks of Geant, 7 of Totem) while being highly variable across nodes.
"""

from __future__ import annotations

import pytest
from _bench_utils import emit

from repro.experiments.fig6_preference_stability import run_preference_stability


@pytest.mark.parametrize("dataset, n_weeks", [("geant", 3), ("totem", 7)])
def test_fig6_preference_stability(benchmark, run_once, dataset, n_weeks):
    result = run_once(run_preference_stability, dataset, n_weeks=n_weeks)
    emit(
        benchmark,
        result,
        dataset=dataset,
        week_to_week_correlation=result.stability.week_to_week_correlation,
        truth_correlation=result.truth_correlation,
        spread_ratio=result.spread_ratio,
    )
    assert result.stability.week_to_week_correlation > 0.9
    assert result.spread_ratio > 5.0

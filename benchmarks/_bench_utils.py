"""Helpers shared by the benchmark modules.

Besides printing the experiment table and attaching headline numbers to the
pytest-benchmark fixture, :func:`emit` records every benchmark into the
shared ``BENCH_<rev>.json`` trajectory format from
:mod:`repro.benchmarking`, so ad-hoc ``pytest benchmarks/`` runs and
``repro bench`` produce comparable output.  Set ``REPRO_BENCH_JSON`` to a
file path to have the collected records written there when the pytest
process exits:

    REPRO_BENCH_JSON=BENCH_adhoc.json pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import atexit
import os

from repro.benchmarking import BenchmarkRecord, write_bench_json

_collected: list[BenchmarkRecord] = []
_writer_registered = False


def _wall_seconds(benchmark) -> float:
    """Mean wall time of a completed pytest-benchmark fixture, or NaN."""
    stats = getattr(getattr(benchmark, "stats", None), "stats", None)
    mean = getattr(stats, "mean", None)
    return float(mean) if mean is not None else float("nan")


def _flush_collected() -> None:
    path = os.environ.get("REPRO_BENCH_JSON")
    if path and _collected:
        write_bench_json(_collected, path=path)


def record_benchmark(benchmark, name: str, **extra) -> BenchmarkRecord:
    """Append one fixture measurement to the shared BENCH record set."""
    global _writer_registered
    record = BenchmarkRecord(name=name, wall_seconds=_wall_seconds(benchmark), extra_info=extra)
    _collected.append(record)
    if not _writer_registered:
        atexit.register(_flush_collected)
        _writer_registered = True
    return record


def emit(benchmark, result, **extra) -> None:
    """Print the experiment table, attach headline numbers, record BENCH data."""
    table = result.format_table()
    print("\n" + table)
    for key, value in extra.items():
        benchmark.extra_info[key] = value
    name = getattr(benchmark, "name", None) or type(result).__name__
    record_benchmark(benchmark, str(name), **extra)

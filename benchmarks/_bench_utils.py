"""Helpers shared by the benchmark modules."""

from __future__ import annotations


def emit(benchmark, result, **extra) -> None:
    """Print the experiment table and attach headline numbers to the benchmark."""
    table = result.format_table()
    print("\n" + table)
    for key, value in extra.items():
        benchmark.extra_info[key] = value

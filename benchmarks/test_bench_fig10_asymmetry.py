"""Benchmark / regeneration of Figure 10 / Section 5.6: routing asymmetry.

Paper shape: the simplified (single-f) IC model degrades as hot-potato
routing makes f_ij asymmetric, while it still outperforms the gravity model;
the general model (per-pair f_ij) is unaffected.
"""

from __future__ import annotations

import numpy as np
from _bench_utils import emit

from repro.experiments.fig10_routing_asymmetry import run_routing_asymmetry


def test_fig10_routing_asymmetry(benchmark, run_once):
    result = run_once(run_routing_asymmetry)
    emit(
        benchmark,
        result,
        asymmetry_levels=[float(v) for v in result.asymmetry_levels],
        simplified_errors=[float(v) for v in result.simplified_errors],
        gravity_errors=[float(v) for v in result.gravity_errors],
    )
    assert result.simplified_errors[-1] > result.simplified_errors[0]
    assert np.all(result.simplified_errors < result.gravity_errors)

"""Benchmark / regeneration of Figure 4: measuring f from bidirectional traces.

Paper shape: f in the 0.2-0.3 range, similar in the two directions, stable
over the 5-minute bins of the two-hour window, with <20 % unknown traffic.
"""

from __future__ import annotations

from _bench_utils import emit

from repro.experiments.fig4_f_from_traces import run_f_from_traces


def test_fig4_f_from_traces(benchmark, run_once):
    result = run_once(run_f_from_traces)
    mean_ab, mean_ba = result.mean_measured_f
    emit(
        benchmark,
        result,
        f_ipls_clev=mean_ab,
        f_clev_ipls=mean_ba,
        spatial_gap=result.measurement.spatial_gap(),
        unknown_fraction=result.measurement.unknown_fraction,
    )
    assert 0.15 < mean_ab < 0.35
    assert 0.15 < mean_ba < 0.35
    assert result.measurement.spatial_gap() < 0.1
    assert result.measurement.unknown_fraction < 0.2

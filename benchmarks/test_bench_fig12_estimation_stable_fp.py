"""Benchmark / regeneration of Figure 12: TM estimation with the stable-fP prior.

Paper shape: with f and P measured in a previous week and A(t) recovered from
the current marginals (Eqs. 7-9), the IC prior still improves on the gravity
prior by roughly 10-20 %.
"""

from __future__ import annotations

import pytest
from _bench_utils import emit

from repro.experiments.fig12_estimation_stable_fp import run_estimation_stable_fp


@pytest.mark.parametrize("dataset", ["geant", "totem"])
def test_fig12_estimation_stable_fp(benchmark, run_once, dataset):
    result = run_once(run_estimation_stable_fp, dataset)
    emit(
        benchmark,
        result,
        dataset=dataset,
        mean_improvement_percent=result.mean_improvement,
    )
    assert result.mean_improvement > 0.0

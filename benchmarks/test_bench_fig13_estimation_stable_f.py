"""Benchmark / regeneration of Figure 13: TM estimation with the stable-f prior.

Paper shape: when only f is known, the closed-form prior (Eqs. 11-12) still
beats the gravity prior, but by the smallest margin of the three IC scenarios
(paper: ~8 % Geant, 1-2 % Totem).
"""

from __future__ import annotations

import pytest
from _bench_utils import emit

from repro.experiments.fig12_estimation_stable_fp import run_estimation_stable_fp
from repro.experiments.fig13_estimation_stable_f import run_estimation_stable_f


@pytest.mark.parametrize("dataset", ["geant", "totem"])
def test_fig13_estimation_stable_f(benchmark, run_once, dataset):
    result = run_once(run_estimation_stable_f, dataset)
    emit(
        benchmark,
        result,
        dataset=dataset,
        mean_improvement_percent=result.mean_improvement,
    )
    assert result.mean_improvement > -5.0  # clearly weaker prior, but not harmful


def test_fig13_is_weaker_than_fig12_on_geant(benchmark, run_once):
    """Ordering check: the stable-f prior is the weakest IC prior (same target week)."""

    def run_both():
        stable_f = run_estimation_stable_f("geant", target_week=1)
        stable_fp = run_estimation_stable_fp("geant", target_week=1)
        return stable_f, stable_fp

    stable_f, stable_fp = run_once(run_both)
    print(
        f"\nstable-f improvement:  {stable_f.mean_improvement:.2f}%\n"
        f"stable-fP improvement: {stable_fp.mean_improvement:.2f}%"
    )
    benchmark.extra_info["stable_f_improvement"] = stable_f.mean_improvement
    benchmark.extra_info["stable_fp_improvement"] = stable_fp.mean_improvement
    assert stable_f.mean_improvement <= stable_fp.mean_improvement + 2.0

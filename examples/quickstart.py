"""Quickstart: the independent-connection model in five minutes.

This example walks the core loop of the library:

1. generate a synthetic week of traffic matrices with IC structure,
2. fit the stable-fP IC model to it (the paper's Section 5.1 optimisation),
3. compare the fit against the gravity-model baseline,
4. inspect the fitted parameters.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import fit_stable_fp, gravity_series
from repro.core.metrics import percent_improvement, rel_l2_temporal_error
from repro.synthesis.generator import ICTMGenerator, SyntheticTMConfig
from repro.topology.library import geant_topology


def main() -> None:
    # 1. A week of 5-minute traffic matrices over the 22-PoP Geant topology.
    topology = geant_topology()
    config = SyntheticTMConfig(forward_fraction=0.25, mean_activity=1e7)
    generator = ICTMGenerator(topology.nodes, config, seed=42)
    series, truth = generator.generate(288, bin_seconds=300.0)  # one day for speed
    print(f"generated {series.n_timesteps} bins x {series.n_nodes} nodes "
          f"(total traffic {series.totals.sum():.3e} bytes)")

    # 2. Fit the stable-fP IC model: one f, one preference vector, per-bin activity.
    fit = fit_stable_fp(series)
    print(f"fitted forward fraction f = {fit.forward_fraction:.3f} "
          f"(generating value {truth.forward_fraction:.3f})")
    print(f"mean relative L2 fit error = {fit.mean_error:.3f}")

    # 3. The gravity baseline, reconstructed from the same per-bin marginals.
    gravity = gravity_series(series)
    gravity_errors = rel_l2_temporal_error(series, gravity)
    improvement = percent_improvement(gravity_errors, fit.errors)
    print(f"gravity mean error = {float(np.mean(gravity_errors)):.3f}")
    print(f"IC improvement over gravity = {float(np.mean(improvement)):.1f}% "
          "(the Figure 3 quantity)")

    # 4. The fitted parameters have physical interpretations.
    top = np.argsort(fit.preference)[::-1][:5]
    print("\nmost 'preferred' PoPs (highest fitted P_i):")
    for index in top:
        print(f"  {series.nodes[index]:>4s}  P = {fit.preference[index]:.3f}")
    busiest = int(np.argmax(fit.activity.mean(axis=0)))
    print(f"\nbusiest PoP by fitted activity: {series.nodes[busiest]} "
          f"(mean A = {fit.activity[:, busiest].mean():.3e} bytes/bin)")


if __name__ == "__main__":
    main()

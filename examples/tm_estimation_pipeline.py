"""Traffic-matrix estimation with IC-model priors (paper Section 6).

Scenario: an operator has full traffic-matrix measurements for one
calibration week (e.g. from a temporary netflow deployment) and afterwards
only the SNMP link counts plus per-PoP ingress/egress counters.  The script

1. builds a Geant-like two-week dataset,
2. fits f and the preference vector on the calibration week,
3. simulates the target week's link-level measurements,
4. builds three priors — gravity, stable-fP (Eqs. 7-9) and stable-f
   (Eqs. 11-12) — and pushes each through the identical tomogravity + IPF
   pipeline,
5. reports the estimation error of each and the improvement over gravity
   (the Figures 11-13 quantities).

Run with::

    python examples/tm_estimation_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro import fit_stable_fp
from repro.core.metrics import percent_improvement
from repro.core.priors import GravityPrior, StableFPPrior, StableFPrior
from repro.estimation.linear_system import simulate_link_loads
from repro.estimation.pipeline import TMEstimator
from repro.synthesis.datasets import make_geant_like_dataset


def main() -> None:
    dataset = make_geant_like_dataset(n_weeks=2, bins_per_week=96, seed=7)
    calibration_week = dataset.week(0)
    target_week = dataset.week(1)[:48]  # estimate the first 4 hours-equivalent

    print("fitting the calibration week ...")
    calibration_fit = fit_stable_fp(calibration_week)
    print(f"  fitted f = {calibration_fit.forward_fraction:.3f}")

    print("simulating the target week's SNMP measurements ...")
    system = simulate_link_loads(dataset.topology, target_week, noise_std=0.01, seed=1)
    print(f"  {system.routing.n_links} directed links, "
          f"routing-matrix rank {system.routing.rank()} of {system.n_nodes ** 2} unknowns per bin")

    priors = {
        "gravity": GravityPrior().series(
            system.ingress, system.egress, nodes=target_week.nodes
        ),
        "IC stable-fP": StableFPPrior.from_fit(calibration_fit).series(
            system.ingress, system.egress, nodes=target_week.nodes
        ),
        "IC stable-f": StableFPrior(calibration_fit.forward_fraction).series(
            system.ingress, system.egress, nodes=target_week.nodes
        ),
    }

    estimator = TMEstimator()
    results = estimator.compare_priors(system, priors, ground_truth=target_week)

    gravity_errors = results["gravity"].errors
    print("\nestimation results (relative L2 temporal error):")
    for name, result in results.items():
        improvement = float(np.mean(percent_improvement(gravity_errors, result.errors)))
        print(f"  {name:<14s} error = {result.mean_error:.3f}   "
              f"improvement over gravity = {improvement:+.1f}%")


if __name__ == "__main__":
    main()

"""Capacity what-if analysis driven by the IC model's interpretable knobs.

The paper argues that the IC model's parameters map onto real network
phenomena, which makes "what-if" studies natural: change the application mix
(f), make a node's services more popular (P_i — a flash crowd), or grow a
node's user population (A_i).  This example measures the link-level
consequences of each knob:

1. fit the stable-fP model to a measured (here: synthetic) week,
2. route the fitted traffic over the Geant topology and record per-link
   utilization,
3. re-generate traffic under three what-if scenarios and compare the busiest
   links and peak utilization against the baseline.

Run with::

    python examples/capacity_whatif.py
"""

from __future__ import annotations

import numpy as np

from repro import fit_stable_fp
from repro.core.ic_model import StableFPICModel
from repro.synthesis.datasets import make_geant_like_dataset
from repro.topology.utilization import compute_link_utilization


def report(label, topology, series) -> float:
    result = compute_link_utilization(topology, series)
    print(f"\n{label}")
    print(f"  peak link utilization: {result.peak_utilization:.2%}")
    for name, peak in result.busiest_links(3):
        print(f"  {name:<12s} peak {peak:.2%}")
    return result.peak_utilization


def main() -> None:
    dataset = make_geant_like_dataset(n_weeks=1, bins_per_week=96, seed=5)
    topology = dataset.topology
    measured_week = dataset.week(0)

    print("fitting the measured week ...")
    fit = fit_stable_fp(measured_week)
    model = StableFPICModel(fit.forward_fraction, fit.preference, nodes=topology.nodes)

    # Scale the fitted activity so the baseline peak utilization sits at a
    # realistic 40 % — the synthetic dataset's absolute volumes are arbitrary,
    # and what-if analysis is about relative changes from a credible baseline.
    raw_baseline = model.series(fit.activity, bin_seconds=measured_week.bin_seconds)
    raw_peak = compute_link_utilization(topology, raw_baseline).peak_utilization
    activity = fit.activity * (0.40 / raw_peak)
    baseline = model.series(activity, bin_seconds=measured_week.bin_seconds)
    baseline_peak = report("baseline (fitted model)", topology, baseline)

    # What-if 1: a flash crowd — the most-preferred node becomes 3x more popular.
    hot = int(np.argmax(fit.preference))
    crowd_preference = fit.preference.copy()
    crowd_preference[hot] *= 3.0
    crowd_model = StableFPICModel(fit.forward_fraction, crowd_preference, nodes=topology.nodes)
    crowd = crowd_model.series(activity, bin_seconds=measured_week.bin_seconds)
    report(f"what-if: flash crowd at {topology.nodes[hot]} (P x3)", topology, crowd)

    # What-if 2: the application mix shifts toward p2p (f rises toward symmetry).
    p2p_model = StableFPICModel(min(0.45, fit.forward_fraction + 0.15), fit.preference, nodes=topology.nodes)
    p2p = p2p_model.series(activity, bin_seconds=measured_week.bin_seconds)
    report("what-if: application mix shifts toward p2p (f + 0.15)", topology, p2p)

    # What-if 3: the largest access network doubles its user population.
    busiest = int(np.argmax(activity.mean(axis=0)))
    grown_activity = activity.copy()
    grown_activity[:, busiest] *= 2.0
    grown = model.series(grown_activity, bin_seconds=measured_week.bin_seconds)
    grown_peak = report(
        f"what-if: user population at {topology.nodes[busiest]} doubles (A x2)", topology, grown
    )

    print(
        f"\npeak utilization moves {baseline_peak:.2%} -> {grown_peak:.2%} "
        "under the population-growth scenario; links to upgrade are listed above."
    )


if __name__ == "__main__":
    main()

"""Measuring the forward fraction f from bidirectional link traces (Section 5.2).

The forward fraction is the one IC-model parameter that cannot be read off a
traffic matrix alone; the paper measures it from full packet-header traces on
the two directions of an Abilene link.  This example generates a synthetic
two-hour bidirectional trace (web/p2p/mail/interactive/bulk mix), runs the
paper's measurement procedure — match flows across the two directions by
5-tuple, identify initiators by the TCP SYN, classify the rest as unknown —
and prints the per-bin f values, mirroring Figure 4.

Run with::

    python examples/measure_f_from_traces.py
"""

from __future__ import annotations

import numpy as np

from repro.traces.applications import DEFAULT_APPLICATION_MIX, aggregate_forward_fraction
from repro.traces.matching import measure_forward_fraction
from repro.traces.trace_generator import BidirectionalTraceGenerator


def main() -> None:
    print("application mix driving the traffic asymmetry:")
    for profile in DEFAULT_APPLICATION_MIX:
        print(f"  {profile.name:<12s} share={profile.connection_share:.2f}  "
              f"per-connection f = {profile.expected_forward_fraction:.3f}")
    print(f"expected aggregate f of the mix: {aggregate_forward_fraction():.3f}\n")

    generator = BidirectionalTraceGenerator(
        "IPLS", "CLEV", connections_per_hour=4000, straddling_fraction=0.08, seed=3
    )
    print("generating a two-hour bidirectional trace on IPLS<->CLEV ...")
    pair = generator.generate(7200.0)
    print(f"  {len(pair.connections)} connections, "
          f"{len(pair.a_to_b)} flows on {pair.link_a_to_b}, "
          f"{len(pair.b_to_a)} on {pair.link_b_to_a}")

    measurement = measure_forward_fraction(pair, bin_seconds=300.0)
    print(f"\nper-5-minute-bin measured f (the Figure 4 series):")
    print("  bin   f(IPLS->CLEV)   f(CLEV->IPLS)")
    for index in range(measurement.n_bins):
        ab = measurement.f_a_to_b[index]
        ba = measurement.f_b_to_a[index]
        print(f"  {index:>3d}   {ab:13.3f}   {ba:13.3f}")

    mean_ab, mean_ba = measurement.mean_f()
    print(f"\nmean measured f: {mean_ab:.3f} (IPLS-initiated), {mean_ba:.3f} (CLEV-initiated)")
    print(f"ground-truth f:  {pair.true_forward_fraction('IPLS'):.3f} / "
          f"{pair.true_forward_fraction('CLEV'):.3f}")
    print(f"unknown traffic fraction: {measurement.unknown_fraction:.2%} "
          "(connections without an observable SYN or matching reverse flow)")
    print(f"temporal spread of f: std = {np.max(measurement.temporal_spread()):.3f}")


if __name__ == "__main__":
    main()

"""Synthetic traffic-matrix generation with the stable-fP recipe (Section 5.5).

The paper argues the IC model is a simpler and more natural generator of
synthetic traffic matrices than the gravity model, because its inputs are not
causally constrained: pick f, draw long-tailed preferences, generate diurnal
activity series, compose with Eq. 5.  This example follows that recipe for a
network of 30 PoPs, verifies the statistical properties the paper highlights
(long-tailed preference, diurnal activity, weekend dips), explores a "flash
crowd" what-if by perturbing one node's preference, and saves the result for
reuse.

Run with::

    python examples/synthetic_tm_generation.py
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.characterization.activity_analysis import dominant_period, weekend_ratio
from repro.characterization.distributions import compare_tail_fits
from repro.core.ic_model import StableFPICModel
from repro.synthesis.activity import ActivityModel, DiurnalProfile
from repro.synthesis.preference import lognormal_preferences


def main() -> None:
    n_nodes = 30
    bins_per_day = 288
    n_bins = 7 * bins_per_day  # one full week of 5-minute bins
    nodes = [f"pop{i:02d}" for i in range(n_nodes)]

    # Step 1: choose f in the empirically supported 0.2-0.3 range.
    forward_fraction = 0.25

    # Step 2: long-tailed preference values (paper's lognormal MLE parameters).
    preference = lognormal_preferences(n_nodes, mu=-4.3, sigma=1.7, seed=1)
    fits = compare_tail_fits(preference)
    print("preference tail fits (lognormal should win, cf. Figure 7):")
    for name, fit in fits.items():
        print(f"  {name:<12s} log-likelihood = {fit.log_likelihood:8.1f}  "
              f"KS distance = {fit.ks_distance:.3f}")

    # Step 3: cyclostationary activity series with diurnal + weekend structure.
    activity_model = ActivityModel(
        n_nodes,
        mean_level=2e7,
        profile=DiurnalProfile(day_amplitude=0.5, weekend_factor=0.55),
        seed=2,
    )
    activity = activity_model.generate(n_bins, bin_seconds=300.0)
    busiest = int(np.argmax(activity.mean(axis=0)))
    period_days = dominant_period(activity[:, busiest], bin_seconds=300.0) / 86400.0
    ratio = weekend_ratio(activity[:, busiest], bin_seconds=300.0)
    print(f"\nbusiest node activity: dominant period = {period_days:.2f} days, "
          f"weekend/weekday ratio = {ratio:.2f}")

    # Step 4: compose the traffic-matrix series with the stable-fP model (Eq. 5).
    model = StableFPICModel(forward_fraction, preference, nodes=nodes)
    series = model.series(activity, bin_seconds=300.0)
    print(f"\ngenerated series: {series.n_timesteps} bins x {series.n_nodes} nodes, "
          f"mean per-bin total = {series.totals.mean():.3e} bytes")

    # What-if: a flash crowd doubles the preference of one node (Section 5.5's
    # "hot spot" knob); the traffic toward it scales accordingly.
    hot_node = int(np.argsort(preference)[len(preference) // 2])
    crowd_preference = preference.copy()
    crowd_preference[hot_node] *= 10.0
    crowd_model = StableFPICModel(forward_fraction, crowd_preference, nodes=nodes)
    crowd_series = crowd_model.series(activity[:bins_per_day], bin_seconds=300.0)
    before = series.egress[:bins_per_day, hot_node].mean()
    after = crowd_series.egress[:, hot_node].mean()
    print(f"\nflash-crowd what-if on {nodes[hot_node]}: "
          f"mean egress {before:.3e} -> {after:.3e} bytes/bin "
          f"({after / before:.1f}x)")

    # Step 5: persist for downstream consumers (capacity planning, simulation, ...).
    output = Path("synthetic_tm_week.npz")
    series.save(output)
    print(f"\nsaved the generated week to {output.resolve()}")


if __name__ == "__main__":
    main()

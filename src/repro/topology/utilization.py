"""Link-utilization analysis: what a traffic matrix does to the network.

Traffic matrices exist to answer capacity questions: given a TM (measured,
estimated or synthetic) and a routed topology, how loaded is every link, and
where is the network closest to saturation?  This module computes per-link
loads and utilizations from a traffic-matrix series and a routing matrix, the
natural downstream consumer of everything else in this package (and the
engine of the what-if analyses the paper motivates — varying ``f``, ``{P_i}``
or ``{A_i(t)}`` and seeing where hot spots appear).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.traffic_matrix import TrafficMatrixSeries
from repro.errors import ValidationError
from repro.topology.routing import RoutingMatrix, build_routing_matrix
from repro.topology.topology import Topology

__all__ = ["LinkUtilization", "compute_link_utilization"]


@dataclass(frozen=True)
class LinkUtilization:
    """Per-link load and utilization over a traffic-matrix series.

    Attributes
    ----------
    routing:
        The routing matrix used (defines the link ordering).
    loads_bps:
        Link loads in bits per second, shape ``(T, n_links)``.
    utilization:
        Loads divided by link capacities, same shape.
    bin_seconds:
        Averaging interval used to convert byte volumes to rates.
    """

    routing: RoutingMatrix
    loads_bps: np.ndarray
    utilization: np.ndarray
    bin_seconds: float

    @property
    def peak_utilization(self) -> float:
        """The single highest link utilization over all bins."""
        return float(self.utilization.max()) if self.utilization.size else 0.0

    def max_utilization_per_link(self) -> np.ndarray:
        """Per-link maximum utilization across time, shape ``(n_links,)``."""
        return self.utilization.max(axis=0)

    def busiest_links(self, count: int = 5) -> list[tuple[str, float]]:
        """The ``count`` links with the highest peak utilization.

        Returns ``(link name, peak utilization)`` pairs sorted descending.
        """
        peaks = self.max_utilization_per_link()
        order = np.argsort(peaks)[::-1][: max(count, 0)]
        return [
            (f"{self.routing.links[r].source}->{self.routing.links[r].target}", float(peaks[r]))
            for r in order
        ]

    def overloaded_links(self, threshold: float = 1.0) -> list[str]:
        """Names of links whose utilization ever exceeds ``threshold``."""
        peaks = self.max_utilization_per_link()
        return [
            f"{link.source}->{link.target}"
            for link, peak in zip(self.routing.links, peaks)
            if peak > threshold
        ]


def compute_link_utilization(
    topology: Topology,
    series: TrafficMatrixSeries,
    *,
    routing: RoutingMatrix | None = None,
    ecmp: bool = True,
) -> LinkUtilization:
    """Route a traffic-matrix series over a topology and report link utilization.

    Parameters
    ----------
    topology:
        The network (node order must match the series).
    series:
        Traffic matrices in bytes per bin.
    routing:
        Optional pre-built routing matrix (must belong to ``topology``);
        rebuilt from IGP weights when omitted.
    ecmp:
        Whether equal-cost paths split traffic (only used when building the
        routing matrix here).
    """
    if topology.nodes != series.nodes:
        raise ValidationError(
            "topology and series must agree on node names and order for utilization analysis"
        )
    if routing is None:
        routing = build_routing_matrix(topology, ecmp=ecmp)
    elif routing.nodes != topology.nodes:
        raise ValidationError("the supplied routing matrix belongs to a different topology")
    loads_bytes = series.to_vectors() @ routing.matrix.T
    loads_bps = loads_bytes * 8.0 / series.bin_seconds
    capacities = np.array([link.capacity for link in routing.links])
    utilization = loads_bps / capacities[np.newaxis, :]
    return LinkUtilization(
        routing=routing,
        loads_bps=loads_bps,
        utilization=utilization,
        bin_seconds=series.bin_seconds,
    )

"""PoP-level topology and routing substrate.

Traffic-matrix estimation (Section 6) needs the linear system ``Y = R x``
relating link counts to OD flows, which in turn needs a network topology with
IGP link weights and a shortest-path routing matrix.  This subpackage
provides:

* :class:`repro.topology.topology.Topology` — a validated PoP-level topology
  (nodes, weighted directed links, capacities),
* :mod:`repro.topology.routing` — shortest-path / ECMP routing and
  routing-matrix construction,
* :mod:`repro.topology.library` — ready-made topologies standing in for the
  networks used in the paper (Geant 22 PoPs, Totem 23 PoPs, Abilene 11 PoPs)
  plus synthetic topology generators.
"""

from repro.topology.topology import Link, Topology
from repro.topology.routing import RoutingMatrix, build_routing_matrix, shortest_paths
from repro.topology.library import (
    abilene_topology,
    geant_topology,
    random_topology,
    totem_topology,
)

__all__ = [
    "Link",
    "Topology",
    "RoutingMatrix",
    "build_routing_matrix",
    "shortest_paths",
    "geant_topology",
    "totem_topology",
    "abilene_topology",
    "random_topology",
]

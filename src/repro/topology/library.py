"""Ready-made topologies standing in for the networks used in the paper.

The paper's datasets come from two networks:

* **Geant** — the pan-European research backbone, 22 PoPs in the D1 dataset
  and 23 PoPs in the Totem D2 dataset (the German PoP ``de`` split into
  ``de1``/``de2``).
* **Abilene** — the US Internet2 backbone (11 PoPs), from which the D3 packet
  traces were collected at the Indianapolis (IPLS) router.

The exact 2004 link-level maps are not required for any result in the paper —
only a realistic, strongly connected PoP-level backbone over which shortest
paths and the routing matrix can be computed.  The adjacencies below follow
the publicly documented backbone structure closely enough for that purpose
(ring-plus-chords in Europe with the dense core around de/fr/ch/it/nl/uk, and
the well-known Abilene chain).  A seeded random topology generator is also
provided for scaling studies.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TopologyError
from repro.registry import register_topology
from repro.topology.topology import Link, Topology

__all__ = ["geant_topology", "totem_topology", "abilene_topology", "random_topology"]


GEANT_POPS: tuple[str, ...] = (
    "at", "be", "ch", "cz", "de", "es", "fr", "gr", "hr", "hu", "ie",
    "il", "it", "lu", "nl", "pl", "pt", "se", "si", "sk", "uk", "ny",
)

# (a, b, igp weight): an approximate PoP-level GEANT backbone.  Weights are
# loosely distance-based so that shortest paths are realistic and not all
# equal-cost.
_GEANT_EDGES: tuple[tuple[str, str, float], ...] = (
    ("uk", "ie", 10.0),
    ("uk", "nl", 5.0),
    ("uk", "fr", 6.0),
    ("uk", "ny", 30.0),
    ("ny", "de", 35.0),
    ("nl", "de", 4.0),
    ("nl", "be", 3.0),
    ("be", "fr", 4.0),
    ("fr", "ch", 5.0),
    ("fr", "es", 8.0),
    ("es", "pt", 5.0),
    ("pt", "uk", 12.0),
    ("es", "it", 9.0),
    ("ch", "it", 4.0),
    ("ch", "de", 5.0),
    ("de", "at", 5.0),
    ("de", "cz", 4.0),
    ("de", "se", 9.0),
    ("de", "lu", 3.0),
    ("lu", "fr", 3.0),
    ("se", "pl", 8.0),
    ("pl", "cz", 4.0),
    ("cz", "sk", 3.0),
    ("sk", "at", 3.0),
    ("at", "hu", 3.0),
    ("at", "si", 3.0),
    ("at", "it", 6.0),
    ("hu", "hr", 3.0),
    ("si", "hr", 2.0),
    ("hr", "gr", 8.0),
    ("gr", "it", 9.0),
    ("il", "it", 14.0),
    ("il", "gr", 10.0),
    ("hu", "sk", 2.0),
    ("pl", "de", 6.0),
    ("se", "nl", 8.0),
)


@register_topology("geant", description="22-PoP pan-European Geant backbone (D1)", metadata={"n_nodes": 22})
def geant_topology() -> Topology:
    """The 22-PoP Geant topology used by the D1 dataset."""
    topology = Topology("geant", GEANT_POPS)
    for a, b, weight in _GEANT_EDGES:
        topology.add_bidirectional_link(a, b, weight=weight, capacity=10e9)
    topology.validate_connected()
    return topology


@register_topology("totem", description="23-PoP Totem variant of Geant with the German PoP split (D2)", metadata={"n_nodes": 23})
def totem_topology() -> Topology:
    """The 23-PoP Totem variant of Geant: ``de`` is split into ``de1`` and ``de2``."""
    pops = tuple(p for p in GEANT_POPS if p != "de") + ("de1", "de2")
    topology = Topology("totem", pops)
    for a, b, weight in _GEANT_EDGES:
        if "de" in (a, b):
            continue
        topology.add_bidirectional_link(a, b, weight=weight, capacity=10e9)
    # Split the German PoP: de1 keeps the western links, de2 the eastern ones,
    # with a short internal link between the two.
    topology.add_bidirectional_link("de1", "de2", weight=1.0, capacity=40e9)
    for neighbor, weight in (("nl", 4.0), ("ny", 35.0), ("lu", 3.0), ("ch", 5.0)):
        topology.add_bidirectional_link("de1", neighbor, weight=weight, capacity=10e9)
    for neighbor, weight in (("at", 5.0), ("cz", 4.0), ("se", 9.0), ("pl", 6.0)):
        topology.add_bidirectional_link("de2", neighbor, weight=weight, capacity=10e9)
    topology.validate_connected()
    return topology


ABILENE_POPS: tuple[str, ...] = (
    "STTL", "SNVA", "LOSA", "DNVR", "KSCY", "HSTN", "IPLS", "CHIN", "ATLA", "WASH", "NYCM",
)

_ABILENE_EDGES: tuple[tuple[str, str, float], ...] = (
    ("STTL", "SNVA", 10.0),
    ("STTL", "DNVR", 10.0),
    ("SNVA", "LOSA", 6.0),
    ("SNVA", "DNVR", 11.0),
    ("LOSA", "HSTN", 14.0),
    ("DNVR", "KSCY", 6.0),
    ("KSCY", "HSTN", 8.0),
    ("KSCY", "IPLS", 6.0),
    ("HSTN", "ATLA", 10.0),
    ("IPLS", "CHIN", 3.0),
    ("IPLS", "ATLA", 7.0),
    ("CHIN", "NYCM", 9.0),
    ("ATLA", "WASH", 7.0),
    ("WASH", "NYCM", 3.0),
)


@register_topology("abilene", description="11-PoP Abilene / Internet2 backbone (D3 trace site)", metadata={"n_nodes": 11})
def abilene_topology() -> Topology:
    """The 11-PoP Abilene (Internet2) backbone, source of the D3 packet traces."""
    topology = Topology("abilene", ABILENE_POPS)
    for a, b, weight in _ABILENE_EDGES:
        topology.add_bidirectional_link(a, b, weight=weight, capacity=10e9)
    topology.validate_connected()
    return topology


@register_topology("random", description="Seeded random ring-plus-chords topology for scaling studies", metadata={"parameterized": True})
def random_topology(n_nodes: int, *, seed: int = 0, mean_degree: float = 3.0) -> Topology:
    """A seeded random strongly connected PoP-level topology.

    The construction places the PoPs on a ring (guaranteeing strong
    connectivity) and adds random chords until the requested mean degree is
    reached, with random IGP weights in [1, 10].  Useful for scaling studies
    and property-based tests.
    """
    if n_nodes < 2:
        raise TopologyError("random_topology needs at least 2 nodes")
    rng = np.random.default_rng(seed)
    nodes = [f"pop{i:02d}" for i in range(n_nodes)]
    topology = Topology(f"random{n_nodes}", nodes)
    for i in range(n_nodes):
        a, b = nodes[i], nodes[(i + 1) % n_nodes]
        if not topology.has_link(a, b):
            topology.add_bidirectional_link(a, b, weight=float(rng.uniform(1, 10)))
    target_links = int(mean_degree * n_nodes / 2)
    attempts = 0
    while topology.n_links // 2 < target_links and attempts < 50 * target_links:
        attempts += 1
        i, j = rng.integers(0, n_nodes, size=2)
        if i == j:
            continue
        a, b = nodes[int(i)], nodes[int(j)]
        if topology.has_link(a, b):
            continue
        topology.add_bidirectional_link(a, b, weight=float(rng.uniform(1, 10)))
    topology.validate_connected()
    return topology

"""Shortest-path routing and routing-matrix construction.

The estimation problem of Section 6 is ``Y = R x`` where ``x`` is the
vectorised traffic matrix (row-major OD order, see
:func:`repro.core.traffic_matrix.od_pairs`), ``Y`` the vector of per-link byte
counts and ``R`` the routing matrix: ``R[r, s]`` is the fraction of OD pair
``s`` that traverses link ``r`` (1 for single shortest paths, fractional under
equal-cost multipath splitting).

Routing is computed from IGP link weights with Dijkstra's algorithm
(via networkx).  Intra-PoP traffic (``i == j``) never touches a backbone link,
so its routing-matrix column is zero — exactly why TM estimation is
under-constrained and why the augmented system also carries the ingress and
egress counts.

A routing matrix has only ``O(n^2 * path_length)`` non-zeros out of
``n_links * n^2`` entries, so :class:`RoutingMatrix` stores a
``scipy.sparse`` CSR matrix and materialises the dense array lazily (and
caches it) for the callers that need dense linear algebra.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
from scipy import sparse

from repro.errors import ShapeError, TopologyError
from repro.topology.topology import Topology

__all__ = [
    "RoutingMatrix",
    "shortest_paths",
    "build_routing_matrix",
    "clear_routing_cache",
]


def shortest_paths(topology: Topology, *, all_paths: bool = False) -> dict[tuple[str, str], list[list[str]]]:
    """All shortest paths between every ordered PoP pair.

    Parameters
    ----------
    topology:
        The network.
    all_paths:
        When true, return *every* equal-cost shortest path (for ECMP
        splitting); otherwise a single deterministic shortest path per pair.

    Returns
    -------
    dict
        Maps ``(origin, destination)`` to a list of node paths.  The
        diagonal pairs map to the single-node path ``[origin]``.
    """
    topology.validate_connected()
    graph = topology.to_networkx()
    result: dict[tuple[str, str], list[list[str]]] = {}
    for origin in topology.nodes:
        if all_paths:
            for destination in topology.nodes:
                if origin == destination:
                    result[(origin, destination)] = [[origin]]
                else:
                    paths = list(
                        nx.all_shortest_paths(graph, origin, destination, weight="weight")
                    )
                    result[(origin, destination)] = paths
        else:
            lengths, paths = nx.single_source_dijkstra(graph, origin, weight="weight")
            for destination in topology.nodes:
                if origin == destination:
                    result[(origin, destination)] = [[origin]]
                elif destination in paths:
                    result[(origin, destination)] = [paths[destination]]
                else:  # pragma: no cover - unreachable once connectivity validated
                    raise TopologyError(f"no path from {origin} to {destination}")
    return result


class RoutingMatrix:
    """A routing matrix together with the link and OD-pair orderings it uses.

    Parameters
    ----------
    matrix:
        Either a dense ``(n_links, n_nodes**2)`` array or a ``scipy.sparse``
        matrix of the same shape; entry ``(r, s)`` is the fraction of OD pair
        ``s`` carried on link ``r``.  Whichever representation is supplied,
        the other is derived lazily and cached.
    links:
        The directed links, in row order.
    nodes:
        PoP names, defining the row-major OD-pair column order.
    """

    def __init__(self, matrix, links: tuple, nodes: tuple[str, ...]):
        self._links = tuple(links)
        self._nodes = tuple(str(node) for node in nodes)
        self._augmented: dict[bool, object] = {}
        if sparse.issparse(matrix):
            self._sparse: sparse.csr_matrix | None = matrix.tocsr()
            self._dense: np.ndarray | None = None
            shape = self._sparse.shape
        else:
            self._dense = np.asarray(matrix, dtype=float)
            self._sparse = None
            shape = self._dense.shape
        self._csc: sparse.csc_matrix | None = None
        n = len(self._nodes)
        if len(shape) != 2 or shape != (len(self._links), n * n):
            raise ShapeError(
                f"routing matrix must have shape (n_links, n_nodes**2) = "
                f"({len(self._links)}, {n * n}), got {shape}"
            )
        self._node_index = {node: i for i, node in enumerate(self._nodes)}

    # -- representations ----------------------------------------------------

    @property
    def matrix(self) -> np.ndarray:
        """The dense ``(n_links, n_nodes**2)`` array (materialised lazily, cached).

        Returned read-only: the dense and sparse forms are cached views of
        one logical matrix, so in-place edits would silently desynchronise
        them.
        """
        if self._dense is None:
            self._dense = self._sparse.toarray()
        view = self._dense.view()
        view.flags.writeable = False
        return view

    @property
    def sparse(self) -> sparse.csr_matrix:
        """The CSR form (materialised lazily from a dense input, cached)."""
        if self._sparse is None:
            self._sparse = sparse.csr_matrix(self._dense)
        return self._sparse

    # -- basic accessors ----------------------------------------------------

    @property
    def links(self) -> tuple:
        return self._links

    @property
    def nodes(self) -> tuple[str, ...]:
        return self._nodes

    @property
    def n_links(self) -> int:
        return len(self._links)

    @property
    def n_nodes(self) -> int:
        return len(self._nodes)

    def node_index(self, name: str) -> int:
        """Index of the PoP called ``name`` (cached O(1) lookup)."""
        try:
            return self._node_index[name]
        except KeyError as exc:
            raise TopologyError(f"unknown node {name!r} in routing matrix") from exc

    def column(self, origin: str, destination: str) -> np.ndarray:
        """The routing-matrix column of the OD pair ``origin -> destination``."""
        col = self.node_index(origin) * self.n_nodes + self.node_index(destination)
        if self._dense is not None:
            return self._dense[:, col].copy()
        if self._csc is None:
            self._csc = self.sparse.tocsc()
        column = np.zeros(self.n_links)
        start, stop = self._csc.indptr[col], self._csc.indptr[col + 1]
        column[self._csc.indices[start:stop]] = self._csc.data[start:stop]
        return column

    def link_loads(self, traffic_vector: np.ndarray, *, use_sparse: bool = False) -> np.ndarray:
        """Link loads ``Y = R x`` for vectorised traffic matrices.

        Accepts a single ``(n^2,)`` vector, a ``(T, n^2)`` time series or a
        ``(B, T, n^2)`` batch of series; the returned array mirrors the input
        shape with the trailing axis replaced by ``n_links``.  With
        ``use_sparse=True`` the product runs on the CSR form — much faster
        and lighter for large topologies, at the cost of a different
        floating-point summation order than the dense product.
        """
        traffic = np.asarray(traffic_vector, dtype=float)
        n_od = self.n_nodes * self.n_nodes
        if traffic.ndim == 0 or traffic.ndim > 3 or traffic.shape[-1] != n_od:
            raise ShapeError(
                f"traffic vectors must have trailing dimension n_nodes**2 = {n_od} "
                f"and at most 3 dimensions, got shape {traffic.shape}"
            )
        if traffic.ndim == 1:
            if use_sparse:
                return self.sparse @ traffic
            return self.matrix @ traffic
        flat = traffic.reshape(-1, n_od)
        if use_sparse:
            loads = (self.sparse @ flat.T).T
        else:
            loads = flat @ self.matrix.T
        return np.asarray(loads).reshape(*traffic.shape[:-1], self.n_links)

    def augmented_operator(self, *, as_sparse: bool = False):
        """The stacked ``[R; H; G]`` observation operator, built once and cached.

        ``H`` and ``G`` are the ingress/egress summing operators of
        Section 6.2; the stack only depends on the routing matrix and the
        node count, so it is shared by every measurement system over this
        topology — a sweep's cells and priors all solve against one operator
        instead of each re-stacking their own.
        """
        cached = self._augmented.get(bool(as_sparse))
        if cached is None:
            from repro.core.priors import marginal_operators

            h, g, _ = marginal_operators(self.n_nodes, as_sparse=as_sparse)
            if as_sparse:
                cached = sparse.vstack([self.sparse, h, g], format="csr")
            else:
                cached = np.vstack([self.matrix, h, g])
                cached.flags.writeable = False
            self._augmented[bool(as_sparse)] = cached
        return cached

    def rank(self) -> int:
        """Numerical rank of the routing matrix (always < n^2: the system is ill-posed)."""
        return int(np.linalg.matrix_rank(self.matrix))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RoutingMatrix(n_links={self.n_links}, n_nodes={self.n_nodes}, "
            f"nnz={self.sparse.nnz})"
        )


# Routing matrices memoised by topology content: Dijkstra plus matrix
# assembly is pure in (nodes, links, ecmp), and a sweep's cells all route
# over the same few topologies — sharing the instance also shares its lazily
# cached dense/CSC forms and the stacked augmented operator.
_ROUTING_CACHE: dict[tuple, RoutingMatrix] = {}
_ROUTING_CACHE_MAX = 8


def _topology_fingerprint(topology: Topology, ecmp: bool) -> tuple:
    """A value key identifying a topology's routing problem exactly."""
    return (tuple(topology.nodes), tuple(topology.links), bool(ecmp))


def clear_routing_cache() -> None:
    """Drop every memoised routing matrix (tests and benchmarks)."""
    _ROUTING_CACHE.clear()


def build_routing_matrix(topology: Topology, *, ecmp: bool = True) -> RoutingMatrix:
    """Build (or fetch the memoised) routing matrix of ``topology``.

    The build is pure in the topology's nodes, links and weights, so results
    are memoised by content: every measurement simulation over the same
    network — each cell of a grid sweep, every prior of a scenario — shares
    one :class:`RoutingMatrix` instance instead of re-running Dijkstra and
    re-assembling the matrix per call.

    The matrix is assembled as sparse COO triplets from the per-origin
    shortest-path traversal and stored as CSR; equal-cost shares accumulate
    exactly as the former dense ``+=`` loop did, so the dense
    materialisation is bit-identical to the historical dense build.

    Parameters
    ----------
    topology:
        The network; must be strongly connected.
    ecmp:
        When true, traffic of an OD pair is split equally across all
        equal-cost shortest paths (fractional routing-matrix entries); when
        false a single shortest path carries all of it.
    """
    key = _topology_fingerprint(topology, ecmp)
    cached = _ROUTING_CACHE.get(key)
    if cached is not None:
        return cached
    routing = _build_routing_matrix(topology, ecmp=ecmp)
    if len(_ROUTING_CACHE) >= _ROUTING_CACHE_MAX:
        _ROUTING_CACHE.pop(next(iter(_ROUTING_CACHE)))
    _ROUTING_CACHE[key] = routing
    return routing


def _build_routing_matrix(topology: Topology, *, ecmp: bool = True) -> RoutingMatrix:
    """The uncached routing build (see :func:`build_routing_matrix`)."""
    paths = shortest_paths(topology, all_paths=ecmp)
    links = topology.links
    link_index = {link.key: r for r, link in enumerate(links)}
    nodes = topology.nodes
    node_index = {node: i for i, node in enumerate(nodes)}
    n = len(nodes)
    entries: dict[tuple[int, int], float] = {}
    for (origin, destination), node_paths in paths.items():
        if origin == destination:
            continue
        column = node_index[origin] * n + node_index[destination]
        share = 1.0 / len(node_paths)
        for node_path in node_paths:
            for hop_source, hop_target in zip(node_path[:-1], node_path[1:]):
                key = (link_index[(hop_source, hop_target)], column)
                entries[key] = entries.get(key, 0.0) + share
    if entries:
        rows, cols = (np.asarray(axis, dtype=np.int64) for axis in zip(*entries))
        data = np.fromiter(entries.values(), dtype=float, count=len(entries))
    else:  # pragma: no cover - single-node topology
        rows = cols = np.zeros(0, dtype=np.int64)
        data = np.zeros(0)
    matrix = sparse.csr_matrix((data, (rows, cols)), shape=(len(links), n * n))
    return RoutingMatrix(matrix=matrix, links=tuple(links), nodes=nodes)

"""Shortest-path routing and routing-matrix construction.

The estimation problem of Section 6 is ``Y = R x`` where ``x`` is the
vectorised traffic matrix (row-major OD order, see
:func:`repro.core.traffic_matrix.od_pairs`), ``Y`` the vector of per-link byte
counts and ``R`` the routing matrix: ``R[r, s]`` is the fraction of OD pair
``s`` that traverses link ``r`` (1 for single shortest paths, fractional under
equal-cost multipath splitting).

Routing is computed from IGP link weights with Dijkstra's algorithm
(via networkx).  Intra-PoP traffic (``i == j``) never touches a backbone link,
so its routing-matrix column is zero — exactly why TM estimation is
under-constrained and why the augmented system also carries the ingress and
egress counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.errors import TopologyError
from repro.topology.topology import Topology

__all__ = ["RoutingMatrix", "shortest_paths", "build_routing_matrix"]


def shortest_paths(topology: Topology, *, all_paths: bool = False) -> dict[tuple[str, str], list[list[str]]]:
    """All shortest paths between every ordered PoP pair.

    Parameters
    ----------
    topology:
        The network.
    all_paths:
        When true, return *every* equal-cost shortest path (for ECMP
        splitting); otherwise a single deterministic shortest path per pair.

    Returns
    -------
    dict
        Maps ``(origin, destination)`` to a list of node paths.  The
        diagonal pairs map to the single-node path ``[origin]``.
    """
    topology.validate_connected()
    graph = topology.to_networkx()
    result: dict[tuple[str, str], list[list[str]]] = {}
    for origin in topology.nodes:
        if all_paths:
            for destination in topology.nodes:
                if origin == destination:
                    result[(origin, destination)] = [[origin]]
                else:
                    paths = list(
                        nx.all_shortest_paths(graph, origin, destination, weight="weight")
                    )
                    result[(origin, destination)] = paths
        else:
            lengths, paths = nx.single_source_dijkstra(graph, origin, weight="weight")
            for destination in topology.nodes:
                if origin == destination:
                    result[(origin, destination)] = [[origin]]
                elif destination in paths:
                    result[(origin, destination)] = [paths[destination]]
                else:  # pragma: no cover - unreachable once connectivity validated
                    raise TopologyError(f"no path from {origin} to {destination}")
    return result


@dataclass(frozen=True)
class RoutingMatrix:
    """A routing matrix together with the link and OD-pair orderings it uses.

    Attributes
    ----------
    matrix:
        Array of shape ``(n_links, n_nodes**2)``; entry ``(r, s)`` is the
        fraction of OD pair ``s`` carried on link ``r``.
    links:
        The directed links, in row order.
    nodes:
        PoP names, defining the row-major OD-pair column order.
    """

    matrix: np.ndarray
    links: tuple
    nodes: tuple[str, ...]

    @property
    def n_links(self) -> int:
        return self.matrix.shape[0]

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def column(self, origin: str, destination: str) -> np.ndarray:
        """The routing-matrix column of the OD pair ``origin -> destination``."""
        n = self.n_nodes
        i = self.nodes.index(origin)
        j = self.nodes.index(destination)
        return self.matrix[:, i * n + j]

    def link_loads(self, traffic_vector: np.ndarray) -> np.ndarray:
        """Link loads ``Y = R x`` for a vectorised traffic matrix (or ``(T, n^2)`` stack)."""
        traffic_vector = np.asarray(traffic_vector, dtype=float)
        return traffic_vector @ self.matrix.T if traffic_vector.ndim == 2 else self.matrix @ traffic_vector

    def rank(self) -> int:
        """Numerical rank of the routing matrix (always < n^2: the system is ill-posed)."""
        return int(np.linalg.matrix_rank(self.matrix))


def build_routing_matrix(topology: Topology, *, ecmp: bool = True) -> RoutingMatrix:
    """Build the routing matrix of ``topology`` from IGP shortest paths.

    Parameters
    ----------
    topology:
        The network; must be strongly connected.
    ecmp:
        When true, traffic of an OD pair is split equally across all
        equal-cost shortest paths (fractional routing-matrix entries); when
        false a single shortest path carries all of it.
    """
    paths = shortest_paths(topology, all_paths=ecmp)
    links = topology.links
    link_index = {link.key: r for r, link in enumerate(links)}
    n = topology.n_nodes
    matrix = np.zeros((len(links), n * n))
    for (origin, destination), node_paths in paths.items():
        if origin == destination:
            continue
        column = topology.node_index(origin) * n + topology.node_index(destination)
        share = 1.0 / len(node_paths)
        for node_path in node_paths:
            for hop_source, hop_target in zip(node_path[:-1], node_path[1:]):
                matrix[link_index[(hop_source, hop_target)], column] += share
    return RoutingMatrix(matrix=matrix, links=tuple(links), nodes=topology.nodes)

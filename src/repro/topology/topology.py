"""PoP-level network topology.

A :class:`Topology` is a set of named access points (PoPs) connected by
directed links, each carrying an IGP weight (used for shortest-path routing)
and a capacity (used only for sanity checks and reporting).  Links are stored
directionally because backbone links are instrumented per direction (SNMP
byte counters exist for each direction separately), which is also how the
routing matrix must be built.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import networkx as nx

from repro.errors import TopologyError

__all__ = ["Link", "Topology"]


@dataclass(frozen=True)
class Link:
    """A directed link between two PoPs.

    Attributes
    ----------
    source, target:
        PoP names.
    weight:
        IGP metric used for shortest-path routing (must be positive).
    capacity:
        Link capacity in bits per second (informational).
    """

    source: str
    target: str
    weight: float = 1.0
    capacity: float = 10e9

    def __post_init__(self):
        if self.source == self.target:
            raise TopologyError(f"self-loop link at {self.source!r} is not allowed")
        if self.weight <= 0:
            raise TopologyError(f"link {self.source}->{self.target} must have positive weight")
        if self.capacity <= 0:
            raise TopologyError(f"link {self.source}->{self.target} must have positive capacity")

    @property
    def key(self) -> tuple[str, str]:
        """The ``(source, target)`` pair identifying this link."""
        return (self.source, self.target)


class Topology:
    """A named, directed, weighted PoP-level topology.

    Parameters
    ----------
    name:
        Human-readable topology name (e.g. ``"geant"``).
    nodes:
        PoP names; order is preserved and defines node indices everywhere.
    links:
        Directed links.  Use :meth:`add_bidirectional_link` or pass both
        directions explicitly; backbone links are almost always symmetric in
        existence (though not necessarily in weight).
    """

    def __init__(self, name: str, nodes: Sequence[str], links: Iterable[Link] = ()):
        names = [str(node) for node in nodes]
        if len(set(names)) != len(names):
            raise TopologyError("node names must be unique")
        if not names:
            raise TopologyError("a topology needs at least one node")
        self._name = str(name)
        self._nodes: list[str] = names
        self._index = {node: i for i, node in enumerate(names)}
        self._links: dict[tuple[str, str], Link] = {}
        for link in links:
            self.add_link(link)

    # -- construction ------------------------------------------------------

    def add_link(self, link: Link) -> None:
        """Add a directed link; both endpoints must already be nodes."""
        for endpoint in (link.source, link.target):
            if endpoint not in self._index:
                raise TopologyError(f"link endpoint {endpoint!r} is not a node of {self._name!r}")
        if link.key in self._links:
            raise TopologyError(f"duplicate link {link.source}->{link.target}")
        self._links[link.key] = link

    def add_bidirectional_link(
        self, a: str, b: str, *, weight: float = 1.0, capacity: float = 10e9
    ) -> None:
        """Add the two directed links ``a->b`` and ``b->a`` with equal weight."""
        self.add_link(Link(a, b, weight=weight, capacity=capacity))
        self.add_link(Link(b, a, weight=weight, capacity=capacity))

    # -- accessors -----------------------------------------------------------

    @property
    def name(self) -> str:
        return self._name

    @property
    def nodes(self) -> tuple[str, ...]:
        """PoP names in index order."""
        return tuple(self._nodes)

    @property
    def n_nodes(self) -> int:
        return len(self._nodes)

    @property
    def links(self) -> tuple[Link, ...]:
        """All directed links in insertion order."""
        return tuple(self._links.values())

    @property
    def n_links(self) -> int:
        return len(self._links)

    def node_index(self, name: str) -> int:
        """Index of the PoP called ``name``."""
        try:
            return self._index[name]
        except KeyError as exc:
            raise TopologyError(f"unknown node {name!r} in topology {self._name!r}") from exc

    def has_link(self, source: str, target: str) -> bool:
        """Whether the directed link ``source -> target`` exists."""
        return (source, target) in self._links

    def link(self, source: str, target: str) -> Link:
        """The directed link ``source -> target``."""
        try:
            return self._links[(source, target)]
        except KeyError as exc:
            raise TopologyError(f"no link {source}->{target} in topology {self._name!r}") from exc

    def neighbors(self, node: str) -> list[str]:
        """Nodes reachable from ``node`` over a single directed link."""
        self.node_index(node)
        return [target for (source, target) in self._links if source == node]

    def __iter__(self) -> Iterator[Link]:
        return iter(self.links)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Topology({self._name!r}, nodes={self.n_nodes}, links={self.n_links})"

    # -- graph views -----------------------------------------------------------

    def to_networkx(self) -> nx.DiGraph:
        """A :class:`networkx.DiGraph` view with ``weight`` and ``capacity`` attributes."""
        graph = nx.DiGraph(name=self._name)
        graph.add_nodes_from(self._nodes)
        for link in self._links.values():
            graph.add_edge(link.source, link.target, weight=link.weight, capacity=link.capacity)
        return graph

    def is_strongly_connected(self) -> bool:
        """Whether every PoP can reach every other PoP over directed links."""
        if self.n_nodes == 1:
            return True
        return nx.is_strongly_connected(self.to_networkx())

    def validate_connected(self) -> None:
        """Raise :class:`TopologyError` unless the topology is strongly connected."""
        if not self.is_strongly_connected():
            raise TopologyError(
                f"topology {self._name!r} is not strongly connected; routing would be undefined"
            )

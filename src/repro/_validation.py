"""Internal validation helpers shared across subpackages.

These helpers normalise user input into canonical ``numpy`` arrays and raise
:class:`repro.errors.ValidationError` / :class:`repro.errors.ShapeError` with
informative messages when the input is unusable.  They are deliberately small
and explicit; every public entry point of the package funnels array arguments
through them.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import ShapeError, ValidationError


def as_1d_array(values: Iterable[float], name: str, *, length: int | None = None) -> np.ndarray:
    """Convert ``values`` to a 1-D float array, optionally checking its length."""
    array = np.asarray(values, dtype=float)
    if array.ndim != 1:
        raise ShapeError(f"{name} must be one-dimensional, got shape {array.shape}")
    if length is not None and array.shape[0] != length:
        raise ShapeError(f"{name} must have length {length}, got {array.shape[0]}")
    if not np.all(np.isfinite(array)):
        raise ValidationError(f"{name} must contain only finite values")
    return array


def as_square_matrix(values: Iterable[Iterable[float]], name: str, *, size: int | None = None) -> np.ndarray:
    """Convert ``values`` to a square 2-D float array."""
    array = np.asarray(values, dtype=float)
    if array.ndim != 2 or array.shape[0] != array.shape[1]:
        raise ShapeError(f"{name} must be a square matrix, got shape {array.shape}")
    if size is not None and array.shape[0] != size:
        raise ShapeError(f"{name} must be {size}x{size}, got {array.shape[0]}x{array.shape[1]}")
    if not np.all(np.isfinite(array)):
        raise ValidationError(f"{name} must contain only finite values")
    return array


def as_series_array(values, name: str, *, nodes: int | None = None) -> np.ndarray:
    """Convert ``values`` to a (T, n, n) float array of traffic matrices."""
    array = np.asarray(values, dtype=float)
    if array.ndim == 2:
        array = array[np.newaxis, :, :]
    if array.ndim != 3 or array.shape[1] != array.shape[2]:
        raise ShapeError(
            f"{name} must have shape (T, n, n) with square matrices, got {array.shape}"
        )
    if nodes is not None and array.shape[1] != nodes:
        raise ShapeError(f"{name} must have n={nodes} nodes, got {array.shape[1]}")
    if not np.all(np.isfinite(array)):
        raise ValidationError(f"{name} must contain only finite values")
    return array


def require_nonnegative(array: np.ndarray, name: str, *, tolerance: float = 0.0) -> np.ndarray:
    """Raise unless every entry of ``array`` is >= -tolerance; clip tiny negatives."""
    minimum = float(np.min(array)) if array.size else 0.0
    if minimum < -tolerance:
        raise ValidationError(f"{name} must be non-negative, found minimum {minimum}")
    return np.clip(array, 0.0, None)


def require_probability(value: float, name: str) -> float:
    """Validate that ``value`` lies in the closed unit interval."""
    value = float(value)
    if not np.isfinite(value) or value < 0.0 or value > 1.0:
        raise ValidationError(f"{name} must lie in [0, 1], got {value}")
    return value


def require_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is a strictly positive integer."""
    if int(value) != value or value <= 0:
        raise ValidationError(f"{name} must be a positive integer, got {value!r}")
    return int(value)


def normalized(values: np.ndarray, name: str) -> np.ndarray:
    """Return ``values`` scaled to sum to one.

    Raises if the sum is not strictly positive, because a preference vector
    with zero mass cannot be normalised meaningfully.
    """
    total = float(np.sum(values))
    if total <= 0.0:
        raise ValidationError(f"{name} must have a positive sum to be normalised, got {total}")
    return values / total


def node_names(names: Sequence[str] | None, count: int) -> tuple[str, ...]:
    """Return validated node names, generating ``node00..`` defaults when absent."""
    if names is None:
        return tuple(f"node{i:02d}" for i in range(count))
    names = tuple(str(name) for name in names)
    if len(names) != count:
        raise ShapeError(f"expected {count} node names, got {len(names)}")
    if len(set(names)) != len(names):
        raise ValidationError("node names must be unique")
    return names

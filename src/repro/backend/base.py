"""The :class:`Backend` protocol: one array namespace plus the shims kernels need.

The Python array-API standard covers almost everything the batched IC
kernels do — elementwise arithmetic, broadcasting, ``matmul``, reductions,
``linalg.solve`` / ``linalg.pinv`` — but not quite everything, and the
libraries we target diverge in small ways (``einsum`` is absent from the
standard, ``torch`` spells ``matrix_transpose`` as ``Tensor.mT``, reduction
``max`` returns a tuple under torch, pseudo-inverse tolerance is ``rcond``
in NumPy and ``rtol`` everywhere else).  A :class:`Backend` bundles

* ``xp`` — the array namespace the kernels call for standard operations,
* device transfer — :meth:`asarray` (host → device, once per chunk at the
  synthesis boundary) and :meth:`to_numpy` (device → host, once at the
  result boundary),
* shims for the gaps — :meth:`einsum` (native where available, a
  pattern-table fallback otherwise), :meth:`solve`, :meth:`pinv`,
  :meth:`lstsq`, :meth:`matrix_transpose`, :meth:`max`,
* dtype/device defaults (:attr:`float_dtype`, :attr:`device`), and
* capability flags — :attr:`is_numpy` (the bit-identical legacy paths),
  :attr:`supports_scipy` (arrays usable by ``scipy`` directly, which gates
  the sparse tomogravity operator and the L-BFGS entropy refinement).

Concrete backends subclass this and override :meth:`_load` plus whatever
shims their library spells differently; see :mod:`repro.backend.builtins`.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.errors import BackendError

__all__ = ["Backend"]


def _einsum_ti_j_tij(xp, a, b):
    return a[:, :, None] * b[None, None, :]


def _einsum_tj_i_tij(xp, a, b):
    return a[:, None, :] * b[None, :, None]


def _einsum_ti_tj_tij(xp, a, b):
    return a[:, :, None] * b[:, None, :]


def _einsum_tj_ti_tij(xp, a, b):
    return a[:, None, :] * b[:, :, None]


def _einsum_t_ti_tj_ij(xp, w, a, b):
    return xp.matmul(xp.matrix_transpose(w[:, None] * a), b)


def _einsum_t_ti_tik_k(xp, w, a, x):
    return xp.sum((w[:, None] * a)[:, :, None] * x, axis=(0, 1))


def _einsum_t_tj_tkj_k(xp, w, a, x):
    return xp.sum((w[:, None] * a)[:, None, :] * x, axis=(0, 2))


def _einsum_t_tij_tij_scalar(xp, w, u, v):
    return xp.sum(w[:, None, None] * u * v)


#: The contraction patterns the namespace-generic kernels use, implemented
#: with standard broadcasting + ``matmul`` for namespaces without ``einsum``
#: (``array_api_strict`` is the built-in case).
_EINSUM_FALLBACKS: dict[str, Callable] = {
    "ti,j->tij": _einsum_ti_j_tij,
    "tj,i->tij": _einsum_tj_i_tij,
    "ti,tj->tij": _einsum_ti_tj_tij,
    "tj,ti->tij": _einsum_tj_ti_tij,
    "t,ti,tj->ij": _einsum_t_ti_tj_ij,
    "t,ti,tik->k": _einsum_t_ti_tik_k,
    "t,tj,tkj->k": _einsum_t_tj_tkj_k,
    "t,tij,tij->": _einsum_t_tij_tij_scalar,
}


class Backend:
    """One array namespace plus transfer and linear-algebra shims.

    Subclasses set :attr:`name` and implement :meth:`_load` (returning the
    array namespace); the default method implementations follow the array-API
    standard and are overridden where a library deviates.
    """

    #: Registry name of the backend.
    name: str = "abstract"
    #: True only for the NumPy backend, whose kernels run the historical
    #: bit-identical code paths.
    is_numpy: bool = False
    #: Whether ``scipy`` can consume this backend's arrays directly (sparse
    #: operators, L-BFGS refinement).  False forces dense device paths and
    #: host round-trips for scipy-backed stages.
    supports_scipy: bool = False
    #: Whether the namespace ships a native ``einsum``.
    has_native_einsum: bool = True

    def __init__(self, *, device: Any = None):
        self.xp = self._load()
        self.device = device

    # -- construction -------------------------------------------------------

    def _load(self):
        """Import and return the array namespace (may raise ImportError)."""
        raise NotImplementedError

    # -- dtype / device defaults --------------------------------------------

    @property
    def float_dtype(self):
        """Default floating dtype; float64 so results track the NumPy paths."""
        return self.xp.float64

    # -- host/device transfer ------------------------------------------------

    def asarray(self, values, *, dtype=None):
        """Ship ``values`` (host array-like or device array) to the device.

        Idempotent for arrays already on this backend, so pipeline stages can
        call it defensively without paying a second transfer.
        """
        dtype = self.float_dtype if dtype is None else dtype
        kwargs = {"dtype": dtype}
        if self.device is not None:
            kwargs["device"] = self.device
        try:
            return self.xp.asarray(values, **kwargs)
        except TypeError:
            return self.xp.asarray(np.asarray(values, dtype=float), **kwargs)

    def to_numpy(self, array) -> np.ndarray:
        """Bring a device array back to a host ``numpy.ndarray`` (writable)."""
        if isinstance(array, np.ndarray):
            return array
        try:
            return np.array(array, copy=True)
        except (TypeError, RuntimeError):
            return np.array(np.from_dlpack(array), copy=True)

    def scalar(self, array) -> float:
        """A python float from a 0-D device array (one sync point)."""
        return float(array)

    def synchronize(self) -> None:
        """Wait for queued device work (no-op on synchronous backends)."""

    # -- gaps in the array-API standard ---------------------------------------

    def einsum(self, subscripts: str, *operands):
        """``einsum`` — native when the namespace has one, else a pattern table.

        The fallback covers exactly the contractions the namespace-generic
        kernels use; an unknown pattern raises :class:`BackendError` naming it.
        """
        if self.has_native_einsum:
            native = getattr(self.xp, "einsum", None)
            if native is not None:
                return native(subscripts, *operands)
        key = subscripts.replace(" ", "")
        implementation = _EINSUM_FALLBACKS.get(key)
        if implementation is None:
            raise BackendError(
                f"backend {self.name!r} has no native einsum and no fallback for "
                f"pattern {subscripts!r}; known patterns: {sorted(_EINSUM_FALLBACKS)}"
            )
        return implementation(self.xp, *operands)

    def matrix_transpose(self, array):
        """Swap the last two axes (``numpy.matrix_transpose`` semantics)."""
        return self.xp.matrix_transpose(array)

    def solve(self, a, b):
        """``linalg.solve`` for the square system ``a @ x = b``."""
        return self.xp.linalg.solve(a, b)

    def pinv(self, a, *, rtol: float | None = None):
        """Moore-Penrose pseudo-inverse (``rtol`` spelled per library)."""
        if rtol is None:
            return self.xp.linalg.pinv(a)
        return self.xp.linalg.pinv(a, rtol=rtol)

    def lstsq(self, a, b):
        """Minimum-norm least squares ``argmin_x ||a x - b||``.

        The standard has no ``lstsq``; the default composes it from
        :meth:`pinv`, which matches the normal-equation uses in this package.
        """
        return self.xp.matmul(self.pinv(a), b)

    def max(self, array, *, axis=None):
        """Reduction ``max`` returning values only (torch returns a tuple)."""
        if axis is None:
            return self.xp.max(array)
        return self.xp.max(array, axis=axis)

    # -- introspection --------------------------------------------------------

    def describe(self) -> dict:
        """Fingerprint for bench JSON: name, module, version, device."""
        module = getattr(self.xp, "__name__", type(self.xp).__name__)
        version = getattr(self.xp, "__version__", None)
        if version is None:
            try:
                import importlib

                version = getattr(importlib.import_module(module.split(".")[0]), "__version__", "?")
            except ImportError:  # pragma: no cover - defensive
                version = "?"
        return {
            "name": self.name,
            "module": module,
            "version": str(version),
            "device": str(self.device) if self.device is not None else "cpu",
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        device = f", device={self.device!r}" if self.device is not None else ""
        return f"<Backend {self.name}{device}>"

"""The built-in compute backends: numpy, array-api-strict, torch, cupy.

Only ``numpy`` is a hard dependency; the other three register lazy factories
that import their library on first use, so this module adds **no** new
install requirements.  ``array_api_strict`` exists for conformance testing —
it wraps NumPy behind the strict standard namespace, which is what keeps the
namespace-generic kernels honest about portability.  ``torch`` and ``cupy``
are the accelerator backends; both default to float64 on their default
device so results track the NumPy reference (pass ``device=``/``dtype=``
through :meth:`Backend.asarray` for other placements).
"""

from __future__ import annotations

import numpy as np

from repro.backend.base import Backend
from repro.backend.registry import register_backend

__all__ = ["NumpyBackend", "ArrayApiStrictBackend", "TorchBackend", "CupyBackend"]


class NumpyBackend(Backend):
    """The default backend: plain NumPy on the host, bit-identical paths."""

    name = "numpy"
    is_numpy = True
    supports_scipy = True

    def _load(self):
        return np

    def asarray(self, values, *, dtype=None):
        return np.asarray(values, dtype=float if dtype is None else dtype)

    def to_numpy(self, array) -> np.ndarray:
        return np.asarray(array)

    def pinv(self, a, *, rtol: float | None = None):
        # NumPy spells the tolerance ``rcond``; keep its historical default
        # when none is given so legacy call sites stay bit-identical.
        if rtol is None:
            return np.linalg.pinv(a)
        return np.linalg.pinv(a, rcond=rtol)

    def lstsq(self, a, b):
        return np.linalg.lstsq(a, b, rcond=None)[0]


class ArrayApiStrictBackend(Backend):
    """Strict array-API namespace over NumPy — the conformance backend.

    Numerically this is NumPy, but only standard functions exist, so any
    NumPy-only idiom in a namespace-generic kernel fails loudly here instead
    of silently pinning the codebase to one library.
    """

    name = "array_api_strict"
    has_native_einsum = False  # the standard has no einsum; use the fallback

    def _load(self):
        import array_api_strict

        return array_api_strict


class TorchBackend(Backend):
    """PyTorch backend (CPU or CUDA/MPS via ``device=``); float64 default."""

    name = "torch"

    def _load(self):
        import torch

        return torch

    def asarray(self, values, *, dtype=None):
        torch = self.xp
        dtype = torch.float64 if dtype is None else dtype
        if isinstance(values, torch.Tensor):
            tensor = values
        else:
            tensor = torch.as_tensor(np.asarray(values))
        tensor = tensor.to(dtype=dtype)
        if self.device is not None:
            tensor = tensor.to(device=self.device)
        return tensor

    def to_numpy(self, array) -> np.ndarray:
        if isinstance(array, np.ndarray):
            return array
        return array.detach().cpu().numpy()

    def matrix_transpose(self, array):
        return array.mT

    def max(self, array, *, axis=None):
        if axis is None:
            return self.xp.max(array)
        # torch.max(dim=...) returns (values, indices); amax returns values.
        return self.xp.amax(array, dim=axis)

    def synchronize(self) -> None:
        torch = self.xp
        if self.device is not None and torch.cuda.is_available():  # pragma: no cover
            torch.cuda.synchronize()


class CupyBackend(Backend):
    """CuPy backend: NumPy-compatible namespace resident on the GPU."""

    name = "cupy"

    def _load(self):
        import cupy

        return cupy

    def asarray(self, values, *, dtype=None):
        return self.xp.asarray(values, dtype=self.xp.float64 if dtype is None else dtype)

    def to_numpy(self, array) -> np.ndarray:
        if isinstance(array, np.ndarray):
            return array
        return self.xp.asnumpy(array)

    def pinv(self, a, *, rtol: float | None = None):
        if rtol is None:
            return self.xp.linalg.pinv(a)
        return self.xp.linalg.pinv(a, rcond=rtol)

    def synchronize(self) -> None:  # pragma: no cover - requires a GPU
        self.xp.cuda.get_current_stream().synchronize()


register_backend(
    "numpy",
    NumpyBackend,
    description="NumPy on the host (default; bit-identical legacy kernels)",
    metadata={"requires": "numpy", "gated": False, "device": "cpu"},
)
register_backend(
    "array_api_strict",
    ArrayApiStrictBackend,
    description="Strict array-API namespace over NumPy (conformance/testing)",
    metadata={"requires": "array-api-strict", "gated": True, "device": "cpu"},
)
register_backend(
    "torch",
    TorchBackend,
    description="PyTorch tensors (CPU/CUDA/MPS), float64 default",
    metadata={"requires": "torch", "gated": True, "device": "cpu|cuda|mps"},
)
register_backend(
    "cupy",
    CupyBackend,
    description="CuPy arrays resident on the GPU",
    metadata={"requires": "cupy", "gated": True, "device": "cuda"},
)

"""Backend registration and selection.

Backends register a *factory* (a zero-argument callable returning a
:class:`repro.backend.base.Backend`) in the shared component registry, so
``repro list backends`` shows them next to priors and datasets.  Gated
backends (torch, cupy, array-api-strict) register unconditionally but their
factories import lazily — looking one up on a machine without the library
raises :class:`repro.errors.BackendUnavailableError` with an install hint,
and :func:`available_backends` simply omits it.

Selection order, most specific wins:

1. an explicit ``backend=`` argument (a name or a :class:`Backend` instance),
2. the innermost active :func:`use_backend` context,
3. the ``REPRO_BACKEND`` environment variable,
4. the default: ``numpy``.

Instances are cached per name — a backend is constructed (and its library
imported) at most once per process.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.backend.base import Backend
from repro.errors import BackendError, BackendUnavailableError
from repro.registry import BACKENDS, canonical_name

__all__ = [
    "ENV_VAR",
    "register_backend",
    "get_backend",
    "resolve_backend",
    "use_backend",
    "backend_names",
    "available_backends",
    "backend_available",
]

#: Environment variable consulted when no explicit backend is selected.
ENV_VAR = "REPRO_BACKEND"

# Cached Backend instances by canonical name (one import per process).
_INSTANCES: dict[str, Backend] = {}

# Stack of Backend instances pushed by nested use_backend() contexts.
_ACTIVE: list[Backend] = []


def register_backend(
    name: str,
    factory: Callable[[], Backend] | None = None,
    *,
    description: str = "",
    metadata: dict | None = None,
    overwrite: bool = False,
):
    """Register a backend factory (usable as a decorator).

    ``factory`` is called lazily the first time the backend is requested and
    must return a :class:`Backend`; raise :class:`BackendUnavailableError`
    (or let an ``ImportError`` propagate) when the underlying library is
    missing.  Third-party code can register additional backends and select
    them by name everywhere a built-in works (``--backend``, ``REPRO_BACKEND``,
    ``Scenario(backend=...)``).
    """
    return BACKENDS.register(
        name, factory, description=description, metadata=metadata, overwrite=overwrite
    )


def backend_names() -> tuple[str, ...]:
    """Every registered backend name (installed or not), sorted."""
    return BACKENDS.names()


def backend_available(name: str) -> bool:
    """Whether ``name`` is registered and its library imports."""
    try:
        get_backend(name)
    except (BackendError, ImportError):
        return False
    return True


def available_backends() -> tuple[str, ...]:
    """The registered backends whose libraries are importable, sorted."""
    return tuple(name for name in backend_names() if backend_available(name))


def _instantiate(name: str) -> Backend:
    key = canonical_name(name)
    cached = _INSTANCES.get(key)
    if cached is not None:
        return cached
    entry = BACKENDS.entry(key)  # raises RegistryError naming the choices
    try:
        backend = entry.obj()
    except ImportError as exc:
        hint = entry.metadata.get("requires", key)
        raise BackendUnavailableError(
            f"backend {key!r} is registered but its array library is not "
            f"installed ({exc}); install {hint!r} to enable it"
        ) from exc
    if not isinstance(backend, Backend):
        raise BackendError(
            f"backend factory for {key!r} returned {type(backend).__name__}, "
            "expected a repro.backend.Backend"
        )
    _INSTANCES[key] = backend
    return backend


def get_backend(name: str | None = None) -> Backend:
    """The selected backend instance.

    With ``name=None`` the ambient selection applies: the innermost
    :func:`use_backend` context, then ``REPRO_BACKEND``, then ``numpy``.
    """
    if name is None:
        if _ACTIVE:
            return _ACTIVE[-1]
        name = os.environ.get(ENV_VAR) or "numpy"
    return _instantiate(name)


def resolve_backend(backend: "Backend | str | None") -> Backend:
    """Coerce an explicit argument — instance, name, or ``None`` (ambient)."""
    if isinstance(backend, Backend):
        return backend
    return get_backend(backend)


@contextmanager
def use_backend(name: "Backend | str | None") -> Iterator[Backend]:
    """Select ``name`` for the duration of the ``with`` block.

    ``None`` is a no-op (the ambient selection stays in force), so callers
    can write ``with use_backend(maybe_name):`` unconditionally.  Yields the
    resolved :class:`Backend`.
    """
    if name is None:
        yield get_backend()
        return
    backend = resolve_backend(name)
    _ACTIVE.append(backend)
    try:
        yield backend
    finally:
        _ACTIVE.pop()

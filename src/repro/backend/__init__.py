"""Pluggable array-API compute backends.

One kernel codebase, several array libraries: the batched IC-series,
gravity, stable-fP ALS, tomogravity, IPF and entropy kernels accept a
``backend`` and run against that backend's array namespace, with host/device
transfer only at the synthesis and result boundaries.  Built-ins:

* ``numpy`` — the default; runs the historical, bit-identical code paths,
* ``array_api_strict`` — strict standard namespace over NumPy, used by the
  conformance tests (install ``array-api-strict``),
* ``torch`` / ``cupy`` — accelerator backends, registered lazily and only
  usable when the library is installed (no new hard dependencies).

Selection order: explicit ``backend=`` argument > innermost
:func:`use_backend` context > ``REPRO_BACKEND`` environment variable >
``numpy``.  The CLI exposes the same choice as ``--backend``.

Register your own::

    from repro.backend import Backend, register_backend

    @register_backend("mylib", description="...")
    class MyBackend(Backend):
        name = "mylib"
        def _load(self):
            import mylib
            return mylib
"""

from repro.backend.base import Backend
from repro.backend.registry import (
    ENV_VAR,
    available_backends,
    backend_available,
    backend_names,
    get_backend,
    register_backend,
    resolve_backend,
    use_backend,
)

__all__ = [
    "Backend",
    "ENV_VAR",
    "register_backend",
    "get_backend",
    "resolve_backend",
    "use_backend",
    "backend_names",
    "backend_available",
    "available_backends",
]

"""Iterative proportional fitting (step 3 of the estimation blueprint).

After the least-squares refinement, the estimate is made consistent with the
observed ingress (row-sum) and egress (column-sum) totals by alternately
rescaling rows and columns.  This is the classic IPF / RAS / Kruithof
procedure; the paper notes that "step 3 remains the same across many
solutions".
"""

from __future__ import annotations

import numpy as np

from repro.backend import resolve_backend
from repro.errors import ShapeError, ValidationError

__all__ = ["iterative_proportional_fitting", "iterative_proportional_fitting_series"]


def iterative_proportional_fitting(
    matrix: np.ndarray,
    row_totals: np.ndarray,
    column_totals: np.ndarray,
    *,
    max_iterations: int = 100,
    tolerance: float = 1e-8,
) -> np.ndarray:
    """Scale ``matrix`` so its row/column sums match the given totals.

    Parameters
    ----------
    matrix:
        Non-negative seed matrix, shape ``(n, n)``.
    row_totals, column_totals:
        Target ingress and egress totals, length ``n``.  They are rescaled
        internally so both sum to the same grand total (the mean of the two),
        because measured marginals rarely agree exactly.
    max_iterations:
        Iteration cap.
    tolerance:
        Convergence threshold on the maximum relative marginal mismatch.

    Returns
    -------
    numpy.ndarray
        The fitted matrix.  Structural zeros of the seed remain zero; rows or
        columns whose seed mass is zero but whose target is positive receive a
        uniform allocation over the non-fixed cells before fitting, so the
        procedure cannot silently drop traffic.
    """
    seed = np.asarray(matrix, dtype=float)
    if seed.ndim != 2 or seed.shape[0] != seed.shape[1]:
        raise ShapeError(f"matrix must be square, got shape {seed.shape}")
    if np.any(seed < 0):
        raise ValidationError("IPF seed matrix must be non-negative")
    n = seed.shape[0]
    rows = np.asarray(row_totals, dtype=float)
    cols = np.asarray(column_totals, dtype=float)
    if rows.shape != (n,) or cols.shape != (n,):
        raise ShapeError("row_totals and column_totals must have length n")
    if np.any(rows < 0) or np.any(cols < 0):
        raise ValidationError("marginal totals must be non-negative")

    grand_row, grand_col = rows.sum(), cols.sum()
    if grand_row <= 0 or grand_col <= 0:
        return np.zeros_like(seed)
    # Reconcile the two marginals to a common grand total.
    grand = 0.5 * (grand_row + grand_col)
    rows = rows * (grand / grand_row)
    cols = cols * (grand / grand_col)

    current = seed.copy()
    # Give empty-but-needed rows/columns a uniform seed so they can be scaled.
    empty_rows = (current.sum(axis=1) <= 0) & (rows > 0)
    current[empty_rows, :] = 1.0
    empty_cols = (current.sum(axis=0) <= 0) & (cols > 0)
    current[:, empty_cols] = np.maximum(current[:, empty_cols], 1.0)

    for _ in range(max_iterations):
        row_sums = current.sum(axis=1)
        row_scale = np.where(row_sums > 0, rows / np.where(row_sums > 0, row_sums, 1.0), 0.0)
        current = current * row_scale[:, None]
        col_sums = current.sum(axis=0)
        col_scale = np.where(col_sums > 0, cols / np.where(col_sums > 0, col_sums, 1.0), 0.0)
        current = current * col_scale[None, :]
        row_error = _max_relative_mismatch(current.sum(axis=1), rows)
        col_error = _max_relative_mismatch(current.sum(axis=0), cols)
        if max(row_error, col_error) < tolerance:
            break
    return current


def _max_relative_mismatch(actual: np.ndarray, target: np.ndarray) -> float:
    scale = np.maximum(target, 1e-12)
    mask = target > 0
    if not np.any(mask):
        return 0.0
    return float(np.max(np.abs(actual[mask] - target[mask]) / scale[mask]))


def iterative_proportional_fitting_series(
    matrices: np.ndarray,
    row_totals: np.ndarray,
    column_totals: np.ndarray,
    *,
    max_iterations: int = 100,
    tolerance: float = 1e-8,
    backend=None,
    initial_row_scale: np.ndarray | None = None,
    initial_col_scale: np.ndarray | None = None,
    scale_state: dict | None = None,
    iteration_counts: np.ndarray | None = None,
) -> np.ndarray:
    """Batched IPF over a ``(T, n, n)`` stack of seed matrices.

    Vectorised equivalent of running :func:`iterative_proportional_fitting`
    independently on every bin (bit-identical to that loop): each bin keeps
    its own convergence state, and bins that have met the tolerance are
    frozen while the rest keep iterating, exactly as the per-bin ``break``
    would leave them.

    Parameters
    ----------
    matrices:
        Non-negative seed matrices, shape ``(T, n, n)``.
    row_totals, column_totals:
        Target ingress and egress totals, shape ``(T, n)``.
    max_iterations, tolerance:
        As in :func:`iterative_proportional_fitting`.
    backend:
        Array namespace (:mod:`repro.backend`).  A non-NumPy backend accepts
        host or device arrays, runs the scaling loop on the device with the
        same per-bin convergence freezing (converged bins are masked out
        instead of compacted away), and returns a device array.  The default
        (and explicit ``"numpy"``) is the historical bit-identical path.
    initial_row_scale, initial_col_scale:
        Optional ``(T, n)`` positive diagonal pre-scales applied to the seeds
        before iterating (a *warm start* from a related solve).  Diagonal
        pre-scaling preserves each seed's cross-ratios, hence IPF's fixed
        point; only the iteration count changes.  NumPy backend only.
    scale_state:
        Optional dict; on return it holds ``"row"``/``"col"`` arrays of shape
        ``(T, n)`` with the accumulated per-bin diagonal scale products
        (including the initial pre-scale) — the state a caller feeds back as
        the next warm start.  NumPy backend only.
    iteration_counts:
        Optional out-array of shape ``(T,)`` (integer dtype); on return,
        entry ``t`` is the number of scaling sweeps bin ``t`` ran before
        convergence froze it (``max_iterations`` if it never converged,
        0 for zero-total bins).  NumPy backend only.

    The four optional parameters leave the fitted values untouched when the
    pre-scales are ``None``: the default path is bit-identical with or
    without instrumentation.
    """
    extras = (initial_row_scale, initial_col_scale, scale_state, iteration_counts)
    if backend is not None:
        be = resolve_backend(backend)
        if not be.is_numpy:
            if any(extra is not None for extra in extras):
                raise ValidationError(
                    "warm-start/instrumentation parameters require the NumPy backend"
                )
            return _ipf_series_xp(
                be, matrices, row_totals, column_totals,
                max_iterations=max_iterations, tolerance=tolerance,
            )
    seeds = np.asarray(matrices, dtype=float)
    if seeds.ndim != 3 or seeds.shape[1] != seeds.shape[2]:
        raise ShapeError(f"matrices must have shape (T, n, n), got {seeds.shape}")
    if np.any(seeds < 0):
        raise ValidationError("IPF seed matrices must be non-negative")
    t, n, _ = seeds.shape
    rows = np.asarray(row_totals, dtype=float)
    cols = np.asarray(column_totals, dtype=float)
    if rows.shape != (t, n) or cols.shape != (t, n):
        raise ShapeError(f"row/column totals must have shape (T, n) = ({t}, {n})")
    if np.any(rows < 0) or np.any(cols < 0):
        raise ValidationError("marginal totals must be non-negative")

    grand_rows = rows.sum(axis=1)
    grand_cols = cols.sum(axis=1)
    zero_bins = (grand_rows <= 0) | (grand_cols <= 0)
    # Reconcile the two marginals to a common per-bin grand total.
    grands = 0.5 * (grand_rows + grand_cols)
    safe_rows = np.where(grand_rows > 0, grand_rows, 1.0)
    safe_cols = np.where(grand_cols > 0, grand_cols, 1.0)
    rows = rows * (grands / safe_rows)[:, np.newaxis]
    cols = cols * (grands / safe_cols)[:, np.newaxis]

    current = seeds.copy()
    # Give empty-but-needed rows/columns a uniform seed so they can be scaled.
    empty_rows = (current.sum(axis=2) <= 0) & (rows > 0)
    current[empty_rows] = 1.0
    empty_cols = (current.sum(axis=1) <= 0) & (cols > 0)
    current = np.where(empty_cols[:, np.newaxis, :], np.maximum(current, 1.0), current)

    if initial_row_scale is not None or initial_col_scale is not None:
        if initial_row_scale is None or initial_col_scale is None:
            raise ValidationError(
                "initial_row_scale and initial_col_scale must be given together"
            )
        warm_rows = np.asarray(initial_row_scale, dtype=float)
        warm_cols = np.asarray(initial_col_scale, dtype=float)
        if warm_rows.shape != (t, n) or warm_cols.shape != (t, n):
            raise ShapeError(f"initial scales must have shape (T, n) = ({t}, {n})")
        if not (np.all(np.isfinite(warm_rows)) and np.all(np.isfinite(warm_cols))):
            raise ValidationError("initial scales must be finite")
        if np.any(warm_rows <= 0) or np.any(warm_cols <= 0):
            raise ValidationError("initial scales must be strictly positive")
        current = current * warm_rows[:, :, np.newaxis] * warm_cols[:, np.newaxis, :]

    track_scales = scale_state is not None
    if track_scales:
        acc_row = warm_rows.copy() if initial_row_scale is not None else np.ones((t, n))
        acc_col = warm_cols.copy() if initial_col_scale is not None else np.ones((t, n))
    if iteration_counts is not None:
        if iteration_counts.shape != (t,):
            raise ShapeError(f"iteration_counts must have shape (T,) = ({t},)")
        iteration_counts[:] = 0

    active = np.flatnonzero(~zero_bins)
    for iteration in range(1, max_iterations + 1):
        if active.size == 0:
            break
        sub = current[active]
        sub_rows = rows[active]
        sub_cols = cols[active]
        row_sums = sub.sum(axis=2)
        row_scale = np.where(
            row_sums > 0, sub_rows / np.where(row_sums > 0, row_sums, 1.0), 0.0
        )
        sub = sub * row_scale[:, :, np.newaxis]
        col_sums = sub.sum(axis=1)
        col_scale = np.where(
            col_sums > 0, sub_cols / np.where(col_sums > 0, col_sums, 1.0), 0.0
        )
        sub = sub * col_scale[:, np.newaxis, :]
        current[active] = sub
        if track_scales:
            acc_row[active] = acc_row[active] * row_scale
            acc_col[active] = acc_col[active] * col_scale
        if iteration_counts is not None:
            iteration_counts[active] = iteration
        row_error = _max_relative_mismatch_rows(sub.sum(axis=2), sub_rows)
        col_error = _max_relative_mismatch_rows(sub.sum(axis=1), sub_cols)
        # Mirror the scalar loop's ``max(row, col) < tolerance`` check exactly,
        # including its NaN semantics (Python's max returns its first argument
        # unless the second compares greater, and NaN comparisons are False).
        combined = np.where(col_error > row_error, col_error, row_error)
        active = active[~(combined < tolerance)]
    current[zero_bins] = 0.0
    if track_scales:
        scale_state["row"] = acc_row
        scale_state["col"] = acc_col
    return current


def _max_relative_mismatch_rows(actual: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Per-bin version of :func:`_max_relative_mismatch` over ``(T, n)`` rows."""
    scale = np.maximum(target, 1e-12)
    relative = np.where(target > 0, np.abs(actual - target) / scale, 0.0)
    return relative.max(axis=1)


# ---------------------------------------------------------------------------
# namespace-generic batched IPF (repro.backend)
# ---------------------------------------------------------------------------

def _mismatch_rows_xp(be, actual, target):
    """Device counterpart of :func:`_max_relative_mismatch_rows`."""
    xp = be.xp
    scale = xp.clip(target, 1e-12, None)
    zeros = xp.zeros(target.shape, dtype=target.dtype)
    relative = xp.where(target > 0, xp.abs(actual - target) / scale, zeros)
    return be.max(relative, axis=1)


def _ipf_series_xp(be, matrices, row_totals, column_totals, *, max_iterations, tolerance):
    """Batched IPF on a non-NumPy backend.

    Mirrors the NumPy loop above, with one structural difference: instead of
    compacting the set of still-active bins with integer indexing (outside
    the array-API standard), every iteration scales all bins and a boolean
    ``active`` mask freezes the converged ones — their values are carried
    through ``where`` untouched, so the per-bin freezing semantics (including
    the NaN behaviour of the scalar loop's ``max`` comparison) are preserved.
    """
    xp = be.xp
    seeds = be.asarray(matrices)
    rows = be.asarray(row_totals)
    cols = be.asarray(column_totals)
    if len(seeds.shape) != 3 or seeds.shape[1] != seeds.shape[2]:
        raise ShapeError(f"matrices must have shape (T, n, n), got {tuple(seeds.shape)}")
    t, n = int(seeds.shape[0]), int(seeds.shape[1])
    if tuple(rows.shape) != (t, n) or tuple(cols.shape) != (t, n):
        raise ShapeError(f"row/column totals must have shape (T, n) = ({t}, {n})")
    if bool(xp.any(seeds < 0)):
        raise ValidationError("IPF seed matrices must be non-negative")
    if bool(xp.any(rows < 0)) or bool(xp.any(cols < 0)):
        raise ValidationError("marginal totals must be non-negative")

    ones_t = xp.ones((t,), dtype=seeds.dtype)
    ones_tn = xp.ones((t, n), dtype=seeds.dtype)
    zeros_tn = xp.zeros((t, n), dtype=seeds.dtype)

    grand_rows = xp.sum(rows, axis=1)
    grand_cols = xp.sum(cols, axis=1)
    zero_bins = (grand_rows <= 0) | (grand_cols <= 0)
    grands = 0.5 * (grand_rows + grand_cols)
    safe_rows = xp.where(grand_rows > 0, grand_rows, ones_t)
    safe_cols = xp.where(grand_cols > 0, grand_cols, ones_t)
    rows = rows * (grands / safe_rows)[:, None]
    cols = cols * (grands / safe_cols)[:, None]

    current = seeds
    empty_rows = (xp.sum(current, axis=2) <= 0) & (rows > 0)
    current = xp.where(empty_rows[:, :, None], xp.ones(current.shape, dtype=current.dtype), current)
    empty_cols = (xp.sum(current, axis=1) <= 0) & (cols > 0)
    current = xp.where(empty_cols[:, None, :], xp.clip(current, 1.0, None), current)

    active = ~zero_bins
    for _ in range(max_iterations):
        if not bool(xp.any(active)):
            break
        row_sums = xp.sum(current, axis=2)
        row_scale = xp.where(row_sums > 0, rows / xp.where(row_sums > 0, row_sums, ones_tn), zeros_tn)
        updated = current * row_scale[:, :, None]
        col_sums = xp.sum(updated, axis=1)
        col_scale = xp.where(col_sums > 0, cols / xp.where(col_sums > 0, col_sums, ones_tn), zeros_tn)
        updated = updated * col_scale[:, None, :]
        current = xp.where(active[:, None, None], updated, current)
        row_error = _mismatch_rows_xp(be, xp.sum(current, axis=2), rows)
        col_error = _mismatch_rows_xp(be, xp.sum(current, axis=1), cols)
        # Same NaN semantics as the scalar loop's ``max(row, col) < tolerance``.
        combined = xp.where(col_error > row_error, col_error, row_error)
        active = active & ~(combined < tolerance)
    return xp.where(
        zero_bins[:, None, None], xp.zeros(current.shape, dtype=current.dtype), current
    )

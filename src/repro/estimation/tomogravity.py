"""Tomogravity-style least-squares refinement (step 2 of the estimation blueprint).

Given a prior traffic vector ``x_prior`` and the observation system
``B x ≈ z`` (routing rows plus, optionally, ingress/egress rows), the
tomogravity method of Zhang et al. [22] chooses the estimate closest to the
prior, in a weighted least-squares sense, among those consistent with the
observations:

.. math::

    \\min_x \\; \\| W^{-1/2} (x - x_{prior}) \\|_2^2
    \\quad \\text{s.t.} \\quad B x = z

with weights ``W = diag(max(x_prior, ε))`` so that large OD flows absorb more
of the correction.  The solution is the classic projection

.. math::

    x = x_{prior} + W B^T (B W B^T)^+ (z - B x_{prior})

followed by clipping to non-negative values (the subsequent IPF step restores
consistency with the marginals).
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.backend import resolve_backend
from repro.errors import EstimationError, ShapeError, ValidationError

__all__ = ["tomogravity_estimate"]

_EPS = 1e-9


def tomogravity_estimate(
    prior: np.ndarray,
    observation_matrix,
    observations: np.ndarray,
    *,
    weight_floor: float | None = None,
    backend=None,
) -> np.ndarray:
    """Refine ``prior`` toward the observations ``observation_matrix @ x = observations``.

    Parameters
    ----------
    prior:
        Prior OD-flow vector, shape ``(n_od,)`` or a batch ``(T, n_od)``.
    observation_matrix:
        The matrix ``B`` of shape ``(n_obs, n_od)`` (routing matrix, possibly
        augmented with ingress/egress rows).  Either a dense array or a
        ``scipy.sparse`` matrix; the sparse form never materialises the
        ``(T, n_obs, n_od)`` weighted stack, which is what makes the
        refinement viable at large ``n`` (its floating-point summation order
        differs slightly from the dense path's).
    observations:
        Observed values ``z``, shape ``(n_obs,)`` or ``(T, n_obs)`` matching
        the prior batch.
    weight_floor:
        Minimum weight given to any OD pair; defaults to a small fraction of
        the mean prior so zero-prior flows can still receive corrections.
    backend:
        Array namespace for the refinement (:mod:`repro.backend`).  A
        non-NumPy backend runs the dense stacked gram/pinv algebra on that
        backend's device — inputs may be host arrays or device arrays, the
        result is a device array — and rejects ``scipy.sparse`` operators
        (densify first, or stay on the NumPy backend).  The default (and
        explicit ``"numpy"``) is the historical bit-identical path.

    Returns
    -------
    numpy.ndarray
        The refined, non-negative OD-flow vector(s), same shape as ``prior``
        (a backend device array when a non-NumPy backend is selected).
    """
    if backend is not None:
        be = resolve_backend(backend)
        if not be.is_numpy:
            if sparse.issparse(observation_matrix):
                raise ValidationError(
                    f"backend {be.name!r} cannot consume scipy.sparse observation "
                    "matrices; pass the dense matrix or use the numpy backend"
                )
            return _tomogravity_estimate_xp(
                be, prior, observation_matrix, observations, weight_floor
            )
    prior = np.asarray(prior, dtype=float)
    observations = np.asarray(observations, dtype=float)
    is_sparse = sparse.issparse(observation_matrix)
    matrix = observation_matrix.tocsr() if is_sparse else np.asarray(observation_matrix, dtype=float)
    single = prior.ndim == 1
    prior_batch = np.atleast_2d(prior)
    obs_batch = np.atleast_2d(observations)
    if matrix.ndim != 2:
        raise ShapeError("observation_matrix must be two-dimensional")
    if prior_batch.shape[1] != matrix.shape[1]:
        raise ShapeError(
            f"prior length {prior_batch.shape[1]} does not match observation matrix columns {matrix.shape[1]}"
        )
    if obs_batch.shape != (prior_batch.shape[0], matrix.shape[0]):
        raise ShapeError(
            "observations must have shape (T, n_obs) matching the prior batch and matrix rows"
        )

    refine = _refine_chunk_sparse if is_sparse else _refine_chunk
    estimates = np.empty_like(prior_batch)
    for start, stop in _chunks(prior_batch.shape[0], matrix.shape):
        estimates[start:stop] = refine(
            prior_batch[start:stop], matrix, obs_batch[start:stop], weight_floor
        )
    return estimates[0] if single else estimates


# Budget (bytes) for the per-chunk (T_chunk, n_obs, n_od) weighted-matrix
# stack; bounds memory while still batching the gram/pinv linear algebra.
_CHUNK_BYTES = 128 * 1024 * 1024


def _chunks(n_bins: int, matrix_shape: tuple[int, int]):
    """Yield ``(start, stop)`` chunk bounds sized to the memory budget."""
    per_bin = max(int(matrix_shape[0]) * int(matrix_shape[1]) * 8, 1)
    size = max(int(_CHUNK_BYTES // per_bin), 1)
    for start in range(0, n_bins, size):
        yield start, min(start + size, n_bins)


def _refine_chunk(
    priors: np.ndarray, matrix: np.ndarray, observed: np.ndarray, weight_floor: float | None
) -> np.ndarray:
    """Refine a ``(T, n_od)`` chunk of priors with stacked linear algebra.

    The per-bin weights make every bin's normal matrix different, so the
    gram construction and pseudo-inverse are batched over the chunk; each
    slice performs exactly the operations of the former per-bin loop and the
    result is bit-identical to it.
    """
    floors = _weight_floors(priors, weight_floor)
    weights = np.maximum(priors, floors[:, np.newaxis])
    weighted = matrix[np.newaxis, :, :] * weights[:, np.newaxis, :]  # B W per bin
    gram = weighted @ matrix.T  # B W B^T, stacked
    try:
        gram_pinv = np.linalg.pinv(gram, rcond=1e-10)
    except np.linalg.LinAlgError as exc:  # pragma: no cover - defensive
        raise EstimationError("failed to invert the weighted normal matrix") from exc
    estimates = np.empty_like(priors)
    for t in range(priors.shape[0]):
        residual = observed[t] - matrix @ priors[t]
        correction = weighted[t].T @ gram_pinv[t] @ residual
        estimates[t] = np.clip(priors[t] + correction, 0.0, None)
    return estimates


# ---------------------------------------------------------------------------
# namespace-generic refinement (repro.backend)
# ---------------------------------------------------------------------------

def _tomogravity_estimate_xp(be, prior, matrix, observations, weight_floor):
    """Dense tomogravity refinement on a non-NumPy backend.

    Same stacked algebra as :func:`_refine_chunk`, expressed through the
    array-API standard plus Backend shims; the per-bin correction loop is
    replaced by one batched ``matmul`` chain.  Chunking keeps the
    ``(T_chunk, n_obs, n_od)`` weighted stack inside the memory budget.
    """
    xp = be.xp
    prior = be.asarray(prior)
    matrix = be.asarray(matrix)
    observations = be.asarray(observations)
    single = len(prior.shape) == 1
    prior_batch = prior[None, :] if single else prior
    obs_batch = observations[None, :] if len(observations.shape) == 1 else observations
    if len(matrix.shape) != 2:
        raise ShapeError("observation_matrix must be two-dimensional")
    if int(prior_batch.shape[1]) != int(matrix.shape[1]):
        raise ShapeError(
            f"prior length {int(prior_batch.shape[1])} does not match observation "
            f"matrix columns {int(matrix.shape[1])}"
        )
    if tuple(obs_batch.shape) != (int(prior_batch.shape[0]), int(matrix.shape[0])):
        raise ShapeError(
            "observations must have shape (T, n_obs) matching the prior batch and matrix rows"
        )
    matrix_t = be.matrix_transpose(matrix)
    chunks = [
        _refine_chunk_xp(
            be, prior_batch[start:stop], matrix, matrix_t, obs_batch[start:stop], weight_floor
        )
        for start, stop in _chunks(int(prior_batch.shape[0]), (int(matrix.shape[0]), int(matrix.shape[1])))
    ]
    estimates = chunks[0] if len(chunks) == 1 else xp.concat(chunks, axis=0)
    return estimates[0, :] if single else estimates


def _refine_chunk_xp(be, priors, matrix, matrix_t, observed, weight_floor):
    xp = be.xp
    if weight_floor is not None:
        floors = xp.full((int(priors.shape[0]),), float(weight_floor), dtype=priors.dtype)
    else:
        floors = xp.clip(xp.mean(priors, axis=1) * 1e-3, _EPS, None)
    weights = xp.maximum(priors, floors[:, None])
    weighted = matrix[None, :, :] * weights[:, None, :]  # B W per bin
    gram = xp.matmul(weighted, matrix_t)  # B W B^T, stacked
    gram_pinv = be.pinv(gram, rtol=1e-10)
    residual = observed - xp.matmul(priors, matrix_t)
    correction = xp.matmul(
        be.matrix_transpose(weighted), xp.matmul(gram_pinv, residual[:, :, None])
    )[:, :, 0]
    return xp.clip(priors + correction, 0.0, None)


def _weight_floors(priors: np.ndarray, weight_floor: float | None) -> np.ndarray:
    """Per-bin weight floors (shared by the dense and sparse refinements)."""
    if weight_floor is not None:
        return np.full(priors.shape[0], float(weight_floor))
    means = priors.mean(axis=1) if priors.shape[1] else np.zeros(priors.shape[0])
    return np.maximum(means * 1e-3, _EPS)


def _refine_chunk_sparse(
    priors: np.ndarray, matrix, observed: np.ndarray, weight_floor: float | None
) -> np.ndarray:
    """Refine a ``(T, n_od)`` chunk against a ``scipy.sparse`` operator.

    The weighted operator ``B W`` is formed per bin by scaling the CSR data
    in place (columns of ``B`` scaled by that bin's weights), so only the
    ``O(nnz)`` sparse structure and the small ``(n_obs, n_obs)`` gram matrix
    ever exist — the dense path's ``(T, n_obs, n_od)`` stack never does.
    """
    floors = _weight_floors(priors, weight_floor)
    weights = np.maximum(priors, floors[:, np.newaxis])
    weighted = matrix.copy()
    estimates = np.empty_like(priors)
    for t in range(priors.shape[0]):
        weighted.data = matrix.data * weights[t][matrix.indices]  # B W for this bin
        gram = (weighted @ matrix.T).toarray()
        try:
            gram_pinv = np.linalg.pinv(gram, rcond=1e-10)
        except np.linalg.LinAlgError as exc:  # pragma: no cover - defensive
            raise EstimationError("failed to invert the weighted normal matrix") from exc
        residual = observed[t] - matrix @ priors[t]
        correction = weighted.T @ (gram_pinv @ residual)
        estimates[t] = np.clip(priors[t] + correction, 0.0, None)
    return estimates

"""Tomogravity-style least-squares refinement (step 2 of the estimation blueprint).

Given a prior traffic vector ``x_prior`` and the observation system
``B x ≈ z`` (routing rows plus, optionally, ingress/egress rows), the
tomogravity method of Zhang et al. [22] chooses the estimate closest to the
prior, in a weighted least-squares sense, among those consistent with the
observations:

.. math::

    \\min_x \\; \\| W^{-1/2} (x - x_{prior}) \\|_2^2
    \\quad \\text{s.t.} \\quad B x = z

with weights ``W = diag(max(x_prior, ε))`` so that large OD flows absorb more
of the correction.  The solution is the classic projection

.. math::

    x = x_{prior} + W B^T (B W B^T)^+ (z - B x_{prior})

followed by clipping to non-negative values (the subsequent IPF step restores
consistency with the marginals).
"""

from __future__ import annotations

import numpy as np

from repro.errors import EstimationError, ShapeError

__all__ = ["tomogravity_estimate"]

_EPS = 1e-9


def tomogravity_estimate(
    prior: np.ndarray,
    observation_matrix: np.ndarray,
    observations: np.ndarray,
    *,
    weight_floor: float | None = None,
) -> np.ndarray:
    """Refine ``prior`` toward the observations ``observation_matrix @ x = observations``.

    Parameters
    ----------
    prior:
        Prior OD-flow vector, shape ``(n_od,)`` or a batch ``(T, n_od)``.
    observation_matrix:
        The matrix ``B`` of shape ``(n_obs, n_od)`` (routing matrix, possibly
        augmented with ingress/egress rows).
    observations:
        Observed values ``z``, shape ``(n_obs,)`` or ``(T, n_obs)`` matching
        the prior batch.
    weight_floor:
        Minimum weight given to any OD pair; defaults to a small fraction of
        the mean prior so zero-prior flows can still receive corrections.

    Returns
    -------
    numpy.ndarray
        The refined, non-negative OD-flow vector(s), same shape as ``prior``.
    """
    prior = np.asarray(prior, dtype=float)
    observations = np.asarray(observations, dtype=float)
    matrix = np.asarray(observation_matrix, dtype=float)
    single = prior.ndim == 1
    prior_batch = np.atleast_2d(prior)
    obs_batch = np.atleast_2d(observations)
    if matrix.ndim != 2:
        raise ShapeError("observation_matrix must be two-dimensional")
    if prior_batch.shape[1] != matrix.shape[1]:
        raise ShapeError(
            f"prior length {prior_batch.shape[1]} does not match observation matrix columns {matrix.shape[1]}"
        )
    if obs_batch.shape != (prior_batch.shape[0], matrix.shape[0]):
        raise ShapeError(
            "observations must have shape (T, n_obs) matching the prior batch and matrix rows"
        )

    estimates = np.empty_like(prior_batch)
    for t in range(prior_batch.shape[0]):
        estimates[t] = _refine_single(prior_batch[t], matrix, obs_batch[t], weight_floor)
    return estimates[0] if single else estimates


def _refine_single(
    prior: np.ndarray, matrix: np.ndarray, observed: np.ndarray, weight_floor: float | None
) -> np.ndarray:
    floor = weight_floor
    if floor is None:
        mean_prior = float(prior.mean()) if prior.size else 0.0
        floor = max(mean_prior * 1e-3, _EPS)
    weights = np.maximum(prior, floor)
    residual = observed - matrix @ prior
    weighted = matrix * weights  # B W, since W is diagonal
    gram = weighted @ matrix.T  # B W B^T
    try:
        correction = weighted.T @ np.linalg.pinv(gram, rcond=1e-10) @ residual
    except np.linalg.LinAlgError as exc:  # pragma: no cover - defensive
        raise EstimationError("failed to invert the weighted normal matrix") from exc
    return np.clip(prior + correction, 0.0, None)

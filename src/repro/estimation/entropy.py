"""Entropy-regularised refinement (alternative step 2).

Zhang, Roughan, Lund and Donoho [23] — the information-theoretic approach the
paper discusses in related work — choose, among traffic matrices consistent
with the link constraints, the one minimising the Kullback-Leibler divergence
from the prior:

.. math::

    \\min_x \\sum_s x_s \\log\\frac{x_s}{p_s} - x_s + p_s
    \\quad \\text{s.t.} \\quad B x \\approx z, \\; x \\ge 0.

We solve the penalised form (quadratic penalty on the constraint residual)
with ``scipy.optimize.minimize`` (L-BFGS-B), which is robust, dependency-free
and entirely adequate at PoP scale (a few hundred OD pairs).  This estimator
is not needed to reproduce any figure — the paper's step 2 is tomogravity —
but it is the natural "generalised" alternative and is exercised by the
ablation benchmarks.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from repro.backend import resolve_backend
from repro.errors import ShapeError

__all__ = ["entropy_estimate"]

_EPS = 1e-9


def entropy_estimate(
    prior: np.ndarray,
    observation_matrix: np.ndarray,
    observations: np.ndarray,
    *,
    penalty: float = 1e3,
    max_iterations: int = 200,
    backend=None,
    warm_start: bool = False,
    x0: np.ndarray | None = None,
) -> np.ndarray:
    """Refine ``prior`` toward the observations with an entropy objective.

    Parameters
    ----------
    prior:
        Prior OD-flow vector, shape ``(n_od,)``, or a batch ``(T, n_od)``;
        must be non-negative.
    observation_matrix, observations:
        The system ``B x ≈ z``; observations are ``(n_obs,)`` or ``(T, n_obs)``
        matching the prior batch.
    penalty:
        Weight of the quadratic penalty on the normalised constraint residual.
    max_iterations:
        Iteration cap handed to the optimiser.
    backend:
        Array namespace (:mod:`repro.backend`).  The L-BFGS-B optimiser is
        ``scipy`` and therefore host-only, so a non-NumPy backend round-trips:
        device inputs are brought to the host, the optimisation runs there,
        and the result is shipped back as a device array (the backend's
        ``supports_scipy`` capability flag documents this limitation).
    warm_start:
        Batch mode only: seed each bin's optimiser at the previous bin's
        solution instead of the bin's own prior.  The objective is strictly
        convex, so both starts converge to the same minimiser up to the
        optimiser's own stopping tolerance; warm starts just get there in
        fewer gradient evaluations when consecutive bins are similar.  The
        default (``False``) is the historical bit-identical path.
    x0:
        Optional explicit starting point (``(n_od,)``): the seed for the
        single-bin solve, or for the *first* bin in batch mode (later bins
        chain on ``warm_start``).  Ignored when ``None``.
    """
    if backend is not None:
        be = resolve_backend(backend)
        if not be.is_numpy and not be.supports_scipy:
            estimates = entropy_estimate(
                be.to_numpy(prior),
                be.to_numpy(observation_matrix),
                be.to_numpy(observations),
                penalty=penalty,
                max_iterations=max_iterations,
                warm_start=warm_start,
                x0=None if x0 is None else be.to_numpy(x0),
            )
            return be.asarray(estimates)
    prior = np.asarray(prior, dtype=float)
    matrix = np.asarray(observation_matrix, dtype=float)
    observed = np.asarray(observations, dtype=float)
    if matrix.ndim != 2:
        raise ShapeError("entropy_estimate expects a 2-D observation matrix")
    if prior.ndim == 2:
        if observed.shape != (prior.shape[0], matrix.shape[0]):
            raise ShapeError(
                "observations must have shape (T, n_obs) matching the prior batch and matrix rows"
            )
        estimates = np.empty_like(prior)
        seed = x0
        for t in range(prior.shape[0]):
            estimates[t] = entropy_estimate(
                prior[t], matrix, observed[t], penalty=penalty,
                max_iterations=max_iterations, x0=seed,
            )
            seed = estimates[t] if warm_start else None
        return estimates
    if prior.ndim != 1 or observed.ndim != 1:
        raise ShapeError("entropy_estimate expects 1-D prior/observations and a 2-D matrix")
    if matrix.shape != (observed.shape[0], prior.shape[0]):
        raise ShapeError(
            f"observation matrix shape {matrix.shape} does not match prior ({prior.shape[0]}) "
            f"and observations ({observed.shape[0]})"
        )
    safe_prior = np.maximum(prior, _EPS)
    scale = max(float(np.abs(observed).max()), _EPS)

    def objective(x: np.ndarray) -> tuple[float, np.ndarray]:
        x = np.maximum(x, _EPS)
        kl = float(np.sum(x * np.log(x / safe_prior) - x + safe_prior))
        residual = (matrix @ x - observed) / scale
        value = kl + penalty * float(residual @ residual)
        gradient = np.log(x / safe_prior) + (2.0 * penalty / scale) * (matrix.T @ residual)
        return value, gradient

    if x0 is not None:
        start = np.maximum(np.asarray(x0, dtype=float), _EPS)
        if start.shape != prior.shape:
            raise ShapeError(f"x0 must have shape {prior.shape}, got {start.shape}")
    else:
        start = safe_prior
    result = optimize.minimize(
        objective,
        x0=start,
        jac=True,
        method="L-BFGS-B",
        bounds=[(0.0, None)] * prior.shape[0],
        options={"maxiter": max_iterations},
    )
    return np.clip(result.x, 0.0, None)

"""Traffic-matrix estimation substrate (paper Section 6).

The estimation blueprint the paper follows has three steps:

1. build a prior traffic matrix (:mod:`repro.core.priors`),
2. refine it against the SNMP link counts with a least-squares step
   (the *tomogravity* method of Zhang et al., reimplemented in
   :mod:`repro.estimation.tomogravity`),
3. run iterative proportional fitting so the estimate matches the observed
   ingress/egress totals (:mod:`repro.estimation.ipf`).

:mod:`repro.estimation.linear_system` simulates the link-count measurements
(``Y = R x``) from a ground-truth traffic matrix and a routing matrix, and
:mod:`repro.estimation.pipeline` wires everything into the end-to-end
estimator used by the Figure 11-13 experiments.  An entropy-regularised
refinement (after the information-theoretic approach the paper cites) is
available in :mod:`repro.estimation.entropy` as an alternative step 2.
"""

from repro.estimation.linear_system import LinkLoadSystem, simulate_link_loads
from repro.estimation.tomogravity import tomogravity_estimate
from repro.estimation.ipf import (
    iterative_proportional_fitting,
    iterative_proportional_fitting_series,
)
from repro.estimation.entropy import entropy_estimate
from repro.estimation.pipeline import EstimationResult, TMEstimator

__all__ = [
    "LinkLoadSystem",
    "simulate_link_loads",
    "tomogravity_estimate",
    "iterative_proportional_fitting",
    "iterative_proportional_fitting_series",
    "entropy_estimate",
    "EstimationResult",
    "TMEstimator",
]

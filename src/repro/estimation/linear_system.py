"""Simulated link-count measurements: the ``Y = R x`` system.

In an operational network the link counts ``Y`` come from SNMP byte counters
and the routing matrix ``R`` from the IGP configuration.  Here both are
derived from our topology substrate, and the "measurements" are produced by
pushing a ground-truth traffic matrix through the routing matrix — optionally
with multiplicative measurement noise, since SNMP counters are imperfect.

The ingress and egress node counts (``X_{i*}`` and ``X_{*j}``) are carried
alongside the link counts because every prior in Section 6 consumes them and
because the IPF step enforces them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.traffic_matrix import TrafficMatrixSeries
from repro.errors import ShapeError, ValidationError
from repro.streaming import as_chunk_stream
from repro.topology.routing import RoutingMatrix, build_routing_matrix
from repro.topology.topology import Topology

__all__ = ["LinkLoadSystem", "simulate_link_loads", "simulate_link_loads_streaming"]


@dataclass(frozen=True)
class LinkLoadSystem:
    """Observed quantities available to a traffic-matrix estimator.

    Attributes
    ----------
    routing:
        The routing matrix ``R`` (known to the operator from IGP configuration).
    link_loads:
        Link byte counts, shape ``(T, n_links)``.
    ingress, egress:
        Node ingress/egress byte counts, shape ``(T, n)``.
    """

    routing: RoutingMatrix
    link_loads: np.ndarray
    ingress: np.ndarray
    egress: np.ndarray

    def __post_init__(self):
        t = self.link_loads.shape[0]
        if self.link_loads.ndim != 2 or self.link_loads.shape[1] != self.routing.n_links:
            raise ShapeError("link_loads must have shape (T, n_links)")
        n = self.routing.n_nodes
        for name, array in (("ingress", self.ingress), ("egress", self.egress)):
            if array.shape != (t, n):
                raise ShapeError(f"{name} must have shape (T, n) = ({t}, {n}), got {array.shape}")

    @property
    def n_timesteps(self) -> int:
        return self.link_loads.shape[0]

    @property
    def n_nodes(self) -> int:
        return self.routing.n_nodes

    def augmented_system(self, *, as_sparse: bool = False):
        """The stacked observation matrix and observations.

        Returns ``(B, Z)`` where ``B`` stacks the routing matrix on top of the
        ingress/egress summing operators (shape ``(n_links + 2n, n^2)``) and
        ``Z`` stacks the corresponding observations (shape ``(T, n_links + 2n)``).
        Using the augmented system in the least-squares step is what lets the
        prior be corrected toward *all* available measurements.

        With ``as_sparse=True`` the stacked operator is assembled as a
        ``scipy.sparse`` CSR matrix straight from the routing matrix's sparse
        form and the one-per-column marginal operators — the routing matrix
        is never densified, which is what makes the augmented least squares
        viable at large ``n`` (the dense operator grows as ``n^3`` while its
        occupancy stays ``O(n^2 path_length)``).

        The stacked operator is cached on the routing matrix
        (:meth:`repro.topology.routing.RoutingMatrix.augmented_operator`), so
        every system over the same (memoised) routing shares one copy; only
        the observation stack ``Z`` is assembled per call.
        """
        b = self.routing.augmented_operator(as_sparse=as_sparse)
        z = np.concatenate([self.link_loads, self.ingress, self.egress], axis=1)
        return b, z


def simulate_link_loads(
    topology: Topology,
    series: TrafficMatrixSeries,
    *,
    ecmp: bool = True,
    noise_std: float = 0.0,
    seed: int = 0,
) -> LinkLoadSystem:
    """Produce the measurements an operator would see for a ground-truth series.

    Parameters
    ----------
    topology:
        The network carrying the traffic; its node order must match the series.
    series:
        Ground-truth traffic matrices.
    ecmp:
        Whether shortest-path ties are split (passed to the routing build).
    noise_std:
        Relative standard deviation of multiplicative Gaussian measurement
        noise applied to link, ingress and egress counters (0 disables noise).
    seed:
        Seed for the measurement-noise generator.
    """
    if topology.nodes != series.nodes:
        raise ValidationError(
            "topology and series must agree on node names and order; "
            f"got {topology.nodes[:3]}... vs {series.nodes[:3]}..."
        )
    if noise_std < 0:
        raise ValidationError("noise_std must be non-negative")
    routing = build_routing_matrix(topology, ecmp=ecmp)
    vectors = series.to_vectors()
    link_loads = vectors @ routing.matrix.T
    ingress = series.ingress.copy()
    egress = series.egress.copy()
    link_loads, ingress, egress = _apply_measurement_noise(
        link_loads, ingress, egress, noise_std, seed
    )
    return LinkLoadSystem(routing=routing, link_loads=link_loads, ingress=ingress, egress=egress)


def _apply_measurement_noise(
    link_loads: np.ndarray,
    ingress: np.ndarray,
    egress: np.ndarray,
    noise_std: float,
    seed: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Multiplicative SNMP noise on the three counter arrays (shared draw order)."""
    if noise_std > 0:
        rng = np.random.default_rng(seed)
        link_loads = link_loads * rng.normal(1.0, noise_std, size=link_loads.shape)
        ingress = ingress * rng.normal(1.0, noise_std, size=ingress.shape)
        egress = egress * rng.normal(1.0, noise_std, size=egress.shape)
        link_loads = np.clip(link_loads, 0.0, None)
        ingress = np.clip(ingress, 0.0, None)
        egress = np.clip(egress, 0.0, None)
    return link_loads, ingress, egress


def simulate_link_loads_streaming(
    topology: Topology,
    source,
    *,
    ecmp: bool = True,
    noise_std: float = 0.0,
    seed: int = 0,
) -> LinkLoadSystem:
    """Measurements for a chunked ground-truth stream, in bounded memory.

    One pass over the ``(T_chunk, n, n)`` blocks assembles the link, ingress
    and egress counter series — all ``O(T (n_links + n))``, never the
    ``O(T n^2)`` traffic — then applies the same measurement-noise draws as
    :func:`simulate_link_loads`.  For the same traffic and seed the resulting
    system equals the materialised one (each bin's counters depend only on
    that bin's matrix).
    """
    stream = as_chunk_stream(source)
    if topology.nodes != stream.nodes:
        raise ValidationError(
            "topology and series must agree on node names and order; "
            f"got {topology.nodes[:3]}... vs {stream.nodes[:3]}..."
        )
    if noise_std < 0:
        raise ValidationError("noise_std must be non-negative")
    routing = build_routing_matrix(topology, ecmp=ecmp)
    t, n = stream.n_bins, stream.n_nodes
    link_loads = np.empty((t, routing.n_links))
    ingress = np.empty((t, n))
    egress = np.empty((t, n))
    dense_routing_t = routing.matrix.T
    for t0, block in stream.chunks():
        stop = t0 + block.shape[0]
        link_loads[t0:stop] = block.reshape(block.shape[0], n * n) @ dense_routing_t
        ingress[t0:stop] = block.sum(axis=2)
        egress[t0:stop] = block.sum(axis=1)
    link_loads, ingress, egress = _apply_measurement_noise(
        link_loads, ingress, egress, noise_std, seed
    )
    return LinkLoadSystem(routing=routing, link_loads=link_loads, ingress=ingress, egress=egress)

"""End-to-end traffic-matrix estimation pipeline.

:class:`TMEstimator` wires together the three steps of the blueprint in
Section 6 — prior, least-squares refinement against the link counts, and
iterative proportional fitting against the marginals — and evaluates the
result against ground truth.  The Figure 11-13 experiments are thin wrappers
around this class that only differ in which prior they feed it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.metrics import percent_improvement, rel_l2_temporal_error
from repro.core.traffic_matrix import TrafficMatrixSeries
from repro.errors import ValidationError
from repro.estimation.ipf import iterative_proportional_fitting_series
from repro.estimation.linear_system import LinkLoadSystem
from repro.estimation.tomogravity import tomogravity_estimate
from repro.estimation.entropy import entropy_estimate
from repro.registry import register_estimator

__all__ = [
    "EstimationResult",
    "TMEstimator",
    "make_tomogravity_estimator",
    "make_entropy_estimator",
]


@dataclass
class EstimationResult:
    """Outcome of running the estimation pipeline on one measurement series.

    Attributes
    ----------
    estimate:
        The estimated traffic-matrix series.
    prior:
        The prior series the pipeline started from.
    errors:
        Relative L2 temporal error of the estimate per bin (only when ground
        truth was supplied, otherwise ``None``).
    prior_errors:
        Error of the raw prior per bin, same caveat.
    """

    estimate: TrafficMatrixSeries
    prior: TrafficMatrixSeries
    errors: np.ndarray | None = None
    prior_errors: np.ndarray | None = None

    @property
    def mean_error(self) -> float:
        """Mean per-bin error of the refined estimate."""
        if self.errors is None:
            raise ValidationError("ground truth was not supplied; errors are unavailable")
        return float(np.mean(self.errors))

    def improvement_over(self, other: "EstimationResult") -> np.ndarray:
        """Per-bin percentage improvement of this estimate over ``other``."""
        if self.errors is None or other.errors is None:
            raise ValidationError("both results need ground-truth errors to compare")
        return percent_improvement(other.errors, self.errors)


class TMEstimator:
    """Three-step traffic-matrix estimator (prior → least squares → IPF).

    Parameters
    ----------
    method:
        Refinement method for step 2: ``"tomogravity"`` (default, weighted
        least squares) or ``"entropy"`` (KL-divergence regularised).
    use_marginals_in_refinement:
        Whether the ingress/egress rows are appended to the routing matrix in
        the least-squares step (the augmented system).  The paper's ingress
        and egress counts are always available, so this defaults to true.
    ipf_iterations:
        Iteration cap for the proportional-fitting step.
    """

    def __init__(
        self,
        *,
        method: str = "tomogravity",
        use_marginals_in_refinement: bool = True,
        ipf_iterations: int = 50,
    ):
        if method not in ("tomogravity", "entropy"):
            raise ValidationError(f"unknown refinement method {method!r}")
        self._method = method
        self._augment = bool(use_marginals_in_refinement)
        self._ipf_iterations = int(ipf_iterations)

    def estimate(
        self,
        system: LinkLoadSystem,
        prior: TrafficMatrixSeries,
        *,
        ground_truth: TrafficMatrixSeries | None = None,
    ) -> EstimationResult:
        """Run the pipeline over every bin of the measurement series.

        Parameters
        ----------
        system:
            The observed link loads, marginals and routing matrix.
        prior:
            Prior traffic-matrix series (one matrix per measurement bin).
        ground_truth:
            When provided, per-bin errors of both the prior and the estimate
            are computed and stored on the result.
        """
        if prior.n_timesteps != system.n_timesteps:
            raise ValidationError(
                f"prior has {prior.n_timesteps} bins but the measurements have {system.n_timesteps}"
            )
        if prior.n_nodes != system.n_nodes:
            raise ValidationError(
                f"prior has {prior.n_nodes} nodes but the routing matrix has {system.n_nodes}"
            )
        n = system.n_nodes
        if self._augment:
            matrix, observations = system.augmented_system()
        else:
            matrix, observations = system.routing.matrix, system.link_loads

        prior_vectors = prior.to_vectors()
        if self._method == "tomogravity":
            refined = tomogravity_estimate(prior_vectors, matrix, observations)
        else:
            refined = entropy_estimate(prior_vectors, matrix, observations)
        estimates = iterative_proportional_fitting_series(
            refined.reshape(system.n_timesteps, n, n),
            system.ingress,
            system.egress,
            max_iterations=self._ipf_iterations,
        )
        estimate_series = TrafficMatrixSeries(
            estimates, prior.nodes, bin_seconds=prior.bin_seconds
        )
        errors = prior_errors = None
        if ground_truth is not None:
            errors = rel_l2_temporal_error(ground_truth, estimate_series)
            prior_errors = rel_l2_temporal_error(ground_truth, prior)
        return EstimationResult(
            estimate=estimate_series, prior=prior, errors=errors, prior_errors=prior_errors
        )

    def compare_priors(
        self,
        system: LinkLoadSystem,
        priors: dict[str, TrafficMatrixSeries],
        ground_truth: TrafficMatrixSeries,
    ) -> dict[str, EstimationResult]:
        """Run the same pipeline once per named prior and return all results."""
        return {
            name: self.estimate(system, prior, ground_truth=ground_truth)
            for name, prior in priors.items()
        }


@register_estimator(
    "tomogravity",
    description="Weighted least-squares refinement against link counts, then IPF",
)
def make_tomogravity_estimator(**kwargs) -> TMEstimator:
    """Factory for the default tomogravity-refinement estimator."""
    return TMEstimator(method="tomogravity", **kwargs)


@register_estimator(
    "entropy",
    description="KL-divergence regularised refinement against link counts, then IPF",
)
def make_entropy_estimator(**kwargs) -> TMEstimator:
    """Factory for the entropy-regularised estimator."""
    return TMEstimator(method="entropy", **kwargs)

"""End-to-end traffic-matrix estimation pipeline.

:class:`TMEstimator` wires together the three steps of the blueprint in
Section 6 — prior, least-squares refinement against the link counts, and
iterative proportional fitting against the marginals — and evaluates the
result against ground truth.  The Figure 11-13 experiments are thin wrappers
around this class that only differ in which prior they feed it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backend import resolve_backend
from repro.core.metrics import percent_improvement, rel_l2_temporal_error
from repro.core.traffic_matrix import TrafficMatrixSeries
from repro.errors import ValidationError
from repro.estimation.fastpath import FactorizationCache, IPFSolveCache
from repro.estimation.ipf import iterative_proportional_fitting_series
from repro.estimation.linear_system import LinkLoadSystem
from repro.estimation.tomogravity import tomogravity_estimate
from repro.obs import get_metrics, get_tracer
from repro.estimation.entropy import entropy_estimate
from repro.registry import register_estimator

__all__ = [
    "EstimationResult",
    "TMEstimator",
    "SPARSE_SYSTEM_MIN_NODES",
    "make_tomogravity_estimator",
    "make_entropy_estimator",
]

# Network size at which the auto mode switches the tomogravity refinement to
# the sparse stacked operator.  The paper-scale topologies (22/23 PoPs) stay
# on the historical dense path, whose numbers are locked by the bit-identity
# hashes; beyond this the dense (n_links + 2n) x n^2 operator and its
# weighted stacks dominate memory and the sparse path wins.
SPARSE_SYSTEM_MIN_NODES = 48


@dataclass
class EstimationResult:
    """Outcome of running the estimation pipeline on one measurement series.

    Attributes
    ----------
    estimate:
        The estimated traffic-matrix series.  ``None`` for streamed runs
        that chose not to materialise the estimate (the per-bin errors are
        the deliverable there).
    prior:
        The prior series the pipeline started from (``None`` for streamed
        runs, which never materialise the prior).
    errors:
        Relative L2 temporal error of the estimate per bin (only when ground
        truth was supplied, otherwise ``None``).
    prior_errors:
        Error of the raw prior per bin, same caveat.
    """

    estimate: TrafficMatrixSeries | None
    prior: TrafficMatrixSeries | None
    errors: np.ndarray | None = None
    prior_errors: np.ndarray | None = None

    @property
    def mean_error(self) -> float:
        """Mean per-bin error of the refined estimate."""
        if self.errors is None:
            raise ValidationError("ground truth was not supplied; errors are unavailable")
        return float(np.mean(self.errors))

    def improvement_over(self, other: "EstimationResult") -> np.ndarray:
        """Per-bin percentage improvement of this estimate over ``other``."""
        if self.errors is None or other.errors is None:
            raise ValidationError("both results need ground-truth errors to compare")
        return percent_improvement(other.errors, self.errors)


class TMEstimator:
    """Three-step traffic-matrix estimator (prior → least squares → IPF).

    Parameters
    ----------
    method:
        Refinement method for step 2: ``"tomogravity"`` (default, weighted
        least squares) or ``"entropy"`` (KL-divergence regularised).
    use_marginals_in_refinement:
        Whether the ingress/egress rows are appended to the routing matrix in
        the least-squares step (the augmented system).  The paper's ingress
        and egress counts are always available, so this defaults to true.
    ipf_iterations:
        Iteration cap for the proportional-fitting step.
    use_sparse_system:
        Whether the least-squares step runs against the ``scipy.sparse``
        stacked operator instead of densifying the routing matrix.  ``None``
        (the default) chooses automatically: sparse for tomogravity on
        networks of :data:`SPARSE_SYSTEM_MIN_NODES` or more PoPs, dense
        otherwise (the historical, bit-stable path for the paper-scale
        topologies).  The entropy method always densifies, and so does any
        non-NumPy backend (``scipy.sparse`` operators are host-only).
    backend:
        Compute backend for the refinement and IPF stages
        (:mod:`repro.backend`): a name, a ``Backend`` instance, or ``None``
        to follow the ambient selection (``use_backend`` context /
        ``REPRO_BACKEND`` environment variable, default ``numpy``).  On a
        non-NumPy backend the observation system is shipped to the device
        once per run, priors once per run (or once per chunk when
        streaming), and only the final estimates return to the host.
    fast_path:
        Enable the incremental fast path (:mod:`repro.estimation.fastpath`):
        the tomogravity correction operator is cached per (operator, prior
        version) and reused bit-identically for bins whose weights repeat,
        reused within ≤1e-10 for bins that are an exact rescaling of the
        cached base, and recomputed exactly otherwise; the IPF stage gains
        the matching equal/scaled solve memo.  Off by default so batch
        reproduction (fig11–13) stays byte-identical to the historical
        path.  NumPy dense systems only — sparse tomogravity and non-NumPy
        backends silently keep the existing kernels.
    warm_start:
        Seed each bin's iterative solve (IPF scale state, entropy L-BFGS-B
        start) from the previous bin's solution.  ``None`` (default)
        follows ``fast_path``.  Warm-started solves agree with cold ones
        up to the solver's own stopping tolerance rather than bitwise, so
        batch reproduction keeps this off.
    """

    def __init__(
        self,
        *,
        method: str = "tomogravity",
        use_marginals_in_refinement: bool = True,
        ipf_iterations: int = 50,
        use_sparse_system: bool | None = None,
        backend=None,
        fast_path: bool = False,
        warm_start: bool | None = None,
    ):
        if method not in ("tomogravity", "entropy"):
            raise ValidationError(f"unknown refinement method {method!r}")
        self._method = method
        self._augment = bool(use_marginals_in_refinement)
        self._ipf_iterations = int(ipf_iterations)
        self._use_sparse = use_sparse_system
        self._backend = backend
        self._fast_path = bool(fast_path)
        self._warm_start = self._fast_path if warm_start is None else bool(warm_start)
        self._factor_cache = FactorizationCache() if self._fast_path else None
        self._ipf_cache = IPFSolveCache() if self._fast_path else None
        self._entropy_seed: np.ndarray | None = None

    @property
    def fast_path_enabled(self) -> bool:
        return self._fast_path

    @property
    def warm_start_enabled(self) -> bool:
        return self._warm_start

    def invalidate_fast_path(self) -> None:
        """Drop every cached factorisation/solution (e.g. after a prior swap)."""
        if self._factor_cache is not None:
            self._factor_cache.invalidate()
        if self._ipf_cache is not None:
            self._ipf_cache.invalidate()
        self._entropy_seed = None

    def fast_path_stats(self) -> dict | None:
        """Cumulative cache statistics, or ``None`` when the fast path is off."""
        if not self._fast_path:
            return None
        return {
            "enabled": True,
            "warm_start": self._warm_start,
            "factor_cache": self._factor_cache.stats(),
            "ipf_cache": self._ipf_cache.stats(),
        }

    def _publish_fast_metrics(self) -> None:
        """Mirror cache totals into the ambient metrics registry."""
        metrics = get_metrics()
        factor = self._factor_cache
        metrics.counter("repro_estimate_factor_cache_hits", mode="equal").set_total(
            float(factor.hits_equal)
        )
        metrics.counter("repro_estimate_factor_cache_hits", mode="scaled").set_total(
            float(factor.hits_scaled)
        )
        metrics.counter("repro_estimate_factor_cache_misses").set_total(float(factor.misses))
        ipf = self._ipf_cache
        metrics.counter("repro_estimate_ipf_cache_hits", mode="equal").set_total(
            float(ipf.hits_equal)
        )
        metrics.counter("repro_estimate_ipf_cache_hits", mode="scaled").set_total(
            float(ipf.hits_scaled)
        )
        metrics.counter("repro_estimate_ipf_cache_misses").set_total(float(ipf.solved))

    def _fast_block(
        self,
        prior_vectors: np.ndarray,
        matrix,
        observed_block: np.ndarray,
        ingress_block: np.ndarray,
        egress_block: np.ndarray,
        n: int,
        *,
        as_sparse: bool,
        prior_version,
    ) -> np.ndarray:
        """One chunk of bins through the cached fast path (NumPy only).

        Matches the slow path bit-for-bit for equal-weight and recomputed
        bins, and to ≤1e-10 for scaled-tier and warm-started bins.
        """
        if self._method == "tomogravity" and not as_sparse:
            refined, _ = self._factor_cache.refine(
                prior_vectors, matrix, observed_block, key=prior_version
            )
        elif self._method == "tomogravity":
            # Sparse operator: the cached dense correction operator does not
            # replicate the sparse kernel's operation order; keep it exact.
            refined = tomogravity_estimate(prior_vectors, matrix, observed_block)
        else:
            refined = entropy_estimate(
                prior_vectors,
                matrix,
                observed_block,
                warm_start=self._warm_start,
                x0=self._entropy_seed if self._warm_start else None,
            )
            if self._warm_start:
                self._entropy_seed = refined[-1].copy()
        estimates, _, counts = self._ipf_cache.fit(
            refined.reshape(-1, n, n),
            ingress_block,
            egress_block,
            max_iterations=self._ipf_iterations,
            warm_start=self._warm_start,
        )
        if counts.size:
            histogram = get_metrics().histogram("repro_estimate_warm_start_iterations")
            for count in counts:
                histogram.observe(float(count))
        self._publish_fast_metrics()
        return estimates

    def _resolve_backend(self):
        """The backend this run executes on (explicit, else ambient)."""
        return resolve_backend(self._backend)

    def _resolve_sparse(self, system: LinkLoadSystem, backend=None) -> bool:
        """Whether this run uses the sparse stacked operator."""
        if self._method != "tomogravity":
            return False
        if backend is not None and not backend.is_numpy:
            return False
        if self._use_sparse is None:
            return system.n_nodes >= SPARSE_SYSTEM_MIN_NODES
        return bool(self._use_sparse)

    def _observation_system(self, system: LinkLoadSystem, backend=None):
        """The ``(B, Z)`` pair the refinement step solves against."""
        as_sparse = self._resolve_sparse(system, backend)
        if self._augment:
            return system.augmented_system(as_sparse=as_sparse)
        matrix = system.routing.sparse if as_sparse else system.routing.matrix
        return matrix, system.link_loads

    def estimate(
        self,
        system: LinkLoadSystem,
        prior: TrafficMatrixSeries,
        *,
        ground_truth: TrafficMatrixSeries | None = None,
    ) -> EstimationResult:
        """Run the pipeline over every bin of the measurement series.

        Parameters
        ----------
        system:
            The observed link loads, marginals and routing matrix.
        prior:
            Prior traffic-matrix series (one matrix per measurement bin).
        ground_truth:
            When provided, per-bin errors of both the prior and the estimate
            are computed and stored on the result.
        """
        if prior.n_timesteps != system.n_timesteps:
            raise ValidationError(
                f"prior has {prior.n_timesteps} bins but the measurements have {system.n_timesteps}"
            )
        if prior.n_nodes != system.n_nodes:
            raise ValidationError(
                f"prior has {prior.n_nodes} nodes but the routing matrix has {system.n_nodes}"
            )
        n = system.n_nodes
        backend = self._resolve_backend()
        matrix, observations = self._observation_system(system, backend)

        prior_vectors = prior.to_vectors()
        if backend.is_numpy:
            if self._fast_path:
                estimates = self._fast_block(
                    prior_vectors,
                    matrix,
                    observations,
                    system.ingress,
                    system.egress,
                    n,
                    as_sparse=self._resolve_sparse(system, backend),
                    prior_version=0,
                )
            else:
                if self._method == "tomogravity":
                    refined = tomogravity_estimate(prior_vectors, matrix, observations)
                else:
                    refined = entropy_estimate(prior_vectors, matrix, observations)
                estimates = iterative_proportional_fitting_series(
                    refined.reshape(system.n_timesteps, n, n),
                    system.ingress,
                    system.egress,
                    max_iterations=self._ipf_iterations,
                )
        else:
            estimates = self._estimate_on_device(
                backend,
                prior_vectors,
                backend.asarray(matrix),
                backend.asarray(observations),
                system.ingress,
                system.egress,
                n,
            )
        estimate_series = TrafficMatrixSeries(
            estimates, prior.nodes, bin_seconds=prior.bin_seconds
        )
        errors = prior_errors = None
        if ground_truth is not None:
            errors = rel_l2_temporal_error(ground_truth, estimate_series)
            prior_errors = rel_l2_temporal_error(ground_truth, prior)
        return EstimationResult(
            estimate=estimate_series, prior=prior, errors=errors, prior_errors=prior_errors
        )

    def _estimate_on_device(
        self, backend, prior_vectors, device_matrix, device_observations, ingress, egress, n
    ) -> np.ndarray:
        """Refinement + IPF for one block of bins on a non-NumPy backend.

        The prior block and marginals are shipped to the device once, every
        stage runs there through the namespace-generic kernels, and only the
        final ``(T, n, n)`` estimates come back to the host.
        """
        priors = backend.asarray(prior_vectors)
        if self._method == "tomogravity":
            refined = tomogravity_estimate(
                priors, device_matrix, device_observations, backend=backend
            )
        else:
            refined = entropy_estimate(
                priors, device_matrix, device_observations, backend=backend
            )
        estimates = iterative_proportional_fitting_series(
            backend.xp.reshape(refined, (int(priors.shape[0]), n, n)),
            backend.asarray(ingress),
            backend.asarray(egress),
            max_iterations=self._ipf_iterations,
            backend=backend,
        )
        return backend.to_numpy(estimates)

    def estimate_stream(
        self,
        system: LinkLoadSystem,
        prior_stream,
        *,
        ground_truth_stream=None,
        collect_estimate: bool = False,
        chunk_sink=None,
        prior_version: int = 0,
    ) -> EstimationResult:
        """Run the pipeline chunk by chunk over a streamed prior.

        Every stage of the pipeline is per-bin (the batched tomogravity,
        entropy and IPF drivers carry no state across bins), so feeding it
        ``(T_chunk, n, n)`` blocks produces exactly the numbers of the
        materialised :meth:`estimate` while holding only one chunk of
        ``n^2``-sized data — the working-set drops from the refinement's
        ``O(T n_obs n^2)`` stacks to ``O(chunk n_obs n^2)``.

        Parameters
        ----------
        system:
            The observed link loads, marginals and routing matrix.
        prior_stream:
            Prior traffic as a cube or :class:`repro.streaming.ChunkStream`
            covering the measurement bins.
        ground_truth_stream:
            Optional ground truth (cube or stream, same chunking); enables
            the per-bin error series on the result.
        collect_estimate:
            Materialise the estimated series on the result (costs the
            ``O(T n^2)`` cube the streaming path otherwise avoids).
        chunk_sink:
            Optional callable receiving every ``(t0, estimates_block)`` as it
            is produced — the out-of-core alternative to
            ``collect_estimate``: spill writers persist the blocks (e.g. as
            ``.npz`` shards) without this process ever holding the cube.
        prior_version:
            Opaque token identifying the prior model these bins were drawn
            from.  Only consulted when ``fast_path`` is on: a version change
            atomically invalidates the cached factorisation, which is how
            the ingest service's rolling prior swaps keep the cache honest.
        """
        from repro.streaming import as_chunk_stream, zip_chunks

        prior_stream = as_chunk_stream(prior_stream)
        if prior_stream.n_bins != system.n_timesteps:
            raise ValidationError(
                f"prior has {prior_stream.n_bins} bins but the measurements have {system.n_timesteps}"
            )
        if prior_stream.n_nodes != system.n_nodes:
            raise ValidationError(
                f"prior has {prior_stream.n_nodes} nodes but the routing matrix has {system.n_nodes}"
            )
        n = system.n_nodes
        t = system.n_timesteps
        backend = self._resolve_backend()
        matrix, observations = self._observation_system(system, backend)
        if not backend.is_numpy:
            # Ship the (fixed) observation operator once; chunks follow below.
            device_matrix = backend.asarray(matrix)

        streams = [prior_stream]
        if ground_truth_stream is not None:
            streams.append(
                as_chunk_stream(ground_truth_stream, chunk_bins=prior_stream.chunk_bins)
            )
        errors = np.empty(t) if ground_truth_stream is not None else None
        prior_errors = np.empty(t) if ground_truth_stream is not None else None
        collected = np.empty((t, n, n)) if collect_estimate else None
        tracer = get_tracer()
        for t0, blocks in zip_chunks(*streams):
            prior_block = blocks[0]
            with tracer.span("estimate_chunk", t0=t0, bins=int(prior_block.shape[0])):
                stop = t0 + prior_block.shape[0]
                prior_vectors = prior_block.reshape(prior_block.shape[0], n * n)
                if not backend.is_numpy:
                    estimates = self._estimate_on_device(
                        backend,
                        prior_vectors,
                        device_matrix,
                        backend.asarray(observations[t0:stop]),
                        system.ingress[t0:stop],
                        system.egress[t0:stop],
                        n,
                    )
                elif self._fast_path:
                    estimates = self._fast_block(
                        prior_vectors,
                        matrix,
                        observations[t0:stop],
                        system.ingress[t0:stop],
                        system.egress[t0:stop],
                        n,
                        as_sparse=self._resolve_sparse(system, backend),
                        prior_version=prior_version,
                    )
                else:
                    if self._method == "tomogravity":
                        refined = tomogravity_estimate(prior_vectors, matrix, observations[t0:stop])
                    else:
                        refined = entropy_estimate(prior_vectors, matrix, observations[t0:stop])
                    estimates = iterative_proportional_fitting_series(
                        refined.reshape(-1, n, n),
                        system.ingress[t0:stop],
                        system.egress[t0:stop],
                        max_iterations=self._ipf_iterations,
                    )
                if collected is not None:
                    collected[t0:stop] = estimates
                if chunk_sink is not None:
                    chunk_sink(t0, estimates)
                if errors is not None:
                    truth_block = blocks[1]
                    errors[t0:stop] = rel_l2_temporal_error(truth_block, estimates)
                    prior_errors[t0:stop] = rel_l2_temporal_error(truth_block, prior_block)
        estimate_series = (
            TrafficMatrixSeries(collected, prior_stream.nodes, bin_seconds=prior_stream.bin_seconds)
            if collected is not None
            else None
        )
        return EstimationResult(
            estimate=estimate_series, prior=None, errors=errors, prior_errors=prior_errors
        )

    def compare_priors(
        self,
        system: LinkLoadSystem,
        priors: dict[str, TrafficMatrixSeries],
        ground_truth: TrafficMatrixSeries,
    ) -> dict[str, EstimationResult]:
        """Run the same pipeline once per named prior and return all results."""
        return {
            name: self.estimate(system, prior, ground_truth=ground_truth)
            for name, prior in priors.items()
        }


@register_estimator(
    "tomogravity",
    description="Weighted least-squares refinement against link counts, then IPF",
)
def make_tomogravity_estimator(**kwargs) -> TMEstimator:
    """Factory for the default tomogravity-refinement estimator."""
    return TMEstimator(method="tomogravity", **kwargs)


@register_estimator(
    "entropy",
    description="KL-divergence regularised refinement against link counts, then IPF",
)
def make_entropy_estimator(**kwargs) -> TMEstimator:
    """Factory for the entropy-regularised estimator."""
    return TMEstimator(method="entropy", **kwargs)

"""Incremental fast path for per-bin estimation linear algebra.

The batch pipeline re-runs the full tomogravity gram/``pinv`` chain and a
cold IPF solve for every bin, even though a live feed's bins are strongly
related in time: between :class:`~repro.ingest.rolling.ActivePrior` swaps
the prior *model* is fixed, and for the gravity family the prior's spatial
shape is fixed too — only its scale follows the total traffic.  This module
exploits that temporal structure without changing any published number
beyond documented tolerances:

* :class:`FactorizationCache` caches the tomogravity correction operator
  ``M = (B W)ᵀ (B W Bᵀ)⁺`` keyed by (operator identity, prior version).
  Per bin it classifies the weight vector against the cached base:

  - **equal** (bitwise): the cached ``M`` reproduces the per-bin oracle
    *bit for bit* (same operands, same operation order), so per-bin
    tomogravity becomes one cached mat-vec instead of an O(L³)
    re-factorisation;
  - **scaled** (``w_t = s_t · w₀`` within ``rtol``): the weighted gram is
    ``G_t = s_t · G₀``, its relative-``rcond`` pseudo-inverse rescales by
    ``1/s_t``, and the scalars cancel inside ``M`` — one factorisation
    serves every bin of the rescaled family, bit-close (≲1e-12 relative,
    asserted ≤1e-10 in the tests/bench) to the per-bin oracle;
  - **miss**: the bin runs the exact stacked path
    (:func:`~repro.estimation.tomogravity._refine_chunk` on the miss
    subset — bit-identical to the slow path) and the base is re-anchored
    to the newest miss, so a drifting prior degrades to the exact path
    plus one cheap O(n_od) structure check per bin.

* :class:`IPFSolveCache` applies the same equal/scaled memoisation to the
  proportional-fitting stage (IPF's fixed point is ``D₁ seed D₂``; equal
  inputs reuse the cached solution bitwise, an exactly rescaled problem
  rescales the cached solution) and optionally **warm-starts** the
  remaining bins: the previous solve's accumulated row/column scale
  products pre-scale the next seed, which leaves the fixed point unchanged
  (diagonal pre-scaling preserves the seed's cross-ratios) but drops the
  iteration count when consecutive bins are similar.

Both caches are NumPy-only (the backend kernels have their own batched
paths) and are owned by :class:`~repro.estimation.pipeline.TMEstimator`
behind its ``fast_path=`` / ``warm_start=`` knobs.
"""

from __future__ import annotations

import numpy as np

from repro.estimation.ipf import iterative_proportional_fitting_series
from repro.estimation.tomogravity import _refine_chunk, _weight_floors

__all__ = ["FactorizationCache", "IPFSolveCache", "classify_scaled_family"]

# Relative tolerance of the structure detector: a bin joins the scaled tier
# only when its vector is a scalar multiple of the base to ~float accuracy
# (rank-1 families built by rescaling a fixed shape land around 1e-14; any
# genuine shape drift is orders of magnitude larger and falls back to the
# exact path).
STRUCTURE_RTOL = 1e-12


def classify_scaled_family(
    vectors: np.ndarray, base: np.ndarray, *, rtol: float = STRUCTURE_RTOL
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Classify each row of ``vectors`` against ``base``.

    Returns ``(equal, scaled, scales)`` where ``equal[t]`` marks rows that
    are bitwise identical to ``base``, ``scaled[t]`` marks rows equal to
    ``scales[t] * base`` within ``rtol`` (relative to the row's own
    magnitude) with a strictly positive scale, and ``scales`` holds the
    least-squares scale of every row onto ``base``.  ``equal`` and
    ``scaled`` are disjoint; rows matching neither are structure misses.
    """
    vectors = np.asarray(vectors)
    base = np.asarray(base)
    equal = np.all(vectors == base, axis=1)
    denom = float(base @ base)
    if denom <= 0.0:
        scales = np.zeros(vectors.shape[0])
        return equal, np.zeros(vectors.shape[0], dtype=bool), scales
    scales = (vectors @ base) / denom
    residual = np.abs(vectors - scales[:, np.newaxis] * base).max(axis=1)
    magnitude = np.abs(vectors).max(axis=1)
    scaled = (~equal) & (scales > 0.0) & (residual <= rtol * np.maximum(magnitude, 1e-300))
    return equal, scaled, scales


class FactorizationCache:
    """Cached tomogravity factorisation keyed by (operator, prior version).

    The cache holds one *base*: the weight vector of the most recent
    structure miss plus the correction operator ``M = (B W₀)ᵀ (B W₀ Bᵀ)⁺``
    built from it.  :meth:`refine` classifies every bin of a chunk against
    the base (see module docstring) and dispatches each tier accordingly.
    A different operator object or a different ``key`` (the prior version)
    invalidates the whole entry — the atomic-invalidation contract the
    ingest service's prior swaps rely on.
    """

    def __init__(self, *, rtol: float = STRUCTURE_RTOL):
        self._rtol = float(rtol)
        self._matrix: np.ndarray | None = None
        self._key = None
        self._weights0: np.ndarray | None = None
        self._correction0: np.ndarray | None = None
        self.hits_equal = 0
        self.hits_scaled = 0
        self.misses = 0
        self.invalidations = 0

    def invalidate(self) -> None:
        """Drop the cached factorisation (e.g. on a prior swap)."""
        if self._weights0 is not None:
            self.invalidations += 1
        self._matrix = None
        self._key = None
        self._weights0 = None
        self._correction0 = None

    def stats(self) -> dict:
        return {
            "hits_equal": self.hits_equal,
            "hits_scaled": self.hits_scaled,
            "misses": self.misses,
            "invalidations": self.invalidations,
        }

    def _anchor(self, matrix: np.ndarray, weights: np.ndarray, key) -> None:
        """Rebuild the base factorisation from one bin's weight vector.

        The operand order replicates ``_refine_chunk`` exactly: elementwise
        ``B * w`` then ``(B W) @ Bᵀ`` then ``pinv`` then ``(B W)ᵀ @ G⁺`` —
        the same left-to-right association as the slow path's per-bin
        ``weighted[t].T @ gram_pinv[t] @ residual``, which is what makes
        the equal tier bit-identical.
        """
        weighted = matrix[np.newaxis, :, :] * weights[np.newaxis, np.newaxis, :]
        gram = weighted @ matrix.T
        gram_pinv = np.linalg.pinv(gram, rcond=1e-10)
        self._matrix = matrix
        self._key = key
        self._weights0 = weights.copy()
        self._correction0 = weighted[0].T @ gram_pinv[0]

    def refine(
        self,
        priors: np.ndarray,
        matrix: np.ndarray,
        observed: np.ndarray,
        *,
        weight_floor: float | None = None,
        key=None,
    ) -> tuple[np.ndarray, dict]:
        """Refine a ``(T, n_od)`` chunk through the cache.

        Equivalent to ``tomogravity_estimate`` on the same chunk:
        bit-identical for equal-tier and miss-tier bins, ≲1e-12 relative
        for scaled-tier bins.  Returns ``(estimates, chunk_stats)``.
        """
        priors = np.asarray(priors, dtype=float)
        observed = np.asarray(observed, dtype=float)
        if self._matrix is not None and (self._matrix is not matrix or self._key != key):
            self.invalidate()

        floors = _weight_floors(priors, weight_floor)
        weights = np.maximum(priors, floors[:, np.newaxis])
        t = priors.shape[0]
        if self._weights0 is None:
            equal = np.zeros(t, dtype=bool)
            scaled = np.zeros(t, dtype=bool)
        else:
            equal, scaled, _ = classify_scaled_family(weights, self._weights0, rtol=self._rtol)
        correction0 = self._correction0

        estimates = np.empty_like(priors)
        miss = np.flatnonzero(~(equal | scaled))
        if miss.size:
            # Exact stacked path on the miss subset — the slow path's own
            # kernel, so these bins match it bit for bit — then re-anchor
            # the base to the newest miss so a step change re-establishes
            # caching from the next bin on.
            estimates[miss] = _refine_chunk(priors[miss], matrix, observed[miss], weight_floor)
            self._anchor(matrix, weights[miss[-1]], key)
        if correction0 is not None:
            for b in np.flatnonzero(equal):
                residual = observed[b] - matrix @ priors[b]
                correction = correction0 @ residual
                estimates[b] = np.clip(priors[b] + correction, 0.0, None)
            hit_scaled = np.flatnonzero(scaled)
            if hit_scaled.size:
                # w_t = s_t w₀ makes G_t = s_t G₀ and pinv(G_t) = G₀⁺ / s_t
                # (relative rcond), so the scalars cancel inside M and the
                # base operator serves the whole rescaled family.
                residuals = observed[hit_scaled] - priors[hit_scaled] @ matrix.T
                corrections = residuals @ correction0.T
                estimates[hit_scaled] = np.clip(priors[hit_scaled] + corrections, 0.0, None)

        chunk = {
            "hits_equal": int(equal.sum()),
            "hits_scaled": int(scaled.sum()),
            "misses": int(miss.size),
        }
        self.hits_equal += chunk["hits_equal"]
        self.hits_scaled += chunk["hits_scaled"]
        self.misses += chunk["misses"]
        return estimates, chunk


class IPFSolveCache:
    """Equal/scaled memoisation plus warm starts for the batched IPF stage.

    The base is the last *cold-solved* bin (a warm-started solve is never
    anchored, so equal-tier replays stay bit-identical to the slow path's
    cold solve of the same inputs).  The scaled tier additionally requires
    the base to be ``safe``: non-zero marginals and no empty-but-needed
    row/column reseeding, because the uniform reseeding constant does not
    rescale with the problem.
    """

    def __init__(self, *, rtol: float = STRUCTURE_RTOL):
        self._rtol = float(rtol)
        self._seed0: np.ndarray | None = None
        self._rows0: np.ndarray | None = None
        self._cols0: np.ndarray | None = None
        self._solution0: np.ndarray | None = None
        self._safe = False
        self._warm_row: np.ndarray | None = None
        self._warm_col: np.ndarray | None = None
        self.hits_equal = 0
        self.hits_scaled = 0
        self.solved = 0
        self.warm_solved = 0

    def invalidate(self) -> None:
        self._seed0 = None
        self._rows0 = None
        self._cols0 = None
        self._solution0 = None
        self._safe = False
        self._warm_row = None
        self._warm_col = None

    def stats(self) -> dict:
        return {
            "hits_equal": self.hits_equal,
            "hits_scaled": self.hits_scaled,
            "solved": self.solved,
            "warm_solved": self.warm_solved,
        }

    def _classify(self, seeds_flat, rows, cols):
        t = seeds_flat.shape[0]
        if self._seed0 is None:
            zeros = np.zeros(t, dtype=bool)
            return zeros, zeros, np.zeros(t)
        eq_seed, sc_seed, scales = classify_scaled_family(
            seeds_flat, self._seed0, rtol=self._rtol
        )
        eq_rows, sc_rows, _ = classify_scaled_family(rows, self._rows0, rtol=self._rtol)
        eq_cols, sc_cols, _ = classify_scaled_family(cols, self._cols0, rtol=self._rtol)
        equal = eq_seed & eq_rows & eq_cols
        # The scaled tier allows any component to be bitwise equal when the
        # overall scale is 1 — require a consistent scale across all three.
        row_scales = np.where(eq_rows, 1.0, 0.0)
        if self._rows0 is not None:
            denom = float(self._rows0 @ self._rows0)
            if denom > 0:
                row_scales = (rows @ self._rows0) / denom
        consistent = (
            np.abs(row_scales - scales) <= self._rtol * np.maximum(np.abs(scales), 1e-300)
        )
        scaled = (
            (~equal)
            & self._safe
            & (sc_seed | eq_seed)
            & (sc_rows | eq_rows)
            & (sc_cols | eq_cols)
            & (scales > 0)
            & consistent
        )
        return equal, scaled, scales

    @staticmethod
    def _base_safe(seed: np.ndarray, rows: np.ndarray, cols: np.ndarray) -> bool:
        """Whether the scaled tier may extrapolate from this base bin."""
        if rows.sum() <= 0 or cols.sum() <= 0:
            return False
        if np.any((seed.sum(axis=1) <= 0) & (rows > 0)):
            return False
        if np.any((seed.sum(axis=0) <= 0) & (cols > 0)):
            return False
        return True

    def fit(
        self,
        seeds: np.ndarray,
        rows: np.ndarray,
        cols: np.ndarray,
        *,
        max_iterations: int = 100,
        tolerance: float = 1e-8,
        warm_start: bool = False,
    ) -> tuple[np.ndarray, dict, np.ndarray]:
        """Fit a ``(T, n, n)`` stack through the cache.

        Returns ``(solutions, chunk_stats, iteration_counts)`` where
        ``iteration_counts`` holds one entry per *solved* (non-memoised)
        bin — the convergence-iteration histogram's raw samples.
        """
        seeds = np.asarray(seeds, dtype=float)
        rows = np.asarray(rows, dtype=float)
        cols = np.asarray(cols, dtype=float)
        t, n, _ = seeds.shape
        seeds_flat = seeds.reshape(t, n * n)
        equal, scaled, scales = self._classify(seeds_flat, rows, cols)

        solutions = np.empty_like(seeds)
        if self._solution0 is not None:
            eq_idx = np.flatnonzero(equal)
            if eq_idx.size:
                solutions[eq_idx] = self._solution0[np.newaxis, :, :]
            sc_idx = np.flatnonzero(scaled)
            if sc_idx.size:
                # IPF's updates are ratios of marginals, which are invariant
                # under a global rescale: the fixed point of (s·seed, s·rows,
                # s·cols) is s times the base fixed point.
                solutions[sc_idx] = scales[sc_idx, np.newaxis, np.newaxis] * self._solution0

        solve = np.flatnonzero(~(equal | scaled))
        counts = np.zeros(0, dtype=np.intp)
        if solve.size:
            counts = np.zeros(solve.size, dtype=np.intp)
            scale_state: dict = {}
            kwargs = dict(
                max_iterations=max_iterations,
                tolerance=tolerance,
                iteration_counts=counts,
                scale_state=scale_state,
            )
            warmed = warm_start and self._warm_row is not None
            if warmed:
                row0 = np.where(
                    np.isfinite(self._warm_row) & (self._warm_row > 0), self._warm_row, 1.0
                )
                col0 = np.where(
                    np.isfinite(self._warm_col) & (self._warm_col > 0), self._warm_col, 1.0
                )
                kwargs["initial_row_scale"] = np.broadcast_to(row0, (solve.size, n))
                kwargs["initial_col_scale"] = np.broadcast_to(col0, (solve.size, n))
            solutions[solve] = iterative_proportional_fitting_series(
                seeds[solve], rows[solve], cols[solve], **kwargs
            )
            last = solve[-1]
            offset = solve.size - 1
            if not warmed:
                # Anchor the memo base from a cold solve only: warm-started
                # solutions differ from a cold solve by the convergence
                # slack, and replaying them from the equal tier would leak
                # that slack into the bit-identity guarantee.
                self._seed0 = seeds_flat[last].copy()
                self._rows0 = rows[last].copy()
                self._cols0 = cols[last].copy()
                self._solution0 = solutions[last].copy()
                self._safe = self._base_safe(seeds[last], rows[last], cols[last])
            if scale_state:
                self._warm_row = scale_state["row"][offset].copy()
                self._warm_col = scale_state["col"][offset].copy()
            if warmed:
                self.warm_solved += solve.size

        chunk = {
            "hits_equal": int(equal.sum()),
            "hits_scaled": int(scaled.sum()),
            "solved": int(solve.size),
        }
        self.hits_equal += chunk["hits_equal"]
        self.hits_scaled += chunk["hits_scaled"]
        self.solved += chunk["solved"]
        return solutions, chunk, counts

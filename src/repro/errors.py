"""Exception hierarchy for the repro package.

All exceptions raised intentionally by this package derive from
:class:`ReproError`, so callers can catch a single base class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ValidationError(ReproError, ValueError):
    """Raised when an input value fails validation (range, sign, sum, ...)."""


class RegistryError(ReproError, ValueError):
    """Raised for component-registry problems: unknown names or duplicates."""


class ShapeError(ReproError, ValueError):
    """Raised when an array argument has an incompatible shape."""


class FittingError(ReproError, RuntimeError):
    """Raised when a model-fitting procedure cannot produce a valid result."""


class EstimationError(ReproError, RuntimeError):
    """Raised when a traffic-matrix estimation step fails."""


class ExecutorError(ReproError, RuntimeError):
    """Raised when a sweep executor (remote workers, pools) fails as a whole."""


class TopologyError(ReproError, ValueError):
    """Raised for malformed topologies or routing requests."""


class BackendError(ReproError, RuntimeError):
    """Raised for compute-backend problems (bad namespace, failed transfer)."""


class BackendUnavailableError(BackendError):
    """Raised when a registered backend's array library is not installed."""


class TraceError(ReproError, ValueError):
    """Raised for malformed packet/flow traces or matching failures."""

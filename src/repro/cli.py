"""Command-line entry point: run any experiment and print its table.

Usage::

    python -m repro.cli fig3 --dataset geant
    python -m repro.cli fig11 --dataset totem --full-scale
    python -m repro.cli all

``all`` runs every experiment at the fast default scale and prints each
table, which is a quick way to regenerate the complete set of results
recorded in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time

from repro.experiments import EXPERIMENTS

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for the ``repro.cli`` entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli",
        description="Run a reproduction experiment and print its result table.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment identifier (paper figure number) or 'all'",
    )
    parser.add_argument(
        "--dataset",
        choices=("geant", "totem"),
        default=None,
        help="dataset to use, for experiments that take one",
    )
    parser.add_argument(
        "--full-scale",
        action="store_true",
        help="use paper-sized workloads (slower) where supported",
    )
    parser.add_argument(
        "--bins-per-week",
        type=int,
        default=None,
        help="override the number of time bins per week",
    )
    return parser


def _run_one(name: str, args: argparse.Namespace) -> str:
    runner = EXPERIMENTS[name]
    signature = inspect.signature(runner)
    kwargs = {}
    if args.dataset is not None and "dataset" in signature.parameters:
        kwargs["dataset"] = args.dataset
    if "full_scale" in signature.parameters and args.full_scale:
        kwargs["full_scale"] = True
    if "bins_per_week" in signature.parameters and args.bins_per_week is not None:
        kwargs["bins_per_week"] = args.bins_per_week
    started = time.perf_counter()
    result = runner(**kwargs)
    elapsed = time.perf_counter() - started
    header = f"=== {name} ({elapsed:.1f}s) ==="
    return f"{header}\n{result.format_table()}\n"


def main(argv: list[str] | None = None) -> int:
    """Run the CLI; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(_run_one(name, args))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    sys.exit(main())

"""Command-line interface: subcommands over the registries and scenarios.

Usage::

    python -m repro run fig3 --dataset geant
    python -m repro run all
    python -m repro estimate --prior stable_fp --dataset geant
    python -m repro sweep --priors measured stable_f --datasets geant totem --jobs 4
    python -m repro bench --quick
    python -m repro list priors

``run`` executes a figure-reproduction experiment, ``estimate`` a single
declarative scenario, ``sweep`` a priors × datasets grid through the
:class:`repro.scenarios.ScenarioRunner` (``--jobs N`` runs grid cells in
parallel with deterministic per-cell seeds; ``--executor remote
--remote-workers HOST:PORT ...`` shards them across ``repro sweep-worker``
daemons, or spawns loopback ones with ``--remote-workers spawn:N``),
``sweep-worker`` runs one such daemon, ``bench`` records a
``BENCH_<rev>.json`` performance snapshot, ``report`` renders streaming
analytics marts over a sweep ``--spill-dir`` archive or a ``serve`` sink
(one shard in memory at a time — never the series), ``trace`` inspects,
merges and exports the JSONL span traces that ``--trace FILE`` (or
``REPRO_TRACE=FILE``) records on run/estimate/sweep/serve (``--metrics-out
FILE`` writes Prometheus metrics at exit; ``repro serve --metrics-port N``
additionally serves them live), and ``list`` shows the registered
components of any kind together with their metadata.  Unknown component
or experiment names exit with status 2 and a message naming the valid
registered choices.

The bare legacy form ``python -m repro.cli fig3`` (no subcommand) is still
accepted and treated as ``run fig3``.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.errors import ReproError
from repro.registry import EXPERIMENTS_REGISTRY, REGISTRIES
from repro.scenarios import Scenario, ScenarioRunner

__all__ = ["main", "build_parser"]

USAGE_EXIT_CODE = 2


def _add_scenario_knobs(parser: argparse.ArgumentParser) -> None:
    """Flags shared by ``estimate`` and ``sweep`` (Scenario fields)."""
    parser.add_argument("--estimator", default="tomogravity",
                        help="registered estimator to refine the prior with")
    parser.add_argument("--bins-per-week", type=int, default=None,
                        help="override the number of time bins per week")
    parser.add_argument("--full-scale", action="store_true",
                        help="use paper-sized workloads (slower)")
    parser.add_argument("--max-bins", type=int, default=48,
                        help="cap on bins pushed through the pipeline (0 = whole week)")
    parser.add_argument("--calibration-week", type=int, default=0,
                        help="week used to calibrate the prior")
    parser.add_argument("--target-week", type=int, default=None,
                        help="week being estimated (default: the prior's paper setup)")
    parser.add_argument("--measurement-noise", type=float, default=0.01,
                        help="relative std of simulated SNMP noise")
    parser.add_argument("--seed", type=int, default=0,
                        help="measurement-noise seed")
    parser.add_argument("--dataset-seed", type=int, default=None,
                        help="override the dataset generation seed")
    parser.add_argument("--fast-path", action=argparse.BooleanOptionalAction, default=False,
                        help="incremental estimation fast path: cache the "
                             "tomogravity factorisation and IPF solutions "
                             "across bins (bit-identical for repeated "
                             "weights, <=1e-10 for exactly rescaled priors; "
                             "off by default so batch reproduction stays "
                             "byte-identical)")
    _add_streaming_knobs(parser)
    _add_obs_knobs(parser)
    parser.add_argument("--spill-dir", default=None,
                        help="out-of-core results for --stream runs: per-bin "
                             "error series and the estimate cube are written "
                             "as .npz shards under this run directory and "
                             "loaded lazily (without it, runs spill "
                             "automatically to a temporary directory once "
                             "they reach the auto threshold)")
    parser.add_argument("--spill-shard-bins", type=int, default=None,
                        help="bins per spilled .npz shard (default 2048); "
                             "smaller shards lower the peak memory of "
                             "shard-at-a-time readers like `repro report`")
    _add_backend_knob(parser)


def _add_backend_knob(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--backend", default=None,
                        help="registered compute backend to run the kernels on "
                             "(see `repro list backends`; overrides "
                             "REPRO_BACKEND, default numpy)")


def _add_obs_knobs(parser: argparse.ArgumentParser, *, metrics_port: bool = False) -> None:
    """The observability opt-ins shared by run/estimate/sweep/serve."""
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="write a JSONL span trace of this command to FILE "
                             "(REPRO_TRACE=FILE does the same; distributed "
                             "sweeps merge worker spans into the one file; "
                             "inspect with `repro trace summary FILE`)")
    parser.add_argument("--metrics-out", default=None, metavar="FILE",
                        help="write final counters/gauges/latency quantiles as "
                             "Prometheus text exposition to FILE on exit")
    if metrics_port:
        parser.add_argument("--metrics-port", type=int, default=None, metavar="PORT",
                            help="serve live Prometheus metrics on "
                                 "http://127.0.0.1:PORT/metrics while the "
                                 "service runs (0 = pick an ephemeral port; "
                                 "the bound address is printed to stderr)")


def _add_streaming_knobs(parser: argparse.ArgumentParser) -> None:
    """The chunked-execution flags shared by ``run``, ``estimate`` and ``sweep``."""
    parser.add_argument("--stream", action="store_true",
                        help="run through the chunked streaming pipeline: "
                             "bounded peak memory (reported as peak RSS), "
                             "bit-identical same-seed synthesis")
    parser.add_argument("--chunk-bins", type=int, default=None,
                        help="bins per streamed chunk (default: fit a small "
                             "fixed memory budget)")


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for the ``repro`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce and extend the independent-connection traffic-matrix model.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser(
        "run", help="run a figure-reproduction experiment and print its table"
    )
    run.add_argument(
        "experiment",
        choices=[*EXPERIMENTS_REGISTRY.names(), "all"],
        help="experiment identifier (paper figure number) or 'all'",
    )
    run.add_argument("--dataset", default=None,
                     help="registered dataset, for experiments that take one")
    run.add_argument("--full-scale", action="store_true",
                     help="use paper-sized workloads (slower) where supported")
    run.add_argument("--bins-per-week", type=int, default=None,
                     help="override the number of time bins per week")
    _add_streaming_knobs(run)
    _add_obs_knobs(run)
    _add_backend_knob(run)
    run.set_defaults(handler=_cmd_run)

    estimate = subparsers.add_parser(
        "estimate", help="run one estimation scenario (prior × dataset × estimator)"
    )
    estimate.add_argument("--prior", required=True, help="registered prior to estimate with")
    estimate.add_argument("--dataset", required=True, help="registered dataset to estimate on")
    estimate.add_argument("--topology", default=None,
                          help="registered topology overriding the dataset's own")
    estimate.add_argument("--forward-fraction", type=float, default=None,
                          help="externally measured f, for priors that use one")
    estimate.add_argument("--no-baseline", action="store_true",
                          help="skip the gravity-baseline comparison run")
    _add_scenario_knobs(estimate)
    estimate.set_defaults(handler=_cmd_estimate)

    sweep = subparsers.add_parser(
        "sweep",
        help="run a priors × datasets grid and print a comparison table",
        description=(
            "Run every (prior, dataset) grid cell through the shared estimation "
            "pipeline.  With --jobs N the cells run in N parallel worker "
            "processes on the shared-plan scheduler: each dataset column is "
            "synthesized (or, with --stream, planned with checkpointed noise "
            "states) once in the parent and shipped through shared memory, and "
            "workers reuse the column's measurement system and baseline "
            "estimate across its priors.  Every cell carries its own "
            "deterministic seeds, so the grid result is identical regardless "
            "of the worker count."
        ),
    )
    sweep.add_argument("--priors", nargs="+", default=("measured", "stable_fp", "stable_f"),
                       help="registered priors spanning the grid rows")
    sweep.add_argument("--datasets", nargs="+", default=("geant", "totem"),
                       help="registered datasets spanning the grid columns")
    sweep.add_argument("--timing", action="store_true",
                       help="also print the per-cell timing breakdown")
    sweep.add_argument("--jobs", type=int, default=1,
                       help="workers for grid cells (1 = serial, 0 = one per "
                            "CPU); local executors cap at the CPU count (a "
                            "warning reports the effective count), remote "
                            "executors honour the full request; deterministic "
                            "per-cell seeds keep results identical at any "
                            "worker count")
    sweep.add_argument("--executor", default="auto",
                       choices=["auto", "in-process", "local-pool", "remote"],
                       help="where cells run: auto picks in-process or the "
                            "local shared-memory pool from --jobs; remote "
                            "ships column batches to `repro sweep-worker` "
                            "daemons (requires --remote-workers)")
    sweep.add_argument("--remote-workers", nargs="+", default=None,
                       metavar="HOST:PORT",
                       help="sweep-worker daemon addresses for --executor "
                            "remote; cells that spill need --spill-dir on "
                            "storage shared with every worker.  The single "
                            "token spawn:N instead launches N loopback "
                            "worker subprocesses for the sweep and tears "
                            "them down afterwards")
    sweep.add_argument("--stream-results", action="store_true",
                       help="stream cell results into the --spill-dir archive "
                            "as they complete instead of accumulating them in "
                            "the driver (requires --stream and --spill-dir): "
                            "writes manifest.jsonl and merged marts.json, "
                            "prints the archive summary, and keeps driver "
                            "memory flat in the grid size; render details "
                            "later with `repro report <spill-dir>`")
    _add_scenario_knobs(sweep)
    sweep.set_defaults(handler=_cmd_sweep)

    worker = subparsers.add_parser(
        "sweep-worker",
        help="run a sweep-worker daemon for distributed `repro sweep` runs",
        description=(
            "Listen for `repro sweep --executor remote` clients, rebuild the "
            "dataset columns they ship (streaming generation-plan state or "
            "materialised week cubes), run their column batches through the "
            "shared estimation pipeline, and send the per-cell results back.  "
            "One daemon is one execution slot; run several for parallelism.  "
            "The protocol exchanges pickled objects over plain TCP with no "
            "authentication: bind only to loopback or a trusted private "
            "network."
        ),
    )
    worker.add_argument("--host", default="127.0.0.1",
                        help="interface to bind (default loopback; bind "
                             "non-loopback addresses only on trusted networks)")
    worker.add_argument("--port", type=int, default=0,
                        help="TCP port (0 = pick an ephemeral port; the bound "
                             "address is printed as 'sweep-worker listening on "
                             "HOST:PORT')")
    worker.add_argument("--max-connections", type=int, default=0,
                        help="exit after serving this many client connections "
                             "(0 = serve until killed or a shutdown request)")
    worker.set_defaults(handler=_cmd_sweep_worker)

    bench = subparsers.add_parser(
        "bench",
        help="run the benchmark harness and write a BENCH_<rev>.json snapshot",
        description=(
            "Time the batched kernels against their per-bin reference loops "
            "(and, without --quick, the full pytest-benchmark suite under "
            "benchmarks/), then write the records as a BENCH_<rev>.json "
            "trajectory file for cross-revision comparison.  With --compare "
            "A.json B.json, diff two existing snapshots instead: "
            "per-benchmark ratios are printed and the command exits non-zero "
            "when any benchmark slowed down beyond the noise threshold."
        ),
    )
    bench.add_argument("--quick", action="store_true",
                       help="only the built-in micro-benchmarks (seconds; used by CI)")
    bench.add_argument("--output", default=".",
                       help="directory (or explicit .json path) for the BENCH file")
    bench.add_argument("--repeat", type=int, default=3,
                       help="best-of repetitions per micro-benchmark")
    bench.add_argument("--rev", default=None,
                       help="revision label for the file name (default: git short rev)")
    bench.add_argument("--compare", nargs=2, metavar=("OLD.json", "NEW.json"), default=None,
                       help="diff two BENCH_<rev>.json snapshots instead of benchmarking; "
                            "exits 1 if NEW regresses beyond the threshold")
    bench.add_argument("--threshold", type=float, default=0.25,
                       help="relative slowdown treated as noise by --compare "
                            "(default 0.25 = 25%%)")
    bench.set_defaults(handler=_cmd_bench)

    serve = subparsers.add_parser(
        "serve",
        help="run the live flow-ingestion estimation service",
        description=(
            "Ingest a flow-record feed (a .csv/.jsonl trace replay or a "
            "synthetic generator), bin it into per-bin OD matrices behind a "
            "bounded watermark, and publish rolling traffic-matrix estimates "
            "as JSONL.  The estimation stages are the batch pipeline's own "
            "per-bin code, so a replayed week with a pinned prior reproduces "
            "`repro estimate --stream` exactly.  SIGTERM stops the service "
            "cleanly and writes a resumable checkpoint."
        ),
    )
    serve.add_argument("--source", required=True,
                       help="flow feed: a .csv/.jsonl trace file, or 'synthetic'")
    serve.add_argument("--topology", default=None,
                       help="registered topology naming the nodes and routing "
                            "(required for file sources; synthetic defaults to "
                            "the dataset's own)")
    serve.add_argument("--dataset", default="geant",
                       help="dataset behind --source synthetic")
    serve.add_argument("--bins-per-week", type=int, default=None,
                       help="synthetic scale: bins per generated week")
    serve.add_argument("--n-weeks", type=int, default=1,
                       help="synthetic scale: weeks to generate")
    serve.add_argument("--dataset-seed", type=int, default=None,
                       help="override the synthetic dataset generation seed")
    serve.add_argument("--speedup", type=float, default=0.0,
                       help="replay pacing: trace seconds per wall-clock second "
                            "(0 = unpaced, as fast as the file parses)")
    serve.add_argument("--batch-records", type=int, default=1024,
                       help="records per replay batch (pacing and stop-check "
                            "granularity for file sources)")
    serve.add_argument("--bin-seconds", type=float, default=None,
                       help="bin width (default: the dataset's for synthetic, "
                            "300s for file sources)")
    serve.add_argument("--chunk-bins", type=int, default=16,
                       help="closed bins per estimation chunk (the publication cadence)")
    serve.add_argument("--watermark-bins", type=int, default=1,
                       help="out-of-order tolerance in whole bins before a bin "
                            "closes; later records are dropped and counted")
    serve.add_argument("--estimator", default="tomogravity",
                       help="registered estimator refining the prior")
    serve.add_argument("--prior", default="gravity",
                       choices=["gravity", "stable_f", "stable_fp"],
                       help="prior recipe for the refinement step")
    serve.add_argument("--forward-fraction", type=float, default=None,
                       help="pinned f for --prior stable_f (and the warm start "
                            "of the first stable_fp fit)")
    serve.add_argument("--refit-every", type=int, default=0,
                       help="re-fit the stable_fp prior every K closed bins on "
                            "the sliding window (0 = never re-fit)")
    serve.add_argument("--window-bins", type=int, default=96,
                       help="sliding fit-window length in bins")
    serve.add_argument("--window-budget-mb", type=float, default=64.0,
                       help="in-memory window budget before bins spill to .npz shards")
    serve.add_argument("--spill-dir", default=None,
                       help="directory for spilled window shards (default: a "
                            "temporary directory)")
    serve.add_argument("--sink", default="-",
                       help="estimate output: a directory (gains estimates.jsonl), "
                            "an explicit .jsonl path, or '-' for stdout")
    serve.add_argument("--status-file", default=None,
                       help="status snapshot JSON, rewritten after every chunk "
                            "(default: <sink>/status.json for directory sinks)")
    serve.add_argument("--checkpoint", default=None,
                       help="resumable checkpoint path; if the file exists the "
                            "service resumes from it (default: "
                            "<sink>/checkpoint.json for directory sinks)")
    serve.add_argument("--estimate-shards", default=None,
                       help="also append published estimates to estimate-*.npz "
                            "shards under this directory (a `repro report`-"
                            "readable sidecar; the JSONL sink remains the "
                            "source of truth)")
    serve.add_argument("--max-bins", type=int, default=0,
                       help="stop after publishing this many bins (0 = run to "
                            "the end of the feed)")
    serve.add_argument("--measurement-noise", type=float, default=0.0,
                       help="relative std of simulated SNMP noise on the binned "
                            "measurements (deterministic per chunk)")
    serve.add_argument("--seed", type=int, default=0, help="measurement-noise seed")
    serve.add_argument("--fast-path", action=argparse.BooleanOptionalAction, default=True,
                       help="incremental estimation fast path: cache the "
                            "tomogravity factorisation and IPF solutions "
                            "across bins between prior swaps, and warm-start "
                            "iterative solves from the previous bin "
                            "(bit-identical for repeated weights, <=1e-10 "
                            "for rescaled priors; on by default for serve — "
                            "use --no-fast-path for the oracle per-bin path)")
    _add_obs_knobs(serve, metrics_port=True)
    _add_backend_knob(serve)
    serve.set_defaults(handler=_cmd_serve)

    report = subparsers.add_parser(
        "report",
        help="render streaming analytics marts over a result archive",
        description=(
            "Reduce a result archive — a `repro sweep --spill-dir` run "
            "directory or a `repro serve` sink (JSONL, or its "
            "--estimate-shards sidecar) — through single-pass streaming "
            "marts: exact top talkers, hour-of-day rollups and totals, plus "
            "sketched quantiles and per-OD CCDFs with committed error "
            "bounds.  Shards are read one at a time, so peak memory is one "
            "shard plus sketch state — the series itself is never "
            "materialised."
        ),
    )
    report.add_argument("archive", nargs="?", default=None,
                        help="sweep --spill-dir directory, serve sink directory, "
                             "or an estimates.jsonl file")
    report.add_argument("--marts", nargs="+", default=None,
                        help="marts to render (default: all registered; see "
                             "`repro report --help-marts`)")
    report.add_argument("--help-marts", action="store_true",
                        help="list the registered marts and exit")
    report.add_argument("--format", default="table", choices=["table", "json", "csv"],
                        help="output rendering (default table)")
    report.add_argument("--series", default="errors",
                        help="per-bin scalar series consumed by series marts "
                             "(default errors)")
    report.add_argument("--window", nargs=2, type=int, metavar=("START", "STOP"),
                        default=None,
                        help="restrict the reduction to bins [START, STOP); "
                             "only overlapping shards are read")
    report.add_argument("--top", type=int, default=10,
                        help="K for the top_talkers mart (default 10)")
    report.add_argument("--bins-per-hour", type=int, default=None,
                        help="bins per hour for traffic_by_hour (default 12, "
                             "i.e. 300 s bins)")
    report.add_argument("--epsilon", type=float, default=None,
                        help="rank-error bound for sketched quantiles "
                             "(default 0.005)")
    report.set_defaults(handler=_cmd_report)

    trace = subparsers.add_parser(
        "trace",
        help="inspect, merge or export JSONL span traces",
        description=(
            "Work with the JSONL traces written by --trace/REPRO_TRACE: "
            "`summary` prints the per-span-name time breakdown and the "
            "share of wall time the spans account for, `merge` combines "
            "trace files (e.g. per-host worker traces) into one "
            "time-ordered file, and `export` converts traces to Chrome "
            "trace_event JSON for chrome://tracing / Perfetto."
        ),
    )
    trace.add_argument("action", choices=["summary", "merge", "export"],
                       help="summary: per-name totals and wall coverage; "
                            "merge: combine JSONL traces; export: Chrome "
                            "trace_event JSON")
    trace.add_argument("files", nargs="+", metavar="TRACE.jsonl",
                       help="one or more JSONL trace files")
    trace.add_argument("-o", "--output", default=None,
                       help="output path for merge/export (default stdout)")
    trace.set_defaults(handler=_cmd_trace)

    lister = subparsers.add_parser(
        "list", help="list registered components (priors, datasets, ...)"
    )
    lister.add_argument(
        "kind",
        nargs="?",
        choices=sorted(REGISTRIES),
        default=None,
        help="component kind to list (default: every registry)",
    )
    lister.set_defaults(handler=_cmd_list)

    return parser


# ---------------------------------------------------------------------------
# observability wiring
# ---------------------------------------------------------------------------

def _observability(args: argparse.Namespace, command: str):
    """Context manager arming tracing/metrics for one command, per its flags.

    ``--trace FILE`` (or ``REPRO_TRACE=FILE``) installs a file-backed
    ambient tracer wrapped in a root ``repro`` span so the whole command is
    covered; ``--metrics-out``/``--metrics-port`` install an ambient
    :class:`~repro.obs.MetricsRegistry` (served live and/or written at
    exit).  Commands without the flags get the null twins: the context is
    always legal to enter and costs nothing when observability is off.
    """
    import os
    from contextlib import ExitStack, contextmanager

    from repro.obs import (
        TRACE_ENV,
        MetricsRegistry,
        MetricsServer,
        Tracer,
        use_metrics,
        use_tracer,
    )

    trace_path = getattr(args, "trace", None) or os.environ.get(TRACE_ENV) or None
    metrics_out = getattr(args, "metrics_out", None)
    metrics_port = getattr(args, "metrics_port", None)

    @contextmanager
    def _armed():
        with ExitStack() as stack:
            registry = None
            if metrics_out or metrics_port is not None:
                registry = MetricsRegistry()
                stack.enter_context(use_metrics(registry))
                if metrics_port is not None:
                    server = MetricsServer(registry, port=metrics_port)
                    stack.callback(server.close)
                    print(
                        f"metrics: serving http://{server.host}:{server.port}/metrics",
                        file=sys.stderr,
                    )
            if trace_path:
                tracer = stack.enter_context(Tracer(trace_path))
                stack.enter_context(use_tracer(tracer))
                stack.enter_context(tracer.span("repro", command=command))
            yield
            if registry is not None and metrics_out:
                registry.write_file(metrics_out)
    return _armed()


# ---------------------------------------------------------------------------
# subcommand handlers
# ---------------------------------------------------------------------------

def _run_one(name: str, args: argparse.Namespace) -> str:
    entry = EXPERIMENTS_REGISTRY.entry(name)
    accepts = entry.metadata.get("accepts", ())
    kwargs = {}
    if args.dataset is not None and "dataset" in accepts:
        kwargs["dataset"] = args.dataset
    if args.full_scale and "full_scale" in accepts:
        kwargs["full_scale"] = True
    if args.bins_per_week is not None and "bins_per_week" in accepts:
        kwargs["bins_per_week"] = args.bins_per_week
    if args.stream:
        if "stream" not in accepts:
            raise ReproError(
                f"experiment {name!r} does not support --stream; streaming "
                "experiments: "
                + ", ".join(
                    entry.name
                    for entry in EXPERIMENTS_REGISTRY.entries()
                    if "stream" in entry.metadata.get("accepts", ())
                )
            )
        kwargs["stream"] = True
    if args.chunk_bins is not None and "chunk_bins" in accepts:
        kwargs["chunk_bins"] = args.chunk_bins
    started = time.perf_counter()
    result = entry.obj(**kwargs)
    elapsed = time.perf_counter() - started
    header = f"=== {name} ({elapsed:.1f}s) ==="
    return f"{header}\n{result.format_table()}\n"


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.backend import use_backend

    names = (
        list(EXPERIMENTS_REGISTRY.names()) if args.experiment == "all" else [args.experiment]
    )
    # The experiment drivers pick the backend up ambiently (fit_stable_fp and
    # TMEstimator resolve it), so one context covers every figure.
    with use_backend(args.backend):
        for name in names:
            print(_run_one(name, args))
    return 0


def _scenario_from_args(args: argparse.Namespace, *, dataset: str, prior: str) -> Scenario:
    return Scenario(
        dataset=dataset,
        prior=prior,
        estimator=args.estimator,
        topology=getattr(args, "topology", None),
        calibration_week=args.calibration_week,
        target_week=args.target_week,
        bins_per_week=args.bins_per_week,
        full_scale=args.full_scale,
        max_bins=args.max_bins if args.max_bins and args.max_bins > 0 else None,
        measurement_noise=args.measurement_noise,
        seed=args.seed,
        dataset_seed=args.dataset_seed,
        measured_forward_fraction=getattr(args, "forward_fraction", None),
        stream=args.stream,
        chunk_bins=args.chunk_bins,
        spill_dir=getattr(args, "spill_dir", None),
        spill_shard_bins=getattr(args, "spill_shard_bins", None),
        backend=args.backend,
        fast_path=getattr(args, "fast_path", False),
    )


def _cmd_estimate(args: argparse.Namespace) -> int:
    scenario = _scenario_from_args(args, dataset=args.dataset, prior=args.prior)
    runner = ScenarioRunner(baseline_prior=None if args.no_baseline else "gravity")
    result = runner.run(scenario)
    print(f"=== {scenario.label} ===")
    print(result.format_table())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    base = _scenario_from_args(args, dataset=args.datasets[0], prior=args.priors[0])
    for prior in args.priors:
        base.replace(prior=prior).validate()
    for dataset in args.datasets:
        base.replace(dataset=dataset).validate()
    jobs = None if args.jobs == 0 else args.jobs
    if jobs is not None and jobs < 0:
        print("error: --jobs must be >= 0", file=sys.stderr)
        return USAGE_EXIT_CODE
    executor = args.executor
    spawned = None
    if executor == "remote":
        if not args.remote_workers:
            print("error: --executor remote requires --remote-workers HOST:PORT ... "
                  "(or spawn:N)", file=sys.stderr)
            return USAGE_EXIT_CODE
        from repro.scenarios import RemoteExecutor

        spawn_tokens = [w for w in args.remote_workers if w.startswith("spawn:")]
        if spawn_tokens:
            if len(args.remote_workers) > 1:
                print("error: --remote-workers spawn:N cannot be mixed with "
                      "explicit worker addresses", file=sys.stderr)
                return USAGE_EXIT_CODE
            try:
                count = int(spawn_tokens[0].split(":", 1)[1])
            except ValueError:
                count = 0
            if count < 1:
                print("error: --remote-workers spawn:N needs an integer N >= 1",
                      file=sys.stderr)
                return USAGE_EXIT_CODE
            from repro.scenarios import SpawnedWorkers

            spawned = SpawnedWorkers(count)
            executor = RemoteExecutor(spawned.addresses)
        else:
            executor = RemoteExecutor(args.remote_workers)
    elif args.remote_workers:
        print("error: --remote-workers only applies to --executor remote",
              file=sys.stderr)
        return USAGE_EXIT_CODE
    sink = None
    if args.stream_results:
        if not args.stream or not args.spill_dir:
            print("error: --stream-results requires --stream and --spill-dir "
                  "(the archive the cells stream into)", file=sys.stderr)
            if spawned is not None:
                spawned.close()
            return USAGE_EXIT_CODE
        from repro.marts import ArchiveResultSink

        sink = ArchiveResultSink(args.spill_dir)
    try:
        result = ScenarioRunner().sweep(
            priors=args.priors, datasets=args.datasets, base=base, jobs=jobs,
            executor=None if executor == "auto" else executor,
            result_sink=sink,
        )
    finally:
        if spawned is not None:
            spawned.close()
    grid = len(args.priors) * len(args.datasets)
    if sink is not None:
        import json

        cells_ok = result.timing.get("cells_ok", 0)
        print(f"=== sweep: {len(args.priors)} priors x {len(args.datasets)} datasets "
              f"({cells_ok}/{grid} cells ok, streamed to {args.spill_dir}) ===")
        print(json.dumps(sink.summary, indent=2))
        for cell, message in result.failures:
            print(f"failed: {cell.label}: {message}", file=sys.stderr)
        print(f"render marts with: repro report {args.spill_dir}", file=sys.stderr)
        return 0 if cells_ok else USAGE_EXIT_CODE
    print(f"=== sweep: {len(args.priors)} priors x {len(args.datasets)} datasets "
          f"({len(result.results)}/{grid} cells ok) ===")
    print(result.format_table())
    if args.timing:
        print(result.format_summary())
    if args.timing and result.results:
        print()
        print(result.format_timing())
    return 0 if result.results else USAGE_EXIT_CODE


def _cmd_sweep_worker(args: argparse.Namespace) -> int:
    from repro.scenarios import run_sweep_worker

    if args.port < 0:
        print("error: --port must be >= 0", file=sys.stderr)
        return USAGE_EXIT_CODE
    return run_sweep_worker(
        args.host,
        args.port,
        max_connections=args.max_connections if args.max_connections > 0 else None,
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from repro.backend import use_backend
    from repro.ingest import FileReplaySource, IngestService, SyntheticFlowSource
    from repro.registry import ESTIMATORS, TOPOLOGIES

    if args.source == "synthetic":
        from repro.synthesis.datasets import open_dataset_stream

        data = open_dataset_stream(
            args.dataset,
            n_weeks=max(args.n_weeks, 1),
            bins_per_week=args.bins_per_week,
            seed=args.dataset_seed,
            chunk_bins=args.chunk_bins,
        )
        topology = (
            TOPOLOGIES.entry(args.topology).obj() if args.topology else data.topology
        )
        stream = data.full_stream(chunk_bins=args.chunk_bins)
        source = SyntheticFlowSource(stream)
        bin_seconds = args.bin_seconds or stream.bin_seconds
    else:
        if args.topology is None:
            raise ReproError("--topology is required for file sources")
        topology = TOPOLOGIES.entry(args.topology).obj()
        bin_seconds = args.bin_seconds or 300.0
        source = FileReplaySource(
            args.source,
            topology.nodes,
            speedup=args.speedup,
            batch_records=args.batch_records,
        )

    status_path, checkpoint_path = args.status_file, args.checkpoint
    if args.sink not in (None, "-") and not str(args.sink).endswith(".jsonl"):
        from pathlib import Path

        sink_dir = Path(args.sink)
        status_path = status_path or sink_dir / "status.json"
        checkpoint_path = checkpoint_path or sink_dir / "checkpoint.json"

    estimator = ESTIMATORS.entry(args.estimator).obj(
        backend=args.backend, fast_path=args.fast_path
    )
    service = IngestService(
        source,
        topology,
        estimator=estimator,
        bin_seconds=bin_seconds,
        watermark_bins=args.watermark_bins,
        chunk_bins=args.chunk_bins,
        prior=args.prior,
        forward_fraction=args.forward_fraction,
        refit_every=args.refit_every,
        window_bins=args.window_bins,
        window_budget_bytes=int(args.window_budget_mb * 1024 * 1024),
        spill_dir=args.spill_dir,
        measurement_noise=args.measurement_noise,
        seed=args.seed,
        sink=args.sink,
        status_path=status_path,
        checkpoint_path=checkpoint_path,
        estimate_shards_dir=args.estimate_shards,
        max_bins=args.max_bins if args.max_bins > 0 else None,
    )
    previous = {
        sig: signal.signal(sig, service.request_stop)
        for sig in (signal.SIGTERM, signal.SIGINT)
    }
    try:
        with use_backend(args.backend):
            status = service.run()
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    summary = status.to_dict()
    fast = summary.get("fast_path") or {}
    fast_note = ""
    if fast.get("enabled"):
        factor = fast["factor_cache"]
        fast_note = (
            f", fast-path factor hits {factor['hits_equal']}eq/"
            f"{factor['hits_scaled']}sc/{factor['misses']}miss"
        )
    print(
        f"serve: published {summary['bins_published']} bins "
        f"({summary['records_seen']} records, "
        f"{summary['records_dropped_late']} dropped late, "
        f"prior {summary['prior']['mode']} v{summary['prior']['version']}"
        f"{fast_note})"
        + (" [stopped by signal]" if status.stopped_by_signal else ""),
        file=sys.stderr,
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.marts import MART_REGISTRY, build_report, open_archive, render_report

    if args.help_marts:
        for name in sorted(MART_REGISTRY):
            spec = MART_REGISTRY[name]
            print(f"  {name:<18}[{spec.kind}]  {spec.description}")
        return 0
    if args.archive is None:
        print("error: report needs an archive (or --help-marts)", file=sys.stderr)
        return USAGE_EXIT_CODE
    options = {"top_k": args.top}
    if args.bins_per_hour is not None:
        options["bins_per_hour"] = args.bins_per_hour
    if args.epsilon is not None:
        options["epsilon"] = args.epsilon
    window = None
    if args.window is not None:
        start, stop = args.window
        if start < 0 or stop <= start:
            print("error: --window needs 0 <= START < STOP", file=sys.stderr)
            return USAGE_EXIT_CODE
        window = (start, stop)
    archive = open_archive(args.archive)
    report = build_report(
        archive,
        marts=args.marts,
        series=args.series,
        window=window,
        options=options,
    )
    print(render_report(report, args.format))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from repro.obs.export import (
        chrome_trace,
        load_trace_file,
        merge_trace_files,
        summarize_trace,
        write_trace_file,
    )

    try:
        events = (
            merge_trace_files(args.files)
            if len(args.files) > 1
            else load_trace_file(args.files[0])
        )
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return USAGE_EXIT_CODE
    if args.action == "summary":
        print(summarize_trace(events).format_table())
        return 0
    if args.action == "merge":
        if args.output is None:
            for event in events:
                print(json.dumps(event))
        else:
            write_trace_file(events, args.output)
            print(f"wrote {len(events)} events to {args.output}", file=sys.stderr)
        return 0
    payload = json.dumps(chrome_trace(events), indent=2)
    if args.output is None:
        print(payload)
    else:
        from pathlib import Path

        Path(args.output).write_text(payload + "\n")
        print(f"wrote Chrome trace to {args.output}", file=sys.stderr)
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    kinds = [args.kind] if args.kind else sorted(REGISTRIES)
    for index, kind in enumerate(kinds):
        registry = REGISTRIES[kind]
        if index:
            print()
        print(f"{kind}:")
        for entry in registry.entries():
            description = f"  {entry.description}" if entry.description else ""
            if kind == "backends":
                from repro.backend import backend_available

                state = "available" if backend_available(entry.name) else "not installed"
                description = f"{description}  [{state}]"
            if kind == "datasets":
                from repro.synthesis.datasets import streamable_dataset_names

                state = (
                    "streamable"
                    if entry.name in streamable_dataset_names()
                    else "in-memory only"
                )
                description = f"{description}  [{state}]"
            print(f"  {entry.name:<14}{description}")
            if entry.metadata:
                hints = ", ".join(
                    f"{key}={_format_metadata_value(value)}"
                    for key, value in sorted(entry.metadata.items())
                )
                print(f"  {'':<14}  [{hints}]")
    if args.kind in (None, "datasets", "priors"):
        print()
        print("sweeps over these components run in parallel with "
              "`repro sweep --jobs N` (deterministic per-cell seeds).")
    return 0


def _format_metadata_value(value) -> str:
    if isinstance(value, (tuple, list)):
        return "|".join(str(item) for item in value)
    return str(value)


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro import benchmarking

    if args.compare is not None:
        if args.threshold < 0:
            print("error: --threshold must be >= 0", file=sys.stderr)
            return USAGE_EXIT_CODE
        try:
            comparison = benchmarking.compare_bench_files(
                args.compare[0], args.compare[1], threshold=args.threshold
            )
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return USAGE_EXIT_CODE
        print(comparison.format_table())
        return 1 if comparison.has_regressions else 0

    records = benchmarking.run_benchmarks(quick=args.quick, repeat=args.repeat)
    if str(args.output).endswith(".json"):
        path = benchmarking.write_bench_json(records, path=args.output, revision=args.rev)
    else:
        path = benchmarking.write_bench_json(records, directory=args.output, revision=args.rev)
    print(benchmarking.format_records(records))
    print(f"\nwrote {len(records)} benchmark records to {path}")
    return 0


_SUBCOMMANDS = frozenset(
    {"run", "estimate", "sweep", "sweep-worker", "bench", "serve", "report",
     "trace", "list", "-h", "--help"}
)


def _is_legacy_invocation(argv: list[str]) -> bool:
    """Whether ``argv`` is the seed-era form without a subcommand.

    The seed parser took the experiment as the only positional, and argparse
    accepted flags in any position (``--full-scale fig2``), so any invocation
    that skips the subcommand but names an experiment anywhere is legacy.
    """
    if not argv or argv[0] in _SUBCOMMANDS:
        return False
    return any(token == "all" or token in EXPERIMENTS_REGISTRY for token in argv)


def main(argv: list[str] | None = None) -> int:
    """Run the CLI; returns the process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if _is_legacy_invocation(argv):
        # Legacy form: ``python -m repro.cli fig3 [--dataset ...]``.
        argv.insert(0, "run")
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        with _observability(args, args.command):
            return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return USAGE_EXIT_CODE


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    sys.exit(main())

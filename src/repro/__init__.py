"""Reproduction of "An Independent-Connection Model for Traffic Matrices".

This package reimplements, from scratch, the independent-connection (IC)
traffic-matrix model of Erramilli, Crovella and Taft (IMC 2006) together with
every substrate the paper's evaluation depends on:

* traffic-matrix containers and error metrics (:mod:`repro.core`),
* the gravity-model baseline and the IC model family (general, simplified,
  time-varying, stable-f and stable-fP variants),
* parameter fitting by constrained optimisation,
* priors for traffic-matrix estimation (measured, stable-fP pseudo-inverse and
  stable-f closed form),
* a PoP-level topology and routing substrate with routing-matrix construction
  (:mod:`repro.topology`),
* a tomogravity-style estimation pipeline with iterative proportional fitting
  (:mod:`repro.estimation`),
* a bidirectional packet/flow trace substrate implementing the paper's
  f-measurement procedure (:mod:`repro.traces`),
* synthetic traffic-matrix generation and dataset factories standing in for
  the Geant, Totem and Abilene data (:mod:`repro.synthesis`),
* parameter characterisation tools (:mod:`repro.characterization`), and
* one experiment driver per figure of the paper (:mod:`repro.experiments`).

The package's composition layer is the Scenario API: named components
(models, priors, estimators, datasets, topologies) live in the registries of
:mod:`repro.registry`, and :mod:`repro.scenarios` provides the declarative
:class:`Scenario` configuration plus the :class:`ScenarioRunner` that
executes one scenario or a whole grid.  The ``repro`` CLI
(``python -m repro``) is a thin shell over both.

The public API is re-exported here for convenience::

    from repro import Scenario, ScenarioRunner, TrafficMatrixSeries

    result = ScenarioRunner().run(Scenario(dataset="geant", prior="stable_fp"))
"""

from repro.core.traffic_matrix import TrafficMatrix, TrafficMatrixSeries
from repro.core.ic_model import (
    GeneralICModel,
    ICParameters,
    SimplifiedICModel,
    StableFICModel,
    StableFPICModel,
    TimeVaryingICModel,
    degrees_of_freedom,
    general_ic_matrix,
    general_ic_series,
    simplified_ic_matrix,
    simplified_ic_series,
    time_varying_ic_series,
)
from repro.core.gravity import GravityModel, gravity_matrix, gravity_series, gravity_series_values
from repro.core.metrics import (
    mean_relative_error,
    percent_improvement,
    rel_l2_spatial_error,
    rel_l2_temporal_error,
)
from repro.core.fitting import (
    FitResult,
    fit_stable_f,
    fit_stable_fp,
    fit_time_varying,
)
from repro.core.priors import (
    GravityPrior,
    MeasuredParameterPrior,
    StableFPPrior,
    StableFPrior,
)
from repro.errors import RegistryError, ReproError, ShapeError, ValidationError
from repro.registry import (
    DATASETS,
    ESTIMATORS,
    MODELS,
    PRIORS,
    TOPOLOGIES,
    Registry,
    register_dataset,
    register_estimator,
    register_model,
    register_prior,
    register_topology,
)
from repro.backend import (
    Backend,
    available_backends,
    get_backend,
    register_backend,
    use_backend,
)
from repro.scenarios import (
    Scenario,
    ScenarioResult,
    ScenarioRunner,
    SweepResult,
    run_scenario,
    sweep,
)

__version__ = "1.1.0"

__all__ = [
    "TrafficMatrix",
    "TrafficMatrixSeries",
    "ICParameters",
    "GeneralICModel",
    "SimplifiedICModel",
    "TimeVaryingICModel",
    "StableFICModel",
    "StableFPICModel",
    "degrees_of_freedom",
    "general_ic_matrix",
    "general_ic_series",
    "simplified_ic_matrix",
    "simplified_ic_series",
    "time_varying_ic_series",
    "GravityModel",
    "gravity_matrix",
    "gravity_series",
    "gravity_series_values",
    "rel_l2_temporal_error",
    "rel_l2_spatial_error",
    "percent_improvement",
    "mean_relative_error",
    "FitResult",
    "fit_stable_fp",
    "fit_stable_f",
    "fit_time_varying",
    "GravityPrior",
    "MeasuredParameterPrior",
    "StableFPPrior",
    "StableFPrior",
    "ReproError",
    "RegistryError",
    "ShapeError",
    "ValidationError",
    "Registry",
    "MODELS",
    "PRIORS",
    "ESTIMATORS",
    "DATASETS",
    "TOPOLOGIES",
    "register_model",
    "register_prior",
    "register_estimator",
    "register_dataset",
    "register_topology",
    "Scenario",
    "ScenarioResult",
    "ScenarioRunner",
    "SweepResult",
    "run_scenario",
    "sweep",
    "Backend",
    "available_backends",
    "get_backend",
    "register_backend",
    "use_backend",
    "__version__",
]

"""Minimal fixed-width ASCII table rendering.

Shared by the experiment drivers, the scenario runner and the CLI, all of
which print small result tables.  Lives in its own module so that
:mod:`repro.scenarios` does not need to import the experiments package.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_rows"]


def format_rows(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a simple fixed-width ASCII table."""
    columns = [str(h) for h in headers]
    text_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(column) for column in columns]
    for row in text_rows:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    line = "  ".join(column.ljust(widths[i]) for i, column in enumerate(columns))
    separator = "  ".join("-" * width for width in widths)
    body = [
        "  ".join(value.ljust(widths[i]) for i, value in enumerate(row)) for row in text_rows
    ]
    return "\n".join([line, separator, *body])


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)

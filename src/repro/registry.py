"""Pluggable component registries: the backbone of the Scenario API.

Every interchangeable piece of the reproduction — models, priors, estimators,
datasets, topologies and experiment drivers — is registered here under a
short name, so that scenarios, the CLI and future extensions can compose them
by name instead of hard-wiring imports:

    from repro.registry import register_prior

    @register_prior("my_prior", description="...")
    def build_my_prior(context):
        ...

Names are canonicalised (lower-case, dashes and spaces become underscores),
so ``"stable-fP"``, ``"Stable FP"`` and ``"stable_fp"`` all resolve to the
same entry.  Registering the same name twice raises
:class:`repro.errors.RegistryError` unless ``overwrite=True`` is passed;
looking up an unknown name raises it too, with the registered choices named
in the message.

The registries are populated as a side effect of importing the modules that
define the components (``repro.core.priors`` registers the priors, and so
on).  Lookups call :func:`ensure_populated` first, which imports the known
component modules, so ``PRIORS.names()`` is complete even when only this
module has been imported.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

from repro.errors import RegistryError

__all__ = [
    "Registry",
    "RegistryEntry",
    "canonical_name",
    "ensure_populated",
    "MODELS",
    "PRIORS",
    "ESTIMATORS",
    "DATASETS",
    "TOPOLOGIES",
    "EXPERIMENTS_REGISTRY",
    "BACKENDS",
    "REGISTRIES",
    "register_model",
    "register_prior",
    "register_estimator",
    "register_dataset",
    "register_topology",
    "register_experiment",
]


def canonical_name(name: str) -> str:
    """Canonical registry key for ``name`` (lower-case, ``_`` separators)."""
    if not isinstance(name, str) or not name.strip():
        raise RegistryError("component names must be non-empty strings")
    return name.strip().lower().replace("-", "_").replace(" ", "_")


@dataclass(frozen=True)
class RegistryEntry:
    """One registered component: the object plus its lookup metadata."""

    name: str
    obj: Any
    description: str = ""
    metadata: Mapping[str, Any] = field(default_factory=dict)


class Registry:
    """A name → component mapping with decorator-style registration.

    Parameters
    ----------
    kind, plural:
        Singular and plural nouns for the component type, used in error
        messages (``"unknown prior ...; registered priors: ..."``).
    """

    def __init__(self, kind: str, plural: str | None = None):
        self.kind = kind
        self.plural = plural or f"{kind}s"
        self._entries: dict[str, RegistryEntry] = {}

    def register(
        self,
        name: str,
        obj: Any = None,
        *,
        description: str = "",
        metadata: Mapping[str, Any] | None = None,
        overwrite: bool = False,
    ) -> Callable[[Any], Any] | Any:
        """Register ``obj`` under ``name``; usable as a decorator.

        With ``obj`` omitted, returns a decorator::

            @PRIORS.register("stable_fp", description="...")
            def build(...): ...

        When no ``description`` is given, the first line of the object's
        docstring is used.
        """

        def decorate(target: Any) -> Any:
            key = canonical_name(name)
            if key in self._entries and not overwrite:
                raise RegistryError(
                    f"{self.kind} {name!r} is already registered; "
                    "pass overwrite=True to replace it"
                )
            text = description
            if not text:
                doc = getattr(target, "__doc__", None) or ""
                text = doc.strip().splitlines()[0] if doc.strip() else ""
            self._entries[key] = RegistryEntry(
                name=key, obj=target, description=text, metadata=dict(metadata or {})
            )
            return target

        if obj is None:
            return decorate
        return decorate(obj)

    def unregister(self, name: str) -> None:
        """Remove a registered component (raises if the name is unknown)."""
        key = canonical_name(name)
        if key not in self._entries:
            raise RegistryError(f"cannot unregister unknown {self.kind} {name!r}")
        del self._entries[key]

    def entry(self, name: str) -> RegistryEntry:
        """The full :class:`RegistryEntry` for ``name`` (raises if unknown)."""
        ensure_populated()
        key = canonical_name(name)
        if key not in self._entries:
            choices = ", ".join(sorted(self._entries)) or "(none)"
            raise RegistryError(
                f"unknown {self.kind} {name!r}; registered {self.plural}: {choices}"
            )
        return self._entries[key]

    def get(self, name: str) -> Any:
        """The registered object for ``name`` (raises if unknown)."""
        return self.entry(name).obj

    def names(self) -> tuple[str, ...]:
        """All registered names, sorted."""
        ensure_populated()
        return tuple(sorted(self._entries))

    def entries(self) -> tuple[RegistryEntry, ...]:
        """All entries, sorted by name."""
        ensure_populated()
        return tuple(self._entries[name] for name in sorted(self._entries))

    def __contains__(self, name: object) -> bool:
        ensure_populated()
        try:
            return canonical_name(name) in self._entries  # type: ignore[arg-type]
        except RegistryError:
            return False

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        ensure_populated()
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind!r}, entries={list(self._entries)})"


MODELS = Registry("model")
PRIORS = Registry("prior")
ESTIMATORS = Registry("estimator")
DATASETS = Registry("dataset")
TOPOLOGIES = Registry("topology", "topologies")
EXPERIMENTS_REGISTRY = Registry("experiment")
BACKENDS = Registry("backend")

#: Registries by their plural name, as surfaced by ``repro list <kind>``.
REGISTRIES: dict[str, Registry] = {
    "models": MODELS,
    "priors": PRIORS,
    "estimators": ESTIMATORS,
    "datasets": DATASETS,
    "topologies": TOPOLOGIES,
    "experiments": EXPERIMENTS_REGISTRY,
    "backends": BACKENDS,
}

register_model = MODELS.register
register_prior = PRIORS.register
register_estimator = ESTIMATORS.register
register_dataset = DATASETS.register
register_topology = TOPOLOGIES.register
register_experiment = EXPERIMENTS_REGISTRY.register

# Modules whose import populates the registries.  Kept here (rather than in
# each registry) so a lookup against any registry pulls in the whole set.
_COMPONENT_MODULES: tuple[str, ...] = (
    "repro.backend.builtins",
    "repro.core.gravity",
    "repro.core.ic_model",
    "repro.core.priors",
    "repro.estimation.pipeline",
    "repro.synthesis.datasets",
    "repro.topology.library",
    "repro.experiments",
)

_populated = False
_populating = False


def ensure_populated() -> None:
    """Import every known component module so the registries are complete.

    Idempotent and re-entrant: an in-progress flag stops component modules
    that perform lookups while they are being imported from recursing, while
    the done flag is only set once every import succeeded — a failed import
    propagates and the next lookup retries instead of silently serving
    half-empty registries.
    """
    global _populated, _populating
    if _populated or _populating:
        return
    _populating = True
    try:
        for module in _COMPONENT_MODULES:
            importlib.import_module(module)
        _populated = True
    finally:
        _populating = False

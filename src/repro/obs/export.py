"""Trace post-processing: merge, per-stage summary, Chrome export.

The on-disk trace format is one JSON object per line:

* ``{"kind": "trace_start", "trace", "worker", "pid", "start_unix"}`` —
  written once when a file-backed tracer opens;
* ``{"kind": "span", "trace", "span", "parent", "name", "worker",
  "pid", "start_unix", "duration_s", "attrs"}`` — one per closed span.

Workers ship their span events back inside executor replies, so a
single driver trace file already contains the whole distributed run;
:func:`merge_trace_files` additionally concatenates traces captured in
separate files (e.g. several drivers) into one event list.

:func:`summarize_trace` renders the per-stage breakdown behind
``repro trace summary``: per span-name count/total/share plus a
*coverage* figure — the union of all span intervals as a fraction of
the run's wall-clock extent, i.e. how much of the run is accounted for
by at least one span.  Totals per name may exceed the wall time on
parallel runs (that is concurrency, not an error); coverage never does.

:func:`chrome_trace` converts events to Chrome ``trace_event`` JSON
(``ph: "X"`` complete events, microsecond timestamps) with one virtual
pid per worker label, so perfetto / ``about://tracing`` lays a
distributed sweep out as one lane per worker.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = [
    "load_trace_file",
    "merge_trace_files",
    "write_trace_file",
    "chrome_trace",
    "TraceSummary",
    "summarize_trace",
]


def load_trace_file(path) -> list[dict]:
    """Parse one JSONL trace file (blank lines skipped)."""
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_no}: not valid JSON ({exc})") from exc
            if not isinstance(event, dict):
                raise ValueError(f"{path}:{line_no}: trace events must be JSON objects")
            events.append(event)
    return events


def merge_trace_files(paths) -> list[dict]:
    """Concatenate trace files into one chronological event list."""
    events: list[dict] = []
    for path in paths:
        events.extend(load_trace_file(path))
    events.sort(key=lambda e: (e.get("start_unix", 0.0), e.get("kind") != "trace_start"))
    return events


def write_trace_file(events, path) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event) + "\n")


def chrome_trace(events) -> dict:
    """Convert trace events to Chrome ``trace_event`` JSON."""
    worker_pids: dict[str, int] = {}
    trace_events = []
    for event in events:
        if event.get("kind") != "span":
            continue
        worker = str(event.get("worker", "driver"))
        if worker not in worker_pids:
            pid = len(worker_pids) + 1
            worker_pids[worker] = pid
            trace_events.append(
                {"name": "process_name", "ph": "M", "pid": pid, "tid": 0, "args": {"name": worker}}
            )
        trace_events.append(
            {
                "name": event.get("name", "?"),
                "cat": "repro",
                "ph": "X",
                "pid": worker_pids[worker],
                "tid": event.get("pid", 0),
                "ts": float(event.get("start_unix", 0.0)) * 1e6,
                "dur": float(event.get("duration_s", 0.0)) * 1e6,
                "args": dict(event.get("attrs") or {}, span=event.get("span"), parent=event.get("parent")),
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def _interval_union(intervals) -> float:
    """Total length covered by a set of (start, end) intervals."""
    ordered = sorted(intervals)
    covered = 0.0
    cursor = None
    for start, end in ordered:
        if end <= start:
            continue
        if cursor is None or start > cursor[1]:
            if cursor is not None:
                covered += cursor[1] - cursor[0]
            cursor = [start, end]
        elif end > cursor[1]:
            cursor[1] = end
    if cursor is not None:
        covered += cursor[1] - cursor[0]
    return covered


@dataclass
class TraceSummary:
    """Per-stage breakdown of a (possibly merged, distributed) trace."""

    wall_seconds: float
    coverage: float  # fraction of wall time inside >=1 span
    spans: int
    workers: tuple
    errors: int
    stages: list = field(default_factory=list)  # (name, count, total_s, share)

    def format_table(self) -> str:
        lines = [
            f"{'stage':<24} {'count':>7} {'total_s':>10} {'share':>7}",
            "-" * 52,
        ]
        for name, count, total, share in self.stages:
            lines.append(f"{name:<24} {count:>7} {total:>10.3f} {share:>6.1f}%")
        lines.append("-" * 52)
        lines.append(
            f"wall {self.wall_seconds:.3f}s · {self.spans} spans · "
            f"{len(self.workers)} worker(s) · {self.errors} error(s) · "
            f"coverage {self.coverage * 100:.1f}% of wall"
        )
        return "\n".join(lines)


def summarize_trace(events) -> TraceSummary:
    spans = [e for e in events if e.get("kind") == "span"]
    if not spans:
        return TraceSummary(0.0, 0.0, 0, (), 0)
    intervals = []
    by_name: dict[str, list] = {}
    workers = set()
    errors = 0
    for span in spans:
        start = float(span.get("start_unix", 0.0))
        duration = max(0.0, float(span.get("duration_s", 0.0)))
        intervals.append((start, start + duration))
        by_name.setdefault(str(span.get("name", "?")), []).append(duration)
        workers.add(str(span.get("worker", "driver")))
        if "error" in (span.get("attrs") or {}):
            errors += 1
    t0 = min(start for start, _ in intervals)
    t1 = max(end for _, end in intervals)
    wall = max(t1 - t0, 1e-12)
    coverage = min(_interval_union(intervals) / wall, 1.0)
    stages = sorted(
        (
            (name, len(durations), sum(durations), 100.0 * sum(durations) / wall)
            for name, durations in by_name.items()
        ),
        key=lambda row: row[2],
        reverse=True,
    )
    return TraceSummary(
        wall_seconds=wall,
        coverage=coverage,
        spans=len(spans),
        workers=tuple(sorted(workers)),
        errors=errors,
        stages=stages,
    )

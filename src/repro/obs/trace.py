"""Nested-span tracing with cross-process context propagation.

Every traced region is a :class:`Span` used as a context manager::

    tracer = Tracer(path="trace.jsonl")
    with use_tracer(tracer):
        with get_tracer().span("sweep_cell", label="gravity/geant"):
            ...

Spans nest through a per-thread stack, so concurrently executing threads
(e.g. the :class:`~repro.scenarios.executors.RemoteExecutor` driver
threads) each build their own causal chain under the same trace.  A span
records its wall-clock start (``time.time()``) and a monotonic duration
(``time.perf_counter()``), closing into one JSONL event; an exception
escaping the ``with`` block closes the span with an ``error=`` attribute
instead of leaking it.

Cross-process propagation is a two-key dict, not a header format:
:func:`worker_context` captures ``{"trace": ..., "span": ...}`` at the
call site, ships inside the existing pool payload / wire message, and
:func:`tracer_from_context` builds a *capture-mode* tracer in the worker
whose spans parent onto the caller's span.  Workers return
``tracer.drain()`` with their reply and the caller ``ingest()``s the
events — one merged trace, no shared files, no clock coordination beyond
each host's ``time.time()``.

The ambient tracer (:func:`get_tracer`) defaults to the shared
:class:`NullTracer`, whose ``span()`` hands back a single reusable no-op
span — the disabled hot path is two attribute lookups and an empty
``with``, which is what keeps ``bench_obs_overhead`` under budget.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
import uuid
from contextlib import contextmanager

__all__ = [
    "TRACE_ENV",
    "Span",
    "Tracer",
    "NullTracer",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "start_tracing",
    "worker_context",
    "tracer_from_context",
]

# Environment opt-in: REPRO_TRACE=<path> traces any repro command.
TRACE_ENV = "REPRO_TRACE"


class Span:
    """One traced region; records a JSONL event when its ``with`` exits."""

    __slots__ = ("_tracer", "name", "span_id", "parent_id", "attrs", "_t0_wall", "_t0_perf")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self.name = str(name)
        self.span_id: str | None = None
        self.parent_id: str | None = None
        self.attrs = attrs

    def set(self, **attrs) -> "Span":
        """Attach attributes to the span (last write per key wins)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self.span_id, self.parent_id = self._tracer._push(self)
        self._t0_wall = time.time()
        self._t0_perf = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._t0_perf
        if exc_type is not None and "error" not in self.attrs:
            self.attrs["error"] = f"{exc_type.__name__}: {exc}"
        self._tracer._pop(self, duration)
        return False


class _NullSpan:
    """Reusable do-nothing span handed out by :class:`NullTracer`."""

    __slots__ = ()

    def set(self, **attrs) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: every operation is a no-op.

    Installed as the ambient default so instrumentation sites never need
    an ``if tracing:`` guard — ``get_tracer().span(...)`` is always legal.
    """

    enabled = False
    worker = None

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def context(self) -> None:
        return None

    def ingest(self, events) -> None:
        pass

    def drain(self) -> list:
        return []

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


class Tracer:
    """Collects spans as JSONL events, to a file or an in-memory buffer.

    Parameters
    ----------
    path:
        JSONL sink.  When ``None`` the tracer runs in *capture mode*,
        buffering events for :meth:`drain` — the worker-side half of
        cross-process propagation.
    worker:
        Label stamped on every event (``"driver"``, a pool pid, a remote
        ``host:port``); the trace summary and Chrome export group by it.
    context:
        A :func:`worker_context` dict from the parent process.  Adopts
        the parent's trace id, and root spans of this tracer parent onto
        the caller's active span instead of floating free.
    """

    enabled = True

    def __init__(self, path=None, *, worker: str = "driver", context: dict | None = None):
        if context:
            self.trace_id = str(context["trace"])
            self._root_parent = context.get("span")
        else:
            self.trace_id = uuid.uuid4().hex[:16]
            self._root_parent = None
        self.worker = str(worker)
        self.path = None if path is None else os.fspath(path)
        self._prefix = uuid.uuid4().hex[:6]
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._capture: list[dict] = []
        self._handle = None
        if self.path is not None:
            self._handle = open(self.path, "a", encoding="utf-8")
            self._emit(
                {
                    "kind": "trace_start",
                    "trace": self.trace_id,
                    "worker": self.worker,
                    "pid": os.getpid(),
                    "start_unix": time.time(),
                }
            )

    # -- span lifecycle ------------------------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs) -> Span:
        return Span(self, name, attrs)

    def _push(self, span: Span) -> tuple[str, str | None]:
        stack = self._stack()
        parent = stack[-1].span_id if stack else self._root_parent
        stack.append(span)
        return f"{self._prefix}-{next(self._ids)}", parent

    def _pop(self, span: Span, duration: float) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # pragma: no cover - mis-nested exit, be lenient
            stack.remove(span)
        self._emit(
            {
                "kind": "span",
                "trace": self.trace_id,
                "span": span.span_id,
                "parent": span.parent_id,
                "name": span.name,
                "worker": self.worker,
                "pid": os.getpid(),
                "start_unix": span._t0_wall,
                "duration_s": duration,
                "attrs": span.attrs,
            }
        )

    # -- event plumbing ------------------------------------------------------

    def _emit(self, event: dict) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.write(json.dumps(event) + "\n")
            else:
                self._capture.append(event)

    def ingest(self, events) -> None:
        """Absorb events a worker shipped back (already fully formed)."""
        for event in events or ():
            self._emit(dict(event))

    def drain(self) -> list[dict]:
        """Return and clear the captured events (capture mode only)."""
        with self._lock:
            events, self._capture = self._capture, []
        return events

    def context(self) -> dict:
        """Propagation context for the current thread's active span."""
        stack = self._stack()
        return {
            "trace": self.trace_id,
            "span": stack[-1].span_id if stack else self._root_parent,
        }

    def flush(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


_NULL_TRACER = NullTracer()
_active: NullTracer | Tracer = _NULL_TRACER
_active_lock = threading.Lock()


def get_tracer():
    """The ambient tracer (the shared :class:`NullTracer` by default)."""
    return _active


def set_tracer(tracer):
    """Install ``tracer`` as ambient; ``None`` restores the null tracer."""
    global _active
    with _active_lock:
        _active = tracer if tracer is not None else _NULL_TRACER
    return _active


@contextmanager
def use_tracer(tracer):
    """Scope the ambient tracer to a ``with`` block, then restore."""
    previous = _active
    set_tracer(tracer)
    try:
        yield get_tracer()
    finally:
        set_tracer(previous)


def start_tracing(path, *, worker: str = "driver") -> Tracer:
    """Open a file-backed tracer and install it as ambient."""
    tracer = Tracer(path, worker=worker)
    set_tracer(tracer)
    return tracer


def worker_context(tracer=None) -> dict | None:
    """Context to ship to a worker, or ``None`` when tracing is off."""
    tracer = tracer if tracer is not None else _active
    return tracer.context() if tracer.enabled else None


def tracer_from_context(context: dict | None, *, worker: str):
    """Worker-side tracer adopting a shipped context (null when absent)."""
    if context is None:
        return _NULL_TRACER
    return Tracer(worker=worker, context=context)

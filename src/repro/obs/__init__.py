"""Unified telemetry plane: tracing + metrics for every execution layer.

``repro.obs`` is the observability layer the rest of the system reports
through.  It is deliberately zero-dependency (stdlib only) and built
around two primitives:

* :mod:`repro.obs.trace` — a :class:`Tracer` producing nested spans
  (``synthesize``, ``fit_als_pass``, ``estimate_chunk``, ``sweep_cell``,
  ``emit``, ``bin_publish``…) as JSONL events.  Span context propagates
  over the :class:`~repro.scenarios.executors.RemoteExecutor` wire
  protocol and through pool workers, so a distributed sweep yields one
  merged, causally-linked trace; :mod:`repro.obs.export` renders it as a
  per-stage summary or Chrome ``trace_event`` JSON for perfetto.
* :mod:`repro.obs.metrics` — a process-local :class:`MetricsRegistry` of
  counters, gauges and bounded-reservoir histograms (p50/p95/p99),
  exposed as Prometheus text format, over stdlib HTTP
  (``repro serve --metrics-port``) or to a file (``--metrics-out``).

Both primitives have no-op twins (:class:`NullTracer`,
:class:`NullMetricsRegistry`) installed as the ambient default, so
instrumented hot paths pay ~nothing until a user opts in with
``--trace``/``REPRO_TRACE``/``--metrics-out`` — the invariant
``bench_obs_overhead`` guards.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsServer,
    NullMetricsRegistry,
    get_metrics,
    set_metrics,
    use_metrics,
)
from repro.obs.trace import (
    TRACE_ENV,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    start_tracing,
    tracer_from_context,
    use_tracer,
    worker_context,
)

__all__ = [
    "TRACE_ENV",
    "Span",
    "Tracer",
    "NullTracer",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "start_tracing",
    "worker_context",
    "tracer_from_context",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "MetricsServer",
    "get_metrics",
    "set_metrics",
    "use_metrics",
]

"""Process-local metrics: counters, gauges, reservoir histograms.

A :class:`MetricsRegistry` keys instruments by ``(name, labels)`` and
renders the whole collection as Prometheus text exposition format —
counters and gauges verbatim, histograms as ``summary`` metrics with
``quantile`` labels plus ``_sum``/``_count``/``_min``/``_max`` series.
:class:`MetricsServer` serves that text over stdlib HTTP (the
``repro serve --metrics-port`` endpoint); :meth:`MetricsRegistry.write_file`
dumps the same text for batch commands (``--metrics-out``).

Histograms use Vitter's reservoir sampling: a bounded sample (default
512 values) that stays uniform over the full observation stream, so a
daemon observing millions of stage latencies answers p50/p95/p99 from
flat memory — the fix for the previously windowed/unbounded per-stage
sample lists in :mod:`repro.ingest.service`.

The ambient registry (:func:`get_metrics`) defaults to the shared
:class:`NullMetricsRegistry`, whose instruments swallow every update, so
hot paths can ``get_metrics().counter(...).inc()`` unconditionally.
"""

from __future__ import annotations

import math
import os
import random
import threading
import zlib
from contextlib import contextmanager
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "MetricsServer",
    "get_metrics",
    "set_metrics",
    "use_metrics",
]

DEFAULT_RESERVOIR = 512
QUANTILES = (0.5, 0.95, 0.99)


class Counter:
    """Monotonically increasing value."""

    kind = "counter"

    def __init__(self, name: str, labels: tuple):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def set_total(self, value: float) -> None:
        """Sync to an externally tracked monotonic total (never decreases)."""
        with self._lock:
            self._value = max(self._value, float(value))

    @property
    def value(self) -> float:
        return self._value

    def render(self) -> list[tuple[str, float]]:
        return [(_series(self.name, self.labels), self._value)]


class Gauge:
    """Value that can move both ways."""

    kind = "gauge"

    def __init__(self, name: str, labels: tuple):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def render(self) -> list[tuple[str, float]]:
        return [(_series(self.name, self.labels), self._value)]


class Histogram:
    """Bounded-reservoir histogram with exact count/sum/min/max.

    The reservoir (Vitter's algorithm R) keeps a uniform sample of every
    observation ever made, in ``O(reservoir)`` memory regardless of
    stream length; quantiles are computed from the sorted sample with
    linear interpolation.  The RNG is seeded per instrument, so a given
    observation sequence yields reproducible quantiles.
    """

    kind = "histogram"

    def __init__(self, name: str, labels: tuple, *, reservoir: int = DEFAULT_RESERVOIR):
        if reservoir < 1:
            raise ValueError("histogram reservoir must be >= 1")
        self.name = name
        self.labels = labels
        self.reservoir = int(reservoir)
        self._samples: list[float] = []
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._rng = random.Random(zlib.crc32(repr((name, labels)).encode()))
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if len(self._samples) < self.reservoir:
                self._samples.append(value)
            else:
                slot = self._rng.randrange(self._count)
                if slot < self.reservoir:
                    self._samples[slot] = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def min(self) -> float:
        return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        return self._max if self._count else 0.0

    @property
    def sample_size(self) -> int:
        """Values held in memory — never exceeds the reservoir bound."""
        return len(self._samples)

    def quantile(self, q: float) -> float:
        with self._lock:
            ordered = sorted(self._samples)
        if not ordered:
            return 0.0
        position = (len(ordered) - 1) * float(q)
        low = int(math.floor(position))
        high = min(low + 1, len(ordered) - 1)
        fraction = position - low
        return ordered[low] * (1.0 - fraction) + ordered[high] * fraction

    def snapshot(self) -> dict:
        with self._lock:
            ordered = sorted(self._samples)
            count, total = self._count, self._sum
        quantiles = {}
        for q in QUANTILES:
            if not ordered:
                quantiles[q] = 0.0
                continue
            position = (len(ordered) - 1) * q
            low = int(math.floor(position))
            high = min(low + 1, len(ordered) - 1)
            fraction = position - low
            quantiles[q] = ordered[low] * (1.0 - fraction) + ordered[high] * fraction
        return {
            "count": count,
            "sum": total,
            "min": self.min,
            "max": self.max,
            "p50": quantiles[0.5],
            "p95": quantiles[0.95],
            "p99": quantiles[0.99],
        }

    def render(self) -> list[tuple[str, float]]:
        snap = self.snapshot()
        series = []
        for q in QUANTILES:
            labels = self.labels + (("quantile", _format_value(q)),)
            series.append((_series(self.name, labels), snap[f"p{int(q * 100)}"]))
        series.append((_series(self.name + "_sum", self.labels), snap["sum"]))
        series.append((_series(self.name + "_count", self.labels), snap["count"]))
        series.append((_series(self.name + "_min", self.labels), snap["min"]))
        series.append((_series(self.name + "_max", self.labels), snap["max"]))
        return series


def _format_value(value: float) -> str:
    text = repr(float(value))
    return text[:-2] if text.endswith(".0") else text


def _series(name: str, labels: tuple) -> str:
    if not labels:
        return name
    body = ",".join(f'{key}="{value}"' for key, value in labels)
    return f"{name}{{{body}}}"


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram."""

    __slots__ = ()
    value = 0.0
    count = 0
    sum = 0.0
    min = 0.0
    max = 0.0
    sample_size = 0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_total(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def snapshot(self) -> dict:
        return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry:
    """Disabled registry: hands out a shared no-op instrument."""

    enabled = False

    def counter(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, *, reservoir: int = DEFAULT_RESERVOIR, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def to_prometheus(self) -> str:
        return ""

    def write_file(self, path) -> None:
        pass

    def snapshot(self) -> dict:
        return {}


class MetricsRegistry:
    """Instruments keyed by ``(name, sorted labels)``; idempotent getters."""

    enabled = True

    def __init__(self):
        self._instruments: dict[tuple, object] = {}
        self._lock = threading.Lock()

    def _get(self, factory, kind: str, name: str, labels: dict, **kwargs):
        key = (name, tuple(sorted((str(k), str(v)) for k, v in labels.items())))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = factory(name, key[1], **kwargs)
                self._instruments[key] = instrument
            elif instrument.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {instrument.kind}, "
                    f"requested as {kind}"
                )
        return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, "counter", name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, "gauge", name, labels)

    def histogram(self, name: str, *, reservoir: int = DEFAULT_RESERVOIR, **labels) -> Histogram:
        return self._get(Histogram, "histogram", name, labels, reservoir=reservoir)

    def to_prometheus(self) -> str:
        """Render every instrument as Prometheus text exposition format."""
        with self._lock:
            instruments = list(self._instruments.values())
        by_name: dict[str, list] = {}
        for instrument in instruments:
            by_name.setdefault(instrument.name, []).append(instrument)
        lines = []
        for name in sorted(by_name):
            group = by_name[name]
            prom_type = "summary" if group[0].kind == "histogram" else group[0].kind
            lines.append(f"# TYPE {name} {prom_type}")
            for instrument in group:
                for series, value in instrument.render():
                    lines.append(f"{series} {_format_value(value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def write_file(self, path) -> None:
        with open(os.fspath(path), "w", encoding="utf-8") as handle:
            handle.write(self.to_prometheus())

    def snapshot(self) -> dict:
        """``{series: value-or-histogram-snapshot}`` for tests/status JSON."""
        with self._lock:
            instruments = list(self._instruments.values())
        out = {}
        for instrument in instruments:
            key = _series(instrument.name, instrument.labels)
            if instrument.kind == "histogram":
                out[key] = instrument.snapshot()
            else:
                out[key] = instrument.value
        return out


_NULL_REGISTRY = NullMetricsRegistry()
_active: NullMetricsRegistry | MetricsRegistry = _NULL_REGISTRY
_active_lock = threading.Lock()


def get_metrics():
    """The ambient registry (the shared null registry by default)."""
    return _active


def set_metrics(registry):
    """Install ``registry`` as ambient; ``None`` restores the null one."""
    global _active
    with _active_lock:
        _active = registry if registry is not None else _NULL_REGISTRY
    return _active


@contextmanager
def use_metrics(registry):
    """Scope the ambient registry to a ``with`` block, then restore."""
    previous = _active
    set_metrics(registry)
    try:
        yield get_metrics()
    finally:
        set_metrics(previous)


class _MetricsHandler(BaseHTTPRequestHandler):
    registry: MetricsRegistry  # injected by MetricsServer

    def do_GET(self):  # noqa: N802 - http.server API
        if self.path.split("?", 1)[0] in ("/", "/metrics"):
            body = self.registry.to_prometheus().encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        else:
            self.send_response(404)
            self.end_headers()

    def log_message(self, format, *args):  # noqa: A002 - http.server API
        pass


class MetricsServer:
    """Serve a registry's Prometheus text over stdlib HTTP.

    Binds ``host:port`` (``port=0`` picks an ephemeral port — read it
    back from :attr:`port`) and serves ``GET /metrics`` from a daemon
    thread until :meth:`close`.
    """

    def __init__(self, registry, *, host: str = "127.0.0.1", port: int = 0):
        handler = type("BoundMetricsHandler", (_MetricsHandler,), {"registry": registry})
        self._server = ThreadingHTTPServer((host, int(port)), handler)
        self.host, self.port = self._server.server_address[:2]
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="repro-metrics", daemon=True
        )
        self._thread.start()

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5)

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

"""Week-over-week stability metrics for IC-model parameters (Figures 5, 6, 8).

The paper's argument for the stable-f and stable-fP model variants rests on
two empirical observations: the fitted ``f`` values of successive weeks are
nearly constant, and the fitted preference vectors are nearly identical from
week to week (while being highly variable *across* nodes).  This module turns
those observations into numbers: coefficients of variation, week-to-week
correlations and relative changes, plus the correlation diagnostics used to
argue that preference is not simply explained by egress volume (Figure 8) or
by activity level (Section 5.4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import as_1d_array
from repro.errors import ShapeError, ValidationError

__all__ = ["StabilityReport", "parameter_stability", "preference_stability", "correlation"]


@dataclass(frozen=True)
class StabilityReport:
    """Stability summary of a scalar or vector parameter across weeks.

    Attributes
    ----------
    mean:
        Mean value (scalar) or per-node mean (vector) across weeks.
    coefficient_of_variation:
        Std/mean across weeks (scalar), or the maximum across nodes of the
        per-node std/mean (vector) — small values mean "stable in time".
    max_relative_change:
        Largest relative change between consecutive weeks.
    week_to_week_correlation:
        Mean Pearson correlation between consecutive weeks' vectors (1.0 for
        scalars, where correlation is not meaningful).
    """

    mean: float | np.ndarray
    coefficient_of_variation: float
    max_relative_change: float
    week_to_week_correlation: float


def parameter_stability(values_per_week) -> StabilityReport:
    """Stability of a scalar parameter (e.g. ``f``) across weeks."""
    values = as_1d_array(values_per_week, "values_per_week")
    if values.size < 2:
        raise ValidationError("need at least two weeks to assess stability")
    mean = float(values.mean())
    std = float(values.std(ddof=0))
    cov = std / mean if mean > 0 else np.inf
    consecutive = np.abs(np.diff(values)) / np.maximum(np.abs(values[:-1]), 1e-12)
    return StabilityReport(
        mean=mean,
        coefficient_of_variation=float(cov),
        max_relative_change=float(consecutive.max()),
        week_to_week_correlation=1.0,
    )


def preference_stability(preference_per_week) -> StabilityReport:
    """Stability of a preference vector across weeks.

    Parameters
    ----------
    preference_per_week:
        Array of shape ``(weeks, n)``; each row a (normalised) preference
        vector fitted to one week.
    """
    matrix = np.asarray(preference_per_week, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] < 2:
        raise ShapeError("preference_per_week must have shape (weeks >= 2, n)")
    per_node_mean = matrix.mean(axis=0)
    per_node_std = matrix.std(axis=0, ddof=0)
    with np.errstate(divide="ignore", invalid="ignore"):
        per_node_cov = np.where(per_node_mean > 0, per_node_std / np.where(per_node_mean > 0, per_node_mean, 1.0), 0.0)
    consecutive_changes = []
    correlations = []
    for week in range(matrix.shape[0] - 1):
        previous, current = matrix[week], matrix[week + 1]
        denominator = np.maximum(previous, 1e-12)
        consecutive_changes.append(float(np.max(np.abs(current - previous) / denominator)))
        correlations.append(correlation(previous, current))
    return StabilityReport(
        mean=per_node_mean,
        coefficient_of_variation=float(np.max(per_node_cov)),
        max_relative_change=float(np.max(consecutive_changes)),
        week_to_week_correlation=float(np.mean(correlations)),
    )


def correlation(x, y) -> float:
    """Pearson correlation coefficient between two equal-length vectors.

    Returns 0.0 when either vector is constant (correlation undefined), which
    is the conservative choice for the independence arguments it supports.
    """
    x = as_1d_array(x, "x")
    y = as_1d_array(y, "y", length=x.shape[0])
    if x.size < 2:
        raise ValidationError("correlation needs at least two points")
    x_std = x.std(ddof=0)
    y_std = y.std(ddof=0)
    if x_std <= 0 or y_std <= 0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])

"""Distributional analysis of preference values (Figure 7).

The paper examines the complementary CDF of the fitted ``{P_i}`` values and
compares maximum-likelihood exponential and lognormal fits, concluding that
the long-tailed lognormal (``mu ≈ -4.3``, ``sigma ≈ 1.7``) matches the tail
far better.  This module provides the empirical CCDF, both MLE fits and a
simple goodness-of-fit comparison (log-likelihood and Kolmogorov-Smirnov
distance).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro._validation import as_1d_array
from repro.errors import ValidationError

__all__ = [
    "DistributionFit",
    "empirical_ccdf",
    "fit_exponential",
    "fit_lognormal",
    "compare_tail_fits",
]


@dataclass(frozen=True)
class DistributionFit:
    """A fitted candidate distribution and its goodness-of-fit numbers.

    Attributes
    ----------
    name:
        ``"exponential"`` or ``"lognormal"``.
    parameters:
        Distribution parameters: ``{"scale": ...}`` for the exponential,
        ``{"mu": ..., "sigma": ...}`` for the lognormal.
    log_likelihood:
        Total log-likelihood of the data under the fit.
    ks_distance:
        Kolmogorov-Smirnov distance between the data and the fit.
    """

    name: str
    parameters: dict[str, float]
    log_likelihood: float
    ks_distance: float

    def ccdf(self, x: np.ndarray) -> np.ndarray:
        """The fitted distribution's CCDF evaluated at ``x``."""
        x = np.asarray(x, dtype=float)
        if self.name == "exponential":
            return np.exp(-x / self.parameters["scale"])
        if self.name == "lognormal":
            return 1.0 - stats.lognorm.cdf(
                x, s=self.parameters["sigma"], scale=np.exp(self.parameters["mu"])
            )
        raise ValidationError(f"unknown distribution {self.name!r}")


def _positive_values(values, name: str) -> np.ndarray:
    array = as_1d_array(values, name)
    array = array[array > 0]
    if array.size < 2:
        raise ValidationError(f"{name} needs at least two positive values to fit a distribution")
    return array


def empirical_ccdf(values) -> tuple[np.ndarray, np.ndarray]:
    """The empirical complementary CDF of ``values``.

    Returns ``(sorted_values, ccdf)`` where ``ccdf[k]`` is the fraction of
    observations strictly greater than or equal to ``sorted_values[k]``
    (plotted on log-log axes in the paper's Figure 7).
    """
    array = np.sort(as_1d_array(values, "values"))
    n = array.size
    if n == 0:
        raise ValidationError("values must not be empty")
    ccdf = 1.0 - np.arange(n) / n
    return array, ccdf


def fit_exponential(values) -> DistributionFit:
    """Maximum-likelihood exponential fit (MLE scale = sample mean)."""
    array = _positive_values(values, "values")
    scale = float(array.mean())
    log_likelihood = float(np.sum(stats.expon.logpdf(array, scale=scale)))
    ks = float(stats.kstest(array, "expon", args=(0.0, scale)).statistic)
    return DistributionFit(
        name="exponential",
        parameters={"scale": scale},
        log_likelihood=log_likelihood,
        ks_distance=ks,
    )


def fit_lognormal(values) -> DistributionFit:
    """Maximum-likelihood lognormal fit (MLE on the log of the data)."""
    array = _positive_values(values, "values")
    logs = np.log(array)
    mu = float(logs.mean())
    sigma = float(logs.std(ddof=0))
    sigma = max(sigma, 1e-9)
    log_likelihood = float(
        np.sum(stats.lognorm.logpdf(array, s=sigma, scale=np.exp(mu)))
    )
    ks = float(stats.kstest(array, "lognorm", args=(sigma, 0.0, np.exp(mu))).statistic)
    return DistributionFit(
        name="lognormal",
        parameters={"mu": mu, "sigma": sigma},
        log_likelihood=log_likelihood,
        ks_distance=ks,
    )


def compare_tail_fits(values) -> dict[str, DistributionFit]:
    """Fit both candidate distributions and return them keyed by name.

    The paper's conclusion corresponds to the lognormal fit having the higher
    log-likelihood (and smaller KS distance) on the preference values.
    """
    return {
        "exponential": fit_exponential(values),
        "lognormal": fit_lognormal(values),
    }

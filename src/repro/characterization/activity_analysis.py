"""Activity-series analysis (Figure 9 and Section 5.4).

The fitted activity levels ``A_i(t)`` are expected to show strong daily
periodicity, reduced weekend activity, and more pronounced/cleaner patterns
for larger nodes.  The tools here quantify those properties: dominant period
detection by discrete Fourier transform, day/night and weekday/weekend
ratios, and a per-node summary used by the Figure 9 experiment to pick its
"largest / medium / smallest node" examples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError, ValidationError

__all__ = ["ActivitySummary", "dominant_period", "weekend_ratio", "analyze_activity"]

_SECONDS_PER_DAY = 86400.0


def dominant_period(series, *, bin_seconds: float = 300.0) -> float:
    """Dominant period (in seconds) of a single activity time series.

    The mean is removed and the period of the largest spectral peak returned.
    For a diurnal series sampled over at least two days this is ~86400 s.
    """
    values = np.asarray(series, dtype=float)
    if values.ndim != 1 or values.size < 4:
        raise ShapeError("series must be a 1-D array with at least 4 samples")
    if bin_seconds <= 0:
        raise ValidationError("bin_seconds must be positive")
    centred = values - values.mean()
    spectrum = np.abs(np.fft.rfft(centred))
    frequencies = np.fft.rfftfreq(values.size, d=bin_seconds)
    spectrum[0] = 0.0
    peak = int(np.argmax(spectrum))
    if frequencies[peak] <= 0:
        return float("inf")
    return float(1.0 / frequencies[peak])


def weekend_ratio(series, *, bin_seconds: float = 300.0, start_seconds: float = 0.0) -> float:
    """Mean weekend activity divided by mean weekday activity.

    Values below 1 indicate the weekend dip the paper observes.  Returns 1.0
    when the series covers no weekend (or no weekday) bins.
    """
    values = np.asarray(series, dtype=float)
    if values.ndim != 1:
        raise ShapeError("series must be one-dimensional")
    times = start_seconds + np.arange(values.size) * bin_seconds
    day_of_week = np.floor((times % (7 * _SECONDS_PER_DAY)) / _SECONDS_PER_DAY)
    weekend_mask = day_of_week >= 5
    if not np.any(weekend_mask) or np.all(weekend_mask):
        return 1.0
    weekday_mean = float(values[~weekend_mask].mean())
    weekend_mean = float(values[weekend_mask].mean())
    if weekday_mean <= 0:
        return 1.0
    return weekend_mean / weekday_mean


@dataclass(frozen=True)
class ActivitySummary:
    """Per-node summary of an activity ensemble ``A_i(t)``.

    Attributes
    ----------
    mean_levels:
        Per-node mean activity, shape ``(n,)``.
    dominant_periods:
        Per-node dominant period in seconds, shape ``(n,)``.
    relative_amplitude:
        Per-node peak-to-mean ratio of the daily cycle (larger = more
        pronounced diurnal pattern), shape ``(n,)``.
    largest, median_node, smallest:
        Indices of the nodes with the largest, median and smallest mean
        activity — the three series plotted in Figure 9.
    """

    mean_levels: np.ndarray
    dominant_periods: np.ndarray
    relative_amplitude: np.ndarray
    largest: int
    median_node: int
    smallest: int


def analyze_activity(activity, *, bin_seconds: float = 300.0) -> ActivitySummary:
    """Summarise an ``(T, n)`` activity ensemble."""
    values = np.asarray(activity, dtype=float)
    if values.ndim != 2 or values.shape[0] < 4:
        raise ShapeError("activity must have shape (T >= 4, n)")
    means = values.mean(axis=0)
    periods = np.array(
        [dominant_period(values[:, i], bin_seconds=bin_seconds) for i in range(values.shape[1])]
    )
    with np.errstate(divide="ignore", invalid="ignore"):
        amplitude = np.where(
            means > 0, (values.max(axis=0) - values.min(axis=0)) / np.where(means > 0, means, 1.0), 0.0
        )
    order = np.argsort(means)
    return ActivitySummary(
        mean_levels=means,
        dominant_periods=periods,
        relative_amplitude=amplitude,
        largest=int(order[-1]),
        median_node=int(order[len(order) // 2]),
        smallest=int(order[0]),
    )

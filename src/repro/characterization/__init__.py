"""Empirical characterisation of IC-model parameters (paper Section 5).

* :mod:`repro.characterization.distributions` — CCDFs and maximum-likelihood
  exponential / lognormal fits (Figure 7).
* :mod:`repro.characterization.stability` — week-over-week stability metrics
  for ``f`` and ``{P_i}`` (Figures 5, 6) and correlation diagnostics
  (Figure 8; preference-versus-activity independence check).
* :mod:`repro.characterization.activity_analysis` — periodicity and weekend
  analysis of activity time series (Figure 9).
"""

from repro.characterization.distributions import (
    DistributionFit,
    empirical_ccdf,
    fit_exponential,
    fit_lognormal,
    compare_tail_fits,
)
from repro.characterization.stability import (
    correlation,
    parameter_stability,
    preference_stability,
)
from repro.characterization.activity_analysis import (
    ActivitySummary,
    analyze_activity,
    dominant_period,
    weekend_ratio,
)

__all__ = [
    "DistributionFit",
    "empirical_ccdf",
    "fit_exponential",
    "fit_lognormal",
    "compare_tail_fits",
    "parameter_stability",
    "preference_stability",
    "correlation",
    "ActivitySummary",
    "analyze_activity",
    "dominant_period",
    "weekend_ratio",
]

"""Connections: two-way exchanges of traffic between an initiator and a responder.

A connection is the paper's fundamental modelling unit: it has an initiator
(the host that sent the SYN), a responder, a forward byte volume (initiator to
responder) and a reverse byte volume.  A connection observed on an
instrumented link pair appears as (up to) two :class:`~repro.traces.flows.FlowRecord`
objects, one per direction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TraceError
from repro.traces.flows import FiveTuple, FlowRecord

__all__ = ["Connection"]


@dataclass(frozen=True)
class Connection:
    """One TCP connection between an initiator host and a responder host.

    Attributes
    ----------
    initiator_ip, responder_ip:
        Host addresses (synthetic identifiers in this substrate).
    initiator_port, responder_port:
        Transport ports; the initiator port is an ephemeral port, the
        responder port a service port.
    initiator_node, responder_node:
        Names of the access points (PoPs) where the two hosts attach — the
        quantities the IC model is actually about.
    forward_bytes, reverse_bytes:
        Byte volumes initiator→responder and responder→initiator.
    start, duration:
        Start time (seconds from the trace origin; may be negative for
        connections that began before the window) and duration.
    application:
        Application label driving the volume asymmetry.
    """

    initiator_ip: str
    responder_ip: str
    initiator_port: int
    responder_port: int
    initiator_node: str
    responder_node: str
    forward_bytes: float
    reverse_bytes: float
    start: float
    duration: float
    application: str = "unknown"

    def __post_init__(self):
        if self.forward_bytes < 0 or self.reverse_bytes < 0:
            raise TraceError("connection byte volumes must be non-negative")
        if self.duration <= 0:
            raise TraceError("connection duration must be positive")

    @property
    def total_bytes(self) -> float:
        """Forward plus reverse bytes."""
        return self.forward_bytes + self.reverse_bytes

    @property
    def forward_fraction(self) -> float:
        """This connection's own ``f`` (0.5 when the connection is empty)."""
        total = self.total_bytes
        if total <= 0:
            return 0.5
        return self.forward_bytes / total

    @property
    def end(self) -> float:
        """Connection end time."""
        return self.start + self.duration

    @property
    def forward_tuple(self) -> FiveTuple:
        """The 5-tuple of the forward (initiator→responder) direction."""
        return FiveTuple(
            src_ip=self.initiator_ip,
            dst_ip=self.responder_ip,
            src_port=self.initiator_port,
            dst_port=self.responder_port,
        )

    def flow_records(
        self,
        forward_link: str,
        reverse_link: str,
        *,
        window_start: float = 0.0,
        packet_bytes: float = 1000.0,
    ) -> tuple[FlowRecord, FlowRecord]:
        """The two per-direction flow records of this connection on a link pair.

        Parameters
        ----------
        forward_link, reverse_link:
            Names of the links carrying the forward and reverse directions.
        window_start:
            Start of the observation window; the SYN is only visible when the
            connection started inside the window.
        packet_bytes:
            Average packet size used to derive packet counts from volumes.
        """
        syn_visible = self.start >= window_start
        forward = FlowRecord(
            five_tuple=self.forward_tuple,
            link=forward_link,
            bytes=self.forward_bytes,
            packets=max(1, int(round(self.forward_bytes / packet_bytes))),
            start=self.start,
            end=self.end,
            carries_syn=syn_visible,
            application=self.application,
        )
        reverse = FlowRecord(
            five_tuple=self.forward_tuple.reversed(),
            link=reverse_link,
            bytes=self.reverse_bytes,
            packets=max(1, int(round(self.reverse_bytes / packet_bytes))),
            start=self.start,
            end=self.end,
            carries_syn=False,
            application=self.application,
        )
        return forward, reverse

"""Bidirectional packet/flow trace substrate.

Section 5.2 of the paper measures the forward fraction ``f`` directly from
full packet-header traces collected on the two directions of an Abilene
backbone link (IPLS-CLEV and IPLS-KSCY).  Reproducing that measurement needs
a trace substrate:

* :mod:`repro.traces.applications` — application profiles (web, p2p, mail,
  bulk, interactive) with request/response volume distributions, which is
  what determines the forward fraction of the aggregate,
* :mod:`repro.traces.flows` / :mod:`repro.traces.connections` — flow records
  (per-direction, 5-tuple keyed, SYN-flagged) and the connections they form,
* :mod:`repro.traces.trace_generator` — a synthetic bidirectional trace
  generator standing in for the (unavailable) Abilene packet traces,
* :mod:`repro.traces.matching` — the paper's measurement procedure: match
  flows across the two directions by 5-tuple, identify the initiator by the
  SYN, classify unmatched/straddling traffic as unknown, and compute
  ``f = I_i / (I_i + R_j)`` per time bin,
* :mod:`repro.traces.netflow` — packet-sampled (1/N) flow export and OD-flow
  aggregation, mirroring how the D1/D2 traffic matrices were built.
"""

from repro.traces.applications import ApplicationProfile, DEFAULT_APPLICATION_MIX
from repro.traces.flows import FlowRecord, FiveTuple
from repro.traces.connections import Connection
from repro.traces.trace_generator import BidirectionalTraceGenerator, LinkTracePair
from repro.traces.matching import FMeasurement, measure_forward_fraction
from repro.traces.netflow import NetflowSampler, od_flows_from_connections

__all__ = [
    "ApplicationProfile",
    "DEFAULT_APPLICATION_MIX",
    "FlowRecord",
    "FiveTuple",
    "Connection",
    "BidirectionalTraceGenerator",
    "LinkTracePair",
    "FMeasurement",
    "measure_forward_fraction",
    "NetflowSampler",
    "od_flows_from_connections",
]

"""Synthetic bidirectional trace generation (substitute for the Abilene D3 traces).

The D3 dataset is a pair of two-hour bidirectional packet-header traces
collected on the IPLS-CLEV and IPLS-KSCY Abilene links.  Those traces are not
redistributable at packet level, so this module generates synthetic
equivalents: a population of connections between two access points with

* an application mix controlling per-connection volume asymmetry,
* Poisson connection arrivals over the window, plus a configurable fraction
  of connections that started *before* the window (whose SYN is therefore not
  observable — the paper's "unknown" traffic),
* lognormal connection durations,
* the two directions of every connection emitted onto the two instrumented
  link directions.

The resulting :class:`LinkTracePair` feeds the measurement procedure in
:mod:`repro.traces.matching` exactly the way the real traces feed the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ValidationError
from repro.traces.applications import ApplicationProfile, DEFAULT_APPLICATION_MIX
from repro.traces.connections import Connection
from repro.traces.flows import FlowRecord

__all__ = ["LinkTracePair", "BidirectionalTraceGenerator"]


@dataclass
class LinkTracePair:
    """The two directional flow traces of one instrumented link pair.

    Attributes
    ----------
    node_a, node_b:
        The two access points, e.g. ``"IPLS"`` and ``"CLEV"``.
    a_to_b, b_to_a:
        Flow records observed on the ``a→b`` and ``b→a`` link directions.
    duration:
        Trace window length in seconds.
    connections:
        The ground-truth connections (available because the trace is
        synthetic; used to validate the measurement procedure).
    """

    node_a: str
    node_b: str
    a_to_b: list[FlowRecord] = field(default_factory=list)
    b_to_a: list[FlowRecord] = field(default_factory=list)
    duration: float = 7200.0
    connections: list[Connection] = field(default_factory=list)

    @property
    def link_a_to_b(self) -> str:
        """Name of the ``a→b`` link direction."""
        return f"{self.node_a}->{self.node_b}"

    @property
    def link_b_to_a(self) -> str:
        """Name of the ``b→a`` link direction."""
        return f"{self.node_b}->{self.node_a}"

    def true_forward_fraction(self, initiator_node: str) -> float:
        """Ground-truth aggregate ``f`` of connections initiated at ``initiator_node``."""
        forward = sum(
            c.forward_bytes for c in self.connections if c.initiator_node == initiator_node
        )
        reverse = sum(
            c.reverse_bytes for c in self.connections if c.initiator_node == initiator_node
        )
        total = forward + reverse
        if total <= 0:
            return 0.5
        return forward / total


class BidirectionalTraceGenerator:
    """Generate synthetic bidirectional traces between two access points.

    Parameters
    ----------
    node_a, node_b:
        Access-point names (default: the paper's IPLS and CLEV).
    application_mix:
        Application profiles; their shares control the aggregate ``f``.
    connections_per_hour:
        Mean connection arrival rate from each side.
    initiation_balance:
        Fraction of connections initiated at ``node_a`` (0.5 = symmetric).
    straddling_fraction:
        Fraction of connections that started before the trace window (these
        become "unknown" traffic in the measurement procedure).
    mean_duration_seconds:
        Mean connection duration (lognormal).
    seed:
        Seed for reproducible trace generation.
    """

    def __init__(
        self,
        node_a: str = "IPLS",
        node_b: str = "CLEV",
        *,
        application_mix: tuple[ApplicationProfile, ...] = DEFAULT_APPLICATION_MIX,
        connections_per_hour: int = 2000,
        initiation_balance: float = 0.5,
        straddling_fraction: float = 0.08,
        mean_duration_seconds: float = 60.0,
        seed: int = 0,
    ):
        if not application_mix:
            raise ValidationError("application_mix must not be empty")
        if not 0.0 <= initiation_balance <= 1.0:
            raise ValidationError("initiation_balance must lie in [0, 1]")
        if not 0.0 <= straddling_fraction < 1.0:
            raise ValidationError("straddling_fraction must lie in [0, 1)")
        if connections_per_hour <= 0:
            raise ValidationError("connections_per_hour must be positive")
        if mean_duration_seconds <= 0:
            raise ValidationError("mean_duration_seconds must be positive")
        self._node_a = str(node_a)
        self._node_b = str(node_b)
        self._mix = tuple(application_mix)
        self._rate = float(connections_per_hour)
        self._balance = float(initiation_balance)
        self._straddling = float(straddling_fraction)
        self._mean_duration = float(mean_duration_seconds)
        self._seed = int(seed)

    def generate(self, duration_seconds: float = 7200.0) -> LinkTracePair:
        """Generate a trace pair covering ``duration_seconds`` of the link."""
        if duration_seconds <= 0:
            raise ValidationError("duration_seconds must be positive")
        rng = np.random.default_rng(self._seed)
        expected = self._rate * duration_seconds / 3600.0
        count = int(rng.poisson(expected))
        shares = np.array([profile.connection_share for profile in self._mix], dtype=float)
        shares = shares / shares.sum()

        pair = LinkTracePair(self._node_a, self._node_b, duration=duration_seconds)
        for index in range(count):
            profile = self._mix[int(rng.choice(len(self._mix), p=shares))]
            forward_bytes, reverse_bytes = profile.sample_volumes(rng)
            a_initiates = bool(rng.random() < self._balance)
            straddles = bool(rng.random() < self._straddling)
            duration = float(
                rng.lognormal(np.log(self._mean_duration), 0.8)
            )
            if straddles:
                start = -float(rng.uniform(0.0, duration))
            else:
                start = float(rng.uniform(0.0, duration_seconds))
            initiator_node = self._node_a if a_initiates else self._node_b
            responder_node = self._node_b if a_initiates else self._node_a
            connection = Connection(
                initiator_ip=f"{initiator_node.lower()}-host-{index}",
                responder_ip=f"{responder_node.lower()}-srv-{index % 997}",
                initiator_port=int(rng.integers(1024, 65535)),
                responder_port=int(rng.choice((80, 443, 25, 6881, 22))),
                initiator_node=initiator_node,
                responder_node=responder_node,
                forward_bytes=float(forward_bytes[0]),
                reverse_bytes=float(reverse_bytes[0]),
                start=start,
                duration=duration,
                application=profile.name,
            )
            pair.connections.append(connection)
            if a_initiates:
                forward_link, reverse_link = pair.link_a_to_b, pair.link_b_to_a
            else:
                forward_link, reverse_link = pair.link_b_to_a, pair.link_a_to_b
            forward_flow, reverse_flow = connection.flow_records(
                forward_link, reverse_link, window_start=0.0
            )
            if forward_flow.link == pair.link_a_to_b:
                pair.a_to_b.append(forward_flow)
                pair.b_to_a.append(reverse_flow)
            else:
                pair.b_to_a.append(forward_flow)
                pair.a_to_b.append(reverse_flow)
        return pair

"""Netflow-style sampling and OD-flow aggregation.

The D1 and D2 traffic matrices were built from netflow records sampled at
1/1000.  This module provides the two pieces needed to reproduce that data
path on synthetic connections:

* :class:`NetflowSampler` — packet-sampled volume estimation: each
  connection's packets are thinned with probability ``1/rate`` and the
  surviving count is scaled back up, which is exactly the (unbiased but
  noisy) estimator real sampled netflow gives an operator;
* :func:`od_flows_from_connections` — aggregation of (sampled) connection
  volumes into an origin-destination matrix, attributing each connection's
  forward bytes to the (initiator-node → responder-node) OD pair and its
  reverse bytes to the opposite pair.

The sampling-rate ablation benchmark uses these to quantify how sampling
noise affects IC-parameter recovery.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ValidationError
from repro.traces.connections import Connection

__all__ = ["NetflowSampler", "od_flows_from_connections"]


class NetflowSampler:
    """Simulate 1-in-N packet sampling of connection volumes.

    Parameters
    ----------
    sampling_rate:
        ``N`` in "1 out of every N packets"; the paper's datasets use 1000.
    packet_bytes:
        Nominal packet size used to convert byte volumes to packet counts.
    seed:
        Seed for the thinning process.
    """

    def __init__(self, sampling_rate: int = 1000, *, packet_bytes: float = 1000.0, seed: int = 0):
        if sampling_rate < 1:
            raise ValidationError("sampling_rate must be >= 1")
        if packet_bytes <= 0:
            raise ValidationError("packet_bytes must be positive")
        self._rate = int(sampling_rate)
        self._packet_bytes = float(packet_bytes)
        self._rng = np.random.default_rng(seed)

    @property
    def sampling_rate(self) -> int:
        return self._rate

    def sampled_volume(self, true_bytes: float) -> float:
        """Estimated byte volume after 1-in-N packet sampling and rescaling."""
        if true_bytes < 0:
            raise ValidationError("true_bytes must be non-negative")
        if self._rate == 1:
            return float(true_bytes)
        packets = max(int(round(true_bytes / self._packet_bytes)), 0)
        if packets == 0:
            return 0.0
        sampled_packets = self._rng.binomial(packets, 1.0 / self._rate)
        return float(sampled_packets * self._rate * self._packet_bytes)

    def sampled_volumes(self, true_bytes: np.ndarray) -> np.ndarray:
        """Vectorised version of :meth:`sampled_volume`."""
        true_bytes = np.asarray(true_bytes, dtype=float)
        if np.any(true_bytes < 0):
            raise ValidationError("true_bytes must be non-negative")
        if self._rate == 1:
            return true_bytes.copy()
        packets = np.maximum(np.round(true_bytes / self._packet_bytes), 0).astype(int)
        sampled = self._rng.binomial(packets, 1.0 / self._rate)
        return sampled.astype(float) * self._rate * self._packet_bytes


def od_flows_from_connections(
    connections: Sequence[Connection],
    nodes: Sequence[str],
    *,
    sampler: NetflowSampler | None = None,
    keep_self_pairs: bool = False,
) -> np.ndarray:
    """Aggregate connections into an OD traffic matrix.

    Each connection contributes its forward bytes to the
    ``(initiator_node, responder_node)`` entry and its reverse bytes to the
    ``(responder_node, initiator_node)`` entry — the decomposition at the
    heart of the IC model.  When a sampler is given, the volumes are passed
    through 1-in-N sampling first.

    Connections whose endpoints map to the *same* node are rejected: their
    bytes would land on the matrix diagonal, inflating that node's ingress
    and egress marginals with traffic that never crosses the backbone and
    skewing every marginal-derived quantity downstream (gravity priors,
    activity recovery, the fitted preference).  A deliberately intra-PoP
    study can opt back in with ``keep_self_pairs=True``.

    Parameters
    ----------
    connections:
        The connection population.
    nodes:
        Node-name ordering defining the matrix indices; connections touching
        unknown nodes raise :class:`ValidationError`.
    sampler:
        Optional :class:`NetflowSampler` simulating sampled netflow export.
    keep_self_pairs:
        Accept connections whose initiator and responder map to the same
        node and accumulate them on the diagonal (default: raise
        :class:`ValidationError`).
    """
    index = {name: i for i, name in enumerate(nodes)}
    matrix = np.zeros((len(index), len(index)))
    for connection in connections:
        try:
            origin = index[connection.initiator_node]
            destination = index[connection.responder_node]
        except KeyError as exc:
            raise ValidationError(
                f"connection references unknown node {exc.args[0]!r}"
            ) from exc
        if origin == destination and not keep_self_pairs:
            raise ValidationError(
                f"connection {connection.initiator_node!r} -> "
                f"{connection.responder_node!r} maps both endpoints to the same "
                "node; its bytes would land on the TM diagonal and skew the "
                "marginals (pass keep_self_pairs=True to keep intra-node traffic)"
            )
        forward = connection.forward_bytes
        reverse = connection.reverse_bytes
        if sampler is not None:
            forward = sampler.sampled_volume(forward)
            reverse = sampler.sampled_volume(reverse)
        matrix[origin, destination] += forward
        matrix[destination, origin] += reverse
    return matrix

"""The Section 5.2 measurement procedure: estimating ``f`` from link traces.

Given the flow traces of the two directions of an instrumented link between
access points ``i`` and ``j``, the paper estimates ``f_ij`` as follows:

1. form connections by matching flows between the two links that have
   corresponding 5-tuples;
2. determine the traffic on the ``i→j`` link belonging to connections
   *initiated at* ``i`` (the sender of the TCP SYN) with a response on the
   ``j→i`` link — call it ``I_i``;
3. determine the traffic on the ``i→j`` link belonging to connections
   initiated at ``j`` — call it ``R_i``; proceed analogously for ``I_j`` and
   ``R_j``;
4. classify the remaining traffic (no SYN observed, or no matching reverse
   flow) as *unknown*;
5. compute ``f_ij = I_i / (I_i + R_j)``.

The procedure is applied per time bin (5 minutes in the paper) so the
stability of ``f`` over time can be examined (Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError, ValidationError
from repro.traces.flows import FlowRecord
from repro.traces.trace_generator import LinkTracePair

__all__ = ["FMeasurement", "measure_forward_fraction"]


@dataclass(frozen=True)
class FMeasurement:
    """Per-bin forward-fraction measurements for one instrumented link pair.

    Attributes
    ----------
    node_a, node_b:
        The two access points.
    bin_seconds:
        Width of each measurement bin.
    f_a_to_b:
        Per-bin estimates of ``f`` for connections initiated at ``node_a``
        (i.e. ``f_(a,b)``), shape ``(bins,)``; ``nan`` where the bin had no
        classifiable traffic.
    f_b_to_a:
        Same for connections initiated at ``node_b``.
    unknown_fraction:
        Fraction of total observed bytes that could not be classified
        (connection started before the window, or no reverse flow matched).
    """

    node_a: str
    node_b: str
    bin_seconds: float
    f_a_to_b: np.ndarray
    f_b_to_a: np.ndarray
    unknown_fraction: float

    @property
    def n_bins(self) -> int:
        return self.f_a_to_b.shape[0]

    def mean_f(self) -> tuple[float, float]:
        """Mean ``f`` over bins for each direction (ignoring empty bins)."""
        return (
            float(np.nanmean(self.f_a_to_b)),
            float(np.nanmean(self.f_b_to_a)),
        )

    def spatial_gap(self) -> float:
        """Absolute difference of the two directions' mean ``f``.

        Small values support the paper's spatial-stability assumption
        (``f_ij ≈ f_ji``).
        """
        mean_ab, mean_ba = self.mean_f()
        return abs(mean_ab - mean_ba)

    def temporal_spread(self) -> tuple[float, float]:
        """Standard deviation of per-bin ``f`` for each direction."""
        return (
            float(np.nanstd(self.f_a_to_b)),
            float(np.nanstd(self.f_b_to_a)),
        )


def _index_by_tuple(flows: list[FlowRecord]) -> dict:
    index: dict = {}
    for flow in flows:
        index.setdefault(flow.five_tuple, []).append(flow)
    return index


def measure_forward_fraction(pair: LinkTracePair, *, bin_seconds: float = 300.0) -> FMeasurement:
    """Apply the Section 5.2 procedure to a link trace pair.

    Parameters
    ----------
    pair:
        The two directional flow traces.
    bin_seconds:
        Measurement bin width; the paper uses 300 s.
    """
    if bin_seconds <= 0:
        raise ValidationError("bin_seconds must be positive")
    if pair.duration <= 0:
        raise TraceError("trace pair has a non-positive duration")
    n_bins = int(np.ceil(pair.duration / bin_seconds))
    if n_bins < 1:
        raise TraceError("trace is shorter than one measurement bin")

    reverse_index = _index_by_tuple(pair.b_to_a)
    forward_index = _index_by_tuple(pair.a_to_b)

    # Classified byte volumes per bin:
    #   initiated_at_a[b] : bytes on a->b from connections initiated at a (I_a)
    #   responded_at_a[b] : bytes on a->b from connections initiated at b (R_a)
    # and symmetrically for the b->a link.
    initiated_at_a = np.zeros(n_bins)
    responded_on_a_to_b = np.zeros(n_bins)
    initiated_at_b = np.zeros(n_bins)
    responded_on_b_to_a = np.zeros(n_bins)
    unknown_bytes = 0.0
    total_bytes = 0.0

    def classify(flows: list[FlowRecord], other_index: dict, initiated_bins, responded_bins):
        nonlocal unknown_bytes, total_bytes
        for flow in flows:
            total_bytes += flow.bytes
            matches = other_index.get(flow.five_tuple.reversed(), [])
            if not matches:
                unknown_bytes += flow.bytes
                continue
            reverse_has_syn = any(match.carries_syn for match in matches)
            if flow.carries_syn:
                target = initiated_bins
            elif reverse_has_syn:
                target = responded_bins
            else:
                # Neither direction carried a SYN inside the window: the
                # connection started before the trace, so the initiator is
                # unknowable (the paper classifies this traffic as unknown).
                unknown_bytes += flow.bytes
                continue
            for b in range(n_bins):
                bin_start = b * bin_seconds
                bin_end = min((b + 1) * bin_seconds, pair.duration)
                target[b] += flow.bytes_in_bin(bin_start, bin_end)

    classify(pair.a_to_b, reverse_index, initiated_at_a, responded_on_a_to_b)
    classify(pair.b_to_a, forward_index, initiated_at_b, responded_on_b_to_a)

    # f_(a,b) = I_a / (I_a + R_b): forward bytes of a-initiated connections on
    # a->b, divided by those plus the reverse bytes flowing back on b->a.
    with np.errstate(divide="ignore", invalid="ignore"):
        denominator_ab = initiated_at_a + responded_on_b_to_a
        f_a_to_b = np.where(denominator_ab > 0, initiated_at_a / np.where(denominator_ab > 0, denominator_ab, 1.0), np.nan)
        denominator_ba = initiated_at_b + responded_on_a_to_b
        f_b_to_a = np.where(denominator_ba > 0, initiated_at_b / np.where(denominator_ba > 0, denominator_ba, 1.0), np.nan)

    unknown_fraction = unknown_bytes / total_bytes if total_bytes > 0 else 0.0
    return FMeasurement(
        node_a=pair.node_a,
        node_b=pair.node_b,
        bin_seconds=float(bin_seconds),
        f_a_to_b=f_a_to_b,
        f_b_to_a=f_b_to_a,
        unknown_fraction=float(unknown_fraction),
    )

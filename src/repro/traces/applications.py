"""Application profiles driving connection-level traffic asymmetry.

The forward fraction ``f`` of aggregate traffic is determined by the
application mix: web and FTP responses dwarf their requests (per-application
``f`` around 0.05-0.06 in the measurements the paper cites), peer-to-peer
traffic is much more symmetric (``f`` around 0.35), interactive traffic sits
in between.  Each :class:`ApplicationProfile` describes one application class
by the lognormal distributions of its request (forward) and response
(reverse) volumes and by its share of connections; a mix of profiles yields an
aggregate ``f`` in the paper's observed 0.2-0.3 range.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError

__all__ = ["ApplicationProfile", "DEFAULT_APPLICATION_MIX", "aggregate_forward_fraction"]


@dataclass(frozen=True)
class ApplicationProfile:
    """One application class and its connection-volume behaviour.

    Attributes
    ----------
    name:
        Application label (``"web"``, ``"p2p"``, ...).
    forward_log_mean, forward_log_sigma:
        Parameters of the lognormal distribution of forward (initiator to
        responder) bytes per connection.
    reverse_log_mean, reverse_log_sigma:
        Same for reverse (responder to initiator) bytes.
    connection_share:
        Fraction of connections belonging to this application; shares of a
        mix should sum to one (they are renormalised when sampling).
    """

    name: str
    forward_log_mean: float
    forward_log_sigma: float
    reverse_log_mean: float
    reverse_log_sigma: float
    connection_share: float

    def __post_init__(self):
        if self.forward_log_sigma < 0 or self.reverse_log_sigma < 0:
            raise ValidationError(f"{self.name}: lognormal sigmas must be non-negative")
        if self.connection_share < 0:
            raise ValidationError(f"{self.name}: connection_share must be non-negative")

    def sample_volumes(self, rng: np.random.Generator, size: int = 1) -> tuple[np.ndarray, np.ndarray]:
        """Sample ``size`` (forward_bytes, reverse_bytes) pairs for this application."""
        forward = rng.lognormal(self.forward_log_mean, self.forward_log_sigma, size)
        reverse = rng.lognormal(self.reverse_log_mean, self.reverse_log_sigma, size)
        return forward, reverse

    @property
    def expected_forward_bytes(self) -> float:
        """Mean forward bytes per connection (lognormal mean)."""
        return float(np.exp(self.forward_log_mean + 0.5 * self.forward_log_sigma**2))

    @property
    def expected_reverse_bytes(self) -> float:
        """Mean reverse bytes per connection (lognormal mean)."""
        return float(np.exp(self.reverse_log_mean + 0.5 * self.reverse_log_sigma**2))

    @property
    def expected_forward_fraction(self) -> float:
        """The application's expected per-connection ``f`` = fwd / (fwd + rev)."""
        forward = self.expected_forward_bytes
        reverse = self.expected_reverse_bytes
        return forward / (forward + reverse)


# Volumes are in bytes.  The parameters are chosen so the per-application
# expected forward fractions land where the paper (and the Tstat / Paxson
# studies it cites) put them: web/ftp ~ 0.06, p2p ~ 0.35, interactive ~ 0.05,
# mail ~ 0.25 — and so the default mix lands the aggregate f in 0.2-0.3.
DEFAULT_APPLICATION_MIX: tuple[ApplicationProfile, ...] = (
    ApplicationProfile("web", forward_log_mean=6.2, forward_log_sigma=0.8,
                       reverse_log_mean=9.0, reverse_log_sigma=1.0, connection_share=0.45),
    ApplicationProfile("p2p", forward_log_mean=10.4, forward_log_sigma=1.0,
                       reverse_log_mean=11.0, reverse_log_sigma=1.0, connection_share=0.25),
    ApplicationProfile("mail", forward_log_mean=8.2, forward_log_sigma=0.7,
                       reverse_log_mean=9.3, reverse_log_sigma=0.8, connection_share=0.15),
    ApplicationProfile("interactive", forward_log_mean=5.0, forward_log_sigma=0.6,
                       reverse_log_mean=8.0, reverse_log_sigma=0.8, connection_share=0.10),
    ApplicationProfile("bulk", forward_log_mean=7.0, forward_log_sigma=0.8,
                       reverse_log_mean=11.5, reverse_log_sigma=0.9, connection_share=0.05),
)


def aggregate_forward_fraction(mix: tuple[ApplicationProfile, ...] = DEFAULT_APPLICATION_MIX) -> float:
    """Expected aggregate ``f`` of an application mix (byte-weighted)."""
    if not mix:
        raise ValidationError("application mix must not be empty")
    shares = np.array([profile.connection_share for profile in mix], dtype=float)
    total_share = shares.sum()
    if total_share <= 0:
        raise ValidationError("application mix must have positive total share")
    shares = shares / total_share
    forward = np.array([profile.expected_forward_bytes for profile in mix])
    reverse = np.array([profile.expected_reverse_bytes for profile in mix])
    total_forward = float(np.sum(shares * forward))
    total_reverse = float(np.sum(shares * reverse))
    return total_forward / (total_forward + total_reverse)

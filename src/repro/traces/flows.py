"""Flow records: the unit of the synthetic packet-header traces.

A real packet-header trace contains individual packets; the paper's
f-measurement procedure, however, only needs per-direction *flows* (the
packets of one direction of one connection on one link), keyed by 5-tuple,
with their byte volume, their time extent and whether the direction carried
the initial SYN.  Collapsing packets into flow records keeps the substrate
laptop-scale while exercising exactly the same matching logic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TraceError

__all__ = ["FiveTuple", "FlowRecord"]


@dataclass(frozen=True, order=True)
class FiveTuple:
    """A TCP/UDP 5-tuple identifying one direction of a connection."""

    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int
    protocol: int = 6  # TCP

    def __post_init__(self):
        for port in (self.src_port, self.dst_port):
            if not 0 <= port <= 65535:
                raise TraceError(f"port {port} outside the valid range 0-65535")
        if not 0 <= self.protocol <= 255:
            raise TraceError(f"protocol {self.protocol} outside the valid range 0-255")

    def reversed(self) -> "FiveTuple":
        """The 5-tuple of the opposite direction of the same connection."""
        return FiveTuple(
            src_ip=self.dst_ip,
            dst_ip=self.src_ip,
            src_port=self.dst_port,
            dst_port=self.src_port,
            protocol=self.protocol,
        )

    def canonical(self) -> tuple:
        """A direction-independent key: the sorted endpoint pair plus protocol."""
        forward = (self.src_ip, self.src_port, self.dst_ip, self.dst_port)
        backward = (self.dst_ip, self.dst_port, self.src_ip, self.src_port)
        return (min(forward, backward), max(forward, backward), self.protocol)


@dataclass(frozen=True)
class FlowRecord:
    """One direction of one connection observed on one instrumented link.

    Attributes
    ----------
    five_tuple:
        The direction's 5-tuple (source = sender of these bytes).
    link:
        Name of the instrumented link the flow was observed on, e.g.
        ``"IPLS->CLEV"``.
    bytes:
        Byte volume of the flow within the trace window.
    packets:
        Packet count (informational).
    start, end:
        Flow start/end times in seconds from the trace origin.  ``start`` may
        be negative for connections that began before the trace window.
    carries_syn:
        Whether this direction carried the connection-opening SYN *inside the
        trace window*; the paper identifies the initiator as the sender of the
        SYN, and connections whose SYN predates the trace are unclassifiable.
    application:
        Application label (carried through for characterisation; a real trace
        would not expose it).
    """

    five_tuple: FiveTuple
    link: str
    bytes: float
    packets: int
    start: float
    end: float
    carries_syn: bool
    application: str = "unknown"

    def __post_init__(self):
        if self.bytes < 0:
            raise TraceError("flow byte volume must be non-negative")
        if self.packets < 0:
            raise TraceError("flow packet count must be non-negative")
        if self.end < self.start:
            raise TraceError("flow end time must not precede its start time")

    def overlaps_bin(self, bin_start: float, bin_end: float) -> bool:
        """Whether the flow's time extent intersects ``[bin_start, bin_end)``."""
        return self.start < bin_end and self.end >= bin_start

    def bytes_in_bin(self, bin_start: float, bin_end: float) -> float:
        """Byte volume attributed to ``[bin_start, bin_end)``, pro-rated by overlap."""
        duration = max(self.end - self.start, 1e-9)
        overlap = max(0.0, min(self.end, bin_end) - max(self.start, bin_start))
        return self.bytes * overlap / duration

"""The publisher/service loop behind ``repro serve``.

:class:`IngestService` wires the ingest planes together into a long-running
estimator daemon: a :class:`~repro.ingest.sources.FlowSource` feeds a
:class:`~repro.ingest.binner.FlowBinner`; every ``chunk_bins`` closed bins
become one measurement chunk (link loads through the topology's routing
matrix plus ingress/egress marginals — the same arithmetic as
:func:`~repro.estimation.linear_system.simulate_link_loads_streaming`);
the :class:`~repro.ingest.rolling.RollingFitManager`'s active prior and
``TMEstimator.estimate_stream`` turn the chunk into per-bin estimates; and
the publisher appends one JSONL record per bin to the sink.  Because every
stage is the batch pipeline's own per-bin code, a replayed week with a
pinned prior reproduces ``repro estimate --stream`` bit for bit — the
service is the batch path with a feed in front, not a reimplementation.

Operability:

* a **status snapshot** (JSON) is rewritten after every published chunk:
  ingestion counters, bins published, active fit (mode/f/version/age),
  cumulative per-stage latency, per-stage p50/p99 chunk latency, peak RSS
  and **back-pressure** — how many watermark-closed bins the estimator has
  not yet published (``bins_behind_watermark``) and how many closed bins
  sit queued for the next chunk (``queue_depth``), the numbers that grow
  when the estimator falls behind a paced feed;
* **SIGTERM/SIGINT** request a clean stop (:meth:`IngestService.request_stop`
  is signal-handler compatible): the loop finishes its current batch,
  publishes every already-closed bin, writes a **resumable checkpoint**
  (next bin index, noise seed, fit state) and exits; starting a service
  with the same checkpoint path resumes exactly where it stopped, skipping
  replayed records from already-published bins;
* optional simulated SNMP noise (``measurement_noise``) draws per-chunk
  from ``default_rng([seed, chunk_start_bin])`` — deterministic per bin
  range, so a resume never replays or skips noise draws.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import ValidationError
from repro.estimation.linear_system import LinkLoadSystem
from repro.estimation.pipeline import SPARSE_SYSTEM_MIN_NODES, TMEstimator
from repro.ingest.binner import FlowBinner
from repro.ingest.rolling import PRIOR_MODES, RollingFitManager
from repro.obs import MetricsRegistry, get_metrics, get_tracer
from repro.streaming import ArrayChunkStream
from repro.topology.routing import build_routing_matrix

__all__ = ["IngestService", "ServiceStatus", "CHECKPOINT_FORMAT"]

CHECKPOINT_FORMAT = "repro-ingest-checkpoint-v1"


def peak_rss_mb() -> float | None:
    """Peak resident set size of this process in MiB (None if unsupported)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    scale = 1024.0 if sys.platform != "darwin" else 1024.0 * 1024.0
    return float(peak) / scale


@dataclass
class ServiceStatus:
    """The operational snapshot the service republishes after every chunk.

    ``bins_behind_watermark`` and ``queue_depth`` are the back-pressure
    gauges: the first counts bins the watermark has already released that
    the estimator has not published yet, the second the closed bins queued
    for the next estimation chunk.  Both stay near zero while the estimator
    keeps up with the feed and grow monotonically when it falls behind a
    paced replay.  ``feed_lag_seconds`` restates the watermark lag in feed
    time (``bins_behind_watermark * bin_seconds``) so alert thresholds can
    be written in seconds instead of bin counts.  ``stage_latency`` holds
    per-chunk p50/p99 seconds for each pipeline stage (over a bounded
    reservoir of recent chunks), where ``stage_seconds`` is cumulative.
    """

    bins_published: int = 0
    next_bin: int = 0
    records_seen: int = 0
    records_binned: int = 0
    records_dropped_late: int = 0
    records_skipped: int = 0
    open_bins: int = 0
    queue_depth: int = 0
    bins_behind_watermark: int = 0
    feed_lag_seconds: float = 0.0
    prior_mode: str = "gravity"
    prior_version: int = 0
    fit_forward_fraction: float | None = None
    fit_age_bins: int | None = None
    refits: int = 0
    stage_seconds: dict = field(default_factory=dict)
    stage_latency: dict = field(default_factory=dict)
    peak_rss_mb: float | None = None
    stopped_by_signal: bool = False
    fast_path: dict | None = None

    def to_dict(self) -> dict:
        return {
            "bins_published": self.bins_published,
            "next_bin": self.next_bin,
            "records_seen": self.records_seen,
            "records_binned": self.records_binned,
            "records_dropped_late": self.records_dropped_late,
            "records_skipped": self.records_skipped,
            "open_bins": self.open_bins,
            "backpressure": {
                "queue_depth": self.queue_depth,
                "bins_behind_watermark": self.bins_behind_watermark,
                "feed_lag_seconds": round(self.feed_lag_seconds, 3),
            },
            "prior": {
                "mode": self.prior_mode,
                "version": self.prior_version,
                "forward_fraction": self.fit_forward_fraction,
                "age_bins": self.fit_age_bins,
                "refits": self.refits,
            },
            "stage_seconds": {k: round(v, 6) for k, v in self.stage_seconds.items()},
            "stage_latency_seconds": {
                stage: {key: round(value, 6) if key != "samples" else value
                        for key, value in quantiles.items()}
                for stage, quantiles in self.stage_latency.items()
            },
            "peak_rss_mb": None if self.peak_rss_mb is None else round(self.peak_rss_mb, 1),
            "stopped_by_signal": self.stopped_by_signal,
            "fast_path": self.fast_path if self.fast_path else {"enabled": False},
        }


class _Publisher:
    """JSONL estimate sink: a file in a sink directory, or stdout (``-``)."""

    def __init__(self, sink):
        self._handle = None
        self._own = False
        if sink is None or sink == "-":
            self._handle = sys.stdout
        else:
            path = Path(sink)
            if path.suffix != ".jsonl":
                path.mkdir(parents=True, exist_ok=True)
                path = path / "estimates.jsonl"
            else:
                path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = path.open("a", encoding="utf-8")
            self._own = True
            self.path = path

    def publish(self, record: dict) -> None:
        self._handle.write(json.dumps(record) + "\n")

    def flush(self) -> None:
        self._handle.flush()

    def close(self) -> None:
        if self._own:
            self._handle.close()


class IngestService:
    """The live ingestion + rolling estimation daemon (see module docstring).

    Parameters
    ----------
    source:
        A :class:`~repro.ingest.sources.FlowSource`.
    topology:
        The :class:`~repro.topology.Topology` whose node ordering the
        source's records index and whose routing matrix turns bins into
        link loads.
    estimator:
        A :class:`~repro.estimation.pipeline.TMEstimator` (default:
        tomogravity with marginals).
    bin_seconds, watermark_bins:
        Binner geometry (see :class:`~repro.ingest.binner.FlowBinner`).
    chunk_bins:
        Closed bins per estimation chunk — the publication cadence.
    prior, forward_fraction, refit_every, window_bins, window_budget_bytes,
    spill_dir:
        Rolling-fit configuration (see
        :class:`~repro.ingest.rolling.RollingFitManager`).
    measurement_noise, seed:
        Optional simulated SNMP noise (relative std) applied to each
        chunk's measurements with a per-chunk deterministic RNG.
    sink, status_path, checkpoint_path:
        Output plumbing.  ``sink`` is a directory (gains
        ``estimates.jsonl``), an explicit ``.jsonl`` path, or ``-``/None
        for stdout.  ``checkpoint_path`` enables resume: if the file exists
        at start the service continues from its ``next_bin``.
    estimate_shards_dir:
        Optional sidecar archive: every published estimate chunk is also
        appended to ``estimate-*.npz`` shards under this directory (via
        :class:`~repro.scenarios.spill.ShardWriter`, resuming at the
        checkpoint's bin), so ``repro report`` can reduce the served
        estimates shard-at-a-time without re-parsing the JSONL sink.  The
        JSONL sink stays the source of truth — the sidecar is flushed at
        checkpoints and clean stops, and readers fall back to the JSONL
        when the shards lag behind it.
    max_bins:
        Stop after publishing this many bins (None = run to end of source).
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry` to record gauges,
        counters and stage-latency histograms into.  Default: the ambient
        registry when metrics are enabled (so ``--metrics-port`` scrapes
        see the service's series), else a private registry that still
        backs the status snapshot's latency quantiles.
    """

    def __init__(
        self,
        source,
        topology,
        *,
        estimator: TMEstimator | None = None,
        bin_seconds: float = 300.0,
        watermark_bins: int = 1,
        chunk_bins: int = 16,
        prior: str = "gravity",
        forward_fraction: float | None = None,
        refit_every: int = 0,
        window_bins: int = 96,
        window_budget_bytes: int | None = None,
        spill_dir=None,
        measurement_noise: float = 0.0,
        seed: int = 0,
        sink=None,
        status_path=None,
        checkpoint_path=None,
        estimate_shards_dir=None,
        estimate_shard_bins: int = 2048,
        max_bins: int | None = None,
        origin: float = 0.0,
        metrics: MetricsRegistry | None = None,
    ):
        if tuple(source.nodes) != tuple(topology.nodes):
            raise ValidationError(
                "source and topology disagree on node ordering; "
                f"source has {len(source.nodes)} nodes, topology {len(topology.nodes)}"
            )
        if chunk_bins < 1:
            raise ValidationError("chunk_bins must be >= 1")
        if measurement_noise < 0:
            raise ValidationError("measurement_noise must be >= 0")
        if prior not in PRIOR_MODES:
            raise ValidationError(f"unknown prior mode {prior!r}; choose from {PRIOR_MODES}")
        self._source = source
        self._topology = topology
        self._estimator = estimator or TMEstimator()
        self._bin_seconds = float(bin_seconds)
        self._watermark_bins = int(watermark_bins)
        self._chunk_bins = int(chunk_bins)
        self._noise_std = float(measurement_noise)
        self._seed = int(seed)
        self._sink = sink
        self._status_path = Path(status_path) if status_path else None
        self._checkpoint_path = Path(checkpoint_path) if checkpoint_path else None
        self._estimate_shards_dir = Path(estimate_shards_dir) if estimate_shards_dir else None
        self._estimate_shard_bins = int(estimate_shard_bins)
        self._estimate_writer = None
        self._max_bins = int(max_bins) if max_bins else None
        self._origin = float(origin)
        self._stop_requested = False
        self._start_bin = 0
        # Build the measurement system once at init: the routing-matrix memo
        # and the augmented-operator cache are populated here, so per-chunk
        # LinkLoadSystem construction reuses one validated operator object
        # instead of re-deriving (and re-validating) it every chunk — which
        # is also what keeps the estimator's factorization cache keyed on a
        # stable operator identity across chunks.
        self._routing = build_routing_matrix(topology)
        self._routing_t = self._routing.matrix.T
        self._routing.augmented_operator(
            as_sparse=len(topology.nodes) >= SPARSE_SYSTEM_MIN_NODES
        )
        fit_kwargs = {}
        resumed_fit = None
        if self._checkpoint_path is not None and self._checkpoint_path.exists():
            resumed_fit = self._load_checkpoint()
        manager_kwargs = dict(
            bin_seconds=bin_seconds,
            mode=prior,
            forward_fraction=forward_fraction,
            refit_every=refit_every,
            window_bins=window_bins,
            spill_dir=spill_dir,
            fit_kwargs=fit_kwargs,
        )
        if window_budget_bytes is not None:
            manager_kwargs["window_budget_bytes"] = int(window_budget_bytes)
        # A prior swap must atomically invalidate the estimator's cached
        # factorisations; the version key on estimate_stream would age them
        # out anyway, but the callback drops the memory immediately.
        if hasattr(self._estimator, "invalidate_fast_path"):
            manager_kwargs["on_swap"] = lambda active: self._estimator.invalidate_fast_path()
        self._fits = RollingFitManager(topology.nodes, **manager_kwargs)
        if resumed_fit is not None:
            self._fits.pin(
                forward_fraction=resumed_fit["forward_fraction"],
                preference=np.asarray(resumed_fit["preference"], dtype=float),
            )
        self.status = ServiceStatus(next_bin=self._start_bin)
        # Stage latencies live in a metrics registry (bounded reservoir
        # histograms) rather than unbounded sample lists; the registry also
        # backs ``repro serve --metrics-port``.  An explicit registry wins;
        # otherwise adopt the ambient one when metrics are enabled so CLI
        # wiring sees the service's series, falling back to a private
        # registry so the status snapshot works with observability off.
        ambient = get_metrics()
        self.metrics = metrics if metrics is not None else (
            ambient if ambient.enabled else MetricsRegistry()
        )
        self._stage_names: list[str] = []

    # -- control -------------------------------------------------------------

    def request_stop(self, signum=None, frame=None) -> None:
        """Ask the loop to stop after the current batch (signal-handler safe)."""
        self._stop_requested = True

    # -- checkpointing -------------------------------------------------------

    def _load_checkpoint(self):
        payload = json.loads(self._checkpoint_path.read_text())
        if payload.get("format") != CHECKPOINT_FORMAT:
            raise ValidationError(
                f"unrecognised checkpoint format in {self._checkpoint_path}: "
                f"{payload.get('format')!r}"
            )
        self._start_bin = int(payload["next_bin"])
        noise = payload.get("noise", {})
        if noise and abs(float(noise.get("std", 0.0)) - self._noise_std) > 1e-12:
            raise ValidationError(
                "checkpoint noise std does not match this service's "
                f"--measurement-noise ({noise.get('std')} vs {self._noise_std})"
            )
        fit = payload.get("fit")
        if fit and fit.get("preference") is not None:
            return fit
        return None

    def _write_checkpoint(self) -> None:
        if self._checkpoint_path is None:
            return
        active = self._fits.active
        fit = None
        if active.mode == "stable_fp" and active.preference is not None:
            fit = {
                "forward_fraction": active.forward_fraction,
                "preference": [float(v) for v in active.preference],
                "version": active.version,
            }
        payload = {
            "format": CHECKPOINT_FORMAT,
            "next_bin": self.status.next_bin,
            "bin_seconds": self._bin_seconds,
            "origin": self._origin,
            "noise": {"std": self._noise_std, "seed": self._seed},
            "fit": fit,
            "counters": {
                "records_seen": self.status.records_seen,
                "records_dropped_late": self.status.records_dropped_late,
            },
        }
        self._checkpoint_path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self._checkpoint_path.with_suffix(self._checkpoint_path.suffix + ".tmp")
        tmp.write_text(json.dumps(payload, indent=2))
        tmp.replace(self._checkpoint_path)

    # -- status --------------------------------------------------------------

    def _record_stage(self, stage: str, seconds: float) -> None:
        """Accumulate one stage timing: cumulative total plus the quantile reservoir."""
        timings = self.status.stage_seconds
        timings[stage] = timings.get(stage, 0.0) + seconds
        if stage not in self._stage_names:
            self._stage_names.append(stage)
        self.metrics.histogram("repro_serve_stage_latency_seconds", stage=stage).observe(seconds)

    def _stage_latency(self) -> dict:
        latency = {}
        for stage in self._stage_names:
            snap = self.metrics.histogram(
                "repro_serve_stage_latency_seconds", stage=stage
            ).snapshot()
            if snap["count"]:
                latency[stage] = {
                    "p50": snap["p50"],
                    "p99": snap["p99"],
                    "samples": snap["count"],
                }
        return latency

    def _write_status(self, binner: FlowBinner, *, queue_depth: int = 0) -> None:
        counters = binner.counters()
        status = self.status
        status.records_seen = counters["records_seen"]
        status.records_binned = counters["records_binned"]
        status.records_dropped_late = counters["records_dropped_late"]
        status.records_skipped = counters["records_skipped"]
        status.open_bins = counters["open_bins"]
        status.queue_depth = queue_depth
        # Bins the watermark has already released (indices below
        # max_bin_seen - watermark_bins close on every push) that are not
        # published yet: the estimator's lag behind the feed.
        status.bins_behind_watermark = max(
            0, counters["max_bin_seen"] - binner.watermark_bins - status.next_bin
        )
        # The same lag restated in feed time, so alerting thresholds can be
        # phrased in seconds regardless of the deployment's bin width.
        status.feed_lag_seconds = status.bins_behind_watermark * self._bin_seconds
        active = self._fits.active
        status.prior_mode = active.mode
        status.prior_version = active.version
        status.fit_forward_fraction = active.forward_fraction
        status.fit_age_bins = self._fits.fit_age_bins()
        status.refits = self._fits.refits
        status.stage_latency = self._stage_latency()
        status.peak_rss_mb = peak_rss_mb()
        stats = getattr(self._estimator, "fast_path_stats", None)
        status.fast_path = stats() if callable(stats) else None
        self._sync_metrics(status, counters)
        if self._status_path is not None:
            self._status_path.parent.mkdir(parents=True, exist_ok=True)
            tmp = self._status_path.with_suffix(self._status_path.suffix + ".tmp")
            tmp.write_text(json.dumps(status.to_dict(), indent=2))
            tmp.replace(self._status_path)

    def _sync_metrics(self, status: ServiceStatus, counters: dict) -> None:
        """Mirror the status snapshot into the metrics registry.

        Gauges track the latest value; the two lag series additionally feed
        histograms so a scrape exposes quantiles of the lag *distribution*
        over the run, not just the instantaneous reading.  Monotonic binner
        totals use ``set_total`` — the binner already owns the cumulative
        count, re-counting increments here would double it on resume.
        """
        metrics = self.metrics
        metrics.gauge("repro_serve_queue_depth").set(status.queue_depth)
        metrics.gauge("repro_serve_bins_behind_watermark").set(status.bins_behind_watermark)
        metrics.gauge("repro_serve_feed_lag_seconds").set(status.feed_lag_seconds)
        metrics.histogram("repro_serve_bins_behind_watermark_window").observe(
            float(status.bins_behind_watermark)
        )
        metrics.histogram("repro_serve_feed_lag_seconds_window").observe(
            status.feed_lag_seconds
        )
        metrics.counter("repro_serve_bins_published_total").set_total(status.bins_published)
        metrics.counter("repro_serve_records_binned_total").set_total(counters["records_binned"])
        metrics.counter("repro_serve_records_dropped_late_total").set_total(
            counters["records_dropped_late"]
        )
        metrics.counter("repro_serve_records_skipped_total").set_total(
            counters["records_skipped"]
        )
        metrics.gauge("repro_serve_open_bins").set(status.open_bins)
        metrics.counter("repro_serve_refits_total").set_total(status.refits)
        if status.peak_rss_mb is not None:
            metrics.gauge("repro_serve_peak_rss_mb").set(status.peak_rss_mb)
        fast = status.fast_path
        if fast:
            factor = fast["factor_cache"]
            metrics.counter("repro_estimate_factor_cache_hits", mode="equal").set_total(
                float(factor["hits_equal"])
            )
            metrics.counter("repro_estimate_factor_cache_hits", mode="scaled").set_total(
                float(factor["hits_scaled"])
            )
            metrics.counter("repro_estimate_factor_cache_misses").set_total(
                float(factor["misses"])
            )
            ipf = fast["ipf_cache"]
            metrics.counter("repro_estimate_ipf_cache_hits", mode="equal").set_total(
                float(ipf["hits_equal"])
            )
            metrics.counter("repro_estimate_ipf_cache_hits", mode="scaled").set_total(
                float(ipf["hits_scaled"])
            )
            metrics.counter("repro_estimate_ipf_cache_misses").set_total(float(ipf["solved"]))

    # -- the loop ------------------------------------------------------------

    def _process_chunk(self, start_bin: int, matrices: list, publisher: _Publisher) -> None:
        n = len(self._topology.nodes)
        block = np.stack(matrices)
        t_chunk = block.shape[0]
        tracer = get_tracer()

        with tracer.span("measure", start_bin=start_bin, bins=t_chunk):
            started = time.perf_counter()
            link_loads = block.reshape(t_chunk, n * n) @ self._routing_t
            ingress = block.sum(axis=2)
            egress = block.sum(axis=1)
            if self._noise_std > 0:
                rng = np.random.default_rng([self._seed, int(start_bin)])
                link_loads = link_loads * rng.normal(1.0, self._noise_std, size=link_loads.shape)
                ingress = ingress * rng.normal(1.0, self._noise_std, size=ingress.shape)
                egress = egress * rng.normal(1.0, self._noise_std, size=egress.shape)
            system = LinkLoadSystem(
                routing=self._routing, link_loads=link_loads, ingress=ingress, egress=egress
            )
            self._record_stage("measure", time.perf_counter() - started)

        with tracer.span("prior", start_bin=start_bin):
            started = time.perf_counter()
            active = self._fits.active
            prior_block = self._fits.prior_values(ingress, egress)
            prior_stream = ArrayChunkStream(
                prior_block,
                self._topology.nodes,
                bin_seconds=self._bin_seconds,
                chunk_bins=t_chunk,
            )
            self._record_stage("prior", time.perf_counter() - started)

        with tracer.span("estimate", start_bin=start_bin, bins=t_chunk):
            started = time.perf_counter()
            result = self._estimator.estimate_stream(
                system,
                prior_stream,
                collect_estimate=True,
                prior_version=active.version,
            )
            self._record_stage("estimate", time.perf_counter() - started)

        with tracer.span("bin_publish", start_bin=start_bin, bins=t_chunk):
            started = time.perf_counter()
            estimates = result.estimate.values
            for offset in range(t_chunk):
                index = start_bin + offset
                publisher.publish(
                    {
                        "bin": index,
                        "time": self._origin + index * self._bin_seconds,
                        "prior": active.mode,
                        "prior_version": active.version,
                        "estimate": estimates[offset].tolist(),
                    }
                )
            publisher.flush()
            if self._estimate_writer is not None:
                self._estimate_writer(start_bin, estimates)
            self.status.bins_published += t_chunk
            self.status.next_bin = start_bin + t_chunk
            self._record_stage("publish", time.perf_counter() - started)

        # Observe *after* publishing: a re-fit triggered by these bins swaps
        # the active prior atomically for subsequent chunks only.
        with tracer.span("fit_observe", start_bin=start_bin):
            started = time.perf_counter()
            self._fits.observe(start_bin, block)
            self._record_stage("fit", time.perf_counter() - started)

    def run(self) -> ServiceStatus:
        """Drive the feed to completion (or stop/max-bins) and return status."""
        binner = FlowBinner(
            self._topology.nodes,
            bin_seconds=self._bin_seconds,
            watermark_bins=self._watermark_bins,
            origin=self._origin,
            start_bin=self._start_bin,
        )
        publisher = _Publisher(self._sink)
        if self._estimate_shards_dir is not None:
            from repro.scenarios.spill import SpillStore

            self._estimate_writer = SpillStore(
                self._estimate_shards_dir, shard_bins=self._estimate_shard_bins
            ).writer("estimate", start_bin=self._start_bin)
        pending: list[tuple[int, np.ndarray]] = []

        def budget_left() -> int | None:
            if self._max_bins is None:
                return None
            return self._max_bins - self.status.bins_published

        def drain(closed, *, final: bool) -> bool:
            """Publish complete chunks from ``pending``; True = keep running."""
            pending.extend(closed)
            while pending:
                left = budget_left()
                if left is not None and left <= 0:
                    return False
                take = self._chunk_bins if len(pending) >= self._chunk_bins else (
                    len(pending) if final else 0
                )
                if left is not None:
                    take = min(take, left)
                if take == 0:
                    return True
                chunk = pending[:take]
                del pending[:take]
                self._process_chunk(chunk[0][0], [m for _, m in chunk], publisher)
                self._write_status(binner, queue_depth=len(pending))
            return budget_left() is None or budget_left() > 0

        try:
            with get_tracer().span("serve", start_bin=self._start_bin) as span:
                interrupted = False
                for batch in self._source.batches():
                    started = time.perf_counter()
                    closed = binner.push(batch)
                    self._record_stage("bin", time.perf_counter() - started)
                    if not drain(closed, final=False):
                        break
                    if self._stop_requested:
                        interrupted = True
                        break
                if not interrupted and not self._stop_requested:
                    # End of feed: flush the watermark-held and partial bins.
                    drain(binner.flush(), final=True)
                else:
                    # Stopped mid-feed: publish what is already closed, keep the
                    # open bins for the resumed service to re-ingest.
                    drain([], final=True)
                self.status.stopped_by_signal = self._stop_requested
                self._write_status(binner, queue_depth=len(pending))
                if self._estimate_writer is not None:
                    self._estimate_writer.flush()
                self._write_checkpoint()
                span.set(bins_published=self.status.bins_published)
        finally:
            publisher.close()
        return self.status

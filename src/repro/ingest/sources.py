"""Flow-record sources: the feeds a live ingestion service can run on.

A :class:`FlowSource` is anything that names its node ordering and yields
:class:`~repro.ingest.records.RecordBatch` batches.  Three adapters cover
the spectrum from offline experiment to load test:

* :class:`ConnectionFlowSource` replays the NetFlow-style
  :class:`~repro.traces.connections.Connection` populations of
  :mod:`repro.traces` — each connection contributes its forward bytes as an
  (initiator → responder) record and its reverse bytes as the opposite
  record, the same IC decomposition as
  :func:`~repro.traces.netflow.od_flows_from_connections`;
* :class:`FileReplaySource` replays a ``.csv``/``.jsonl`` trace file with a
  configurable speed-up, optionally pacing emission against the wall clock
  so a week of records can exercise the service in minutes;
* :class:`SyntheticFlowSource` decomposes the chunks of any ground-truth
  :class:`~repro.streaming.ChunkStream` (e.g. a
  :class:`~repro.synthesis.datasets.StreamingDataset` week driven by
  :meth:`ICTMGenerator.plan <repro.synthesis.generator.ICTMGenerator.plan>`)
  into per-bin OD records — one record per OD pair by default, so binning
  the feed reconstructs the ground-truth matrices *exactly*, which is what
  the service-equals-batch equivalence proof rests on.
"""

from __future__ import annotations

import time as _time
from typing import Iterator, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.ingest.records import RecordBatch, read_flow_file

__all__ = [
    "FlowSource",
    "ConnectionFlowSource",
    "FileReplaySource",
    "SyntheticFlowSource",
]


class FlowSource:
    """Base class of the flow-record source protocol.

    Subclasses define ``nodes`` (the node ordering record indices refer to)
    and :meth:`batches`, a single-pass iterator of record batches.  Sources
    are *not* required to be re-iterable — a live feed cannot be replayed —
    so consumers must make their one pass count.
    """

    def __init__(self, nodes: Sequence[str]):
        self._nodes = tuple(str(node) for node in nodes)
        if not self._nodes:
            raise ValidationError("a flow source needs at least one node")

    @property
    def nodes(self) -> tuple[str, ...]:
        return self._nodes

    @property
    def n_nodes(self) -> int:
        return len(self._nodes)

    def batches(self) -> Iterator[RecordBatch]:
        """One pass of record batches, in arrival order."""
        raise NotImplementedError


class ConnectionFlowSource(FlowSource):
    """Adapter replaying a ``repro.traces`` connection population.

    Each connection emits two records at its start time: forward bytes on
    (initiator → responder) and reverse bytes on (responder → initiator).
    Connections whose endpoints map to the same node are rejected unless
    ``keep_self_pairs`` is set, mirroring
    :func:`~repro.traces.netflow.od_flows_from_connections`.
    """

    def __init__(
        self,
        connections,
        nodes: Sequence[str],
        *,
        keep_self_pairs: bool = False,
        batch_records: int = 4096,
    ):
        super().__init__(nodes)
        if batch_records < 1:
            raise ValidationError("batch_records must be >= 1")
        self._connections = list(connections)
        self._keep_self_pairs = bool(keep_self_pairs)
        self._batch_records = int(batch_records)

    def batches(self) -> Iterator[RecordBatch]:
        index = {name: i for i, name in enumerate(self._nodes)}
        times: list[float] = []
        srcs: list[int] = []
        dsts: list[int] = []
        vols: list[float] = []
        for connection in self._connections:
            try:
                origin = index[connection.initiator_node]
                destination = index[connection.responder_node]
            except KeyError as exc:
                raise ValidationError(
                    f"connection references unknown node {exc.args[0]!r}"
                ) from exc
            if origin == destination and not self._keep_self_pairs:
                raise ValidationError(
                    f"connection {connection.initiator_node!r} -> "
                    f"{connection.responder_node!r} maps both endpoints to the same "
                    "node; intra-node traffic lands on the TM diagonal (pass "
                    "keep_self_pairs=True to keep it)"
                )
            times.extend((connection.start, connection.start))
            srcs.extend((origin, destination))
            dsts.extend((destination, origin))
            vols.extend((connection.forward_bytes, connection.reverse_bytes))
            if len(times) >= self._batch_records:
                yield RecordBatch(times, srcs, dsts, vols)
                times, srcs, dsts, vols = [], [], [], []
        if times:
            yield RecordBatch(times, srcs, dsts, vols)


class FileReplaySource(FlowSource):
    """Replay a ``.csv``/``.jsonl`` flow trace, optionally paced.

    ``speedup`` controls pacing: ``0`` (the default) replays as fast as the
    file can be parsed; any positive value makes record time advance at
    ``speedup`` times the wall clock (``speedup=3600`` replays an hour of
    trace per wall-clock second), sleeping between batches as needed — the
    knob that turns an archived trace into a live feed.
    """

    def __init__(
        self,
        path,
        nodes: Sequence[str],
        *,
        speedup: float = 0.0,
        batch_records: int = 8192,
    ):
        super().__init__(nodes)
        if speedup < 0:
            raise ValidationError("speedup must be >= 0 (0 replays unpaced)")
        self._path = path
        self._speedup = float(speedup)
        self._batch_records = int(batch_records)

    def batches(self) -> Iterator[RecordBatch]:
        origin_record: float | None = None
        origin_wall = _time.monotonic()
        for batch in read_flow_file(self._path, self._nodes, batch_records=self._batch_records):
            if self._speedup > 0 and len(batch):
                latest = float(batch.timestamps.max())
                if origin_record is None:
                    origin_record = float(batch.timestamps.min())
                due = origin_wall + (latest - origin_record) / self._speedup
                delay = due - _time.monotonic()
                if delay > 0:
                    _time.sleep(delay)
            yield batch


class SyntheticFlowSource(FlowSource):
    """Decompose a ground-truth chunk stream into per-bin OD records.

    With the default ``records_per_pair=1`` every bin emits exactly one
    record per OD pair carrying that pair's full volume, so binning the feed
    rebuilds the stream's matrices bit-for-bit (a single addition into a
    zero matrix).  ``records_per_pair > 1`` splits each volume evenly across
    several records spread through the bin — the load-testing mode, which
    multiplies the record rate without changing the per-bin totals beyond
    float re-association.  ``jitter_seconds`` perturbs timestamps inside
    each bin (never across bins), which makes batches arrive out of order —
    fuel for watermark tests.
    """

    def __init__(
        self,
        stream,
        *,
        records_per_pair: int = 1,
        jitter_seconds: float = 0.0,
        seed: int = 0,
    ):
        super().__init__(stream.nodes)
        if records_per_pair < 1:
            raise ValidationError("records_per_pair must be >= 1")
        if jitter_seconds < 0:
            raise ValidationError("jitter_seconds must be >= 0")
        if jitter_seconds >= stream.bin_seconds:
            raise ValidationError(
                f"jitter_seconds must stay below one bin ({stream.bin_seconds}s); "
                "cross-bin displacement would change the ground truth being replayed"
            )
        self._stream = stream
        self._per_pair = int(records_per_pair)
        self._jitter = float(jitter_seconds)
        self._seed = int(seed)

    @property
    def n_bins(self) -> int:
        return int(self._stream.n_bins)

    @property
    def bin_seconds(self) -> float:
        return float(self._stream.bin_seconds)

    def batches(self) -> Iterator[RecordBatch]:
        n = self.n_nodes
        bin_seconds = float(self._stream.bin_seconds)
        pairs = n * n
        src_template = np.repeat(np.arange(n, dtype=np.intp), n)
        dst_template = np.tile(np.arange(n, dtype=np.intp), n)
        rng = np.random.default_rng(self._seed) if self._jitter > 0 else None
        for t0, block in self._stream.chunks():
            t_chunk = block.shape[0]
            bin_starts = (np.arange(t0, t0 + t_chunk, dtype=float) * bin_seconds)
            volumes = block.reshape(t_chunk, pairs)
            if self._per_pair == 1:
                times = np.repeat(bin_starts, pairs)
                vols = volumes.reshape(-1)
                src = np.tile(src_template, t_chunk)
                dst = np.tile(dst_template, t_chunk)
            else:
                r = self._per_pair
                offsets = (np.arange(r, dtype=float) / r) * bin_seconds
                times = np.broadcast_to(
                    bin_starts[:, None, None] + offsets[None, None, :], (t_chunk, pairs, r)
                ).reshape(-1)
                vols = np.broadcast_to(
                    (volumes / r)[:, :, None], (t_chunk, pairs, r)
                ).reshape(-1)
                src = np.repeat(np.tile(src_template, t_chunk), r)
                dst = np.repeat(np.tile(dst_template, t_chunk), r)
            if rng is not None:
                times = times + rng.uniform(0.0, self._jitter, size=times.shape)
            yield RecordBatch(times, src, dst, vols)

"""The rolling-fit plane: sliding bin window, periodic re-fit, atomic prior.

A live service cannot calibrate its stable-fP prior on a frozen calibration
week — the paper's parameters drift, and the rolling-prediction literature
(Stoev/Michailidis/Vaughan) re-estimates on a sliding window instead.  Two
classes implement that here:

* :class:`RollingWindow` keeps the most recent ``window_bins`` closed bins.
  In-memory bins past ``budget_bytes`` are spilled as ``.npz`` shards
  through the scenario layer's :class:`~repro.scenarios.spill.SpillStore`,
  and :meth:`RollingWindow.as_stream` re-exposes the whole window as a
  re-iterable :class:`~repro.streaming.ChunkStream` — exactly what the
  multi-pass streaming ALS fit consumes.
* :class:`RollingFitManager` owns the active prior.  Every ``refit_every``
  closed bins it re-runs
  :func:`~repro.core.streaming.fit_stable_fp_streaming` over the window,
  warm-starting the ALS from the previous fit's ``(f, P)``, and swaps the
  resulting :class:`ActivePrior` in a single assignment — consumers always
  see either the old prior or the new one, never a half-updated state.

Prior modes mirror the batch registry: ``gravity`` (no parameters),
``stable_f`` (pinned ``f``, per-bin closed form) and ``stable_fp`` (fitted
``f`` and ``P``, activity recovered per bin from the marginals through one
precomputed ``pinv(QΦ)``).  With ``refit_every=0`` the manager never fits —
the pinned-prior mode the service-equals-batch equivalence proof uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.core.gravity import gravity_series_values
from repro.core.ic_model import simplified_ic_series
from repro.core.priors import StableFPrior, ic_design_matrix, marginal_operators
from repro.errors import ValidationError
from repro.streaming import FunctionChunkStream
from repro._validation import normalized

__all__ = ["RollingWindow", "RollingFitManager", "ActivePrior", "PRIOR_MODES"]

PRIOR_MODES = ("gravity", "stable_f", "stable_fp")

# Default in-memory budget for the rolling window before bins spill to disk.
DEFAULT_WINDOW_BUDGET_BYTES = 64 * 1024 * 1024


@dataclass
class _Segment:
    """A contiguous run of window bins, in memory or spilled."""

    start_bin: int
    n_bins: int
    data: object  # np.ndarray | SpilledSeries

    @property
    def in_memory(self) -> bool:
        return isinstance(self.data, np.ndarray)

    def load(self) -> np.ndarray:
        return np.asarray(self.data)


class RollingWindow:
    """A sliding window of recent bins with disk spill past a memory budget.

    Bins arrive through :meth:`append` as ``(T_chunk, n, n)`` blocks and age
    out automatically once the window exceeds ``window_bins``.  When the
    in-memory blocks exceed ``budget_bytes`` the oldest are written as
    ``.npz`` shards via :class:`~repro.scenarios.spill.SpillStore` (lazy
    handles, loaded only when a fit pass reads them) and the files are
    deleted as their bins age out of the window.
    """

    def __init__(
        self,
        nodes: Sequence[str],
        *,
        bin_seconds: float,
        window_bins: int,
        budget_bytes: int = DEFAULT_WINDOW_BUDGET_BYTES,
        spill_dir=None,
    ):
        self._nodes = tuple(str(node) for node in nodes)
        if window_bins < 1:
            raise ValidationError("window_bins must be >= 1")
        if budget_bytes < 0:
            raise ValidationError("budget_bytes must be >= 0")
        self._bin_seconds = float(bin_seconds)
        self._window_bins = int(window_bins)
        self._budget = int(budget_bytes)
        self._spill_dir = spill_dir
        self._store = None
        self._segments: list[_Segment] = []
        self._memory_bytes = 0
        self.spilled_segments = 0

    @property
    def nodes(self) -> tuple[str, ...]:
        return self._nodes

    @property
    def window_bins(self) -> int:
        return self._window_bins

    @property
    def n_bins(self) -> int:
        """Bins currently held (grows to ``window_bins`` then stays there)."""
        return sum(segment.n_bins for segment in self._segments)

    @property
    def start_bin(self) -> int:
        """Global index of the oldest bin in the window."""
        if not self._segments:
            raise ValidationError("the rolling window is empty")
        return self._segments[0].start_bin

    @property
    def memory_bytes(self) -> int:
        """Bytes currently held in memory (excludes spilled shards)."""
        return self._memory_bytes

    def _ensure_store(self):
        if self._store is None:
            from repro.scenarios.spill import SpillStore

            if self._spill_dir is None:
                import tempfile

                self._spill_dir = tempfile.mkdtemp(prefix="repro-ingest-window-")
            self._store = SpillStore(self._spill_dir)
        return self._store

    def append(self, start_bin: int, block: np.ndarray) -> None:
        """Add one closed ``(T_chunk, n, n)`` block; evict and spill as needed."""
        block = np.asarray(block, dtype=float)
        if block.ndim != 3 or block.shape[1:] != (len(self._nodes),) * 2:
            raise ValidationError(
                f"window blocks must have shape (T, {len(self._nodes)}, "
                f"{len(self._nodes)}), got {block.shape}"
            )
        if self._segments:
            expected = self._segments[-1].start_bin + self._segments[-1].n_bins
            if start_bin != expected:
                raise ValidationError(
                    f"window blocks must be contiguous: expected bin {expected}, "
                    f"got {start_bin}"
                )
        self._segments.append(_Segment(int(start_bin), block.shape[0], block))
        self._memory_bytes += block.nbytes
        self._evict()
        self._spill()

    def _evict(self) -> None:
        while self.n_bins - self._segments[0].n_bins >= self._window_bins:
            segment = self._segments.pop(0)
            if segment.in_memory:
                self._memory_bytes -= segment.data.nbytes
            else:
                for path in segment.data.paths:
                    try:
                        path.unlink()
                    except OSError:
                        pass

    def _spill(self) -> None:
        index = 0
        while self._memory_bytes > self._budget and index < len(self._segments) - 1:
            segment = self._segments[index]
            if segment.in_memory:
                store = self._ensure_store()
                handle = store.add_series(f"window-{segment.start_bin}", segment.data)
                self._memory_bytes -= segment.data.nbytes
                self._segments[index] = _Segment(segment.start_bin, segment.n_bins, handle)
                self.spilled_segments += 1
            index += 1

    def as_stream(self, *, chunk_bins: int | None = None) -> FunctionChunkStream:
        """The current window as a re-iterable chunk stream (t0 counted from 0).

        The stream snapshots the segment list, so a fit pass keeps reading a
        consistent window even if bins keep arriving meanwhile — the atomic
        swap the fit manager relies on.
        """
        segments = list(self._segments)
        if not segments:
            raise ValidationError("the rolling window is empty")
        n_bins = sum(segment.n_bins for segment in segments)
        base = segments[0].start_bin

        def factory(resolved_chunk: int) -> Iterator[tuple[int, np.ndarray]]:
            for segment in segments:
                yield segment.start_bin - base, segment.load()

        return FunctionChunkStream(
            factory,
            n_bins=n_bins,
            nodes=self._nodes,
            bin_seconds=self._bin_seconds,
            chunk_bins=chunk_bins or max(segment.n_bins for segment in segments),
        )


@dataclass(frozen=True)
class ActivePrior:
    """The immutable prior state consumers read — swapped in one assignment.

    Attributes
    ----------
    mode:
        The effective prior recipe: ``gravity``, ``stable_f`` or
        ``stable_fp``.  A ``stable_fp`` manager reports ``gravity`` here
        until its first window fit lands.
    forward_fraction, preference, pinv_t:
        IC parameters; ``preference``/``pinv_t`` are only set once a
        stable-fP fit produced them.
    version:
        Increments on every swap (0 = the pre-fit fallback).
    fitted_at_bin:
        Global bin index the producing fit's window ended at.
    """

    mode: str
    forward_fraction: float | None = None
    preference: np.ndarray | None = None
    pinv_t: np.ndarray | None = None
    version: int = 0
    fitted_at_bin: int | None = None

    def values(self, ingress: np.ndarray, egress: np.ndarray) -> np.ndarray:
        """Per-bin prior matrices for one chunk of marginals."""
        if self.mode == "gravity":
            return gravity_series_values(ingress, egress)
        if self.mode == "stable_f":
            return StableFPrior(float(self.forward_fraction)).series(ingress, egress).values
        marginals = np.concatenate([ingress, egress], axis=1)
        activity = np.clip(marginals @ self.pinv_t, 0.0, None)
        return simplified_ic_series(float(self.forward_fraction), activity, self.preference)


class RollingFitManager:
    """Maintain the active prior over a live feed, re-fitting on a window.

    Parameters
    ----------
    nodes, bin_seconds:
        The binned feed's geometry.
    mode:
        Prior recipe (``gravity``/``stable_f``/``stable_fp``).
    forward_fraction:
        Pinned ``f`` for ``stable_f`` (required) and the warm start of the
        first ``stable_fp`` fit (optional).
    refit_every:
        Re-fit period in closed bins; ``0`` disables fitting entirely
        (``stable_fp`` then falls back to gravity until told otherwise —
        pass a pinned prior via :meth:`pin` instead).
    window_bins:
        Sliding fit window length.
    window_budget_bytes, spill_dir:
        Memory budget and spill location of the window.
    fit_kwargs:
        Extra keyword arguments forwarded to ``fit_stable_fp_streaming``
        (iteration caps for latency-sensitive deployments).
    on_swap:
        Optional callable invoked with the new :class:`ActivePrior` every
        time a fit (or pin) swaps the active prior.  The ingest service
        registers the estimator's ``invalidate_fast_path`` here so a prior
        swap atomically drops any cached factorisations built against the
        outgoing prior; the callback runs after the swap, in the same
        (single-threaded) observe call that triggered it.
    """

    def __init__(
        self,
        nodes: Sequence[str],
        *,
        bin_seconds: float,
        mode: str = "gravity",
        forward_fraction: float | None = None,
        refit_every: int = 0,
        window_bins: int = 96,
        window_budget_bytes: int = DEFAULT_WINDOW_BUDGET_BYTES,
        spill_dir=None,
        min_fit_bins: int = 8,
        fit_kwargs: dict | None = None,
        on_swap=None,
    ):
        if mode not in PRIOR_MODES:
            raise ValidationError(
                f"unknown prior mode {mode!r}; choose from {PRIOR_MODES}"
            )
        if mode == "stable_f" and forward_fraction is None:
            raise ValidationError("stable_f needs a pinned --forward-fraction")
        if refit_every < 0:
            raise ValidationError("refit_every must be >= 0 (0 disables re-fitting)")
        self._mode = mode
        self._bin_seconds = float(bin_seconds)
        self._refit_every = int(refit_every)
        self._min_fit_bins = max(int(min_fit_bins), 2)
        self._fit_kwargs = dict(fit_kwargs or {})
        self._on_swap = on_swap
        self._needs_fit = mode == "stable_fp" and refit_every > 0
        self._window = (
            RollingWindow(
                nodes,
                bin_seconds=bin_seconds,
                window_bins=window_bins,
                budget_bytes=window_budget_bytes,
                spill_dir=spill_dir,
            )
            if self._needs_fit
            else None
        )
        self._bins_since_fit = 0
        self._last_observed_bin: int | None = None
        self.refits = 0
        if mode == "stable_fp":
            # Gravity fallback until the first window fit (or a pin) lands.
            self._active = ActivePrior(mode="gravity", forward_fraction=forward_fraction)
        else:
            self._active = ActivePrior(mode=mode, forward_fraction=forward_fraction)

    @property
    def active(self) -> ActivePrior:
        return self._active

    @property
    def window(self) -> RollingWindow | None:
        return self._window

    def pin(self, *, forward_fraction: float, preference) -> None:
        """Install a fixed stable-fP prior (no fitting): the pinned mode."""
        self._install_fit(float(forward_fraction), np.asarray(preference, dtype=float), None)

    def _install_fit(self, forward: float, preference: np.ndarray, fitted_at: int | None):
        preference = normalized(np.clip(preference, 0.0, None), "preference")
        phi = ic_design_matrix(forward, preference)
        _, _, q = marginal_operators(preference.shape[0])
        pinv_t = np.linalg.pinv(q @ phi).T
        # One assignment: readers see the old prior or the new one, whole.
        self._active = ActivePrior(
            mode="stable_fp",
            forward_fraction=forward,
            preference=preference,
            pinv_t=pinv_t,
            version=self._active.version + 1,
            fitted_at_bin=fitted_at,
        )
        if self._on_swap is not None:
            self._on_swap(self._active)

    def observe(self, start_bin: int, block: np.ndarray) -> bool:
        """Feed closed bins into the window; re-fit when the period elapses.

        Returns ``True`` when this call swapped the active prior.  Call it
        *after* the bins' own estimates are published so a swap only ever
        affects subsequent bins.
        """
        block = np.asarray(block, dtype=float)
        self._last_observed_bin = int(start_bin) + block.shape[0]
        if not self._needs_fit:
            return False
        self._window.append(int(start_bin), block)
        self._bins_since_fit += block.shape[0]
        window_full_enough = self._window.n_bins >= min(
            self._min_fit_bins, self._window.window_bins
        )
        due = (
            self._active.preference is None and window_full_enough
        ) or (self._bins_since_fit >= self._refit_every and window_full_enough)
        if not due:
            return False
        from repro.core.streaming import fit_stable_fp_streaming

        kwargs = dict(self._fit_kwargs)
        if self._active.forward_fraction is not None:
            kwargs.setdefault("initial_forward_fraction", float(self._active.forward_fraction))
        if self._active.preference is not None:
            kwargs.setdefault("initial_preference", self._active.preference)
        fit = fit_stable_fp_streaming(self._window.as_stream(), **kwargs)
        fitted_at = self._window.start_bin + self._window.n_bins
        self._install_fit(float(fit.forward_fraction), np.asarray(fit.preference), fitted_at)
        self._bins_since_fit = 0
        self.refits += 1
        return True

    def fit_age_bins(self) -> int | None:
        """Closed bins since the active fit's window ended (None before one)."""
        if self._active.fitted_at_bin is None or self._last_observed_bin is None:
            return None
        return max(self._last_observed_bin - self._active.fitted_at_bin, 0)

    def prior_values(self, ingress: np.ndarray, egress: np.ndarray) -> np.ndarray:
        """Prior matrices for one chunk of marginals under the active prior."""
        return self._active.values(ingress, egress)

"""Columnar flow-record batches and the flow-file formats they replay from.

The ingestion data plane never touches one record at a time: a Python-level
per-record loop tops out far below the line rate a service must sustain, so
every :class:`~repro.ingest.sources.FlowSource` hands the binner
:class:`RecordBatch` objects — four parallel numpy columns (timestamp,
source node index, destination node index, byte volume) — and the binner
reduces each batch with vectorised ``bincount`` scatters.  Node names are
resolved to indices exactly once, at batch construction, against the
topology's node ordering.

Two on-disk formats are supported for replay, chosen by file suffix:

* ``.csv`` — a ``time,src,dst,bytes`` header followed by one record per
  line (the bundled ``examples/sample_flows.csv`` trace uses this);
* ``.jsonl`` — one JSON object per line with the same four keys.

Both are plain text so traces can be produced by anything from a netflow
exporter shim to a five-line script.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

from repro.errors import ValidationError

__all__ = ["RecordBatch", "read_flow_file", "write_flow_csv", "write_flow_jsonl"]

CSV_HEADER = "time,src,dst,bytes"


@dataclass(frozen=True)
class RecordBatch:
    """One batch of flow records in columnar form.

    Attributes
    ----------
    timestamps:
        Record times in seconds from the stream origin, shape ``(k,)``.
        Batches need not be sorted — the binner's watermark handles
        out-of-order arrival.
    src, dst:
        Source/destination node indices into the topology's node ordering,
        shape ``(k,)``.
    volumes:
        Byte volumes, shape ``(k,)``, non-negative.
    """

    timestamps: np.ndarray
    src: np.ndarray
    dst: np.ndarray
    volumes: np.ndarray

    def __post_init__(self):
        object.__setattr__(self, "timestamps", np.asarray(self.timestamps, dtype=float))
        object.__setattr__(self, "src", np.asarray(self.src, dtype=np.intp))
        object.__setattr__(self, "dst", np.asarray(self.dst, dtype=np.intp))
        object.__setattr__(self, "volumes", np.asarray(self.volumes, dtype=float))
        k = self.timestamps.shape
        for name in ("src", "dst", "volumes"):
            if getattr(self, name).shape != k:
                raise ValidationError(
                    f"record batch columns must share one shape; timestamps is {k} "
                    f"but {name} is {getattr(self, name).shape}"
                )
        if self.timestamps.ndim != 1:
            raise ValidationError("record batch columns must be one-dimensional")
        if self.volumes.size and float(self.volumes.min()) < 0:
            raise ValidationError("record volumes must be non-negative")

    def __len__(self) -> int:
        return int(self.timestamps.shape[0])

    @classmethod
    def from_names(
        cls,
        timestamps,
        src_names: Sequence[str],
        dst_names: Sequence[str],
        volumes,
        nodes: Sequence[str],
    ) -> "RecordBatch":
        """Build a batch from node *names*, resolved against ``nodes``.

        Unknown names raise :class:`ValidationError` naming the offender —
        a replayed trace against the wrong topology should fail loudly, not
        silently misroute traffic.
        """
        index = {name: i for i, name in enumerate(nodes)}
        try:
            src = np.fromiter((index[name] for name in src_names), dtype=np.intp)
            dst = np.fromiter((index[name] for name in dst_names), dtype=np.intp)
        except KeyError as exc:
            raise ValidationError(
                f"flow record references unknown node {exc.args[0]!r}; "
                f"the topology defines {len(index)} nodes"
            ) from exc
        return cls(timestamps=timestamps, src=src, dst=dst, volumes=volumes)


def _parse_csv_lines(lines: Iterator[str], path: Path):
    header = None
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if header is None:
            header = line
            if header.replace(" ", "") != CSV_HEADER:
                raise ValidationError(
                    f"{path}: expected CSV header {CSV_HEADER!r}, got {header!r}"
                )
            continue
        parts = line.split(",")
        if len(parts) != 4:
            raise ValidationError(f"{path}:{lineno}: expected 4 CSV fields, got {len(parts)}")
        yield float(parts[0]), parts[1].strip(), parts[2].strip(), float(parts[3])


def _parse_jsonl_lines(lines: Iterator[str], path: Path):
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
            yield (
                float(payload["time"]),
                str(payload["src"]),
                str(payload["dst"]),
                float(payload["bytes"]),
            )
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            raise ValidationError(f"{path}:{lineno}: malformed JSONL flow record: {exc}") from exc


def read_flow_file(
    path,
    nodes: Sequence[str],
    *,
    batch_records: int = 8192,
) -> Iterator[RecordBatch]:
    """Stream a ``.csv``/``.jsonl`` flow file as :class:`RecordBatch` objects.

    Reads ``batch_records`` records at a time, so arbitrarily long traces
    replay in bounded memory.  The node names in the file are resolved
    against ``nodes`` per batch.
    """
    path = Path(path)
    if batch_records < 1:
        raise ValidationError("batch_records must be >= 1")
    suffix = path.suffix.lower()
    if suffix == ".csv":
        parser = _parse_csv_lines
    elif suffix in (".jsonl", ".ndjson"):
        parser = _parse_jsonl_lines
    else:
        raise ValidationError(
            f"unsupported flow-file suffix {suffix!r} for {path}; use .csv or .jsonl"
        )
    times: list[float] = []
    srcs: list[str] = []
    dsts: list[str] = []
    vols: list[float] = []
    with path.open("r", encoding="utf-8") as handle:
        for time, src, dst, volume in parser(handle, path):
            times.append(time)
            srcs.append(src)
            dsts.append(dst)
            vols.append(volume)
            if len(times) >= batch_records:
                yield RecordBatch.from_names(times, srcs, dsts, vols, nodes)
                times, srcs, dsts, vols = [], [], [], []
    if times:
        yield RecordBatch.from_names(times, srcs, dsts, vols, nodes)


def write_flow_csv(path, rows) -> int:
    """Write ``(time, src, dst, bytes)`` rows as a replayable CSV trace."""
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        handle.write(CSV_HEADER + "\n")
        for time, src, dst, volume in rows:
            handle.write(f"{float(time):.6g},{src},{dst},{float(volume):.10g}\n")
            count += 1
    return count


def write_flow_jsonl(path, rows) -> int:
    """Write ``(time, src, dst, bytes)`` rows as a replayable JSONL trace."""
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for time, src, dst, volume in rows:
            handle.write(
                json.dumps(
                    {"time": float(time), "src": str(src), "dst": str(dst), "bytes": float(volume)}
                )
                + "\n"
            )
            count += 1
    return count

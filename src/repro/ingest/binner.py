"""The time binner: flow records in, per-bin OD matrices out.

:class:`FlowBinner` turns an unordered record feed into the ordered per-bin
``(n, n)`` matrices the estimation pipeline consumes.  Its contract is the
standard watermark semantics of streaming systems:

* a record at time ``t`` lands in bin ``floor((t - origin) / bin_seconds)``;
* a bin stays *open* — still accepting records — until the maximum event
  time seen has advanced ``watermark_bins`` whole bins past it; the highest
  bin touched so far (the partial trailing bin) is therefore always held
  back, and ``watermark_bins`` extra bins of grace absorb out-of-order
  arrival;
* once a bin closes it is emitted exactly once, in index order, with empty
  bins emitted as zero matrices so the published series never has gaps;
* records targeting an already-closed bin are *dropped and counted*
  (``records_dropped_late``) — a late record must never mutate a published
  matrix.

Each batch is reduced with one vectorised ``bincount`` scatter per open bin
it touches, which is what sustains >100k records/sec in pure numpy (see
``bench_ingest_throughput``).

:func:`live_chunk_stream` adapts a finite source + binner pair into the
repo's :class:`~repro.streaming.ChunkStream` protocol, so
``TMEstimator.estimate_stream``, ``SeriesAccumulator`` and the streaming
metrics consume a live binned feed unchanged.  The adapter is single-pass —
a live feed cannot rewind — so multi-pass consumers wrap it in
:func:`repro.streaming.cache_chunks` first.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.ingest.records import RecordBatch
from repro.streaming import FunctionChunkStream

__all__ = ["FlowBinner", "live_chunk_stream"]


class FlowBinner:
    """Aggregate flow-record batches into ordered per-bin OD matrices.

    Parameters
    ----------
    nodes:
        Node ordering defining the matrix indices (record ``src``/``dst``
        columns index into it).
    bin_seconds:
        Bin width.
    watermark_bins:
        Out-of-order tolerance: how many whole bins behind the maximum seen
        event time a bin keeps accepting records.  ``0`` closes a bin as
        soon as any record lands past it; larger values trade publication
        latency for late-record tolerance.
    origin:
        Timestamp of the left edge of bin 0.
    start_bin:
        First bin index to emit — everything earlier is treated as already
        published (the resume path) and counted in ``records_skipped``.
    """

    def __init__(
        self,
        nodes: Sequence[str],
        *,
        bin_seconds: float,
        watermark_bins: int = 1,
        origin: float = 0.0,
        start_bin: int = 0,
    ):
        self._nodes = tuple(str(node) for node in nodes)
        if not self._nodes:
            raise ValidationError("a binner needs at least one node")
        if bin_seconds <= 0:
            raise ValidationError("bin_seconds must be positive")
        if watermark_bins < 0:
            raise ValidationError("watermark_bins must be >= 0")
        if start_bin < 0:
            raise ValidationError("start_bin must be >= 0")
        self._n = len(self._nodes)
        self._bin_seconds = float(bin_seconds)
        self._watermark_bins = int(watermark_bins)
        self._origin = float(origin)
        self._start_bin = int(start_bin)
        self._frontier = int(start_bin)  # next bin index to emit
        self._open: dict[int, np.ndarray] = {}
        self._max_bin_seen = int(start_bin) - 1
        self.records_seen = 0
        self.records_binned = 0
        self.records_dropped_late = 0
        self.records_skipped = 0
        self.bins_closed = 0

    @property
    def nodes(self) -> tuple[str, ...]:
        return self._nodes

    @property
    def bin_seconds(self) -> float:
        return self._bin_seconds

    @property
    def watermark_bins(self) -> int:
        return self._watermark_bins

    @property
    def origin(self) -> float:
        return self._origin

    @property
    def frontier(self) -> int:
        """Index of the next bin this binner will emit."""
        return self._frontier

    @property
    def open_bins(self) -> int:
        """Number of bins currently accumulating records."""
        return len(self._open)

    def counters(self) -> dict:
        """The ingestion counters, as published in the status snapshot."""
        return {
            "records_seen": self.records_seen,
            "records_binned": self.records_binned,
            "records_dropped_late": self.records_dropped_late,
            "records_skipped": self.records_skipped,
            "bins_closed": self.bins_closed,
            "open_bins": len(self._open),
            "frontier": self._frontier,
            "max_bin_seen": self._max_bin_seen,
        }

    def _bin_of(self, timestamps: np.ndarray) -> np.ndarray:
        return np.floor((timestamps - self._origin) / self._bin_seconds).astype(np.int64)

    def push(self, batch: RecordBatch) -> list[tuple[int, np.ndarray]]:
        """Ingest one batch; return the bins it closed as ``(index, matrix)``.

        Closed bins come back in index order and include zero matrices for
        empty bins, so concatenating the results of successive pushes yields
        a gapless series starting at ``start_bin``.
        """
        k = len(batch)
        self.records_seen += k
        if k == 0:
            return []
        bins = self._bin_of(batch.timestamps)
        if int(bins.min()) < 0:
            raise ValidationError(
                "record timestamps precede the stream origin; "
                f"origin={self._origin}, earliest record bin={int(bins.min())}"
            )
        skipped = bins < self._start_bin
        late = (bins < self._frontier) & ~skipped
        self.records_skipped += int(skipped.sum())
        self.records_dropped_late += int(late.sum())
        keep = ~(skipped | late)
        if np.any(keep):
            kept_bins = bins[keep]
            src = batch.src[keep]
            dst = batch.dst[keep]
            vols = batch.volumes[keep]
            if int(src.max()) >= self._n or int(dst.max()) >= self._n:
                raise ValidationError(
                    f"record node index out of range for {self._n} nodes"
                )
            flat = src * self._n + dst
            for bin_index in np.unique(kept_bins):
                mask = kept_bins == bin_index
                matrix = self._open.get(int(bin_index))
                if matrix is None:
                    matrix = np.zeros((self._n, self._n))
                    self._open[int(bin_index)] = matrix
                matrix += np.bincount(
                    flat[mask], weights=vols[mask], minlength=self._n * self._n
                ).reshape(self._n, self._n)
            self.records_binned += int(keep.sum())
        self._max_bin_seen = max(self._max_bin_seen, int(bins.max()))
        return self._close_until(self._max_bin_seen - self._watermark_bins)

    def _close_until(self, limit: int) -> list[tuple[int, np.ndarray]]:
        """Emit every unpublished bin with index below ``limit``, in order."""
        closed: list[tuple[int, np.ndarray]] = []
        while self._frontier < limit:
            index = self._frontier
            matrix = self._open.pop(index, None)
            if matrix is None:
                matrix = np.zeros((self._n, self._n))
            closed.append((index, matrix))
            self._frontier += 1
            self.bins_closed += 1
        return closed

    def flush(self) -> list[tuple[int, np.ndarray]]:
        """Close every remaining bin, including the partial trailing bin.

        Call only at end of stream — after a flush the watermark guarantees
        no longer hold for the flushed bins (any further record targeting
        them would be dropped as late).
        """
        return self._close_until(self._max_bin_seen + 1)


def live_chunk_stream(source, binner: FlowBinner, *, n_bins: int, chunk_bins: int | None = None):
    """Expose a finite binned feed through the :class:`ChunkStream` protocol.

    Pulls ``source.batches()`` through ``binner``, groups the closed bins
    into ``chunk_bins``-sized blocks and yields them as ``(t0, block)``
    pairs with ``t0`` counted from the binner's ``start_bin``.  The stream
    is **single-pass** (a second ``chunks()`` call raises): wrap it in
    :func:`repro.streaming.cache_chunks` when a multi-pass consumer — the
    streaming ALS fit, a prior + estimate zip — needs to replay it.
    """
    if tuple(source.nodes) != binner.nodes:
        raise ValidationError("source and binner must agree on the node ordering")
    if n_bins < 1:
        raise ValidationError("n_bins must be >= 1")
    state = {"consumed": False}
    base_bin = binner.frontier

    def factory(resolved_chunk: int) -> Iterator[tuple[int, np.ndarray]]:
        if state["consumed"]:
            raise ValidationError(
                "live ingest streams are single-pass (the feed cannot rewind); "
                "wrap the stream with repro.streaming.cache_chunks to replay it"
            )
        state["consumed"] = True
        pending: list[np.ndarray] = []
        emitted = 0
        t0 = 0

        def drain(bins):
            nonlocal emitted, t0
            for index, matrix in bins:
                if emitted + len(pending) >= n_bins:
                    return
                if index - base_bin != emitted + len(pending):
                    raise ValidationError(
                        f"binned feed skipped to bin {index}; expected "
                        f"{base_bin + emitted + len(pending)}"
                    )
                pending.append(matrix)

        for batch in source.batches():
            drain(binner.push(batch))
            while len(pending) >= resolved_chunk:
                block = np.stack(pending[:resolved_chunk])
                del pending[:resolved_chunk]
                yield t0, block
                t0 += block.shape[0]
                emitted += block.shape[0]
        drain(binner.flush())
        while pending:
            block = np.stack(pending[:resolved_chunk])
            del pending[:resolved_chunk]
            yield t0, block
            t0 += block.shape[0]
            emitted += block.shape[0]

    return FunctionChunkStream(
        factory,
        n_bins=n_bins,
        nodes=binner.nodes,
        bin_seconds=binner.bin_seconds,
        chunk_bins=chunk_bins,
    )

"""Live flow ingestion: sources, binning, rolling fits and the service loop.

This package turns the repo's batch estimation pipeline into a continuously
running service (``repro serve``).  The layering mirrors the data path:

* :mod:`repro.ingest.records` — columnar :class:`RecordBatch` batches and
  the ``.csv``/``.jsonl`` replay formats;
* :mod:`repro.ingest.sources` — the :class:`FlowSource` protocol and its
  connection-population, file-replay and synthetic adapters;
* :mod:`repro.ingest.binner` — the watermark time binner producing ordered
  per-bin OD matrices, plus the live :class:`ChunkStream` adapter;
* :mod:`repro.ingest.rolling` — the sliding fit window (spilled past a
  budget) and the atomically swapped active prior;
* :mod:`repro.ingest.service` — the publisher/status/checkpoint loop.
"""

from repro.ingest.binner import FlowBinner, live_chunk_stream
from repro.ingest.records import (
    RecordBatch,
    read_flow_file,
    write_flow_csv,
    write_flow_jsonl,
)
from repro.ingest.rolling import ActivePrior, PRIOR_MODES, RollingFitManager, RollingWindow
from repro.ingest.service import CHECKPOINT_FORMAT, IngestService, ServiceStatus
from repro.ingest.sources import (
    ConnectionFlowSource,
    FileReplaySource,
    FlowSource,
    SyntheticFlowSource,
)

__all__ = [
    "ActivePrior",
    "CHECKPOINT_FORMAT",
    "ConnectionFlowSource",
    "FileReplaySource",
    "FlowBinner",
    "FlowSource",
    "IngestService",
    "PRIOR_MODES",
    "RecordBatch",
    "RollingFitManager",
    "RollingWindow",
    "ServiceStatus",
    "SyntheticFlowSource",
    "live_chunk_stream",
    "read_flow_file",
    "write_flow_csv",
    "write_flow_jsonl",
]

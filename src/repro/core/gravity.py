"""The gravity-model baseline.

The gravity model assumes a packet's ingress and egress points are
independent, which leads to the prediction

.. math::  X_{ij} \\approx X_{i*} \\, X_{*j} / X_{**}

where ``X_{i*}`` is node ``i``'s total ingress traffic, ``X_{*j}`` node ``j``'s
total egress traffic and ``X_{**}`` the network total.  The paper uses the
gravity model both as the accuracy baseline (Section 5.1) and as the baseline
prior for traffic-matrix estimation (Section 6); this module implements both
roles, including building the gravity estimate from measured marginals alone
(the setting in which it is used in practice).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro._validation import as_1d_array, require_nonnegative
from repro.backend import resolve_backend
from repro.core.traffic_matrix import TrafficMatrix, TrafficMatrixSeries
from repro.errors import ShapeError, ValidationError
from repro.registry import register_model

__all__ = ["gravity_matrix", "gravity_series_values", "gravity_series", "GravityModel"]


def gravity_series_values(ingress, egress, *, backend=None) -> np.ndarray:
    """Vectorised gravity kernel over ``(T, n)`` ingress/egress marginals.

    Batched equivalent of stacking :func:`gravity_matrix` per bin; zero-traffic
    bins yield all-zero matrices.  Returns a ``(T, n, n)`` array that is
    bit-identical to the per-bin loop.  ``backend`` selects the array
    namespace (:mod:`repro.backend`); a non-NumPy backend accepts host or
    device marginals and returns a device array.
    """
    if backend is not None:
        be = resolve_backend(backend)
        if not be.is_numpy:
            return _gravity_series_values_xp(be, ingress, egress)
    ingress = np.atleast_2d(np.asarray(ingress, dtype=float))
    egress = np.atleast_2d(np.asarray(egress, dtype=float))
    if ingress.ndim != 2 or ingress.shape != egress.shape:
        raise ShapeError(
            f"ingress and egress series must both have shape (T, n), "
            f"got {ingress.shape} vs {egress.shape}"
        )
    for name, array in (("ingress", ingress), ("egress", egress)):
        if not np.all(np.isfinite(array)):
            raise ValidationError(f"{name} must contain only finite values")
    ingress = require_nonnegative(ingress, "ingress")
    egress = require_nonnegative(egress, "egress")
    totals = ingress.sum(axis=1)
    safe_totals = np.where(totals > 0, totals, 1.0)
    estimates = np.einsum("ti,tj->tij", ingress, egress) / safe_totals[:, None, None]
    estimates[totals <= 0] = 0.0
    return estimates


def _gravity_series_values_xp(be, ingress, egress):
    """Namespace-generic gravity kernel (array-API standard + Backend shims)."""
    xp = be.xp
    ingress = be.asarray(ingress)
    egress = be.asarray(egress)
    if len(ingress.shape) == 1:
        ingress = ingress[None, :]
    if len(egress.shape) == 1:
        egress = egress[None, :]
    if len(ingress.shape) != 2 or tuple(ingress.shape) != tuple(egress.shape):
        raise ShapeError(
            f"ingress and egress series must both have shape (T, n), "
            f"got {tuple(ingress.shape)} vs {tuple(egress.shape)}"
        )
    totals = xp.sum(ingress, axis=1)
    ones = xp.ones(totals.shape, dtype=totals.dtype)
    zeros = xp.zeros((1, 1, 1), dtype=totals.dtype)
    safe_totals = xp.where(totals > 0, totals, ones)
    estimates = be.einsum("ti,tj->tij", ingress, egress) / safe_totals[:, None, None]
    return xp.where((totals > 0)[:, None, None], estimates, zeros)


def gravity_matrix(ingress, egress) -> np.ndarray:
    """Gravity estimate ``X_ij = ingress_i * egress_j / total`` for one bin.

    The two marginals need not sum to exactly the same total (measurement
    noise); the denominator used is the ingress total, matching the common
    formulation ``X_i* X_*j / X_**``.  A zero-traffic bin yields an all-zero
    matrix.
    """
    ingress = require_nonnegative(as_1d_array(ingress, "ingress"), "ingress")
    egress = require_nonnegative(
        as_1d_array(egress, "egress", length=ingress.shape[0]), "egress"
    )
    total = float(ingress.sum())
    if total <= 0.0:
        return np.zeros((ingress.shape[0], ingress.shape[0]))
    return np.outer(ingress, egress) / total


def gravity_series(series) -> TrafficMatrixSeries:
    """Gravity estimate of every bin of ``series`` from its own marginals.

    This reproduces how the gravity model is evaluated in Section 5.1: the
    model is given the true per-bin ingress and egress counts (its ``2n``
    inputs per bin) and asked to reconstruct the full matrix.
    """
    if not isinstance(series, TrafficMatrixSeries):
        series = TrafficMatrixSeries(series)
    estimates = gravity_series_values(series.ingress, series.egress)
    return TrafficMatrixSeries(estimates, series.nodes, bin_seconds=series.bin_seconds)


@register_model("gravity", description="Gravity model: independent ingress/egress (the accuracy baseline)")
class GravityModel:
    """Object-style wrapper mirroring the IC model classes.

    ``GravityModel`` carries node names only; the gravity estimate is fully
    determined by the marginals handed to :meth:`matrix` / :meth:`series`.
    """

    name = "gravity"

    def __init__(self, nodes: Sequence[str] | None = None):
        self._nodes = tuple(nodes) if nodes is not None else None

    def matrix(self, ingress, egress) -> np.ndarray:
        """Gravity traffic matrix from one bin's ingress/egress counts."""
        return gravity_matrix(ingress, egress)

    def series(self, ingress_series, egress_series, *, bin_seconds: float = 300.0) -> TrafficMatrixSeries:
        """Gravity series from ``(T, n)`` ingress and egress count series (vectorised)."""
        ingress = np.atleast_2d(np.asarray(ingress_series, dtype=float))
        egress = np.atleast_2d(np.asarray(egress_series, dtype=float))
        if ingress.shape != egress.shape:
            raise ShapeError(
                f"ingress and egress series must match, got {ingress.shape} vs {egress.shape}"
            )
        matrices = gravity_series_values(ingress, egress)
        return TrafficMatrixSeries(matrices, self._nodes, bin_seconds=bin_seconds)

    def fit_series(self, series: TrafficMatrixSeries) -> TrafficMatrixSeries:
        """Gravity reconstruction of ``series`` from its own marginals."""
        return gravity_series(series)

    def degrees_of_freedom(self, n_nodes: int, timesteps: int) -> int:
        """Inputs needed for ``timesteps`` bins: ``2*n*t - 1`` (Section 5.1)."""
        return 2 * n_nodes * timesteps - 1

    @staticmethod
    def matrix_from_traffic(matrix: TrafficMatrix) -> np.ndarray:
        """Gravity reconstruction of a single matrix from its own marginals."""
        return gravity_matrix(matrix.ingress, matrix.egress)

"""Core of the reproduction: traffic-matrix types, models, fitting and priors.

The subpackage is organised as follows:

* :mod:`repro.core.traffic_matrix` — validated containers for a single traffic
  matrix and for a time series of traffic matrices.
* :mod:`repro.core.metrics` — the paper's relative-L2 temporal error (Eq. 6)
  plus spatial and improvement metrics.
* :mod:`repro.core.ic_model` — the independent-connection model family
  (Eqs. 1-5) and degrees-of-freedom accounting.
* :mod:`repro.core.gravity` — the gravity-model baseline.
* :mod:`repro.core.fitting` — constrained parameter estimation replacing the
  paper's Matlab nonlinear program.
* :mod:`repro.core.priors` — priors for traffic-matrix estimation
  (Sections 6.1-6.3).
"""

from repro.core.traffic_matrix import TrafficMatrix, TrafficMatrixSeries
from repro.core.metrics import (
    mean_relative_error,
    percent_improvement,
    rel_l2_spatial_error,
    rel_l2_temporal_error,
)
from repro.core.ic_model import (
    GeneralICModel,
    ICParameters,
    SimplifiedICModel,
    StableFICModel,
    StableFPICModel,
    TimeVaryingICModel,
    degrees_of_freedom,
    general_ic_matrix,
    general_ic_series,
    simplified_ic_matrix,
    simplified_ic_series,
    time_varying_ic_series,
)
from repro.core.gravity import GravityModel, gravity_matrix, gravity_series, gravity_series_values
from repro.core.fitting import FitResult, fit_stable_f, fit_stable_fp, fit_time_varying
from repro.core.priors import (
    GravityPrior,
    MeasuredParameterPrior,
    StableFPPrior,
    StableFPrior,
)

__all__ = [
    "TrafficMatrix",
    "TrafficMatrixSeries",
    "rel_l2_temporal_error",
    "rel_l2_spatial_error",
    "percent_improvement",
    "mean_relative_error",
    "ICParameters",
    "GeneralICModel",
    "SimplifiedICModel",
    "TimeVaryingICModel",
    "StableFICModel",
    "StableFPICModel",
    "degrees_of_freedom",
    "general_ic_matrix",
    "general_ic_series",
    "simplified_ic_matrix",
    "simplified_ic_series",
    "time_varying_ic_series",
    "GravityModel",
    "gravity_matrix",
    "gravity_series",
    "gravity_series_values",
    "FitResult",
    "fit_stable_fp",
    "fit_stable_f",
    "fit_time_varying",
    "GravityPrior",
    "MeasuredParameterPrior",
    "StableFPPrior",
    "StableFPrior",
]

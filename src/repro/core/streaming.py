"""Chunk-wise accumulators: single-pass reductions over traffic streams.

Everything the fitting and evaluation layers need from a ``(T, n, n)`` series
reduces to a handful of per-bin or per-OD statistics — per-bin norms and
marginals (``O(T n)``), per-OD totals and sums of squares (``O(n^2)``), and
contractions of each bin with small parameter vectors.  This module computes
those statistics chunk by chunk over the :mod:`repro.streaming` protocol, so

* :class:`SeriesAccumulator` gives gravity baselines and summary statistics
  in one pass,
* :func:`streaming_rel_l2_temporal_error` / :func:`streaming_rel_l2_spatial_error`
  evaluate the paper's error metrics between two streams without
  materialising either, and
* :func:`fit_stable_fp_streaming` runs the stable-fP alternating least
  squares of :func:`repro.core.fitting.fit_stable_fp` with every subproblem
  expressed as a streaming reduction (two passes per ALS iteration: one that
  solves the per-bin activity and accumulates the preference/forward-fraction
  normal equations, one that scores the updated parameters).

Peak memory is ``O(chunk * n^2 + T * n)`` throughout — the ``(T, n)`` state
(activity, marginals, weights) is kept, the ``n^2`` cubes never are.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.fitting import (
    FitResult,
    _activity_design_pinv,
    _initial_parameters_from_marginals,
)
from repro.core.gravity import gravity_series_values
from repro.core.ic_model import simplified_ic_series
from repro.core.metrics import rel_l2_temporal_error
from repro.errors import ValidationError
from repro.obs import get_tracer
from repro.streaming import as_chunk_stream, cache_chunks, zip_chunks
from repro._validation import require_probability

__all__ = [
    "SeriesAccumulator",
    "sequential_bin_fold",
    "streaming_rel_l2_temporal_error",
    "streaming_rel_l2_spatial_error",
    "streaming_gravity_errors",
    "fit_stable_fp_streaming",
]

_EPS = 1e-12


def sequential_bin_fold(into: np.ndarray, block: np.ndarray) -> np.ndarray:
    """Fold ``block`` into ``into`` bin by bin, in place.

    Numpy's reduction over the leading axis of a C-contiguous cube is a
    plain sequential loop (pairwise summation only kicks in for contiguous
    last-axis reductions), so adding the bins one at a time — in order —
    produces *bitwise* the same array as ``full_series.sum(axis=0)`` no
    matter how the series is chunked.  Chunk-level partial sums
    (``into += block.sum(axis=0)``) do not have this property: they
    re-associate the additions at chunk boundaries.  Every streamed
    reduction that promises bit-identity with its materialised oracle
    (:class:`SeriesAccumulator`, the exact marts of :mod:`repro.marts`)
    folds through this helper.
    """
    for plane in block:
        into += plane
    return into


@dataclass
class SeriesAccumulator:
    """Single-pass per-bin and per-OD statistics of a traffic stream.

    Feed chunks with :meth:`update` (or build from a source with
    :meth:`from_source`); afterwards the accumulator answers the questions
    the fitting/baseline code asks of a materialised cube: per-OD totals and
    second moments, per-bin marginals, norms and totals.
    """

    n_nodes: int
    n_bins: int = 0
    od_sum: np.ndarray = field(default=None)
    od_sumsq: np.ndarray = field(default=None)
    _ingress: list = field(default_factory=list)
    _egress: list = field(default_factory=list)
    _norms: list = field(default_factory=list)

    def __post_init__(self):
        if self.od_sum is None:
            self.od_sum = np.zeros((self.n_nodes, self.n_nodes))
        if self.od_sumsq is None:
            self.od_sumsq = np.zeros((self.n_nodes, self.n_nodes))

    @classmethod
    def from_source(cls, source, *, chunk_bins: int | None = None) -> "SeriesAccumulator":
        """Accumulate a cube or stream in one pass through the shared adapter."""
        stream = as_chunk_stream(source, chunk_bins=chunk_bins)
        accumulator = cls(n_nodes=stream.n_nodes)
        for _, block in stream.chunks():
            accumulator.update(block)
        return accumulator

    def update(self, block: np.ndarray) -> None:
        """Fold one ``(T_chunk, n, n)`` block into the running statistics."""
        if block.ndim != 3 or block.shape[1:] != (self.n_nodes, self.n_nodes):
            raise ValidationError(
                f"expected a (T, {self.n_nodes}, {self.n_nodes}) block, got {block.shape}"
            )
        self.n_bins += block.shape[0]
        # Folding bin by bin keeps the per-OD sums independent of the
        # chunking: any partition of the series accumulates to bitwise the
        # same totals as one shot over the materialised cube.
        sequential_bin_fold(self.od_sum, block)
        sequential_bin_fold(self.od_sumsq, block**2)
        self._ingress.append(block.sum(axis=2))
        self._egress.append(block.sum(axis=1))
        self._norms.append(np.sqrt((block**2).sum(axis=(1, 2))))

    def merge(self, other: "SeriesAccumulator") -> "SeriesAccumulator":
        """Fold another accumulator covering the bins that follow ours.

        Shard-parallel reductions build one accumulator per shard and merge
        them in bin order; per-bin state concatenates and the per-OD sums
        add, so the merged statistics match a single sequential pass up to
        the chunk-boundary re-association of the OD sums.
        """
        if other.n_nodes != self.n_nodes:
            raise ValidationError(
                f"cannot merge accumulators over {other.n_nodes} and "
                f"{self.n_nodes} nodes"
            )
        self.n_bins += other.n_bins
        self.od_sum += other.od_sum
        self.od_sumsq += other.od_sumsq
        self._ingress.extend(other._ingress)
        self._egress.extend(other._egress)
        self._norms.extend(other._norms)
        return self

    # -- derived statistics --------------------------------------------------

    @property
    def ingress(self) -> np.ndarray:
        """Per-bin ingress marginals, shape ``(T, n)``."""
        return np.concatenate(self._ingress) if self._ingress else np.zeros((0, self.n_nodes))

    @property
    def egress(self) -> np.ndarray:
        """Per-bin egress marginals, shape ``(T, n)``."""
        return np.concatenate(self._egress) if self._egress else np.zeros((0, self.n_nodes))

    @property
    def bin_norms(self) -> np.ndarray:
        """Per-bin Frobenius norms ``||X(t)||``, shape ``(T,)``."""
        return np.concatenate(self._norms) if self._norms else np.zeros(0)

    @property
    def bin_totals(self) -> np.ndarray:
        """Per-bin total traffic ``X_{**}(t)``, shape ``(T,)``."""
        return self.ingress.sum(axis=1)

    def mean_matrix(self) -> np.ndarray:
        """Time-averaged ``(n, n)`` traffic matrix."""
        if self.n_bins == 0:
            raise ValidationError("no chunks accumulated yet")
        return self.od_sum / self.n_bins

    def od_variance(self) -> np.ndarray:
        """Per-OD variance across time (population), shape ``(n, n)``."""
        if self.n_bins == 0:
            raise ValidationError("no chunks accumulated yet")
        mean = self.od_sum / self.n_bins
        return np.maximum(self.od_sumsq / self.n_bins - mean**2, 0.0)


def streaming_rel_l2_temporal_error(actual, estimate, *, chunk_bins: int | None = None) -> np.ndarray:
    """Per-bin relative L2 temporal error (Eq. 6) between two streams.

    Accepts any mix of cubes and streams; each bin's error involves only that
    bin, so the chunked evaluation is bit-identical to the materialised one.
    """
    actual_stream = as_chunk_stream(actual, chunk_bins=chunk_bins)
    estimate_stream = as_chunk_stream(estimate, chunk_bins=chunk_bins or actual_stream.chunk_bins)
    parts = [
        rel_l2_temporal_error(actual_block, estimate_block)
        for _, (actual_block, estimate_block) in zip_chunks(actual_stream, estimate_stream)
    ]
    return np.concatenate(parts)


def streaming_rel_l2_spatial_error(actual, estimate, *, chunk_bins: int | None = None) -> np.ndarray:
    """Per-OD relative L2 spatial error between two streams, shape ``(n, n)``."""
    actual_stream = as_chunk_stream(actual, chunk_bins=chunk_bins)
    estimate_stream = as_chunk_stream(estimate, chunk_bins=chunk_bins or actual_stream.chunk_bins)
    n = actual_stream.n_nodes
    diff_sq = np.zeros((n, n))
    norm_sq = np.zeros((n, n))
    for _, (actual_block, estimate_block) in zip_chunks(actual_stream, estimate_stream):
        diff_sq += ((actual_block - estimate_block) ** 2).sum(axis=0)
        norm_sq += (actual_block**2).sum(axis=0)
    diff = np.sqrt(diff_sq)
    norm = np.sqrt(norm_sq)
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.where(
            norm > 0, diff / np.where(norm > 0, norm, 1.0), np.where(diff > 0, np.inf, 0.0)
        )


def streaming_gravity_errors(source, *, chunk_bins: int | None = None) -> np.ndarray:
    """Per-bin error of the gravity reconstruction of a stream's own marginals.

    The Section 5.1 baseline as a single-pass reduction: every bin's gravity
    estimate depends only on that bin's marginals, so the streamed evaluation
    matches :func:`repro.core.gravity.gravity_series` exactly.
    """
    stream = as_chunk_stream(source, chunk_bins=chunk_bins)
    parts = []
    for _, block in stream.chunks():
        gravity = gravity_series_values(block.sum(axis=2), block.sum(axis=1))
        parts.append(rel_l2_temporal_error(block, gravity))
    return np.concatenate(parts)


# ---------------------------------------------------------------------------
# streaming stable-fP fit
# ---------------------------------------------------------------------------

def _solve_forward_fraction_reduced(
    activity: np.ndarray,
    preference: np.ndarray,
    r: np.ndarray,
    s: np.ndarray,
    weights: np.ndarray,
    bounds: tuple[float, float],
) -> float:
    """Closed-form optimal ``f`` from streamed contractions.

    Algebraically identical to ``fitting._solve_forward_fraction`` with
    ``U = A P^T - P A^T`` and ``V = P A^T``, but evaluated from the per-bin
    contractions ``r_t = X_t A_t`` and ``s_t = X_t^T A_t`` instead of the
    ``(T, n, n)`` outer-product cubes:

    ``<U_t, X_t> = P . s_t - P . r_t``,
    ``<U_t, V_t> = (A_t . P)^2 - |P|^2 |A_t|^2``,
    ``<U_t, U_t> = 2 (|A_t|^2 |P|^2 - (A_t . P)^2)``.
    """
    w2 = weights**2
    a_dot_p = activity @ preference
    a_sq = (activity**2).sum(axis=1)
    p_sq = float(preference @ preference)
    u_dot_x = s @ preference - r @ preference
    u_dot_v = a_dot_p**2 - p_sq * a_sq
    u_dot_u = 2.0 * (a_sq * p_sq - a_dot_p**2)
    numerator = float(np.sum(w2 * (u_dot_x - u_dot_v)))
    denominator = float(np.sum(w2 * u_dot_u))
    if denominator <= _EPS:
        return float(np.clip(0.5, bounds[0], bounds[1]))
    return float(np.clip(numerator / denominator, bounds[0], bounds[1]))


def fit_stable_fp_streaming(
    source,
    *,
    initial_forward_fraction: float = 0.25,
    initial_preference=None,
    max_iterations: int = 60,
    tolerance: float = 1e-6,
    forward_bounds: tuple[float, float] = (0.0, 0.5),
    chunk_bins: int | None = None,
    cache_bytes: int | None = None,
) -> FitResult:
    """Fit the stable-fP IC model over a chunk stream in bounded memory.

    Runs the same alternating least squares as
    :func:`repro.core.fitting.fit_stable_fp` — activity per bin, preference
    from its normal equations, closed-form ``f``, objective-based stopping —
    but every subproblem is a streaming reduction: each ALS iteration makes
    one pass that solves the per-bin activity (applying one cached design
    pseudo-inverse) while accumulating the value contractions the preference
    and ``f`` updates need, and one pass that scores the updated parameters.
    The stream must therefore be re-iterable (synthesis streams regenerate
    chunks from cached RNG state; array streams yield views).

    ``cache_bytes`` bounds an optional replay cache
    (:func:`repro.streaming.cache_chunks`) in front of generative streams:
    the ALS makes ``2 * iterations + 1`` passes, and with a budget large
    enough for the series the chunks are regenerated once instead of once
    per pass — same values, a fraction of the synthesis cost.  ``None``
    keeps the strictly chunk-bounded behaviour.

    ``initial_preference`` warm-starts the ALS from a previous fit's
    preference vector instead of the marginal-derived initialisation —
    together with ``initial_forward_fraction`` this is the rolling re-fit
    path of :mod:`repro.ingest`, where consecutive windows share most of
    their bins and the previous optimum is an excellent starting point.

    Results agree with the in-memory fit to floating-point reduction order
    (the accumulated sums are mathematically identical but associate
    differently); exact bit-identity is not guaranteed.
    """
    stream = as_chunk_stream(source, chunk_bins=chunk_bins)
    stream = cache_chunks(stream, budget_bytes=cache_bytes)
    n = stream.n_nodes
    f = require_probability(initial_forward_fraction, "initial_forward_fraction")
    low, high = float(forward_bounds[0]), float(forward_bounds[1])
    if not 0.0 <= low < high <= 1.0:
        raise ValidationError(
            f"forward_bounds must satisfy 0 <= low < high <= 1, got {forward_bounds}"
        )
    f = float(np.clip(f, low, high))

    # Pass 0: per-bin weights and marginals -> initial (P, A).
    base = SeriesAccumulator.from_source(stream)
    weights = 1.0 / np.maximum(base.bin_norms, _EPS)
    preference, activity = _initial_parameters_from_marginals(base.ingress, base.egress, f)
    if initial_preference is not None:
        warm = np.asarray(initial_preference, dtype=float)
        if warm.shape != (n,):
            raise ValidationError(
                f"initial_preference must have shape ({n},), got {warm.shape}"
            )
        if np.any(warm < 0) or not np.all(np.isfinite(warm)) or warm.sum() <= 0:
            raise ValidationError(
                "initial_preference must be finite, non-negative and sum to > 0"
            )
        preference = warm / warm.sum()
    t_bins = stream.n_bins

    history: list[float] = []
    errors = np.zeros(t_bins)
    converged = False
    previous = np.inf
    tracer = get_tracer()
    for iteration in range(max_iterations):
        # Pass 1: solve activity per bin with the current (f, P), and
        # accumulate the contractions r_t = X_t A_t, s_t = X_t^T A_t that the
        # preference and forward-fraction updates need.
        with tracer.span("fit_als_pass", iteration=iteration, phase="solve"):
            pinv_t = _activity_design_pinv(f, preference).T
            activity = np.empty((t_bins, n))
            r = np.empty((t_bins, n))
            s = np.empty((t_bins, n))
            for t0, block in stream.chunks():
                stop = t0 + block.shape[0]
                flat = block.reshape(block.shape[0], n * n)
                chunk_activity = np.clip(flat @ pinv_t, 0.0, None)
                activity[t0:stop] = chunk_activity
                r[t0:stop] = np.einsum("tij,tj->ti", block, chunk_activity)
                s[t0:stop] = np.einsum("tij,ti->tj", block, chunk_activity)
            w2 = weights**2
            b = f * np.einsum("t,ti->i", w2, s) + (1.0 - f) * np.einsum("t,ti->i", w2, r)
            preference = _solve_preference_from_normal(activity, weights, f, b)
            f = _solve_forward_fraction_reduced(activity, preference, r, s, weights, (low, high))

        # Pass 2: score the updated parameters (per-bin errors are exact).
        with tracer.span("fit_als_pass", iteration=iteration, phase="score"):
            for t0, block in stream.chunks():
                stop = t0 + block.shape[0]
                predicted = simplified_ic_series(f, activity[t0:stop], preference)
                errors[t0:stop] = rel_l2_temporal_error(block, predicted)
            objective = float(np.sum(errors))
        history.append(objective)
        if previous - objective < tolerance:
            converged = True
            break
        previous = objective

    if not history:
        # The loop never ran (max_iterations=0): score the initial
        # parameters, as the in-memory fit's post-loop recompute does.
        for t0, block in stream.chunks():
            stop = t0 + block.shape[0]
            predicted = simplified_ic_series(f, activity[t0:stop], preference)
            errors[t0:stop] = rel_l2_temporal_error(block, predicted)

    return FitResult(
        model="stable-fP",
        forward_fraction=float(f),
        preference=preference,
        activity=activity,
        errors=errors,
        objective_history=history,
        converged=converged,
        nodes=stream.nodes,
    )


def _solve_preference_from_normal(
    activity: np.ndarray, weights: np.ndarray, f: float, b: np.ndarray
) -> np.ndarray:
    """Preference update from the streamed right-hand side ``b``.

    The normal matrix ``M`` depends only on the (materialised, ``O(T n)``)
    activity series, so it is assembled exactly as the in-memory solver does;
    only ``b`` — the part that touches the ``(T, n, n)`` values — comes from
    the streaming contractions.
    """
    g = 1.0 - f
    w2 = weights**2
    norms = (activity**2).sum(axis=1)
    n = activity.shape[1]
    identity_scale = float(np.sum(w2 * norms)) * (f * f + g * g)
    outer = np.einsum("t,ti,tj->ij", w2, activity, activity)
    m = identity_scale * np.eye(n) + 2.0 * f * g * outer
    preference = np.linalg.solve(m + _EPS * np.eye(n), b)
    preference = np.clip(preference, 0.0, None)
    if preference.sum() <= 0.0:
        preference = np.full(n, 1.0 / n)
    return preference / preference.sum()

"""Priors for traffic-matrix estimation (paper Section 6).

TM estimation (Section 6) follows a three-step blueprint: build a prior
traffic matrix, refine it against the link counts (tomogravity-style least
squares), then apply iterative proportional fitting.  This module implements
the *prior* builders; the refinement steps live in :mod:`repro.estimation`.

Four priors are provided, ordered by how much side information they assume:

* :class:`MeasuredParameterPrior` (Section 6.1) — ``f``, ``{P_i}`` and
  ``{A_i(t)}`` are all measured (in practice: fitted to the same week).
* :class:`StableFPPrior` (Section 6.2) — ``f`` and ``{P_i}`` come from a
  previous calibration week; ``{A_i(t)}`` is recovered from the current
  ingress/egress counts with the pseudo-inverse construction of Eqs. 7-9
  (matrices Φ, H, G, Q).
* :class:`StableFPrior` (Section 6.3) — only ``f`` is known; ``{A_i}`` and
  ``{P_i}`` are recovered per bin from the marginals via the closed forms of
  Eqs. 11-12.
* :class:`GravityPrior` — the gravity baseline used for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import (
    as_1d_array,
    normalized,
    require_nonnegative,
    require_probability,
)
from repro.core.gravity import gravity_series_values
from repro.core.ic_model import simplified_ic_series, time_varying_ic_series
from repro.core.traffic_matrix import TrafficMatrixSeries
from repro.errors import ShapeError, ValidationError
from repro.registry import register_prior

__all__ = [
    "GravityPrior",
    "MeasuredParameterPrior",
    "StableFPPrior",
    "StableFPrior",
    "PriorContext",
    "StreamingPriorContext",
    "STREAMING_PRIOR_BUILDERS",
    "ic_design_matrix",
    "marginal_operators",
    "estimate_activity_from_marginals",
    "stable_f_closed_form",
]


# ---------------------------------------------------------------------------
# linear-algebra building blocks (Eqs. 7-9)
# ---------------------------------------------------------------------------

def ic_design_matrix(forward_fraction: float, preference) -> np.ndarray:
    """The ``(n^2, n)`` matrix Φ mapping an activity vector to a vectorised TM.

    With the stable-fP model, ``vec(X) = Φ A`` where
    ``Φ[(i, j), k] = f P_j δ_ik + (1 - f) P_i δ_jk`` (row-major OD ordering).
    """
    f = require_probability(forward_fraction, "forward_fraction")
    p = require_nonnegative(as_1d_array(preference, "preference"), "preference")
    p = normalized(p, "preference")
    n = p.shape[0]
    phi = np.zeros((n * n, n))
    rows_i, rows_j = np.divmod(np.arange(n * n), n)
    phi[np.arange(n * n), rows_i] += f * p[rows_j]
    phi[np.arange(n * n), rows_j] += (1.0 - f) * p[rows_i]
    return phi


def marginal_operators(n_nodes: int, *, as_sparse: bool = False):
    """The 0-1 matrices ``H``, ``G`` and the stacked ``Q`` of Section 6.2.

    ``H`` (``n x n^2``) sums a vectorised TM into ingress counts, ``G`` into
    egress counts, and ``Q = [H; G]`` maps it onto the observable marginals.
    With ``as_sparse=True`` all three are ``scipy.sparse`` CSR matrices
    (each operator has exactly one non-zero per column).
    """
    if n_nodes < 1:
        raise ValidationError("n_nodes must be >= 1")
    n = int(n_nodes)
    pairs = np.arange(n * n)
    origins, destinations = np.divmod(pairs, n)
    if as_sparse:
        from scipy import sparse

        ones = np.ones(n * n)
        h = sparse.csr_matrix((ones, (origins, pairs)), shape=(n, n * n))
        g = sparse.csr_matrix((ones, (destinations, pairs)), shape=(n, n * n))
        return h, g, sparse.vstack([h, g], format="csr")
    h = np.zeros((n, n * n))
    g = np.zeros((n, n * n))
    h[origins, pairs] = 1.0
    g[destinations, pairs] = 1.0
    return h, g, np.vstack([h, g])


def estimate_activity_from_marginals(
    forward_fraction: float, preference, ingress, egress
) -> np.ndarray:
    """Recover per-bin activity from ingress/egress counts (Eq. 8).

    Solves ``Ã = pinv(QΦ) [ingress; egress]`` in the least-squares sense and
    clips the result to be non-negative.  Accepts either single-bin vectors of
    length ``n`` or ``(T, n)`` series; the return shape mirrors the input.
    """
    ingress = np.asarray(ingress, dtype=float)
    egress = np.asarray(egress, dtype=float)
    single = ingress.ndim == 1
    ingress = np.atleast_2d(ingress)
    egress = np.atleast_2d(egress)
    if ingress.shape != egress.shape:
        raise ShapeError(
            f"ingress and egress must have the same shape, got {ingress.shape} vs {egress.shape}"
        )
    p = as_1d_array(preference, "preference", length=ingress.shape[1])
    phi = ic_design_matrix(forward_fraction, p)
    _, _, q = marginal_operators(p.shape[0])
    q_phi = q @ phi
    pinv = np.linalg.pinv(q_phi)
    marginals = np.concatenate([ingress, egress], axis=1)  # (T, 2n)
    activity = marginals @ pinv.T
    activity = np.clip(activity, 0.0, None)
    return activity[0] if single else activity


def stable_f_closed_form(forward_fraction: float, ingress, egress) -> tuple[np.ndarray, np.ndarray]:
    """Closed-form activity and preference from marginals (Eqs. 11-12).

    ``A_i = (f X_i* - (1-f) X_*i) / (2f - 1)`` and
    ``P_i ∝ (f X_*i - (1-f) X_i*) / (2f - 1)``.

    The construction is singular at ``f = 0.5`` (both directions of a
    connection carry the same volume, so the marginals carry no information
    about who initiated); a :class:`ValidationError` is raised near that point.
    Negative intermediate values — which arise from measurement noise — are
    clipped to zero, and the preference vector is normalised to sum to one.
    """
    f = require_probability(forward_fraction, "forward_fraction")
    if abs(2.0 * f - 1.0) < 1e-3:
        raise ValidationError(
            "stable-f closed form is singular at f = 0.5; measure f away from 0.5"
        )
    ingress = np.asarray(ingress, dtype=float)
    egress = np.asarray(egress, dtype=float)
    if ingress.shape != egress.shape:
        raise ShapeError(
            f"ingress and egress must have the same shape, got {ingress.shape} vs {egress.shape}"
        )
    denominator = 2.0 * f - 1.0
    activity = (f * ingress - (1.0 - f) * egress) / denominator
    preference_raw = (f * egress - (1.0 - f) * ingress) / denominator
    activity = np.clip(activity, 0.0, None)
    preference_raw = np.clip(preference_raw, 0.0, None)
    sums = preference_raw.sum(axis=-1, keepdims=True)
    safe = np.where(sums > 0, sums, 1.0)
    preference = np.where(sums > 0, preference_raw / safe, 1.0 / ingress.shape[-1])
    return activity, preference


# ---------------------------------------------------------------------------
# prior classes
# ---------------------------------------------------------------------------

class GravityPrior:
    """Gravity-model prior built from per-bin ingress/egress counts."""

    name = "gravity"

    def series(self, ingress, egress, *, nodes=None, bin_seconds: float = 300.0) -> TrafficMatrixSeries:
        """Prior series from ``(T, n)`` ingress and egress counts."""
        ingress = np.atleast_2d(np.asarray(ingress, dtype=float))
        egress = np.atleast_2d(np.asarray(egress, dtype=float))
        if ingress.shape != egress.shape:
            raise ShapeError("ingress and egress series must have the same shape")
        matrices = gravity_series_values(ingress, egress)
        return TrafficMatrixSeries(matrices, nodes, bin_seconds=bin_seconds)


class MeasuredParameterPrior:
    """Section 6.1 prior: all IC parameters are measured/known.

    Typically the parameters come from a :class:`repro.core.fitting.FitResult`
    on the same week of data ("thought experiment" bounding the achievable
    gain), or from direct per-access-point measurement infrastructure.
    """

    name = "ic-measured"

    def __init__(self, forward_fraction: float, preference, activity):
        self._forward = require_probability(forward_fraction, "forward_fraction")
        p = require_nonnegative(as_1d_array(preference, "preference"), "preference")
        self._preference = normalized(p, "preference")
        activity = np.asarray(activity, dtype=float)
        if activity.ndim == 1:
            activity = activity[np.newaxis, :]
        if activity.ndim != 2 or activity.shape[1] != self._preference.shape[0]:
            raise ShapeError(
                f"activity must have shape (T, n={self._preference.shape[0]}), got {activity.shape}"
            )
        self._activity = np.clip(activity, 0.0, None)

    @classmethod
    def from_fit(cls, fit) -> "MeasuredParameterPrior":
        """Build the prior directly from a stable-fP :class:`FitResult`."""
        if fit.model != "stable-fP":
            raise ValidationError("MeasuredParameterPrior.from_fit expects a stable-fP fit")
        return cls(float(fit.forward_fraction), fit.preference, fit.activity)

    def series(self, *, nodes=None, bin_seconds: float = 300.0) -> TrafficMatrixSeries:
        """The prior traffic-matrix series implied by the measured parameters."""
        matrices = simplified_ic_series(self._forward, self._activity, self._preference)
        return TrafficMatrixSeries(matrices, nodes, bin_seconds=bin_seconds)


class StableFPPrior:
    """Section 6.2 prior: ``f`` and ``P`` from a calibration week, ``A(t)`` inferred.

    The activity series of the target week is recovered from its ingress and
    egress counts using the pseudo-inverse construction of Eqs. 7-9.
    """

    name = "ic-stable-fP"

    def __init__(self, forward_fraction: float, preference):
        self._forward = require_probability(forward_fraction, "forward_fraction")
        p = require_nonnegative(as_1d_array(preference, "preference"), "preference")
        self._preference = normalized(p, "preference")

    @classmethod
    def from_fit(cls, fit) -> "StableFPPrior":
        """Calibrate the prior from a stable-fP fit of a previous week."""
        if fit.model != "stable-fP":
            raise ValidationError("StableFPPrior.from_fit expects a stable-fP fit")
        return cls(float(fit.forward_fraction), fit.preference)

    @property
    def forward_fraction(self) -> float:
        return self._forward

    @property
    def preference(self) -> np.ndarray:
        return self._preference.copy()

    def estimate_activity(self, ingress, egress) -> np.ndarray:
        """Recover the activity series from the target week's marginals (Eq. 8)."""
        return estimate_activity_from_marginals(self._forward, self._preference, ingress, egress)

    def series(self, ingress, egress, *, nodes=None, bin_seconds: float = 300.0) -> TrafficMatrixSeries:
        """Prior series for a target week given its ``(T, n)`` marginal counts (Eq. 9)."""
        activity = self.estimate_activity(ingress, egress)
        activity = np.atleast_2d(activity)
        matrices = simplified_ic_series(self._forward, activity, self._preference)
        return TrafficMatrixSeries(matrices, nodes, bin_seconds=bin_seconds)


@dataclass(frozen=True)
class PriorContext:
    """Everything a registered prior strategy may draw on to build its series.

    Attributes
    ----------
    dataset:
        The :class:`repro.synthesis.datasets.SyntheticDataset` the scenario
        runs on (supplies calibration weeks and generating ground truth).
    target:
        Ground-truth traffic of the week being estimated, already trimmed to
        the scenario's bin budget.
    system:
        The simulated measurements (:class:`repro.estimation.linear_system.LinkLoadSystem`):
        link loads plus ingress/egress marginals — the only observables an
        operator would have.
    calibration_week, target_week:
        Week indices into ``dataset``.
    measured_forward_fraction:
        Optional externally measured ``f`` (e.g. from a Figure 4 trace
        study); strategies that only need ``f`` prefer it over the dataset's
        generating value.
    """

    dataset: object
    target: TrafficMatrixSeries
    system: object
    calibration_week: int
    target_week: int
    measured_forward_fraction: float | None = None

    @property
    def calibration(self) -> TrafficMatrixSeries:
        """The full (untrimmed) calibration week of traffic."""
        return self.dataset.week(self.calibration_week)


class StableFPrior:
    """Section 6.3 prior: only ``f`` is known; ``A`` and ``P`` from marginals per bin."""

    name = "ic-stable-f"

    def __init__(self, forward_fraction: float):
        self._forward = require_probability(forward_fraction, "forward_fraction")
        if abs(2.0 * self._forward - 1.0) < 1e-3:
            raise ValidationError("stable-f prior is undefined at f = 0.5")

    @property
    def forward_fraction(self) -> float:
        return self._forward

    def estimate_parameters(self, ingress, egress) -> tuple[np.ndarray, np.ndarray]:
        """Per-bin activity and preference estimates (Eqs. 11-12)."""
        return stable_f_closed_form(self._forward, ingress, egress)

    def series(self, ingress, egress, *, nodes=None, bin_seconds: float = 300.0) -> TrafficMatrixSeries:
        """Prior series built from the marginal counts (vectorised over bins)."""
        ingress = np.atleast_2d(np.asarray(ingress, dtype=float))
        egress = np.atleast_2d(np.asarray(egress, dtype=float))
        activity, preference = stable_f_closed_form(self._forward, ingress, egress)
        activity = np.atleast_2d(activity)
        preference = np.atleast_2d(preference)
        usable = preference.sum(axis=1) > 0
        t, n = ingress.shape
        if np.all(usable):
            matrices = time_varying_ic_series(self._forward, activity, preference)
        else:
            matrices = np.zeros((t, n, n))
            if np.any(usable):
                matrices[usable] = time_varying_ic_series(
                    self._forward, activity[usable], preference[usable]
                )
        return TrafficMatrixSeries(matrices, nodes, bin_seconds=bin_seconds)


# ---------------------------------------------------------------------------
# registered prior strategies (the Scenario API surface)
# ---------------------------------------------------------------------------
#
# Each strategy is a callable ``context -> TrafficMatrixSeries`` registered
# under the prior's public name.  The ``week_mode`` metadata tells the
# scenario runner how to resolve a missing ``target_week``: ``"same"``
# estimates the calibration week itself, ``"next"`` the following week, and
# ``"gap"`` the dataset-specific calibration gap (which must be non-zero).

@register_prior(
    "gravity",
    description="Gravity baseline prior built from the per-bin ingress/egress marginals",
    metadata={"display": "gravity", "week_mode": "same", "side_information": "none"},
)
def build_gravity_prior(context: PriorContext) -> TrafficMatrixSeries:
    """Gravity prior from the measured marginals (the Section 6 baseline)."""
    return GravityPrior().series(
        context.system.ingress,
        context.system.egress,
        nodes=context.target.nodes,
        bin_seconds=context.target.bin_seconds,
    )


@register_prior(
    "measured",
    description="All IC parameters measured on the target week (Section 6.1 thought experiment)",
    metadata={"display": "measured", "week_mode": "same", "side_information": "f, P, A(t)"},
)
def build_measured_prior(context: PriorContext) -> TrafficMatrixSeries:
    """Fit stable-fP parameters to the target week itself and compose the prior."""
    from repro.core.fitting import fit_stable_fp

    fit = fit_stable_fp(context.target)
    prior = MeasuredParameterPrior.from_fit(fit)
    return prior.series(nodes=context.target.nodes, bin_seconds=context.target.bin_seconds)


@register_prior(
    "stable_fp",
    description="f and P fitted to a previous calibration week; A(t) recovered from marginals (Section 6.2)",
    metadata={"display": "stable-fP", "week_mode": "gap", "side_information": "f, P"},
)
def build_stable_fp_prior(context: PriorContext) -> TrafficMatrixSeries:
    """Calibrate ``f``/``P`` on an earlier week, infer activity via Eqs. 7-9."""
    from repro.core.fitting import fit_stable_fp

    fit = fit_stable_fp(context.calibration)
    prior = StableFPPrior.from_fit(fit)
    return prior.series(
        context.system.ingress,
        context.system.egress,
        nodes=context.target.nodes,
        bin_seconds=context.target.bin_seconds,
    )


@register_prior(
    "stable_f",
    description="Only f is known; A and P recovered per bin from the marginals (Section 6.3)",
    metadata={"display": "stable-f", "week_mode": "next", "side_information": "f"},
)
def build_stable_f_prior(context: PriorContext) -> TrafficMatrixSeries:
    """Use a trace-measured ``f`` and the closed forms of Eqs. 11-12."""
    forward = context.measured_forward_fraction
    if forward is None:
        truth = context.dataset.ground_truths[context.calibration_week]
        forward = float(truth.forward_fraction)
    prior = StableFPrior(float(forward))
    return prior.series(
        context.system.ingress,
        context.system.egress,
        nodes=context.target.nodes,
        bin_seconds=context.target.bin_seconds,
    )


# ---------------------------------------------------------------------------
# streaming prior builders (the bounded-memory Scenario API surface)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class StreamingPriorContext:
    """What a streaming prior builder may draw on — no materialised cubes.

    Attributes
    ----------
    dataset:
        The :class:`repro.synthesis.datasets.StreamingDataset` the scenario
        runs on (week streams regenerate chunks on demand).
    target_stream:
        Re-iterable ground-truth stream of the (trimmed) target week; only
        the ``measured`` prior reads it (its Section 6.1 thought experiment
        fits the target week itself).
    system:
        The simulated measurements: link loads plus ingress/egress marginals
        (``O(T (n_links + n))`` arrays — the only per-bin state kept).
    calibration_week, target_week:
        Week indices into ``dataset``.
    measured_forward_fraction:
        Optional externally measured ``f``.
    fit_cache_bytes:
        Replay-cache budget handed to multi-pass fits
        (:func:`repro.core.streaming.fit_stable_fp_streaming`): the ALS
        passes of the ``stable_fp``/``measured`` priors regenerate their
        calibration chunks once instead of once per pass, within this many
        bytes.  ``None`` keeps fits strictly chunk-bounded.
    fit_memo:
        Optional ``memo(suffix, build)`` callable the sweep scheduler
        installs (closing over its
        :class:`~repro.scenarios.runner.SweepSharedState` and the pinned
        plan identity): :meth:`fit_streamed` routes streamed stable-fP fits
        through it so cells sharing a fitted window reuse one fit.  ``None``
        (single runs) fits unconditionally.
    """

    dataset: object
    target_stream: object
    system: object
    calibration_week: int
    target_week: int
    measured_forward_fraction: float | None = None
    fit_cache_bytes: int | None = None
    fit_memo: object = None

    def fit_streamed(self, source, *, week: int):
        """Streamed stable-fP fit of ``source``, memoised across sweep cells.

        The fit is deterministic in (the chunks of) ``source`` and the fit
        knobs, so two cells fitting the same week of the same pinned plan at
        the same bin count receive the identical
        :class:`~repro.core.streaming.FitResult` — reuse is bit-identical to
        re-fitting.  The ``(week, n_bins, cache_budget)`` suffix completes
        the scheduler's plan/scale/backend key: it separates a full
        calibration week from the same week trimmed by ``max_bins``, and
        different replay-cache budgets (which cannot change the result, but
        keeping them distinct makes the key a pure function of the call).
        """
        from repro.core.streaming import fit_stable_fp_streaming

        def build():
            return fit_stable_fp_streaming(source, cache_bytes=self.fit_cache_bytes)

        if self.fit_memo is None:
            return build()
        return self.fit_memo((int(week), int(source.n_bins), self.fit_cache_bytes), build)

    def marginal_chunk_stream(self, chunk_values) -> object:
        """A prior stream computed chunk-wise from the system marginals.

        ``chunk_values(ingress_chunk, egress_chunk)`` maps one chunk's noisy
        marginals to that chunk's ``(T_chunk, n, n)`` prior values; chunk
        boundaries mirror the target stream's so the estimation pass can zip
        them.
        """
        from repro.streaming import FunctionChunkStream

        target = self.target_stream
        ingress, egress = self.system.ingress, self.system.egress

        def factory(resolved_chunk: int):
            for start in range(0, target.n_bins, resolved_chunk):
                stop = min(start + resolved_chunk, target.n_bins)
                yield start, chunk_values(ingress[start:stop], egress[start:stop])

        return FunctionChunkStream(
            factory,
            n_bins=target.n_bins,
            nodes=target.nodes,
            bin_seconds=target.bin_seconds,
            chunk_bins=target.chunk_bins,
        )


# Prior name (as registered in PRIORS) -> builder(StreamingPriorContext) ->
# ChunkStream.  Kept separate from the registry because a streaming builder
# must produce chunks, not a materialised series; the scenario runner falls
# back with a clear error for priors that only exist in materialised form.
STREAMING_PRIOR_BUILDERS: dict[str, object] = {}


def _streaming_prior(name: str):
    def register(builder):
        STREAMING_PRIOR_BUILDERS[name] = builder
        return builder

    return register


@_streaming_prior("gravity")
def build_gravity_prior_stream(context: StreamingPriorContext):
    """Gravity prior, one chunk of marginals at a time (matches the cube path)."""
    return context.marginal_chunk_stream(gravity_series_values)


@_streaming_prior("stable_f")
def build_stable_f_prior_stream(context: StreamingPriorContext):
    """Section 6.3 prior from per-bin closed forms, evaluated chunk-wise."""
    forward = context.measured_forward_fraction
    if forward is None:
        truth = context.dataset.ground_truths[context.calibration_week]
        forward = float(truth.forward_fraction)
    prior = StableFPrior(float(forward))

    def chunk_values(ingress, egress):
        return prior.series(ingress, egress).values

    return context.marginal_chunk_stream(chunk_values)


@_streaming_prior("stable_fp")
def build_stable_fp_prior_stream(context: StreamingPriorContext):
    """Section 6.2 prior: streaming ALS fit of the calibration week, then Eq. 9.

    The calibration week is fitted in bounded memory (chunk-wise ALS
    reductions) and the target week's activity is recovered chunk by chunk
    from the noisy marginals with one precomputed ``pinv(QΦ)``.  Inside a
    sweep the fit goes through :meth:`StreamingPriorContext.fit_streamed`,
    so overlapping-window grids pay each calibration-week fit once per
    worker.
    """
    calibration = context.dataset.week_stream(context.calibration_week)
    fit = context.fit_streamed(calibration, week=context.calibration_week)
    forward = float(fit.forward_fraction)
    preference = normalized(np.clip(fit.preference, 0.0, None), "preference")
    phi = ic_design_matrix(forward, preference)
    _, _, q = marginal_operators(preference.shape[0])
    pinv_t = np.linalg.pinv(q @ phi).T

    def chunk_values(ingress, egress):
        marginals = np.concatenate([ingress, egress], axis=1)
        activity = np.clip(marginals @ pinv_t, 0.0, None)
        return simplified_ic_series(forward, activity, preference)

    return context.marginal_chunk_stream(chunk_values)


@_streaming_prior("measured")
def build_measured_prior_stream(context: StreamingPriorContext):
    """Section 6.1 thought experiment: streaming fit of the target week itself."""
    from repro.streaming import FunctionChunkStream

    fit = context.fit_streamed(context.target_stream, week=context.target_week)
    forward = float(fit.forward_fraction)
    preference = normalized(np.clip(fit.preference, 0.0, None), "preference")
    activity = fit.activity
    target = context.target_stream

    def factory(resolved_chunk: int):
        for start in range(0, target.n_bins, resolved_chunk):
            stop = min(start + resolved_chunk, target.n_bins)
            yield start, simplified_ic_series(forward, activity[start:stop], preference)

    return FunctionChunkStream(
        factory,
        n_bins=target.n_bins,
        nodes=target.nodes,
        bin_seconds=target.bin_seconds,
        chunk_bins=target.chunk_bins,
    )

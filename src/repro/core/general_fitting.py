"""Fitting the *general* IC model: a per-pair forward-fraction matrix.

The simplified IC model uses one network-wide ``f``.  Section 5.6 of the
paper notes that routing asymmetry (and, more generally, responder-dependent
application mixes) makes ``f_ij`` vary by pair, and leaves fitting the general
model to future work.  This module provides that step.

The estimation is staged: first the stable-fP fit supplies the preference
vector and activity series (which are well identified by the data's temporal
structure), then each pair's ``(f_ij, f_ji)`` is recovered by a tiny
constrained least-squares problem.  For an unordered pair ``{i, j}`` the model
reads

``X_ij(t) = f_ij * A_i(t) P_j + (1 - f_ji) * A_j(t) P_i``
``X_ji(t) = f_ji * A_j(t) P_i + (1 - f_ij) * A_i(t) P_j``

which is linear in ``(f_ij, f_ji)``; the 2x2 normal equations are solved per
pair and the result clipped to ``[0, 1]``.  Diagonal pairs carry no
information about ``f`` (forward and reverse cancel), so ``f_ii`` is reported
as the network-wide value.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fitting import FitResult, fit_stable_fp
from repro.core.ic_model import general_ic_matrix
from repro.core.metrics import rel_l2_temporal_error
from repro.core.traffic_matrix import TrafficMatrixSeries

__all__ = ["GeneralFitResult", "fit_general_ic", "fit_pairwise_forward_fractions"]

_EPS = 1e-12


@dataclass
class GeneralFitResult:
    """Result of fitting the general IC model.

    Attributes
    ----------
    forward_fraction_matrix:
        The fitted ``(n, n)`` matrix of per-pair forward fractions ``f_ij``.
    preference:
        The preference vector shared with the underlying stable-fP fit.
    activity:
        The ``(T, n)`` activity series shared with the underlying fit.
    errors:
        Per-bin relative L2 error of the general-model reconstruction.
    base_fit:
        The stable-fP fit the general fit was staged on.
    """

    forward_fraction_matrix: np.ndarray
    preference: np.ndarray
    activity: np.ndarray
    errors: np.ndarray
    base_fit: FitResult

    @property
    def mean_error(self) -> float:
        """Mean per-bin relative L2 error of the general-model fit."""
        return float(np.mean(self.errors))

    @property
    def asymmetry(self) -> np.ndarray:
        """The antisymmetric part ``(f_ij - f_ji) / 2`` — the routing-asymmetry signature."""
        f = self.forward_fraction_matrix
        return (f - f.T) / 2.0

    def predicted_values(self) -> np.ndarray:
        """The fitted general model's ``(T, n, n)`` traffic array."""
        t = self.activity.shape[0]
        matrices = np.empty((t, self.preference.shape[0], self.preference.shape[0]))
        for step in range(t):
            matrices[step] = general_ic_matrix(
                self.forward_fraction_matrix, self.activity[step], self.preference
            )
        return matrices


def fit_pairwise_forward_fractions(
    values: np.ndarray,
    activity: np.ndarray,
    preference: np.ndarray,
    *,
    default_forward: float = 0.5,
) -> np.ndarray:
    """Recover the per-pair ``f_ij`` matrix for known activity and preference.

    Parameters
    ----------
    values:
        Observed traffic, shape ``(T, n, n)``.
    activity:
        Activity series, shape ``(T, n)``.
    preference:
        Normalised preference vector, shape ``(n,)``.
    default_forward:
        Value used for the diagonal and for pairs whose traffic carries no
        information (all-zero volumes).
    """
    values = np.asarray(values, dtype=float)
    activity = np.asarray(activity, dtype=float)
    preference = np.asarray(preference, dtype=float)
    n = preference.shape[0]
    forward = np.full((n, n), float(default_forward))
    for i in range(n):
        for j in range(i + 1, n):
            a_ij = activity[:, i] * preference[j]  # coefficient of f_ij in X_ij
            a_ji = activity[:, j] * preference[i]  # coefficient of f_ji in X_ji
            x_ij = values[:, i, j]
            x_ji = values[:, j, i]
            # X_ij = f_ij a_ij + (1 - f_ji) a_ji  ->  X_ij - a_ji = f_ij a_ij - f_ji a_ji
            # X_ji = f_ji a_ji + (1 - f_ij) a_ij  ->  X_ji - a_ij = -f_ij a_ij + f_ji a_ji
            design = np.concatenate(
                [
                    np.stack([a_ij, -a_ji], axis=1),
                    np.stack([-a_ij, a_ji], axis=1),
                ]
            )
            target = np.concatenate([x_ij - a_ji, x_ji - a_ij])
            gram = design.T @ design
            if np.linalg.cond(gram + _EPS * np.eye(2)) > 1e12 or not np.any(np.abs(target) > 0):
                continue
            solution = np.linalg.lstsq(design, target, rcond=None)[0]
            forward[i, j] = float(np.clip(solution[0], 0.0, 1.0))
            forward[j, i] = float(np.clip(solution[1], 0.0, 1.0))
    return forward


def fit_general_ic(
    series,
    *,
    base_fit: FitResult | None = None,
    **stable_fp_kwargs,
) -> GeneralFitResult:
    """Fit the general IC model (per-pair ``f_ij``) to a traffic-matrix series.

    Parameters
    ----------
    series:
        The observed traffic-matrix series.
    base_fit:
        Optional pre-computed stable-fP fit to stage on; fitted here when
        omitted (extra keyword arguments are forwarded to
        :func:`repro.core.fitting.fit_stable_fp`).
    """
    if base_fit is None:
        base_fit = fit_stable_fp(series, **stable_fp_kwargs)
    if isinstance(series, TrafficMatrixSeries):
        values = np.asarray(series.values, dtype=float)
    else:
        values = np.asarray(TrafficMatrixSeries(series).values, dtype=float)
    forward_matrix = fit_pairwise_forward_fractions(
        values,
        base_fit.activity,
        base_fit.preference,
        default_forward=float(base_fit.forward_fraction),
    )
    predicted = np.empty_like(values)
    for step in range(values.shape[0]):
        predicted[step] = general_ic_matrix(
            forward_matrix, base_fit.activity[step], base_fit.preference
        )
    errors = rel_l2_temporal_error(values, predicted)
    return GeneralFitResult(
        forward_fraction_matrix=forward_matrix,
        preference=base_fit.preference,
        activity=base_fit.activity,
        errors=errors,
        base_fit=base_fit,
    )

"""Traffic-matrix containers.

The paper works with origin-destination (OD) traffic matrices: during a fixed
time interval, ``X[i, j]`` is the number of bytes entering the network at
access point ``i`` and leaving it at access point ``j``.  Two containers are
provided:

* :class:`TrafficMatrix` — a single ``(n, n)`` matrix with node names and the
  marginals used throughout the paper (ingress ``X_{i*}``, egress ``X_{*j}``,
  total ``X_{**}``).
* :class:`TrafficMatrixSeries` — a ``(T, n, n)`` time series of matrices with
  the same marginals as time series, plus slicing, resampling and persistence
  helpers.

Both are thin, validated wrappers around ``numpy`` arrays; the numerical
machinery in the rest of the package operates on the underlying arrays.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

from repro._validation import (
    as_series_array,
    as_square_matrix,
    node_names,
    require_nonnegative,
)
from repro.errors import ShapeError, ValidationError

__all__ = ["TrafficMatrix", "TrafficMatrixSeries", "od_pairs"]


def od_pairs(n: int) -> list[tuple[int, int]]:
    """Return the OD pairs of an ``n``-node network in row-major order.

    Row-major (origin-major) order is the vectorisation convention used by
    every routine in this package that flattens a traffic matrix, including
    the routing-matrix construction in :mod:`repro.topology.routing`.
    """
    return [(i, j) for i in range(n) for j in range(n)]


@dataclass(frozen=True)
class TrafficMatrix:
    """A single origin-destination traffic matrix.

    Parameters
    ----------
    values:
        Square array-like where entry ``(i, j)`` is the traffic volume (bytes)
        from origin ``i`` to destination ``j``.
    nodes:
        Optional node names; defaults to ``node00``, ``node01``, ...
    """

    values: np.ndarray
    nodes: tuple[str, ...]

    def __init__(self, values, nodes: Sequence[str] | None = None):
        matrix = as_square_matrix(values, "traffic matrix")
        matrix = require_nonnegative(matrix, "traffic matrix", tolerance=1e-9)
        object.__setattr__(self, "values", matrix)
        object.__setattr__(self, "nodes", node_names(nodes, matrix.shape[0]))

    # -- basic properties -------------------------------------------------

    @property
    def n_nodes(self) -> int:
        """Number of access points (PoPs) in the network."""
        return self.values.shape[0]

    @property
    def ingress(self) -> np.ndarray:
        """Per-node ingress totals ``X_{i*}`` (all traffic entering at node i)."""
        return self.values.sum(axis=1)

    @property
    def egress(self) -> np.ndarray:
        """Per-node egress totals ``X_{*j}`` (all traffic leaving at node j)."""
        return self.values.sum(axis=0)

    @property
    def total(self) -> float:
        """Total network traffic ``X_{**}``."""
        return float(self.values.sum())

    # -- conversions ------------------------------------------------------

    def to_vector(self) -> np.ndarray:
        """Flatten to a length ``n*n`` vector in row-major (origin-major) order."""
        return self.values.reshape(-1)

    @classmethod
    def from_vector(cls, vector, nodes: Sequence[str] | None = None) -> "TrafficMatrix":
        """Build a matrix from a row-major vector of length ``n*n``."""
        vector = np.asarray(vector, dtype=float)
        if vector.ndim != 1:
            raise ShapeError(f"expected a 1-D vector, got shape {vector.shape}")
        n = int(round(np.sqrt(vector.shape[0])))
        if n * n != vector.shape[0]:
            raise ShapeError(f"vector length {vector.shape[0]} is not a perfect square")
        return cls(vector.reshape(n, n), nodes)

    def node_index(self, name: str) -> int:
        """Return the index of the node called ``name``."""
        try:
            return self.nodes.index(name)
        except ValueError as exc:
            raise ValidationError(f"unknown node {name!r}") from exc

    def flow(self, origin: str, destination: str) -> float:
        """Return the OD flow volume from ``origin`` to ``destination`` by name."""
        return float(self.values[self.node_index(origin), self.node_index(destination)])

    # -- simple arithmetic -------------------------------------------------

    def scaled(self, factor: float) -> "TrafficMatrix":
        """Return a copy with every entry multiplied by ``factor`` (must be >= 0)."""
        if factor < 0:
            raise ValidationError("scaling factor must be non-negative")
        return TrafficMatrix(self.values * float(factor), self.nodes)

    def without_self_traffic(self) -> "TrafficMatrix":
        """Return a copy with the diagonal (intra-PoP traffic) zeroed."""
        values = self.values.copy()
        np.fill_diagonal(values, 0.0)
        return TrafficMatrix(values, self.nodes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TrafficMatrix):
            return NotImplemented
        return self.nodes == other.nodes and np.array_equal(self.values, other.values)

    def allclose(self, other: "TrafficMatrix", *, rtol: float = 1e-9, atol: float = 1e-9) -> bool:
        """Whether two matrices agree element-wise within tolerances."""
        return self.nodes == other.nodes and bool(
            np.allclose(self.values, other.values, rtol=rtol, atol=atol)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TrafficMatrix(n_nodes={self.n_nodes}, total={self.total:.3e})"


class TrafficMatrixSeries:
    """A time series of traffic matrices sampled at a fixed bin size.

    Parameters
    ----------
    values:
        Array-like of shape ``(T, n, n)``; a single ``(n, n)`` matrix is
        promoted to ``T = 1``.
    nodes:
        Optional node names shared by every timestep.
    bin_seconds:
        Duration of each time bin.  The paper uses 300 s (Geant, D1) and
        900 s (Totem, D2).
    """

    def __init__(
        self,
        values,
        nodes: Sequence[str] | None = None,
        *,
        bin_seconds: float = 300.0,
    ):
        array = as_series_array(values, "traffic matrix series")
        array = require_nonnegative(array, "traffic matrix series", tolerance=1e-9)
        if bin_seconds <= 0:
            raise ValidationError("bin_seconds must be positive")
        self._values = array
        self._nodes = node_names(nodes, array.shape[1])
        self._bin_seconds = float(bin_seconds)

    @classmethod
    def _from_validated(
        cls,
        values: np.ndarray,
        nodes: Sequence[str] | None,
        *,
        bin_seconds: float,
    ) -> "TrafficMatrixSeries":
        """Wrap an already-validated ``(T, n, n)`` float array without copying.

        The public constructor clips (and therefore copies) its input; this
        internal path exists for callers that re-wrap arrays which went
        through that validation before — notably the parallel-sweep workers,
        which map dataset weeks out of ``multiprocessing.shared_memory`` and
        must not duplicate them per worker.  The caller owns the guarantee
        that ``values`` is a non-negative float ``(T, n, n)`` array.
        """
        series = cls.__new__(cls)
        series._values = values
        series._nodes = node_names(nodes, values.shape[1])
        series._bin_seconds = float(bin_seconds)
        return series

    # -- basic properties -------------------------------------------------

    @property
    def values(self) -> np.ndarray:
        """The underlying ``(T, n, n)`` array (read-only view)."""
        view = self._values.view()
        view.flags.writeable = False
        return view

    @property
    def nodes(self) -> tuple[str, ...]:
        """Node names shared by every timestep."""
        return self._nodes

    @property
    def bin_seconds(self) -> float:
        """Duration of one time bin in seconds."""
        return self._bin_seconds

    @property
    def n_timesteps(self) -> int:
        """Number of time bins ``T``."""
        return self._values.shape[0]

    @property
    def n_nodes(self) -> int:
        """Number of access points ``n``."""
        return self._values.shape[1]

    def __len__(self) -> int:
        return self.n_timesteps

    def __iter__(self) -> Iterator[TrafficMatrix]:
        for t in range(self.n_timesteps):
            yield self[t]

    def __getitem__(self, index):
        if isinstance(index, slice):
            return TrafficMatrixSeries(
                self._values[index], self._nodes, bin_seconds=self._bin_seconds
            )
        t = int(index)
        return TrafficMatrix(self._values[t], self._nodes)

    # -- marginals ---------------------------------------------------------

    @property
    def ingress(self) -> np.ndarray:
        """Ingress time series, shape ``(T, n)``: ``X_{i*}(t)``."""
        return self._values.sum(axis=2)

    @property
    def egress(self) -> np.ndarray:
        """Egress time series, shape ``(T, n)``: ``X_{*j}(t)``."""
        return self._values.sum(axis=1)

    @property
    def totals(self) -> np.ndarray:
        """Total traffic per time bin, shape ``(T,)``."""
        return self._values.sum(axis=(1, 2))

    def mean_matrix(self) -> TrafficMatrix:
        """The time-averaged traffic matrix."""
        return TrafficMatrix(self._values.mean(axis=0), self._nodes)

    # -- reshaping ---------------------------------------------------------

    def to_vectors(self) -> np.ndarray:
        """Flatten each timestep to a row vector; result has shape ``(T, n*n)``."""
        t, n, _ = self._values.shape
        return self._values.reshape(t, n * n)

    @classmethod
    def from_vectors(
        cls,
        vectors,
        nodes: Sequence[str] | None = None,
        *,
        bin_seconds: float = 300.0,
    ) -> "TrafficMatrixSeries":
        """Build a series from an array of row-major OD vectors, shape ``(T, n*n)``."""
        vectors = np.asarray(vectors, dtype=float)
        if vectors.ndim != 2:
            raise ShapeError(f"expected (T, n*n) array, got shape {vectors.shape}")
        n = int(round(np.sqrt(vectors.shape[1])))
        if n * n != vectors.shape[1]:
            raise ShapeError(f"row length {vectors.shape[1]} is not a perfect square")
        return cls(vectors.reshape(vectors.shape[0], n, n), nodes, bin_seconds=bin_seconds)

    def subsample(self, step: int) -> "TrafficMatrixSeries":
        """Keep every ``step``-th bin (useful for cheaper experiments)."""
        if step < 1:
            raise ValidationError("subsample step must be >= 1")
        return TrafficMatrixSeries(
            self._values[::step], self._nodes, bin_seconds=self._bin_seconds * step
        )

    def aggregate(self, factor: int) -> "TrafficMatrixSeries":
        """Sum consecutive groups of ``factor`` bins into coarser bins.

        Trailing bins that do not fill a complete group are dropped, mirroring
        how per-week datasets are cut to whole weeks in the paper.
        """
        if factor < 1:
            raise ValidationError("aggregation factor must be >= 1")
        t = (self.n_timesteps // factor) * factor
        if t == 0:
            raise ValidationError("series is shorter than one aggregation window")
        trimmed = self._values[:t]
        grouped = trimmed.reshape(t // factor, factor, self.n_nodes, self.n_nodes).sum(axis=1)
        return TrafficMatrixSeries(grouped, self._nodes, bin_seconds=self._bin_seconds * factor)

    def split_weeks(self, bins_per_week: int | None = None) -> list["TrafficMatrixSeries"]:
        """Split the series into whole weeks.

        When ``bins_per_week`` is omitted it is derived from the bin size
        (7 days / bin_seconds).  Trailing bins not filling a week are dropped.
        """
        if bins_per_week is None:
            bins_per_week = int(round(7 * 24 * 3600 / self._bin_seconds))
        if bins_per_week < 1:
            raise ValidationError("bins_per_week must be >= 1")
        weeks = self.n_timesteps // bins_per_week
        return [
            self[w * bins_per_week : (w + 1) * bins_per_week] for w in range(weeks)
        ]

    def concatenate(self, other: "TrafficMatrixSeries") -> "TrafficMatrixSeries":
        """Append ``other`` (same nodes and bin size) after this series."""
        if other.nodes != self.nodes:
            raise ValidationError("cannot concatenate series with different nodes")
        if abs(other.bin_seconds - self.bin_seconds) > 1e-9:
            raise ValidationError("cannot concatenate series with different bin sizes")
        return TrafficMatrixSeries(
            np.concatenate([self._values, other._values], axis=0),
            self._nodes,
            bin_seconds=self._bin_seconds,
        )

    # -- persistence --------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Persist the series to an ``.npz`` file plus embedded metadata."""
        path = Path(path)
        metadata = json.dumps({"nodes": list(self._nodes), "bin_seconds": self._bin_seconds})
        np.savez_compressed(path, values=self._values, metadata=np.array(metadata))

    @classmethod
    def load(cls, path: str | Path) -> "TrafficMatrixSeries":
        """Load a series previously written by :meth:`save`."""
        with np.load(Path(path), allow_pickle=False) as data:
            values = data["values"]
            metadata = json.loads(str(data["metadata"]))
        return cls(values, metadata["nodes"], bin_seconds=metadata["bin_seconds"])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TrafficMatrixSeries(T={self.n_timesteps}, n_nodes={self.n_nodes}, "
            f"bin_seconds={self._bin_seconds:g})"
        )

"""Error metrics used throughout the paper.

The headline metric is the relative L2 *temporal* error of Equation (6):

.. math::

    RelL2_T(t) = \\frac{\\sqrt{\\sum_{ij} (X_{ij}(t) - \\hat X_{ij}(t))^2}}
                      {\\sqrt{\\sum_{ij} X_{ij}(t)^2}}

which is computed for every time bin ``t`` and compared between the IC model
and the gravity model (as a percentage improvement).  The relative L2
*spatial* error — the same ratio computed per OD pair across time — is also
provided because it is the standard companion metric in the TM-estimation
literature the paper builds on.
"""

from __future__ import annotations

import numpy as np

from repro._validation import as_series_array
from repro.core.traffic_matrix import TrafficMatrixSeries
from repro.errors import ShapeError

__all__ = [
    "rel_l2_temporal_error",
    "rel_l2_spatial_error",
    "percent_improvement",
    "mean_relative_error",
    "summarize_improvement",
]


def _to_array(series) -> np.ndarray:
    if isinstance(series, TrafficMatrixSeries):
        return np.asarray(series.values, dtype=float)
    return as_series_array(series, "series")


def _check_same_shape(actual: np.ndarray, estimate: np.ndarray) -> None:
    if actual.shape != estimate.shape:
        raise ShapeError(
            f"actual and estimate must have the same shape, got {actual.shape} vs {estimate.shape}"
        )


def rel_l2_temporal_error(actual, estimate) -> np.ndarray:
    """Relative L2 temporal error (paper Eq. 6), one value per time bin.

    Parameters
    ----------
    actual, estimate:
        Traffic-matrix series (``TrafficMatrixSeries`` or ``(T, n, n)`` arrays).

    Returns
    -------
    numpy.ndarray
        Shape ``(T,)``.  Bins whose true traffic is identically zero yield 0.0
        when the estimate is also zero and ``inf`` otherwise.
    """
    actual = _to_array(actual)
    estimate = _to_array(estimate)
    _check_same_shape(actual, estimate)
    diff = np.sqrt(((actual - estimate) ** 2).sum(axis=(1, 2)))
    norm = np.sqrt((actual**2).sum(axis=(1, 2)))
    with np.errstate(divide="ignore", invalid="ignore"):
        error = np.where(norm > 0, diff / np.where(norm > 0, norm, 1.0), np.where(diff > 0, np.inf, 0.0))
    return error


def rel_l2_spatial_error(actual, estimate) -> np.ndarray:
    """Relative L2 spatial error: one value per OD pair, computed across time.

    Returns an ``(n, n)`` array where entry ``(i, j)`` is
    ``||X_ij(.) - X̂_ij(.)||_2 / ||X_ij(.)||_2``.
    """
    actual = _to_array(actual)
    estimate = _to_array(estimate)
    _check_same_shape(actual, estimate)
    diff = np.sqrt(((actual - estimate) ** 2).sum(axis=0))
    norm = np.sqrt((actual**2).sum(axis=0))
    with np.errstate(divide="ignore", invalid="ignore"):
        error = np.where(norm > 0, diff / np.where(norm > 0, norm, 1.0), np.where(diff > 0, np.inf, 0.0))
    return error


def mean_relative_error(actual, estimate) -> float:
    """Mean over time of the relative L2 temporal error."""
    return float(np.mean(rel_l2_temporal_error(actual, estimate)))


def percent_improvement(baseline_error, model_error) -> np.ndarray:
    """Percentage improvement of ``model_error`` over ``baseline_error``.

    This is the quantity plotted in Figures 3, 11, 12 and 13 of the paper:
    ``100 * (err_baseline - err_model) / err_baseline`` for each time bin.
    Bins where the baseline error is zero yield 0.0.
    """
    baseline = np.asarray(baseline_error, dtype=float)
    model = np.asarray(model_error, dtype=float)
    if baseline.shape != model.shape:
        raise ShapeError(
            f"error series must have the same shape, got {baseline.shape} vs {model.shape}"
        )
    with np.errstate(divide="ignore", invalid="ignore"):
        improvement = np.where(
            baseline > 0, 100.0 * (baseline - model) / np.where(baseline > 0, baseline, 1.0), 0.0
        )
    return improvement


def summarize_improvement(improvement) -> dict[str, float]:
    """Summary statistics (mean / median / quartiles / min / max) of an improvement series."""
    improvement = np.asarray(improvement, dtype=float)
    finite = improvement[np.isfinite(improvement)]
    if finite.size == 0:
        return {"mean": 0.0, "median": 0.0, "p25": 0.0, "p75": 0.0, "min": 0.0, "max": 0.0}
    return {
        "mean": float(np.mean(finite)),
        "median": float(np.median(finite)),
        "p25": float(np.percentile(finite, 25)),
        "p75": float(np.percentile(finite, 75)),
        "min": float(np.min(finite)),
        "max": float(np.max(finite)),
    }

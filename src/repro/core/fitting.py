"""Estimating IC-model parameters from observed traffic matrices.

Section 5.1 of the paper estimates ``f``, ``{P_i}`` and ``{A_i(t)}`` by
solving the nonlinear program

.. math::

    \\min \\sum_t RelL2_T(t)
    \\quad\\text{s.t.}\\quad A_i(t) \\ge 0,\\; P_i \\ge 0,\\; \\sum_i P_i = 1

using the Matlab Optimization Toolbox.  We replace that with an alternating
least-squares (ALS) scheme built on the model's multilinear structure,
optionally polished with a ``scipy.optimize`` step:

* for fixed ``(f, P)`` the model is linear in each bin's activity ``A(t)``,
* for fixed ``(f, A)`` it is linear in the preference vector ``P``,
* for fixed ``(A, P)`` the optimal ``f`` has a closed form.

Each subproblem is solved in closed form (normal equations) with weights
``w_t = 1 / ||X(t)||`` so the objective matches the paper's per-bin relative
error, then projected onto the constraint set.  The same machinery supports
the stable-fP model (shared ``f`` and ``P``), the stable-f model (shared ``f``
only) and the fully time-varying model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import optimize

from repro._validation import normalized, require_probability
from repro.backend import resolve_backend
from repro.core.ic_model import simplified_ic_series
from repro.core.metrics import rel_l2_temporal_error
from repro.core.traffic_matrix import TrafficMatrixSeries
from repro.errors import FittingError, ValidationError

__all__ = ["FitResult", "fit_stable_fp", "fit_stable_f", "fit_time_varying"]

_EPS = 1e-12


@dataclass
class FitResult:
    """Result of fitting an IC-model variant to a traffic-matrix series.

    Attributes
    ----------
    model:
        Which variant was fitted: ``"stable-fP"``, ``"stable-f"`` or
        ``"time-varying"``.
    forward_fraction:
        The fitted ``f``.  A scalar for stable-fP / stable-f; an array of
        shape ``(T,)`` for the time-varying model.
    preference:
        The fitted preference.  Shape ``(n,)`` for stable-fP, ``(T, n)``
        otherwise.
    activity:
        The fitted activity series, shape ``(T, n)``.
    errors:
        Per-bin relative L2 temporal error of the fitted model, shape ``(T,)``.
    objective_history:
        Value of the objective (sum of per-bin errors) after each outer
        iteration; useful for convergence diagnostics.
    converged:
        Whether the iteration stopped because the objective change fell below
        the tolerance (as opposed to hitting the iteration cap).
    nodes:
        Node names carried over from the input series.
    """

    model: str
    forward_fraction: float | np.ndarray
    preference: np.ndarray
    activity: np.ndarray
    errors: np.ndarray
    objective_history: list[float] = field(default_factory=list)
    converged: bool = False
    nodes: tuple[str, ...] = ()

    @property
    def mean_error(self) -> float:
        """Mean per-bin relative L2 error of the fit."""
        return float(np.mean(self.errors))

    @property
    def objective(self) -> float:
        """Final value of the fitting objective (sum of per-bin errors)."""
        return float(np.sum(self.errors))

    def predicted_series(self, *, bin_seconds: float = 300.0) -> TrafficMatrixSeries:
        """The traffic-matrix series implied by the fitted parameters."""
        matrices = self.predicted_values()
        return TrafficMatrixSeries(matrices, self.nodes or None, bin_seconds=bin_seconds)

    def predicted_values(self) -> np.ndarray:
        """The fitted model's ``(T, n, n)`` traffic array (vectorised over bins)."""
        if self.model == "stable-fP":
            return simplified_ic_series(float(self.forward_fraction), self.activity, self.preference)
        t = self.activity.shape[0]
        if np.isscalar(self.forward_fraction) or np.ndim(self.forward_fraction) == 0:
            forward = np.full(t, float(self.forward_fraction))
        else:
            forward = np.asarray(self.forward_fraction, dtype=float)
        preference = self.preference
        if preference.ndim == 1:
            preference = np.broadcast_to(preference, self.activity.shape)
        return time_varying_ic_series(forward, self.activity, preference)


# ---------------------------------------------------------------------------
# helpers shared by the ALS updates
# ---------------------------------------------------------------------------

def _series_values(series) -> tuple[np.ndarray, tuple[str, ...], float]:
    if isinstance(series, TrafficMatrixSeries):
        return np.asarray(series.values, dtype=float), series.nodes, series.bin_seconds
    series = TrafficMatrixSeries(series)
    return np.asarray(series.values, dtype=float), series.nodes, series.bin_seconds


def _bin_weights(values: np.ndarray) -> np.ndarray:
    """Weights 1/||X(t)|| so least squares approximates the relative-error objective."""
    norms = np.sqrt((values**2).sum(axis=(1, 2)))
    return 1.0 / np.maximum(norms, _EPS)


def _activity_design_pinv(f: float, preference: np.ndarray) -> np.ndarray:
    """Pseudo-inverse of the per-bin activity design matrix for fixed ``(f, P)``.

    The design depends only on ``(f, P)``, so callers that sweep many bins —
    the batch solver below and the chunk-wise streaming fit — compute it once
    and apply it to every bin.
    """
    n = preference.shape[0]
    g = 1.0 - f
    # design[(i, j), k] = f * P_j * delta_ik + (1-f) * P_i * delta_jk
    design = np.zeros((n * n, n))
    rows_i, rows_j = np.divmod(np.arange(n * n), n)
    design[np.arange(n * n), rows_i] += f * preference[rows_j]
    design[np.arange(n * n), rows_j] += g * preference[rows_i]
    return np.linalg.pinv(design)


def _solve_activity(values: np.ndarray, f: float, preference: np.ndarray) -> np.ndarray:
    """Least-squares activity per bin for fixed ``(f, P)``; clipped non-negative.

    For a single bin the model is ``X = f A P^T + (1-f) P A^T`` which is linear
    in ``A``.  Because the design matrix depends only on ``(f, P)``, its
    pseudo-inverse is computed once and applied to every bin at once.
    """
    n = preference.shape[0]
    pinv = _activity_design_pinv(f, preference)
    flat = values.reshape(values.shape[0], n * n)
    activity = flat @ pinv.T
    return np.clip(activity, 0.0, None)


def _solve_preference(
    values: np.ndarray, f: float, activity: np.ndarray, weights: np.ndarray
) -> np.ndarray:
    """Weighted least-squares preference for fixed ``(f, A(t))``; projected to the simplex.

    The normal equations are assembled analytically (no T*n^2-row design
    matrix is materialised):

    ``M = sum_t w_t^2 [ (f^2+g^2) ||A(t)||^2 I + 2 f g A(t) A(t)^T ]``
    ``b_k = sum_t w_t^2 [ f A(t) . X(t)[:, k] + g A(t) . X(t)[k, :] ]``
    """
    g = 1.0 - f
    w2 = weights**2
    norms = (activity**2).sum(axis=1)
    n = activity.shape[1]
    identity_scale = float(np.sum(w2 * norms)) * (f * f + g * g)
    outer = np.einsum("t,ti,tj->ij", w2, activity, activity)
    m = identity_scale * np.eye(n) + 2.0 * f * g * outer
    b = f * np.einsum("t,ti,tik->k", w2, activity, values) + g * np.einsum(
        "t,tj,tkj->k", w2, activity, values
    )
    try:
        preference = np.linalg.solve(m + _EPS * np.eye(n), b)
    except np.linalg.LinAlgError as exc:  # pragma: no cover - defensive
        raise FittingError("preference normal equations are singular") from exc
    preference = np.clip(preference, 0.0, None)
    if preference.sum() <= 0.0:
        preference = np.full(n, 1.0 / n)
    return normalized(preference, "preference")


def _solve_preference_single(values_t: np.ndarray, f: float, activity_t: np.ndarray) -> np.ndarray:
    """Preference for a single bin (used by the stable-f and time-varying fits)."""
    return _solve_preference(
        values_t[np.newaxis], f, activity_t[np.newaxis], np.ones(1)
    )


def _solve_forward_fraction(
    values: np.ndarray,
    activity: np.ndarray,
    preference: np.ndarray,
    weights: np.ndarray,
    bounds: tuple[float, float] = (0.0, 1.0),
) -> float:
    """Closed-form optimal ``f`` for fixed ``(A(t), P)``, clipped to ``bounds``.

    Writing ``X = f U + V`` with ``U = A P^T - P A^T`` and ``V = P A^T`` (outer
    products per bin), the weighted least-squares optimum is
    ``f = sum w^2 <U, X - V> / sum w^2 <U, U>``.
    """
    u = np.einsum("ti,j->tij", activity, preference) - np.einsum(
        "tj,i->tij", activity, preference
    )
    v = np.einsum("tj,i->tij", activity, preference)
    w2 = weights**2
    numerator = float(np.einsum("t,tij,tij->", w2, u, values - v))
    denominator = float(np.einsum("t,tij,tij->", w2, u, u))
    if denominator <= _EPS:
        return float(np.clip(0.5, bounds[0], bounds[1]))
    return float(np.clip(numerator / denominator, bounds[0], bounds[1]))


def _initial_parameters(values: np.ndarray, forward_fraction: float) -> tuple[np.ndarray, np.ndarray]:
    """Heuristic initial preference and activity from the series marginals."""
    return _initial_parameters_from_marginals(
        values.sum(axis=2), values.sum(axis=1), forward_fraction
    )


def _initial_parameters_from_marginals(
    ingress: np.ndarray, egress: np.ndarray, forward_fraction: float
) -> tuple[np.ndarray, np.ndarray]:
    """Heuristic initial preference and activity from ``(T, n)`` marginals.

    Both starting points come from the stable-f closed forms (Eqs. 11-12)
    applied to the marginals with the caller's initial ``f``:
    ``A_i ∝ (f X_i* - (1-f) X_*i)`` and ``P_i ∝ (f X_*i - (1-f) X_i*)``
    (up to the common ``1/(2f-1)`` factor).  Starting in the basin consistent
    with the requested ``f`` matters because the model has a mirror optimum
    (roles of activity and preference exchanged, ``f -> 1-f``) that a
    marginal-agnostic initialisation can fall into.  Near ``f = 0.5``, where
    the closed forms are singular, the ingress/egress marginals themselves
    are used instead.  Only the marginals are needed, which is what lets the
    streaming fit initialise from a single accumulation pass.
    """
    denominator = 2.0 * forward_fraction - 1.0
    if abs(denominator) > 0.05:
        activity = (forward_fraction * ingress - (1.0 - forward_fraction) * egress) / denominator
        activity = np.clip(activity, 0.0, None)
        if activity.sum() <= 0.0:
            activity = ingress.copy()
        preference_raw = (
            forward_fraction * egress.mean(axis=0)
            - (1.0 - forward_fraction) * ingress.mean(axis=0)
        ) / denominator
        preference_raw = np.clip(preference_raw, 0.0, None)
    else:
        activity = ingress.copy()
        preference_raw = egress.mean(axis=0)
    if preference_raw.sum() <= 0.0:
        preference_raw = np.full(ingress.shape[1], 1.0)
    preference = preference_raw / preference_raw.sum()
    return preference, activity


# ---------------------------------------------------------------------------
# public fitting entry points
# ---------------------------------------------------------------------------

def fit_stable_fp(
    series,
    *,
    initial_forward_fraction: float = 0.25,
    max_iterations: int = 60,
    tolerance: float = 1e-6,
    refine: bool = False,
    forward_bounds: tuple[float, float] = (0.0, 0.5),
    backend=None,
) -> FitResult:
    """Fit the stable-fP IC model (Eq. 5): one ``f``, one ``P``, per-bin ``A(t)``.

    Parameters
    ----------
    series:
        The observed traffic-matrix series (``TrafficMatrixSeries`` or a
        ``(T, n, n)`` array).
    initial_forward_fraction:
        Starting value for ``f``; the paper's empirical range is 0.2-0.3.
    max_iterations:
        Cap on alternating-least-squares iterations.
    tolerance:
        Stop when the objective improves by less than this (absolute).
    refine:
        When true, run a bounded scalar refinement of ``f`` with
        ``scipy.optimize.minimize_scalar`` after ALS converges (the ``A`` and
        ``P`` subproblems are re-solved inside the refinement objective).
        Useful for small problems and for validating the ALS solution.
    forward_bounds:
        Box constraint on ``f``.  The default upper bound of 0.5 resolves the
        model's mirror ambiguity — ``(f, A, P)`` and ``(1-f, cP, A/c)`` produce
        identical traffic when activity is (nearly) static — by committing to
        the empirically supported regime in which forward (request) traffic
        does not exceed reverse (response) traffic.  Pass ``(0.0, 1.0)`` to
        lift the restriction.

    A :class:`repro.streaming.ChunkStream` is also accepted; it is fitted in
    bounded memory by :func:`repro.core.streaming.fit_stable_fp_streaming`
    (which does not support ``refine``).

    ``backend`` selects the array namespace the ALS inner loops run on
    (:mod:`repro.backend`); ``None`` follows the ambient selection
    (``use_backend`` context / ``REPRO_BACKEND``), which defaults to the
    bit-identical NumPy path.  On a non-NumPy backend the series is shipped
    to the device once and every ALS subproblem runs there; the returned
    :class:`FitResult` always holds host arrays.  ``refine`` and chunk
    streams are NumPy-only.
    """
    from repro.streaming import ChunkStream

    if isinstance(series, ChunkStream):
        if refine:
            raise ValidationError("refine=True is not supported when fitting a chunk stream")
        from repro.core.streaming import fit_stable_fp_streaming

        return fit_stable_fp_streaming(
            series,
            initial_forward_fraction=initial_forward_fraction,
            max_iterations=max_iterations,
            tolerance=tolerance,
            forward_bounds=forward_bounds,
        )
    be = resolve_backend(backend)
    values, nodes, _ = _series_values(series)
    if values.shape[0] < 1:
        raise ValidationError("series must contain at least one time bin")
    f = require_probability(initial_forward_fraction, "initial_forward_fraction")
    low, high = float(forward_bounds[0]), float(forward_bounds[1])
    if not 0.0 <= low < high <= 1.0:
        raise ValidationError(f"forward_bounds must satisfy 0 <= low < high <= 1, got {forward_bounds}")
    f = float(np.clip(f, low, high))
    if not be.is_numpy:
        if refine:
            raise ValidationError(
                "refine=True is only supported on the numpy backend "
                "(the scalar polish runs scipy.optimize on the host)"
            )
        return _fit_stable_fp_xp(
            be,
            values,
            nodes,
            initial_forward_fraction=f,
            max_iterations=max_iterations,
            tolerance=tolerance,
            forward_bounds=(low, high),
        )
    weights = _bin_weights(values)
    preference, activity = _initial_parameters(values, f)

    history: list[float] = []
    converged = False
    previous = np.inf
    for _ in range(max_iterations):
        activity = _solve_activity(values, f, preference)
        preference = _solve_preference(values, f, activity, weights)
        f = _solve_forward_fraction(values, activity, preference, weights, (low, high))
        predicted = simplified_ic_series(f, activity, preference)
        objective = float(np.sum(rel_l2_temporal_error(values, predicted)))
        history.append(objective)
        if previous - objective < tolerance:
            converged = True
            break
        previous = objective

    if refine:
        f, preference, activity, history = _refine_forward_fraction(
            values, weights, f, history, (low, high)
        )

    predicted = simplified_ic_series(f, activity, preference)
    errors = rel_l2_temporal_error(values, predicted)
    return FitResult(
        model="stable-fP",
        forward_fraction=float(f),
        preference=preference,
        activity=activity,
        errors=errors,
        objective_history=history,
        converged=converged,
        nodes=nodes,
    )


def _refine_forward_fraction(
    values: np.ndarray,
    weights: np.ndarray,
    f_start: float,
    history: list[float],
    bounds: tuple[float, float] = (0.0, 1.0),
) -> tuple[float, np.ndarray, np.ndarray, list[float]]:
    """Polish ``f`` with a bounded scalar search, re-solving ``A`` and ``P`` inside."""

    def objective(f_candidate: float) -> float:
        f_candidate = float(np.clip(f_candidate, bounds[0], bounds[1]))
        preference, activity = _initial_parameters(values, f_candidate)
        for _ in range(10):
            activity = _solve_activity(values, f_candidate, preference)
            preference = _solve_preference(values, f_candidate, activity, weights)
        predicted = simplified_ic_series(f_candidate, activity, preference)
        return float(np.sum(rel_l2_temporal_error(values, predicted)))

    search_low = max(bounds[0], 0.01)
    search_high = min(bounds[1], 0.99)
    result = optimize.minimize_scalar(objective, bounds=(search_low, search_high), method="bounded")
    f_best = float(result.x) if result.fun <= history[-1] else f_start
    preference, activity = _initial_parameters(values, f_best)
    for _ in range(20):
        activity = _solve_activity(values, f_best, preference)
        preference = _solve_preference(values, f_best, activity, _bin_weights(values))
    predicted = simplified_ic_series(f_best, activity, preference)
    history = history + [float(np.sum(rel_l2_temporal_error(values, predicted)))]
    return f_best, preference, activity, history


# ---------------------------------------------------------------------------
# namespace-generic stable-fP ALS (repro.backend)
# ---------------------------------------------------------------------------
#
# The same alternating least squares as the NumPy path above, written against
# the array-API standard plus the Backend shims.  The observed series is
# shipped to the device once; every subproblem (activity pinv, preference
# normal equations, closed-form f, the per-iteration objective) runs on the
# device, and only the per-iteration scalar objective crosses back to drive
# the convergence test.

def _rel_l2_temporal_xp(be, actual, estimate):
    """Device-resident version of :func:`repro.core.metrics.rel_l2_temporal_error`."""
    xp = be.xp
    diff = xp.sqrt(xp.sum((actual - estimate) ** 2, axis=(1, 2)))
    norm = xp.sqrt(xp.sum(actual**2, axis=(1, 2)))
    ones = xp.ones(norm.shape, dtype=norm.dtype)
    zeros = xp.zeros(norm.shape, dtype=norm.dtype)
    infs = xp.full(norm.shape, float("inf"), dtype=norm.dtype)
    return xp.where(
        norm > 0, diff / xp.where(norm > 0, norm, ones), xp.where(diff > 0, infs, zeros)
    )


def _simplified_series_xp(be, f: float, activity, preference):
    """Device simplified-IC prediction from already-normalised parameters."""
    base = be.einsum("ti,j->tij", activity, preference)
    return f * base + (1.0 - f) * be.matrix_transpose(base)


def _solve_activity_xp(be, flat, f: float, preference, eye_nn):
    """Device counterpart of :func:`_solve_activity` (shared design pinv)."""
    xp = be.xp
    g = 1.0 - f
    n = int(preference.shape[0])
    # design[(i, j), k] = f * P_j * delta_ik + (1-f) * P_i * delta_jk
    design = f * preference[None, :, None] * eye_nn[:, None, :]
    design = design + g * preference[:, None, None] * eye_nn[None, :, :]
    design = xp.reshape(design, (n * n, n))
    pinv = be.pinv(design)
    activity = xp.matmul(flat, be.matrix_transpose(pinv))
    return xp.clip(activity, 0.0, None)


def _solve_preference_xp(be, values, f: float, activity, weights, eye_nn):
    """Device counterpart of :func:`_solve_preference`."""
    xp = be.xp
    g = 1.0 - f
    w2 = weights**2
    n = int(activity.shape[1])
    norms = xp.sum(activity**2, axis=1)
    identity_scale = be.scalar(xp.sum(w2 * norms)) * (f * f + g * g)
    outer = be.einsum("t,ti,tj->ij", w2, activity, activity)
    m = identity_scale * eye_nn + (2.0 * f * g) * outer
    b = f * be.einsum("t,ti,tik->k", w2, activity, values) + g * be.einsum(
        "t,tj,tkj->k", w2, activity, values
    )
    preference = be.solve(m + _EPS * eye_nn, b)
    preference = xp.clip(preference, 0.0, None)
    total = be.scalar(xp.sum(preference))
    if total <= 0.0:
        return xp.full((n,), 1.0 / n, dtype=values.dtype)
    return preference / total


def _solve_forward_fraction_xp(
    be, values, activity, preference, weights, bounds: tuple[float, float]
) -> float:
    """Device counterpart of :func:`_solve_forward_fraction`."""
    u = be.einsum("ti,j->tij", activity, preference) - be.einsum(
        "tj,i->tij", activity, preference
    )
    v = be.einsum("tj,i->tij", activity, preference)
    w2 = weights**2
    numerator = be.scalar(be.einsum("t,tij,tij->", w2, u, values - v))
    denominator = be.scalar(be.einsum("t,tij,tij->", w2, u, u))
    if denominator <= _EPS:
        return float(np.clip(0.5, bounds[0], bounds[1]))
    return float(np.clip(numerator / denominator, bounds[0], bounds[1]))


def _fit_stable_fp_xp(
    be,
    values: np.ndarray,
    nodes: tuple[str, ...],
    *,
    initial_forward_fraction: float,
    max_iterations: int,
    tolerance: float,
    forward_bounds: tuple[float, float],
) -> FitResult:
    """Stable-fP ALS on a non-NumPy backend; mirrors the host loop step for step."""
    xp = be.xp
    low, high = forward_bounds
    f = initial_forward_fraction
    device_values = be.asarray(values)
    t, n = values.shape[0], values.shape[1]
    flat = xp.reshape(device_values, (t, n * n))
    eye_nn = xp.eye(n, dtype=device_values.dtype)
    norms = xp.sqrt(xp.sum(device_values**2, axis=(1, 2)))
    weights = 1.0 / xp.clip(norms, _EPS, None)
    preference_host, activity_host = _initial_parameters(values, f)
    preference = be.asarray(preference_host)

    history: list[float] = []
    converged = False
    previous = np.inf
    activity = be.asarray(activity_host)
    for _ in range(max_iterations):
        activity = _solve_activity_xp(be, flat, f, preference, eye_nn)
        preference = _solve_preference_xp(be, device_values, f, activity, weights, eye_nn)
        f = _solve_forward_fraction_xp(
            be, device_values, activity, preference, weights, (low, high)
        )
        predicted = _simplified_series_xp(be, f, activity, preference)
        objective = be.scalar(xp.sum(_rel_l2_temporal_xp(be, device_values, predicted)))
        history.append(objective)
        if previous - objective < tolerance:
            converged = True
            break
        previous = objective

    predicted = _simplified_series_xp(be, f, activity, preference)
    errors = _rel_l2_temporal_xp(be, device_values, predicted)
    return FitResult(
        model="stable-fP",
        forward_fraction=float(f),
        preference=be.to_numpy(preference),
        activity=be.to_numpy(activity),
        errors=be.to_numpy(errors),
        objective_history=history,
        converged=converged,
        nodes=nodes,
    )


def fit_stable_f(
    series,
    *,
    initial_forward_fraction: float = 0.25,
    max_iterations: int = 40,
    tolerance: float = 1e-6,
    forward_bounds: tuple[float, float] = (0.0, 0.5),
) -> FitResult:
    """Fit the stable-f IC model (Eq. 4): one ``f``; per-bin ``A(t)`` and ``P(t)``.

    The preference vector is re-estimated for every bin, so the result's
    ``preference`` attribute has shape ``(T, n)``.
    """
    values, nodes, _ = _series_values(series)
    f = require_probability(initial_forward_fraction, "initial_forward_fraction")
    low, high = float(forward_bounds[0]), float(forward_bounds[1])
    if not 0.0 <= low < high <= 1.0:
        raise ValidationError(f"forward_bounds must satisfy 0 <= low < high <= 1, got {forward_bounds}")
    f = float(np.clip(f, low, high))
    weights = _bin_weights(values)
    t, n = values.shape[0], values.shape[1]
    shared_preference, activity = _initial_parameters(values, f)
    preference = np.tile(shared_preference, (t, 1))

    history: list[float] = []
    converged = False
    previous = np.inf
    for _ in range(max_iterations):
        for step in range(t):
            activity[step] = _solve_activity(
                values[step][np.newaxis], f, preference[step]
            )[0]
            preference[step] = _solve_preference_single(values[step], f, activity[step])
        f = float(np.clip(
            _solve_forward_fraction_per_bin_shared(values, activity, preference, weights), low, high
        ))
        predicted = _predict_per_bin(f, activity, preference)
        objective = float(np.sum(rel_l2_temporal_error(values, predicted)))
        history.append(objective)
        if previous - objective < tolerance:
            converged = True
            break
        previous = objective

    predicted = _predict_per_bin(f, activity, preference)
    errors = rel_l2_temporal_error(values, predicted)
    return FitResult(
        model="stable-f",
        forward_fraction=float(f),
        preference=preference,
        activity=activity,
        errors=errors,
        objective_history=history,
        converged=converged,
        nodes=nodes,
    )


def fit_time_varying(
    series,
    *,
    initial_forward_fraction: float = 0.25,
    max_iterations: int = 30,
    tolerance: float = 1e-6,
    forward_bounds: tuple[float, float] = (0.0, 0.5),
) -> FitResult:
    """Fit the fully time-varying IC model (Eq. 3): per-bin ``f(t)``, ``A(t)``, ``P(t)``."""
    values, nodes, _ = _series_values(series)
    f0 = require_probability(initial_forward_fraction, "initial_forward_fraction")
    low, high = float(forward_bounds[0]), float(forward_bounds[1])
    if not 0.0 <= low < high <= 1.0:
        raise ValidationError(f"forward_bounds must satisfy 0 <= low < high <= 1, got {forward_bounds}")
    f0 = float(np.clip(f0, low, high))
    t, n = values.shape[0], values.shape[1]
    shared_preference, activity = _initial_parameters(values, f0)
    preference = np.tile(shared_preference, (t, 1))
    forward = np.full(t, f0)

    history: list[float] = []
    converged = False
    previous = np.inf
    for _ in range(max_iterations):
        for step in range(t):
            activity[step] = _solve_activity(
                values[step][np.newaxis], float(forward[step]), preference[step]
            )[0]
            preference[step] = _solve_preference_single(
                values[step], float(forward[step]), activity[step]
            )
            forward[step] = _solve_forward_fraction(
                values[step][np.newaxis],
                activity[step][np.newaxis],
                preference[step],
                np.ones(1),
                (low, high),
            )
        predicted = _predict_per_bin(forward, activity, preference)
        objective = float(np.sum(rel_l2_temporal_error(values, predicted)))
        history.append(objective)
        if previous - objective < tolerance:
            converged = True
            break
        previous = objective

    predicted = _predict_per_bin(forward, activity, preference)
    errors = rel_l2_temporal_error(values, predicted)
    return FitResult(
        model="time-varying",
        forward_fraction=forward,
        preference=preference,
        activity=activity,
        errors=errors,
        objective_history=history,
        converged=converged,
        nodes=nodes,
    )


def _solve_forward_fraction_per_bin_shared(
    values: np.ndarray, activity: np.ndarray, preference: np.ndarray, weights: np.ndarray
) -> float:
    """Optimal shared ``f`` when preference varies per bin (stable-f model)."""
    u = np.einsum("ti,tj->tij", activity, preference) - np.einsum(
        "tj,ti->tij", activity, preference
    )
    v = np.einsum("tj,ti->tij", activity, preference)
    w2 = weights**2
    numerator = float(np.einsum("t,tij,tij->", w2, u, values - v))
    denominator = float(np.einsum("t,tij,tij->", w2, u, u))
    if denominator <= _EPS:
        return 0.5
    return float(np.clip(numerator / denominator, 0.0, 1.0))


def _predict_per_bin(forward, activity: np.ndarray, preference: np.ndarray) -> np.ndarray:
    """Model prediction when ``f`` and/or ``P`` vary per bin (vectorised)."""
    t, n = activity.shape
    forward = np.broadcast_to(np.asarray(forward, dtype=float), (t,)) if np.ndim(forward) else np.full(t, float(forward))
    pref = preference if preference.ndim == 2 else np.broadcast_to(preference, (t, n))
    totals = np.maximum(pref.sum(axis=1), _EPS)
    pref = pref / totals[:, np.newaxis]
    forward_part = forward[:, np.newaxis, np.newaxis] * np.einsum("ti,tj->tij", activity, pref)
    reverse_part = (1.0 - forward)[:, np.newaxis, np.newaxis] * np.einsum(
        "ti,tj->tij", pref, activity
    )
    return forward_part + reverse_part

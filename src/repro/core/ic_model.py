"""The independent-connection (IC) model family (paper Section 3).

The IC model describes an OD flow as the superposition of *forward* traffic
(initiator to responder) and *reverse* traffic (responder to initiator) of the
connections whose initiator sits at the origin or the destination:

General IC model (Eq. 1)::

    X_ij = f_ij * A_i * P_j / sum(P)  +  (1 - f_ji) * A_j * P_i / sum(P)

Simplified IC model (Eq. 2): a single network-wide forward fraction ``f``.

Temporal variants (Eqs. 3-5) restrict which parameters may vary with time:

* time-varying  — ``f(t), A_i(t), P_i(t)`` all vary,
* stable-f      — ``f`` fixed, ``A_i(t), P_i(t)`` vary,
* stable-fP     — ``f`` and ``P_i`` fixed, only ``A_i(t)`` varies.

This module provides plain functions (:func:`general_ic_matrix`,
:func:`simplified_ic_matrix`) as the numerical workhorses and small model
classes that bundle parameters with generation logic, plus the
degrees-of-freedom accounting used in Section 5.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro._validation import (
    as_1d_array,
    as_square_matrix,
    normalized,
    require_nonnegative,
    require_positive_int,
    require_probability,
)
from repro.backend import resolve_backend
from repro.core.traffic_matrix import TrafficMatrixSeries
from repro.errors import ShapeError, ValidationError
from repro.registry import register_model

__all__ = [
    "ICParameters",
    "general_ic_matrix",
    "simplified_ic_matrix",
    "general_ic_series",
    "simplified_ic_series",
    "time_varying_ic_series",
    "GeneralICModel",
    "SimplifiedICModel",
    "TimeVaryingICModel",
    "StableFICModel",
    "StableFPICModel",
    "degrees_of_freedom",
]


def _as_series_2d(values, name: str, *, length: int | None = None) -> np.ndarray:
    """Coerce ``values`` into a validated non-negative ``(T, n)`` float array."""
    array = np.asarray(values, dtype=float)
    if array.ndim == 1:
        array = array[np.newaxis, :]
    if array.ndim != 2:
        raise ShapeError(f"{name} must have shape (T, n), got {array.shape}")
    if length is not None and array.shape[1] != length:
        raise ShapeError(f"{name} must have n={length} columns, got {array.shape[1]}")
    if not np.all(np.isfinite(array)):
        raise ValidationError(f"{name} must contain only finite values")
    minimum = float(array.min()) if array.size else 0.0
    if minimum < 0.0:
        raise ValidationError(f"{name} must be non-negative, found minimum {minimum}")
    return np.clip(array, 0.0, None)


# ---------------------------------------------------------------------------
# numerical workhorses
# ---------------------------------------------------------------------------

def general_ic_matrix(forward_fraction, activity, preference) -> np.ndarray:
    """Evaluate the general IC model (Eq. 1) for one time bin.

    Parameters
    ----------
    forward_fraction:
        ``(n, n)`` matrix of per-pair forward fractions ``f_ij`` in [0, 1].
    activity:
        Length-``n`` vector of activity levels ``A_i`` (bytes initiated at i).
    preference:
        Length-``n`` vector of preference values ``P_i``; normalised
        internally so only relative magnitudes matter.

    Returns
    -------
    numpy.ndarray
        The ``(n, n)`` traffic matrix predicted by the model.
    """
    f = as_square_matrix(forward_fraction, "forward_fraction")
    if np.any(f < 0.0) or np.any(f > 1.0):
        raise ValidationError("forward_fraction entries must lie in [0, 1]")
    n = f.shape[0]
    a = require_nonnegative(as_1d_array(activity, "activity", length=n), "activity")
    p = require_nonnegative(as_1d_array(preference, "preference", length=n), "preference")
    p = normalized(p, "preference")
    forward = f * np.outer(a, p)
    reverse = (1.0 - f.T) * np.outer(p, a)
    return forward + reverse


def simplified_ic_matrix(forward_fraction: float, activity, preference) -> np.ndarray:
    """Evaluate the simplified IC model (Eq. 2) for one time bin.

    Identical to :func:`general_ic_matrix` with a scalar network-wide ``f``.
    """
    f = require_probability(forward_fraction, "forward_fraction")
    a = require_nonnegative(as_1d_array(activity, "activity"), "activity")
    p = require_nonnegative(
        as_1d_array(preference, "preference", length=a.shape[0]), "preference"
    )
    p = normalized(p, "preference")
    return f * np.outer(a, p) + (1.0 - f) * np.outer(p, a)


# Per-chunk working-set budget for the series kernels: bins are processed in
# blocks whose (chunk, n, n) outer-product stack fits the cache, which keeps
# the scale / transpose / accumulate passes in L2 instead of main memory.
_KERNEL_CHUNK_BYTES = 256 * 1024


def _kernel_chunk(n: int) -> int:
    return max(1, _KERNEL_CHUNK_BYTES // max(n * n * 8, 1))


def simplified_ic_series(
    forward_fraction: float, activity_series, preference, *, backend=None
) -> np.ndarray:
    """Vectorised simplified IC model over a ``(T, n)`` activity series.

    Returns a ``(T, n, n)`` array that is bit-identical to stacking
    :func:`simplified_ic_matrix` per bin; used by the stable-fP model and by
    the fitting code where speed matters.

    ``backend`` selects the array namespace (:mod:`repro.backend`): a
    non-NumPy backend accepts host arrays or that backend's device arrays
    and returns a device array (transfer back with ``backend.to_numpy``).
    The default (and explicit ``"numpy"``) runs the historical bit-identical
    NumPy path below.
    """
    if backend is not None:
        be = resolve_backend(backend)
        if not be.is_numpy:
            return _simplified_ic_series_xp(be, forward_fraction, activity_series, preference)
    f = require_probability(forward_fraction, "forward_fraction")
    a = np.asarray(activity_series, dtype=float)
    if a.ndim == 1:
        a = a[np.newaxis, :]
    if a.ndim != 2:
        raise ShapeError(f"activity_series must have shape (T, n), got {a.shape}")
    p = require_nonnegative(
        as_1d_array(preference, "preference", length=a.shape[1]), "preference"
    )
    p = normalized(p, "preference")
    t, n = a.shape
    out = np.empty((t, n, n))
    chunk = _kernel_chunk(n)
    for start in range(0, t, chunk):
        stop = min(start + chunk, t)
        base = np.einsum("ti,j->tij", a[start:stop], p)  # A_i * P_j per bin
        block = out[start:stop]
        np.multiply(base, f, out=block)                  # f * (A_i P_j)
        base *= 1.0 - f                                  # (1-f) * (A_i P_j)
        block += base.transpose(0, 2, 1)                 # + (1-f) * (P_i A_j)
    return out


def general_ic_series(forward_fraction, activity_series, preference, *, backend=None) -> np.ndarray:
    """Vectorised general IC model (Eq. 1) over a ``(T, n)`` activity series.

    Batched equivalent of stacking :func:`general_ic_matrix` per bin: the
    ``(n, n)`` forward-fraction matrix and the ``(n,)`` preference vector are
    fixed while activity varies with time.  Returns a ``(T, n, n)`` array
    that is bit-identical to the per-bin loop.  ``backend`` selects the
    array namespace as in :func:`simplified_ic_series`.
    """
    if backend is not None:
        be = resolve_backend(backend)
        if not be.is_numpy:
            return _general_ic_series_xp(be, forward_fraction, activity_series, preference)
    f = as_square_matrix(forward_fraction, "forward_fraction")
    if np.any(f < 0.0) or np.any(f > 1.0):
        raise ValidationError("forward_fraction entries must lie in [0, 1]")
    n = f.shape[0]
    a = _as_series_2d(activity_series, "activity_series", length=n)
    p = require_nonnegative(as_1d_array(preference, "preference", length=n), "preference")
    p = normalized(p, "preference")
    reverse_fraction = np.ascontiguousarray(1.0 - f.T)
    t = a.shape[0]
    out = np.empty((t, n, n))
    chunk = _kernel_chunk(n)
    for start in range(0, t, chunk):
        stop = min(start + chunk, t)
        base = np.einsum("ti,j->tij", a[start:stop], p)    # A_i * P_j per bin
        block = out[start:stop]
        np.multiply(base, f, out=block)                    # f_ij * (A_i P_j)
        block += reverse_fraction * base.transpose(0, 2, 1)  # + (1-f_ji) * (P_i A_j)
    return out


def time_varying_ic_series(
    forward_series, activity_series, preference_series, *, backend=None
) -> np.ndarray:
    """Vectorised simplified IC model with per-bin ``f(t)``/``A(t)``/``P(t)``.

    Batched equivalent of stacking ``simplified_ic_matrix(f[t], a[t], p[t])``
    per bin (Eqs. 3-4): the preference of each bin is normalised to sum to
    one independently.  ``forward_series`` may be a scalar (stable-f, Eq. 4)
    or a length-``T`` array (time-varying, Eq. 3).  Returns a ``(T, n, n)``
    array that is bit-identical to the per-bin loop.  ``backend`` selects
    the array namespace as in :func:`simplified_ic_series`.
    """
    if backend is not None:
        be = resolve_backend(backend)
        if not be.is_numpy:
            return _time_varying_ic_series_xp(be, forward_series, activity_series, preference_series)
    a = _as_series_2d(activity_series, "activity_series")
    p = _as_series_2d(preference_series, "preference_series", length=a.shape[1])
    if a.shape[0] != p.shape[0]:
        raise ShapeError(
            f"activity and preference series must match, got {a.shape} vs {p.shape}"
        )
    t = a.shape[0]
    f = np.asarray(forward_series, dtype=float)
    if f.ndim == 0:
        f = np.full(t, require_probability(float(f), "forward_fraction"))
    elif f.ndim == 1:
        if f.shape[0] != t:
            raise ShapeError(f"forward_series must have length T={t}, got {f.shape[0]}")
        if not np.all(np.isfinite(f)) or np.any(f < 0.0) or np.any(f > 1.0):
            raise ValidationError("forward_series entries must lie in [0, 1]")
    else:
        raise ShapeError(f"forward_series must be a scalar or (T,) array, got {f.shape}")
    totals = p.sum(axis=1)
    if np.any(totals <= 0.0):
        raise ValidationError(
            "preference_series must have a positive sum in every bin to be normalised"
        )
    p = p / totals[:, np.newaxis]
    n = a.shape[1]
    out = np.empty((t, n, n))
    chunk = _kernel_chunk(n)
    for start in range(0, t, chunk):
        stop = min(start + chunk, t)
        base = np.einsum("ti,tj->tij", a[start:stop], p[start:stop])  # A_i(t) * P_j(t)
        block = out[start:stop]
        f_block = f[start:stop, np.newaxis, np.newaxis]
        np.multiply(base, f_block, out=block)      # f(t) * (A_i P_j)
        base *= 1.0 - f_block                      # (1-f(t)) * (A_i P_j)
        block += base.transpose(0, 2, 1)           # + (1-f(t)) * (P_i A_j)
    return out


# ---------------------------------------------------------------------------
# namespace-generic kernels (repro.backend)
# ---------------------------------------------------------------------------
#
# One implementation per series kernel, written against the array-API
# standard plus the Backend shims, so the same code runs on
# array-api-strict, torch and cupy.  Host inputs are validated with the
# usual NumPy checks and shipped once; device inputs pass straight through
# (the caller already owns the transfer).  Outputs stay on the device.

def _is_host_value(values) -> bool:
    """Whether ``values`` lives on the host (numpy / python containers)."""
    return isinstance(values, (np.ndarray, list, tuple)) or np.isscalar(values)


def _ship_series_2d(be, values, name: str, *, length: int | None = None):
    if _is_host_value(values):
        return be.asarray(_as_series_2d(values, name, length=length))
    return be.asarray(values)


def _ship_vector(be, values, name: str, *, length: int | None = None):
    if _is_host_value(values):
        return be.asarray(
            require_nonnegative(as_1d_array(values, name, length=length), name)
        )
    return be.asarray(values)


def _normalize_xp(be, preference, name: str):
    """Normalise a device preference vector, rejecting a non-positive sum."""
    xp = be.xp
    total = xp.sum(preference)
    if not be.scalar(total) > 0.0:
        raise ValidationError(f"{name} must have a positive sum to be normalised")
    return preference / total


def _simplified_ic_series_xp(be, forward_fraction, activity_series, preference):
    f = require_probability(float(forward_fraction), "forward_fraction")
    a = _ship_series_2d(be, activity_series, "activity_series")
    p = _ship_vector(be, preference, "preference", length=int(a.shape[1]))
    p = _normalize_xp(be, p, "preference")
    base = be.einsum("ti,j->tij", a, p)
    return f * base + (1.0 - f) * be.matrix_transpose(base)


def _general_ic_series_xp(be, forward_fraction, activity_series, preference):
    if _is_host_value(forward_fraction):
        f_host = as_square_matrix(forward_fraction, "forward_fraction")
        if np.any(f_host < 0.0) or np.any(f_host > 1.0):
            raise ValidationError("forward_fraction entries must lie in [0, 1]")
        f = be.asarray(f_host)
    else:
        f = be.asarray(forward_fraction)
    n = int(f.shape[0])
    a = _ship_series_2d(be, activity_series, "activity_series", length=n)
    p = _ship_vector(be, preference, "preference", length=n)
    p = _normalize_xp(be, p, "preference")
    base = be.einsum("ti,j->tij", a, p)
    reverse_fraction = 1.0 - be.matrix_transpose(f)
    return f * base + reverse_fraction * be.matrix_transpose(base)


def _time_varying_ic_series_xp(be, forward_series, activity_series, preference_series):
    xp = be.xp
    a = _ship_series_2d(be, activity_series, "activity_series")
    p = _ship_series_2d(be, preference_series, "preference_series", length=int(a.shape[1]))
    if a.shape[0] != p.shape[0]:
        raise ShapeError(
            f"activity and preference series must match, got {tuple(a.shape)} vs {tuple(p.shape)}"
        )
    t = int(a.shape[0])
    if _is_host_value(forward_series):
        f_host = np.asarray(forward_series, dtype=float)
        if f_host.ndim == 0:
            f_host = np.full(t, require_probability(float(f_host), "forward_fraction"))
        elif f_host.ndim == 1:
            if f_host.shape[0] != t:
                raise ShapeError(f"forward_series must have length T={t}, got {f_host.shape[0]}")
            if not np.all(np.isfinite(f_host)) or np.any(f_host < 0.0) or np.any(f_host > 1.0):
                raise ValidationError("forward_series entries must lie in [0, 1]")
        else:
            raise ShapeError(f"forward_series must be a scalar or (T,) array, got {f_host.shape}")
        f = be.asarray(f_host)
    else:
        f = be.asarray(forward_series)
        if len(f.shape) == 0:
            f = be.asarray(np.full(t, require_probability(be.scalar(f), "forward_fraction")))
        elif len(f.shape) != 1 or int(f.shape[0]) != t:
            raise ShapeError(f"forward_series must be a scalar or (T,) array, got {tuple(f.shape)}")
    totals = xp.sum(p, axis=1)
    if be.scalar(xp.min(totals)) <= 0.0:
        raise ValidationError(
            "preference_series must have a positive sum in every bin to be normalised"
        )
    p = p / totals[:, None]
    base = be.einsum("ti,tj->tij", a, p)
    f_block = f[:, None, None]
    return f_block * base + (1.0 - f_block) * be.matrix_transpose(base)


# ---------------------------------------------------------------------------
# parameter container
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ICParameters:
    """A complete parameterisation of the simplified IC model at one instant.

    Attributes
    ----------
    forward_fraction:
        Network-wide forward fraction ``f``.
    preference:
        Normalised preference vector ``P`` (sums to one).
    activity:
        Activity vector ``A`` in bytes per bin.
    """

    forward_fraction: float
    preference: np.ndarray
    activity: np.ndarray
    nodes: tuple[str, ...] = field(default=())

    def __post_init__(self):
        f = require_probability(self.forward_fraction, "forward_fraction")
        p = require_nonnegative(as_1d_array(self.preference, "preference"), "preference")
        p = normalized(p, "preference")
        a = require_nonnegative(
            as_1d_array(self.activity, "activity", length=p.shape[0]), "activity"
        )
        object.__setattr__(self, "forward_fraction", f)
        object.__setattr__(self, "preference", p)
        object.__setattr__(self, "activity", a)
        if self.nodes and len(self.nodes) != p.shape[0]:
            raise ShapeError("nodes must match the parameter dimension")

    @property
    def n_nodes(self) -> int:
        """Number of access points."""
        return self.preference.shape[0]

    def matrix(self) -> np.ndarray:
        """The traffic matrix implied by these parameters."""
        return simplified_ic_matrix(self.forward_fraction, self.activity, self.preference)


# ---------------------------------------------------------------------------
# model classes
# ---------------------------------------------------------------------------

@register_model("general", description="General IC model: per-pair forward fractions f_ij (Eq. 1)")
class GeneralICModel:
    """General IC model with a full ``f_ij`` matrix and fixed preferences.

    Activity is supplied per call, which matches the paper's framing where
    activity is the (only) intrinsically time-varying quantity.
    """

    def __init__(self, forward_fraction, preference, nodes: Sequence[str] | None = None):
        f = as_square_matrix(forward_fraction, "forward_fraction")
        if np.any(f < 0.0) or np.any(f > 1.0):
            raise ValidationError("forward_fraction entries must lie in [0, 1]")
        self._forward = f
        p = require_nonnegative(
            as_1d_array(preference, "preference", length=f.shape[0]), "preference"
        )
        self._preference = normalized(p, "preference")
        self._nodes = tuple(nodes) if nodes is not None else tuple(
            f"node{i:02d}" for i in range(f.shape[0])
        )

    @property
    def n_nodes(self) -> int:
        return self._forward.shape[0]

    @property
    def forward_fraction(self) -> np.ndarray:
        return self._forward.copy()

    @property
    def preference(self) -> np.ndarray:
        return self._preference.copy()

    def matrix(self, activity) -> np.ndarray:
        """Traffic matrix for one time bin with the given activity vector."""
        return general_ic_matrix(self._forward, activity, self._preference)

    def series(self, activity_series, *, bin_seconds: float = 300.0) -> TrafficMatrixSeries:
        """Traffic-matrix series for a ``(T, n)`` activity series (vectorised)."""
        matrices = general_ic_series(self._forward, activity_series, self._preference)
        return TrafficMatrixSeries(matrices, self._nodes, bin_seconds=bin_seconds)


@register_model("simplified", description="Simplified IC model: one network-wide f (Eq. 2)")
class SimplifiedICModel:
    """Simplified IC model: scalar ``f``, fixed preferences, activity per call."""

    def __init__(self, forward_fraction: float, preference, nodes: Sequence[str] | None = None):
        self._forward = require_probability(forward_fraction, "forward_fraction")
        p = require_nonnegative(as_1d_array(preference, "preference"), "preference")
        self._preference = normalized(p, "preference")
        self._nodes = tuple(nodes) if nodes is not None else tuple(
            f"node{i:02d}" for i in range(self._preference.shape[0])
        )

    @property
    def n_nodes(self) -> int:
        return self._preference.shape[0]

    @property
    def forward_fraction(self) -> float:
        return self._forward

    @property
    def preference(self) -> np.ndarray:
        return self._preference.copy()

    def matrix(self, activity) -> np.ndarray:
        """Traffic matrix for one time bin with the given activity vector."""
        return simplified_ic_matrix(self._forward, activity, self._preference)

    def series(self, activity_series, *, bin_seconds: float = 300.0) -> TrafficMatrixSeries:
        """Traffic-matrix series for a ``(T, n)`` activity series (vectorised)."""
        matrices = simplified_ic_series(self._forward, activity_series, self._preference)
        return TrafficMatrixSeries(matrices, self._nodes, bin_seconds=bin_seconds)


@register_model("stable_fp", description="Stable-fP IC model: f and P fixed, A_i(t) varies (Eq. 5)")
class StableFPICModel(SimplifiedICModel):
    """Stable-fP IC model (Eq. 5): ``f`` and ``P`` fixed, ``A_i(t)`` varies.

    This is behaviourally the same as :class:`SimplifiedICModel`; the separate
    class exists to make the modelling assumption explicit in user code and to
    carry the model's degrees-of-freedom accounting.
    """

    name = "stable-fP"

    def degrees_of_freedom(self, timesteps: int) -> int:
        """Inputs needed to describe ``timesteps`` bins: ``n*t + n + 1``."""
        return degrees_of_freedom(self.name, self.n_nodes, timesteps)


@register_model("stable_f", description="Stable-f IC model: f fixed, A_i(t) and P_i(t) vary (Eq. 4)")
class StableFICModel:
    """Stable-f IC model (Eq. 4): ``f`` fixed; ``A_i(t)`` and ``P_i(t)`` vary."""

    name = "stable-f"

    def __init__(self, forward_fraction: float, nodes: Sequence[str] | None = None):
        self._forward = require_probability(forward_fraction, "forward_fraction")
        self._nodes = tuple(nodes) if nodes is not None else None

    @property
    def forward_fraction(self) -> float:
        return self._forward

    def matrix(self, activity, preference) -> np.ndarray:
        """Traffic matrix for one bin from that bin's activity and preference."""
        return simplified_ic_matrix(self._forward, activity, preference)

    def series(
        self, activity_series, preference_series, *, bin_seconds: float = 300.0
    ) -> TrafficMatrixSeries:
        """Series from per-bin activity ``(T, n)`` and preference ``(T, n)`` (vectorised)."""
        a = np.atleast_2d(np.asarray(activity_series, dtype=float))
        p = np.atleast_2d(np.asarray(preference_series, dtype=float))
        if a.shape != p.shape:
            raise ShapeError(
                f"activity and preference series must match, got {a.shape} vs {p.shape}"
            )
        matrices = time_varying_ic_series(self._forward, a, p)
        return TrafficMatrixSeries(matrices, self._nodes, bin_seconds=bin_seconds)

    def degrees_of_freedom(self, n_nodes: int, timesteps: int) -> int:
        """Inputs needed for ``timesteps`` bins: ``2*n*t + 1``."""
        return degrees_of_freedom(self.name, n_nodes, timesteps)


@register_model("time_varying", description="Time-varying IC model: f(t), A_i(t), P_i(t) all vary (Eq. 3)")
class TimeVaryingICModel:
    """Time-varying IC model (Eq. 3): ``f(t)``, ``A_i(t)`` and ``P_i(t)`` all vary."""

    name = "time-varying"

    def __init__(self, nodes: Sequence[str] | None = None):
        self._nodes = tuple(nodes) if nodes is not None else None

    def matrix(self, forward_fraction: float, activity, preference) -> np.ndarray:
        """Traffic matrix for one bin from that bin's complete parameter set."""
        return simplified_ic_matrix(forward_fraction, activity, preference)

    def series(
        self,
        forward_series,
        activity_series,
        preference_series,
        *,
        bin_seconds: float = 300.0,
    ) -> TrafficMatrixSeries:
        """Series from per-bin ``f(t)``, ``A(t)`` and ``P(t)`` (vectorised)."""
        f = np.atleast_1d(np.asarray(forward_series, dtype=float))
        a = np.atleast_2d(np.asarray(activity_series, dtype=float))
        p = np.atleast_2d(np.asarray(preference_series, dtype=float))
        if not (f.shape[0] == a.shape[0] == p.shape[0]):
            raise ShapeError("f, activity and preference series must have the same length")
        if a.shape != p.shape:
            raise ShapeError(
                f"activity and preference series must match, got {a.shape} vs {p.shape}"
            )
        matrices = time_varying_ic_series(f, a, p)
        return TrafficMatrixSeries(matrices, self._nodes, bin_seconds=bin_seconds)

    def degrees_of_freedom(self, n_nodes: int, timesteps: int) -> int:
        """Inputs needed for ``timesteps`` bins: ``3*n*t``."""
        return degrees_of_freedom(self.name, n_nodes, timesteps)


# ---------------------------------------------------------------------------
# degrees of freedom (Section 5.1)
# ---------------------------------------------------------------------------

_DOF_FORMULAS = {
    "gravity": lambda n, t: 2 * n * t - 1,
    "time-varying": lambda n, t: 3 * n * t,
    "stable-f": lambda n, t: 2 * n * t + 1,
    "stable-fP": lambda n, t: n * t + n + 1,
}


def degrees_of_freedom(model: str, n_nodes: int, timesteps: int) -> int:
    """Degrees of freedom (model inputs) for ``timesteps`` bins of an ``n``-node network.

    The formulas are quoted directly from Section 5.1 of the paper:
    gravity ``2nt - 1``, time-varying IC ``3nt``, stable-f ``2nt + 1`` and
    stable-fP ``nt + n + 1``.
    """
    n = require_positive_int(n_nodes, "n_nodes")
    t = require_positive_int(timesteps, "timesteps")
    key = str(model)
    if key not in _DOF_FORMULAS:
        raise ValidationError(
            f"unknown model {model!r}; expected one of {sorted(_DOF_FORMULAS)}"
        )
    return int(_DOF_FORMULAS[key](n, t))

"""The mart catalogue: single-pass reducers over ``(t0, block)`` streams.

A mart consumes a series chunk by chunk (`update`), merges with a mart of
the same type built over other bins or cells (`merge`), and renders a
JSON-able summary (`result`).  Cube marts reduce ``(T, n, n)`` estimate
archives; series marts reduce per-bin scalar series (errors,
improvements).  State round-trips through ``to_state``/``from_state`` so
per-cell partials persist next to the spill archive and re-merge later.

Exactness contract: every statistic that can be exact, is.  Per-OD totals
fold bin by bin through
:func:`repro.core.streaming.sequential_bin_fold`, making them *bitwise*
equal to ``cube.sum(axis=0)`` on the materialised series regardless of the
shard partition; ingress/egress/top-K/overview totals derive from those
sums.  Hourly rollups accumulate with ``np.add.at`` (unbuffered, in bin
order — the same sequential fold).  Only the distributional marts
(quantiles, CCDFs) are sketched, and they carry tested accuracy bounds
(:mod:`repro.marts.sketches`).
"""

from __future__ import annotations

import numpy as np

from repro.core.streaming import sequential_bin_fold
from repro.errors import ValidationError
from repro.marts.sketches import CCDFSketch, QuantileSketch, TopK

__all__ = [
    "Mart",
    "OverviewMart",
    "TopTalkersMart",
    "TrafficByHourMart",
    "OdCcdfMart",
    "ErrorQuantilesMart",
    "MartSpec",
    "MART_REGISTRY",
    "build_mart",
]

_QUANTILES = (0.5, 0.9, 0.95, 0.99)


class Mart:
    """One streaming reduction; subclasses set ``name`` and ``kind``.

    ``kind`` is ``"cube"`` for ``(T, n, n)`` consumers and ``"series"``
    for per-bin scalar consumers; the report layer routes archive series
    accordingly.
    """

    name: str = ""
    kind: str = "cube"

    def update(self, t0: int, block: np.ndarray) -> None:
        raise NotImplementedError

    def merge(self, other: "Mart") -> "Mart":
        raise NotImplementedError

    def result(self) -> dict:
        raise NotImplementedError

    def to_state(self) -> dict:
        raise NotImplementedError

    @classmethod
    def from_state(cls, state: dict) -> "Mart":
        raise NotImplementedError

    def consume(self, blocks) -> "Mart":
        """Fold an iterable of ``(t0, block)`` pairs and return self."""
        for t0, block in blocks:
            self.update(t0, np.asarray(block))
        return self

    def _check_merge(self, other: "Mart") -> None:
        if type(other) is not type(self):
            raise ValidationError(
                f"cannot merge {type(other).__name__} into {type(self).__name__}"
            )


class _CubeMart(Mart):
    """Shared per-OD accumulation for the cube marts."""

    def __init__(self):
        self._od_sum: np.ndarray | None = None
        self._n_bins = 0

    def _fold(self, block: np.ndarray) -> None:
        if block.ndim != 3 or block.shape[1] != block.shape[2]:
            raise ValidationError(f"expected a (T, n, n) block, got {block.shape}")
        if self._od_sum is None:
            self._od_sum = np.zeros(block.shape[1:])
        elif block.shape[1:] != self._od_sum.shape:
            raise ValidationError(
                f"block item shape {block.shape[1:]} does not match "
                f"accumulated {self._od_sum.shape}"
            )
        sequential_bin_fold(self._od_sum, block)
        self._n_bins += block.shape[0]

    def _merge_fold(self, other: "_CubeMart") -> None:
        if other._od_sum is not None:
            if self._od_sum is None:
                self._od_sum = other._od_sum.copy()
            else:
                self._od_sum += other._od_sum
        self._n_bins += other._n_bins

    def _od_state(self) -> dict:
        return {
            "n_bins": self._n_bins,
            "od_sum": None if self._od_sum is None else self._od_sum.tolist(),
        }

    def _load_od_state(self, state: dict) -> None:
        self._n_bins = int(state["n_bins"])
        self._od_sum = None if state["od_sum"] is None else np.asarray(state["od_sum"])


class OverviewMart(_CubeMart):
    """Archive-wide totals: bins, nodes, total/mean/extreme bin traffic."""

    name = "overview"
    kind = "cube"

    def __init__(self):
        super().__init__()
        self._max_bin_total = -np.inf
        self._min_bin_total = np.inf

    def update(self, t0: int, block: np.ndarray) -> None:
        self._fold(block)
        totals = block.sum(axis=(1, 2))
        self._max_bin_total = max(self._max_bin_total, float(totals.max()))
        self._min_bin_total = min(self._min_bin_total, float(totals.min()))

    def merge(self, other: Mart) -> "OverviewMart":
        self._check_merge(other)
        self._merge_fold(other)
        self._max_bin_total = max(self._max_bin_total, other._max_bin_total)
        self._min_bin_total = min(self._min_bin_total, other._min_bin_total)
        return self

    def result(self) -> dict:
        if self._n_bins == 0:
            return {"n_bins": 0}
        total = float(self._od_sum.sum())
        return {
            "n_bins": self._n_bins,
            "n_nodes": int(self._od_sum.shape[0]),
            "total_traffic": total,
            "mean_bin_total": total / self._n_bins,
            "max_bin_total": self._max_bin_total,
            "min_bin_total": self._min_bin_total,
        }

    def to_state(self) -> dict:
        return {
            **self._od_state(),
            "max_bin_total": self._max_bin_total,
            "min_bin_total": self._min_bin_total,
        }

    @classmethod
    def from_state(cls, state: dict) -> "OverviewMart":
        mart = cls()
        mart._load_od_state(state)
        mart._max_bin_total = float(state["max_bin_total"])
        mart._min_bin_total = float(state["min_bin_total"])
        return mart


class TopTalkersMart(_CubeMart):
    """The K heaviest OD flows by total traffic, with ingress/egress totals.

    The ranking reads off the exact per-OD sums, so it matches the
    materialised ``cube.sum(axis=0)`` oracle bit for bit; the bounded heap
    only enters at result time (and when merging partials whose OD sums
    were discarded).
    """

    name = "top_talkers"
    kind = "cube"

    def __init__(self, k: int = 10):
        super().__init__()
        if k < 1:
            raise ValidationError("top_talkers needs k >= 1")
        self.k = int(k)

    def update(self, t0: int, block: np.ndarray) -> None:
        self._fold(block)

    def merge(self, other: Mart) -> "TopTalkersMart":
        self._check_merge(other)
        if other.k != self.k:
            raise ValidationError("cannot merge top_talkers marts with different k")
        self._merge_fold(other)
        return self

    def result(self) -> dict:
        if self._n_bins == 0:
            return {"n_bins": 0, "rows": []}
        top = TopK(self.k)
        n = self._od_sum.shape[0]
        top.update(
            (float(self._od_sum[i, j]), (int(i), int(j)))
            for i in range(n)
            for j in range(n)
        )
        grand = float(self._od_sum.sum())
        ingress = self._od_sum.sum(axis=1)  # traffic originated per node
        egress = self._od_sum.sum(axis=0)  # traffic received per node
        rows = [
            {
                "origin": key[0],
                "destination": key[1],
                "total": score,
                "mean_per_bin": score / self._n_bins,
                "share": score / grand if grand else 0.0,
            }
            for score, key in top.result()
        ]
        return {
            "n_bins": self._n_bins,
            "rows": rows,
            "ingress_totals": ingress.tolist(),
            "egress_totals": egress.tolist(),
        }

    def to_state(self) -> dict:
        return {**self._od_state(), "k": self.k}

    @classmethod
    def from_state(cls, state: dict) -> "TopTalkersMart":
        mart = cls(k=int(state["k"]))
        mart._load_od_state(state)
        return mart


class TrafficByHourMart(Mart):
    """Hour-of-day rollup of per-bin traffic totals.

    Archives carry bin indices, not wall clocks, so the mapping is
    ``hour = (bin // bins_per_hour) % 24`` — with the paper's 300 s bins,
    ``bins_per_hour=12``.  Accumulation uses ``np.add.at`` (unbuffered,
    element-by-element in bin order), so the hourly sums are bitwise equal
    to a sequential loop over the materialised series.
    """

    name = "traffic_by_hour"
    kind = "cube"

    def __init__(self, bins_per_hour: int = 12):
        if bins_per_hour < 1:
            raise ValidationError("bins_per_hour must be >= 1")
        self.bins_per_hour = int(bins_per_hour)
        self._sums = np.zeros(24)
        self._counts = np.zeros(24, dtype=np.int64)

    def update(self, t0: int, block: np.ndarray) -> None:
        if block.ndim != 3:
            raise ValidationError(f"expected a (T, n, n) block, got {block.shape}")
        totals = block.sum(axis=(1, 2))
        hours = ((int(t0) + np.arange(block.shape[0])) // self.bins_per_hour) % 24
        np.add.at(self._sums, hours, totals)
        np.add.at(self._counts, hours, 1)

    def merge(self, other: Mart) -> "TrafficByHourMart":
        self._check_merge(other)
        if other.bins_per_hour != self.bins_per_hour:
            raise ValidationError(
                "cannot merge traffic_by_hour marts with different bins_per_hour"
            )
        self._sums += other._sums
        self._counts += other._counts
        return self

    def result(self) -> dict:
        rows = [
            {
                "hour": hour,
                "bins": int(self._counts[hour]),
                "total": float(self._sums[hour]),
                "mean_bin_total": (
                    float(self._sums[hour] / self._counts[hour])
                    if self._counts[hour]
                    else 0.0
                ),
            }
            for hour in range(24)
            if self._counts[hour]
        ]
        return {"bins_per_hour": self.bins_per_hour, "rows": rows}

    def to_state(self) -> dict:
        return {
            "bins_per_hour": self.bins_per_hour,
            "sums": self._sums.tolist(),
            "counts": self._counts.tolist(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "TrafficByHourMart":
        mart = cls(bins_per_hour=int(state["bins_per_hour"]))
        mart._sums = np.asarray(state["sums"], dtype=float)
        mart._counts = np.asarray(state["counts"], dtype=np.int64)
        return mart


class OdCcdfMart(Mart):
    """CCDF of per-OD per-bin traffic values over fixed log-spaced bins.

    The heavy-tail shape the IC model is about: exact counts per log bin,
    so the rendered CCDF points are exact and any quantile is within one
    bin (relative error ``10^(1/bins_per_decade) - 1``).
    """

    name = "od_ccdf"
    kind = "cube"

    def __init__(self, bins_per_decade: int = 20, max_points: int = 40):
        self._sketch = CCDFSketch(bins_per_decade=bins_per_decade)
        self.max_points = int(max_points)

    def update(self, t0: int, block: np.ndarray) -> None:
        if block.ndim != 3:
            raise ValidationError(f"expected a (T, n, n) block, got {block.shape}")
        self._sketch.update(block)

    def merge(self, other: Mart) -> "OdCcdfMart":
        self._check_merge(other)
        self._sketch.merge(other._sketch)
        return self

    def result(self) -> dict:
        points = self._sketch.ccdf()
        if len(points) > self.max_points:
            stride = -(-len(points) // self.max_points)
            points = points[::stride]
        return {
            "values": self._sketch.count,
            "zero_values": self._sketch.zero_count,
            "negative_values": self._sketch.negative_count,
            "nan_values": self._sketch.nan_count,
            "bins_per_decade": self._sketch.bins_per_decade,
            "quantiles": {
                f"p{int(q * 100)}": self._sketch.quantile(q) for q in _QUANTILES
            },
            "rows": [
                {"edge": edge, "count_ge": count, "fraction_ge": fraction}
                for edge, count, fraction in points
            ],
        }

    def to_state(self) -> dict:
        return {"max_points": self.max_points, "sketch": self._sketch.to_state()}

    @classmethod
    def from_state(cls, state: dict) -> "OdCcdfMart":
        mart = cls(max_points=int(state["max_points"]))
        mart._sketch = CCDFSketch.from_state(state["sketch"])
        return mart


class ErrorQuantilesMart(Mart):
    """Distribution of a per-bin scalar series (errors, improvements).

    Min/max/counts are exact, the mean is exact up to float summation
    order; the quantiles come from the GK sketch and report their
    guaranteed rank-error bound alongside.
    """

    name = "error_quantiles"
    kind = "series"

    def __init__(self, epsilon: float = 0.005):
        self._sketch = QuantileSketch(epsilon=epsilon)
        self._sum = 0.0
        self._count = 0

    def update(self, t0: int, block: np.ndarray) -> None:
        values = np.asarray(block, dtype=float).ravel()
        finite = values[~np.isnan(values)]
        self._sum += float(finite.sum())
        self._count += int(finite.size)
        self._sketch.update(values)

    def merge(self, other: Mart) -> "ErrorQuantilesMart":
        self._check_merge(other)
        self._sum += other._sum
        self._count += other._count
        self._sketch.merge(other._sketch)
        return self

    def result(self) -> dict:
        quantiles = {
            f"p{int(q * 100)}": self._sketch.query(q) for q in _QUANTILES
        }
        return {
            "bins": self._count,
            "nan_bins": self._sketch.nan_count,
            "mean": self._sum / self._count if self._count else float("nan"),
            "min": self._sketch.minimum,
            "max": self._sketch.maximum,
            "quantiles": quantiles,
            "rank_error_bound": self._sketch.rank_error_epsilon,
        }

    def to_state(self) -> dict:
        return {"sum": self._sum, "count": self._count, "sketch": self._sketch.to_state()}

    @classmethod
    def from_state(cls, state: dict) -> "ErrorQuantilesMart":
        mart = cls()
        mart._sum = float(state["sum"])
        mart._count = int(state["count"])
        mart._sketch = QuantileSketch.from_state(state["sketch"])
        return mart


class MartSpec:
    """Registry entry: how `repro report` builds and describes a mart."""

    def __init__(self, factory, kind: str, description: str):
        self.factory = factory
        self.kind = kind
        self.description = description


MART_REGISTRY: dict[str, MartSpec] = {
    "overview": MartSpec(
        lambda options: OverviewMart(),
        "cube",
        "archive-wide totals: bins, nodes, total and per-bin traffic",
    ),
    "top_talkers": MartSpec(
        lambda options: TopTalkersMart(k=options.get("top_k", 10)),
        "cube",
        "K heaviest OD flows by total traffic, plus node ingress/egress",
    ),
    "traffic_by_hour": MartSpec(
        lambda options: TrafficByHourMart(
            bins_per_hour=options.get("bins_per_hour", 12)
        ),
        "cube",
        "hour-of-day rollup of per-bin traffic totals",
    ),
    "od_ccdf": MartSpec(
        lambda options: OdCcdfMart(),
        "cube",
        "CCDF of per-OD per-bin traffic over log-spaced bins",
    ),
    "error_quantiles": MartSpec(
        lambda options: ErrorQuantilesMart(
            epsilon=options.get("epsilon", 0.005)
        ),
        "series",
        "quantiles/mean/extremes of a per-bin error series (GK sketch)",
    ),
}

_MART_TYPES = {
    mart.name: mart
    for mart in (
        OverviewMart,
        TopTalkersMart,
        TrafficByHourMart,
        OdCcdfMart,
        ErrorQuantilesMart,
    )
}


def build_mart(name: str, options: dict | None = None) -> Mart:
    """Instantiate a registered mart with the report-level options."""
    if name not in MART_REGISTRY:
        known = ", ".join(sorted(MART_REGISTRY))
        raise ValidationError(f"unknown mart {name!r} (registered: {known})")
    return MART_REGISTRY[name].factory(options or {})


def mart_from_state(name: str, state: dict) -> Mart:
    """Rehydrate a mart partial persisted by an archive sink."""
    if name not in _MART_TYPES:
        known = ", ".join(sorted(_MART_TYPES))
        raise ValidationError(f"unknown mart {name!r} (known: {known})")
    return _MART_TYPES[name].from_state(state)

"""Archive readers: uniform ``(t0, block)`` access over spilled results.

Two on-disk layouts feed the marts:

* a **sweep archive** — the ``--spill-dir`` of a streamed sweep: one
  subdirectory of ``.npz`` shards per cell (named after the scenario
  label), or a flat directory of shards for a single run, optionally with
  the ``manifest.jsonl`` / per-cell mart partials an
  :class:`~repro.marts.sink.ArchiveResultSink` leaves behind;
* a **serve archive** — a ``repro serve`` sink directory: the
  ``estimate-*.npz`` sidecar shards if the service wrote them, falling
  back to re-parsing ``estimates.jsonl`` chunk by chunk (slower, but the
  JSONL is the source of truth and survives an unflushed sidecar).

Both expose cells as :class:`ArchiveCell` — named series iterated shard by
shard — so the report layer never materialises a series.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import ValidationError
from repro.scenarios.spill import SpilledSeries, discover_spilled_series

__all__ = ["ArchiveCell", "SweepArchive", "ServeArchive", "open_archive"]

_SERVE_JSONL = "estimates.jsonl"


class ArchiveCell:
    """One reducible unit of an archive: a labelled set of series."""

    def __init__(self, label: str, series: dict, metadata: dict | None = None):
        self.label = str(label)
        self._series = dict(series)
        self.metadata = dict(metadata or {})

    @property
    def series_names(self) -> tuple:
        return tuple(sorted(self._series))

    def series(self, name: str):
        if name not in self._series:
            raise ValidationError(
                f"cell {self.label!r} has no series {name!r} "
                f"(available: {', '.join(self.series_names) or 'none'})"
            )
        return self._series[name]

    def has_series(self, name: str) -> bool:
        return name in self._series

    def iter_blocks(self, name: str, start: int = 0, stop: int | None = None):
        """Yield ``(t0, block)`` pairs of the named series over the window."""
        series = self.series(name)
        if isinstance(series, SpilledSeries):
            yield from series.iter_blocks(start, stop)
            return
        yield from series(start, stop)

    def n_bins(self, name: str) -> int | None:
        series = self._series.get(name)
        if isinstance(series, SpilledSeries):
            return series.shape[0]
        return None


class SweepArchive:
    """A streamed sweep's ``--spill-dir``: one cell per subdirectory."""

    kind = "sweep"

    def __init__(self, directory):
        self.directory = Path(directory)
        if not self.directory.is_dir():
            raise ValidationError(f"sweep archive {self.directory} does not exist")
        manifest = self._read_manifest()
        cells = []
        root_series = discover_spilled_series(self.directory)
        if root_series:
            cells.append(
                ArchiveCell(self.directory.name, root_series, manifest.get(self.directory.name))
            )
        for child in sorted(self.directory.iterdir()):
            if not child.is_dir():
                continue
            series = discover_spilled_series(child)
            if series:
                cells.append(ArchiveCell(child.name, series, manifest.get(child.name)))
        if not cells:
            raise ValidationError(
                f"no spilled series found under {self.directory} — is this a "
                "sweep --spill-dir archive?"
            )
        self.cells = cells

    def _read_manifest(self) -> dict:
        path = self.directory / "manifest.jsonl"
        if not path.is_file():
            return {}
        entries = {}
        with path.open() as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                entry = json.loads(line)
                label = entry.get("label", "").replace("/", "-").replace(" ", "_")
                entries[label] = entry
        return entries


class ServeArchive:
    """A ``repro serve`` sink directory (or bare ``estimates.jsonl``)."""

    kind = "serve"

    def __init__(self, path):
        path = Path(path)
        if path.is_file():
            directory, jsonl = path.parent, path
        else:
            directory, jsonl = path, path / _SERVE_JSONL
        self.directory = directory
        self._jsonl = jsonl if jsonl.is_file() else None
        self._sidecar = self._discover_sidecar()
        if self._sidecar is None and self._jsonl is None:
            raise ValidationError(
                f"{path} holds neither estimate shards nor {_SERVE_JSONL}"
            )
        series: dict = {}
        if self._sidecar is not None:
            series["estimate"] = self._sidecar
        else:
            series["estimate"] = self._iter_jsonl_blocks
        self.cells = [ArchiveCell(self.directory.name or "serve", series)]

    @property
    def used_sidecar(self) -> bool:
        return self._sidecar is not None

    def _discover_sidecar(self) -> SpilledSeries | None:
        """The ``estimate-*.npz`` sidecar series, if complete and coherent.

        Shards are looked for in the sink directory itself and in its
        conventional ``shards/`` subdirectory (where ``repro serve
        --estimate-shards <sink>/shards`` puts them).  A killed service may
        leave the sidecar short of the JSONL (the tail was never flushed)
        or gappy; any such incoherence falls back to the JSONL source of
        truth.
        """
        series = None
        for candidate in (self.directory, self.directory / "shards"):
            if not candidate.is_dir():
                continue
            try:
                series = discover_spilled_series(candidate).get("estimate")
            except ValidationError:
                continue
            if series is not None:
                break
        if series is None:
            return None
        if self._jsonl is not None:
            published = sum(1 for line in self._jsonl.open() if line.strip())
            if series.shape[0] != published:
                return None
        return series

    def _iter_jsonl_blocks(self, start: int = 0, stop: int | None = None, chunk_bins: int = 64):
        """Re-parse the JSONL sink into ``(t0, block)`` chunks."""
        buffer: list = []
        buffer_start: int | None = None
        expected: int | None = None
        with self._jsonl.open() as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                bin_index = int(record["bin"])
                if expected is not None and bin_index != expected:
                    raise ValidationError(
                        f"{self._jsonl} is not bin-contiguous: expected bin "
                        f"{expected}, found {bin_index}"
                    )
                expected = bin_index + 1
                if bin_index < start or (stop is not None and bin_index >= stop):
                    continue
                if buffer_start is None:
                    buffer_start = bin_index
                buffer.append(record["estimate"])
                if len(buffer) >= chunk_bins:
                    yield buffer_start, np.asarray(buffer, dtype=float)
                    buffer, buffer_start = [], None
        if buffer:
            yield buffer_start, np.asarray(buffer, dtype=float)


def open_archive(path):
    """Auto-detect the archive flavour at ``path``.

    A directory holding ``estimates.jsonl`` or ``estimate-*.npz`` shards
    (and no cell subdirectories) is a serve sink; a ``.jsonl`` file is a
    bare serve sink; anything else is treated as a sweep spill directory.
    """
    path = Path(path)
    if path.is_file():
        return ServeArchive(path)
    if not path.is_dir():
        raise ValidationError(f"archive path {path} does not exist")
    if (path / _SERVE_JSONL).is_file():
        return ServeArchive(path)
    return SweepArchive(path)

"""Mergeable streaming sketches: quantiles, log-binned CCDFs, top-K.

The exact marts reduce to sums that fit in ``O(n^2)``; everything
distributional — error quantiles, per-OD flow CCDFs, top talkers — needs a
summary whose size is independent of the number of bins.  Three primitives
cover the catalogue:

* :class:`QuantileSketch` — a Greenwald–Khanna ε-approximate quantile
  summary: any rank query is answered within ``epsilon * count`` ranks
  from ``O((1/ε) log(εn))`` stored tuples.  Sketches merge; the merged
  summary's guaranteed bound is the *sum* of the operands' bounds (tracked
  on the instance as :attr:`~QuantileSketch.rank_error_epsilon`), and the
  merge is deterministic, so ``merge(a, b)`` and ``merge(b, a)`` answer
  every query identically.
* :class:`CCDFSketch` — exact integer counts over globally fixed
  log-spaced bins (``10^(k / bins_per_decade)``), so the empirical CCDF
  evaluated at any bin edge is *exact* for values that do not sit on an
  edge, and merging is plain counter addition — bitwise associative and
  commutative.
* :class:`TopK` — a bounded min-heap of ``(score, key)`` pairs; with
  distinct keys the merge is order-independent.

All three serialise to plain JSON-able state (:meth:`to_state` /
``from_state``), which is how per-cell mart partials land next to the
spill archive.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.errors import ValidationError

__all__ = ["QuantileSketch", "CCDFSketch", "TopK"]


class QuantileSketch:
    """Greenwald–Khanna ε-approximate quantile summary over a value stream.

    Stores sorted tuples ``(value, g, delta)`` where ``g`` is the gap in
    minimum rank to the previous tuple and ``delta`` the rank uncertainty;
    the GK invariant ``g + delta <= 2 * eps * n`` guarantees every quantile
    query is within ``eps * n`` ranks of exact.  NaNs are counted and
    excluded.  Updates are batched (buffered and merged in sorted runs) so
    feeding chunk-sized arrays stays cheap.
    """

    def __init__(self, epsilon: float = 0.005):
        if not 0.0 < epsilon < 0.5:
            raise ValidationError(f"epsilon must be in (0, 0.5), got {epsilon}")
        self.epsilon = float(epsilon)
        # Guaranteed rank-error bound as a fraction of count; grows when
        # sketches built with their own budgets merge.
        self.rank_error_epsilon = float(epsilon)
        self._count = 0
        self.nan_count = 0
        self._entries: list[list] = []  # [value, g, delta], sorted by value
        self._pending: list[np.ndarray] = []
        self._pending_count = 0
        self._flush_at = max(64, int(math.ceil(1.0 / epsilon)))

    @property
    def count(self) -> int:
        """Non-NaN values folded so far (including any still buffered)."""
        return self._count + self._pending_count

    def update(self, values) -> None:
        """Fold an array of values (any shape) into the sketch."""
        values = np.asarray(values, dtype=float).ravel()
        if values.size == 0:
            return
        nan_mask = np.isnan(values)
        nans = int(nan_mask.sum())
        if nans:
            self.nan_count += nans
            values = values[~nan_mask]
        if values.size == 0:
            return
        self._pending.append(values)
        self._pending_count += values.size
        if self._pending_count >= self._flush_at:
            self._flush()

    def _flush(self) -> None:
        if not self._pending:
            return
        batch = np.sort(np.concatenate(self._pending))
        self._pending = []
        self._pending_count = 0
        merged: list[list] = []
        entries = self._entries
        i = j = 0
        threshold = 2.0 * self.rank_error_epsilon
        while i < len(entries) or j < batch.size:
            if j >= batch.size or (i < len(entries) and entries[i][0] <= batch[j]):
                merged.append(entries[i])
                i += 1
                continue
            value = float(batch[j])
            # A new observation has exact rank relative to its neighbours
            # (g=1); its uncertainty is the standard floor(2 eps n) - 1,
            # zero at the extremes so min/max stay exact.
            if not merged or (i >= len(entries) and j == batch.size - 1):
                delta = 0
            else:
                delta = max(0, int(threshold * self._count) - 1)
            merged.append([value, 1, delta])
            self._count += 1
            j += 1
        self._entries = merged
        self._compress()

    def _compress(self) -> None:
        """Merge adjacent tuples while the GK invariant allows it."""
        entries = self._entries
        if len(entries) < 3:
            return
        threshold = 2.0 * self.rank_error_epsilon * self.count
        compressed = [entries[-1]]
        # Sweep right-to-left, folding each tuple into its right neighbour
        # when the combined uncertainty stays within the invariant; the
        # first and last tuples (exact min/max) are never folded away.
        for entry in reversed(entries[1:-1]):
            head = compressed[-1]
            if entry[1] + head[1] + head[2] <= threshold:
                head[1] += entry[1]
            else:
                compressed.append(entry)
        compressed.append(entries[0])
        compressed.reverse()
        self._entries = compressed

    def query(self, q: float) -> float:
        """The value at quantile ``q`` (0..1), within the tracked rank bound."""
        self._flush()
        if self.count == 0:
            return float("nan")
        q = min(max(float(q), 0.0), 1.0)
        target = q * (self.count - 1) + 1.0
        allowance = self.rank_error_epsilon * self.count
        rank_min = 0
        best = self._entries[0][0]
        for value, g, delta in self._entries:
            rank_min += g
            if rank_min + delta - target <= allowance and target - rank_min <= allowance:
                return float(value)
            if rank_min <= target:
                best = value
        return float(best)

    def quantiles(self, qs) -> list:
        return [self.query(q) for q in qs]

    @property
    def minimum(self) -> float:
        self._flush()
        return float(self._entries[0][0]) if self._entries else float("nan")

    @property
    def maximum(self) -> float:
        self._flush()
        return float(self._entries[-1][0]) if self._entries else float("nan")

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold another sketch into this one (deterministic, commutative).

        The merged entries are the union of both summaries with each
        tuple's ``delta`` widened by the other summary's local rank spread
        at that value (``g + delta - 1`` of the other's next tuple) — a
        value's rank in the combined stream inherits the uncertainty of
        *both* summaries, so keeping the original deltas would underclaim.
        The construction is a symmetric function of the operands and the
        guaranteed bound becomes the sum of the operands' bounds, so
        ``a.merge(b)`` answers every query exactly as ``b.merge(a)`` would.
        """
        self._flush()
        other._flush()
        merged: list[list] = []
        for own, foreign in (
            (self._entries, other._entries),
            (other._entries, self._entries),
        ):
            j = 0
            for value, g, delta in own:
                while j < len(foreign) and foreign[j][0] <= value:
                    j += 1
                spread = (
                    foreign[j][1] + foreign[j][2] - 1 if j < len(foreign) else 0
                )
                merged.append([value, g, delta + max(spread, 0)])
        merged.sort()
        self._entries = merged
        self._count += other._count
        self.nan_count += other.nan_count
        self.rank_error_epsilon += other.rank_error_epsilon
        self._compress()
        return self

    def to_state(self) -> dict:
        self._flush()
        return {
            "epsilon": self.epsilon,
            "rank_error_epsilon": self.rank_error_epsilon,
            "count": self.count,
            "nan_count": self.nan_count,
            "entries": [list(entry) for entry in self._entries],
        }

    @classmethod
    def from_state(cls, state: dict) -> "QuantileSketch":
        sketch = cls(epsilon=state["epsilon"])
        sketch.rank_error_epsilon = float(state["rank_error_epsilon"])
        sketch._count = int(state["count"])
        sketch.nan_count = int(state["nan_count"])
        sketch._entries = [
            [float(value), int(g), int(delta)] for value, g, delta in state["entries"]
        ]
        return sketch

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QuantileSketch(count={self.count}, entries={len(self._entries)}, "
            f"eps={self.rank_error_epsilon:g})"
        )


class CCDFSketch:
    """Exact counts of positive values over fixed log-spaced bins.

    Bin ``k`` covers ``[10^(k/bins_per_decade), 10^((k+1)/bins_per_decade))``
    — the edges are global constants, so two sketches over different data
    share the same bins and merge by integer addition (bitwise associative
    and commutative).  The CCDF evaluated *at a bin edge* is exact for
    values strictly inside bins; any quantile is recovered within one bin,
    i.e. a relative value error of ``10^(1/bins_per_decade) - 1``.  Zeros,
    negatives and NaNs are counted separately (log bins cannot hold them).
    """

    def __init__(self, bins_per_decade: int = 20):
        if bins_per_decade < 1:
            raise ValidationError("bins_per_decade must be >= 1")
        self.bins_per_decade = int(bins_per_decade)
        self.counts: dict[int, int] = {}
        self.zero_count = 0
        self.negative_count = 0
        self.nan_count = 0

    @property
    def positive_count(self) -> int:
        return sum(self.counts.values())

    @property
    def count(self) -> int:
        return self.positive_count + self.zero_count + self.negative_count

    def update(self, values) -> None:
        values = np.asarray(values, dtype=float).ravel()
        if values.size == 0:
            return
        nan_mask = np.isnan(values)
        self.nan_count += int(nan_mask.sum())
        values = values[~nan_mask]
        self.negative_count += int((values < 0).sum())
        self.zero_count += int((values == 0).sum())
        positive = values[values > 0]
        if positive.size == 0:
            return
        bins = np.floor(self.bins_per_decade * np.log10(positive)).astype(np.int64)
        base = int(bins.min())
        frequencies = np.bincount(bins - base)
        for offset in np.nonzero(frequencies)[0]:
            key = base + int(offset)
            self.counts[key] = self.counts.get(key, 0) + int(frequencies[offset])

    def edge(self, k: int) -> float:
        """The lower edge of bin ``k``: ``10^(k / bins_per_decade)``."""
        return float(10.0 ** (k / self.bins_per_decade))

    def ccdf(self) -> list:
        """``[(edge, count_ge, fraction_ge), ...]`` over the occupied range.

        ``count_ge`` at edge ``e_k`` counts the positive values ``>= e_k``
        — exact whenever no value sits numerically on an edge.  Fractions
        are of the positive population.
        """
        if not self.counts:
            return []
        total = self.positive_count
        keys = sorted(self.counts)
        rows = []
        remaining = total
        for key in keys:
            rows.append((self.edge(key), remaining, remaining / total))
            remaining -= self.counts[key]
        return rows

    def quantile(self, q: float) -> float:
        """Approximate quantile of the positive values (within one bin)."""
        total = self.positive_count
        if total == 0:
            return float("nan")
        q = min(max(float(q), 0.0), 1.0)
        target = q * total
        cumulative = 0
        for key in sorted(self.counts):
            cumulative += self.counts[key]
            if cumulative >= target:
                # Geometric midpoint of the bin.
                return float(10.0 ** ((key + 0.5) / self.bins_per_decade))
        return self.edge(max(self.counts) + 1)

    def merge(self, other: "CCDFSketch") -> "CCDFSketch":
        if other.bins_per_decade != self.bins_per_decade:
            raise ValidationError(
                "cannot merge CCDF sketches with different bins_per_decade "
                f"({self.bins_per_decade} vs {other.bins_per_decade})"
            )
        for key, value in other.counts.items():
            self.counts[key] = self.counts.get(key, 0) + value
        self.zero_count += other.zero_count
        self.negative_count += other.negative_count
        self.nan_count += other.nan_count
        return self

    def to_state(self) -> dict:
        return {
            "bins_per_decade": self.bins_per_decade,
            "counts": {str(key): value for key, value in self.counts.items()},
            "zero_count": self.zero_count,
            "negative_count": self.negative_count,
            "nan_count": self.nan_count,
        }

    @classmethod
    def from_state(cls, state: dict) -> "CCDFSketch":
        sketch = cls(bins_per_decade=state["bins_per_decade"])
        sketch.counts = {int(key): int(value) for key, value in state["counts"].items()}
        sketch.zero_count = int(state["zero_count"])
        sketch.negative_count = int(state["negative_count"])
        sketch.nan_count = int(state["nan_count"])
        return sketch


class TopK:
    """Bounded min-heap of the ``k`` largest ``(score, key)`` pairs.

    With distinct keys the retained set is a pure function of the inputs,
    so updates and merges commute.
    """

    def __init__(self, k: int):
        if k < 1:
            raise ValidationError("k must be >= 1")
        self.k = int(k)
        self._heap: list[tuple] = []

    def update(self, items) -> None:
        """Fold ``(score, key)`` pairs into the heap."""
        for score, key in items:
            entry = (float(score), key)
            if len(self._heap) < self.k:
                heapq.heappush(self._heap, entry)
            elif entry > self._heap[0]:
                heapq.heapreplace(self._heap, entry)

    def merge(self, other: "TopK") -> "TopK":
        if other.k != self.k:
            raise ValidationError(f"cannot merge TopK({other.k}) into TopK({self.k})")
        self.update(other._heap)
        return self

    def result(self) -> list:
        """``(score, key)`` pairs, largest first."""
        return sorted(self._heap, reverse=True)

    def to_state(self) -> dict:
        return {"k": self.k, "items": [[score, list(key)] for score, key in self.result()]}

    @classmethod
    def from_state(cls, state: dict) -> "TopK":
        top = cls(k=state["k"])
        top.update((score, tuple(key)) for score, key in state["items"])
        return top

"""Spill-aware analytics marts: single-pass reductions over result archives.

The operator-facing query layer of the reproduction: composable streaming
reducers (:mod:`~repro.marts.marts`) over ``.npz`` shard archives and live
chunk streams, mergeable sketches with tested accuracy bounds
(:mod:`~repro.marts.sketches`), archive readers
(:mod:`~repro.marts.archive`), the ``repro report`` rendering layer
(:mod:`~repro.marts.report`) and the streaming sweep result sink
(:mod:`~repro.marts.sink`).  Peak memory everywhere is one decompressed
shard plus sketch state — never the series.
"""

from repro.marts.archive import ArchiveCell, ServeArchive, SweepArchive, open_archive
from repro.marts.marts import (
    MART_REGISTRY,
    ErrorQuantilesMart,
    Mart,
    MartSpec,
    OdCcdfMart,
    OverviewMart,
    TopTalkersMart,
    TrafficByHourMart,
    build_mart,
    mart_from_state,
)
from repro.marts.report import REPORT_FORMATS, build_report, render_report
from repro.marts.sink import ArchiveResultSink
from repro.marts.sketches import CCDFSketch, QuantileSketch, TopK

__all__ = [
    "Mart",
    "MartSpec",
    "MART_REGISTRY",
    "OverviewMart",
    "TopTalkersMart",
    "TrafficByHourMart",
    "OdCcdfMart",
    "ErrorQuantilesMart",
    "build_mart",
    "mart_from_state",
    "QuantileSketch",
    "CCDFSketch",
    "TopK",
    "ArchiveCell",
    "SweepArchive",
    "ServeArchive",
    "open_archive",
    "build_report",
    "render_report",
    "REPORT_FORMATS",
    "ArchiveResultSink",
]

"""``repro report``: render marts from an archive, one shard at a time.

The builder instantiates the requested marts per cell, drives each cell's
series through them via :meth:`ArchiveCell.iter_blocks` (bounded memory —
one decompressed shard plus sketch state), and renders the collected
results as a text table, JSON or CSV.  Cube marts consume the
``estimate`` series; series marts consume a per-bin scalar series
(``errors`` by default).  Cells lacking the needed series skip the mart
with a note instead of failing the report.
"""

from __future__ import annotations

import csv
import io
import json

from repro.errors import ValidationError
from repro.marts.marts import MART_REGISTRY, build_mart

__all__ = ["build_report", "render_report", "REPORT_FORMATS"]

REPORT_FORMATS = ("table", "json", "csv")


def build_report(
    archive,
    *,
    marts=None,
    series: str = "errors",
    window: tuple | None = None,
    options: dict | None = None,
) -> dict:
    """Reduce every cell of ``archive`` through the requested marts.

    ``marts`` defaults to the full registry; ``window`` restricts the
    reduction to bins ``[start, stop)`` (only overlapping shards are
    read); ``options`` carries mart knobs (``top_k``, ``bins_per_hour``,
    ``epsilon``).
    """
    names = list(marts) if marts else sorted(MART_REGISTRY)
    for name in names:
        if name not in MART_REGISTRY:
            known = ", ".join(sorted(MART_REGISTRY))
            raise ValidationError(f"unknown mart {name!r} (registered: {known})")
    start, stop = (0, None) if window is None else (int(window[0]), int(window[1]))
    cells = []
    for cell in archive.cells:
        rendered: dict = {}
        skipped: dict = {}
        for name in names:
            spec = MART_REGISTRY[name]
            source = "estimate" if spec.kind == "cube" else series
            if not cell.has_series(source):
                skipped[name] = f"series {source!r} not in archive"
                continue
            mart = build_mart(name, options)
            mart.consume(cell.iter_blocks(source, start, stop))
            rendered[name] = mart.result()
        cells.append(
            {
                "cell": cell.label,
                "marts": rendered,
                "skipped": skipped,
                "metadata": cell.metadata,
            }
        )
    return {
        "archive": str(archive.directory),
        "archive_kind": archive.kind,
        "series": series,
        "window": None if window is None else [start, stop],
        "cells": cells,
    }


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------

def _format_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _render_rows(rows: list, indent: str) -> list:
    """A small aligned table over a list of homogeneous dicts."""
    if not rows:
        return [f"{indent}(empty)"]
    columns = list(rows[0])
    table = [[_format_value(row[column]) for column in columns] for row in rows]
    widths = [
        max(len(column), *(len(line[i]) for line in table))
        for i, column in enumerate(columns)
    ]
    out = [indent + "  ".join(column.ljust(widths[i]) for i, column in enumerate(columns))]
    for line in table:
        out.append(indent + "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(line)))
    return out


def _render_table(report: dict) -> str:
    lines = [f"archive: {report['archive']} ({report['archive_kind']})"]
    if report["window"]:
        lines.append(f"window: bins [{report['window'][0]}, {report['window'][1]})")
    for cell in report["cells"]:
        lines.append("")
        lines.append(f"== {cell['cell']} ==")
        for name, result in cell["marts"].items():
            lines.append(f"-- {name}")
            for key, value in result.items():
                if key == "rows":
                    lines.extend(_render_rows(value, "   "))
                elif isinstance(value, dict):
                    rendered = ", ".join(
                        f"{inner}={_format_value(val)}" for inner, val in value.items()
                    )
                    lines.append(f"   {key}: {rendered}")
                elif isinstance(value, list):
                    lines.append(
                        f"   {key}: [{', '.join(_format_value(item) for item in value)}]"
                    )
                else:
                    lines.append(f"   {key}: {_format_value(value)}")
        for name, reason in cell["skipped"].items():
            lines.append(f"-- {name}: skipped ({reason})")
    return "\n".join(lines)


def _flatten(prefix: str, value, sink: list) -> None:
    if isinstance(value, dict):
        for key, inner in value.items():
            _flatten(f"{prefix}.{key}" if prefix else str(key), inner, sink)
    elif isinstance(value, list):
        for index, inner in enumerate(value):
            _flatten(f"{prefix}[{index}]", inner, sink)
    else:
        sink.append((prefix, value))


def _render_csv(report: dict) -> str:
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["cell", "mart", "field", "value"])
    for cell in report["cells"]:
        for name, result in cell["marts"].items():
            flat: list = []
            _flatten("", result, flat)
            for field, value in flat:
                writer.writerow([cell["cell"], name, field, value])
    return buffer.getvalue()


def render_report(report: dict, format: str = "table") -> str:
    if format == "table":
        return _render_table(report)
    if format == "json":
        return json.dumps(report, indent=2, sort_keys=True)
    if format == "csv":
        return _render_csv(report)
    raise ValidationError(
        f"unknown report format {format!r} (choose from {', '.join(REPORT_FORMATS)})"
    )

"""Result sinks: sweep cells that stream to disk instead of the driver.

:class:`ArchiveResultSink` implements the
:class:`~repro.scenarios.executors.ResultSink` seam: each completed cell
is reduced to an ``error_quantiles`` mart partial and a manifest line the
moment it arrives, and the result object is dropped — the driver retains
``O(sketch)`` state per cell instead of the cell's series.  Combined with
``--spill-dir`` (where the series shards already live on disk) a sweep's
peak driver memory no longer grows with the grid.

Layout written under the archive directory::

    manifest.jsonl            one line per cell: label, ok, bins, mean error
    marts.json                merged archive-level error_quantiles mart
    <cell-label>/marts.json   per-cell mart partial (state + rendered result)

`repro report` reads the shards; the manifest and partials make the
archive self-describing without re-reducing.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.marts.marts import ErrorQuantilesMart
from repro.scenarios.spill import SpilledSeries

__all__ = ["ArchiveResultSink"]


def _safe_label(label: str) -> str:
    return label.replace("/", "-").replace(" ", "_")


class ArchiveResultSink:
    """Stream sweep cell results into a spill-archive directory.

    Calls arrive through ``SweepPlan.emit`` which serialises them under
    the plan lock, so the sink needs no locking of its own; cells may
    arrive in any order (parallel executors emit on completion).
    """

    def __init__(self, directory, *, epsilon: float = 0.005):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.epsilon = float(epsilon)
        self._manifest = (self.directory / "manifest.jsonl").open("w")
        self._quantiles = ErrorQuantilesMart(epsilon=epsilon)
        self.cells_ok = 0
        self.cells_failed = 0
        self.summary: dict | None = None

    def cell(self, index: int, scenario, result, message: str | None) -> None:
        """Reduce one completed cell and append its manifest line."""
        entry: dict = {
            "index": int(index),
            "label": scenario.label,
            "dataset": scenario.dataset,
            "prior": scenario.prior,
            "ok": message is None,
        }
        if message is not None:
            self.cells_failed += 1
            entry["message"] = message
        else:
            self.cells_ok += 1
            mart = ErrorQuantilesMart(epsilon=self.epsilon)
            errors = result.errors
            if isinstance(errors, SpilledSeries):
                mart.consume(errors.iter_blocks())
                entry["spilled_shards"] = len(errors.paths)
            else:
                mart.update(0, np.asarray(errors, dtype=float))
            rendered = mart.result()
            entry["bins"] = rendered["bins"]
            entry["mean_error"] = rendered["mean"]
            cell_dir = self.directory / _safe_label(scenario.label)
            cell_dir.mkdir(parents=True, exist_ok=True)
            partial = {
                "error_quantiles": {"state": mart.to_state(), "result": rendered}
            }
            (cell_dir / "marts.json").write_text(json.dumps(partial, indent=2))
            self._quantiles.merge(mart)
        self._manifest.write(json.dumps(entry) + "\n")
        self._manifest.flush()

    def finish(self) -> dict:
        """Persist the merged archive-level mart and close the manifest."""
        rendered = self._quantiles.result()
        payload = {
            "cells_ok": self.cells_ok,
            "cells_failed": self.cells_failed,
            "error_quantiles": {
                "state": self._quantiles.to_state(),
                "result": rendered,
            },
        }
        (self.directory / "marts.json").write_text(json.dumps(payload, indent=2))
        self._manifest.close()
        self.summary = {
            "archive": str(self.directory),
            "cells_ok": self.cells_ok,
            "cells_failed": self.cells_failed,
            "error_quantiles": rendered,
        }
        return self.summary

"""Shared machinery for the TM-estimation experiments (Figures 11-13).

All three experiments follow the same protocol — simulate a target week's
measurements, build the gravity prior and one IC prior, run both through the
identical tomogravity + IPF pipeline, and report the per-bin improvement.
That protocol now lives in :class:`repro.scenarios.ScenarioRunner`; this
module keeps the :class:`EstimationComparison` result type the figures (and
their tests) consume, plus the adapter from a
:class:`repro.scenarios.ScenarioResult` to it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.metrics import summarize_improvement
from repro.experiments._common import format_rows

__all__ = ["EstimationComparison", "comparison_from_result"]


@dataclass(frozen=True)
class EstimationComparison:
    """Comparison of an IC prior against the gravity prior through the same pipeline.

    Attributes
    ----------
    dataset:
        Which dataset was used.
    scenario:
        Short name of the IC prior scenario (``"measured"``, ``"stable-fP"``,
        ``"stable-f"``).
    improvement:
        Per-bin percentage improvement of the IC-prior estimate over the
        gravity-prior estimate (the series plotted in the paper's figure).
    ic_errors, gravity_errors:
        Per-bin errors of the two final estimates.
    ic_prior_errors, gravity_prior_errors:
        Per-bin errors of the raw priors (before refinement), for diagnostics.
    """

    dataset: str
    scenario: str
    improvement: np.ndarray
    ic_errors: np.ndarray
    gravity_errors: np.ndarray
    ic_prior_errors: np.ndarray
    gravity_prior_errors: np.ndarray

    @property
    def mean_improvement(self) -> float:
        return float(np.mean(self.improvement))

    def format_table(self) -> str:
        summary = summarize_improvement(self.improvement)
        rows = [
            ["dataset", self.dataset],
            ["scenario", self.scenario],
            ["mean estimation error (gravity prior)", float(np.mean(self.gravity_errors))],
            ["mean estimation error (IC prior)", float(np.mean(self.ic_errors))],
            ["mean improvement %", summary["mean"]],
            ["median improvement %", summary["median"]],
            ["25th-75th percentile improvement %", f"{summary['p25']:.3g} .. {summary['p75']:.3g}"],
            ["mean raw prior error (gravity)", float(np.mean(self.gravity_prior_errors))],
            ["mean raw prior error (IC)", float(np.mean(self.ic_prior_errors))],
        ]
        return format_rows(["quantity", "value"], rows)


def comparison_from_result(result) -> EstimationComparison:
    """Adapt a gravity-baselined :class:`ScenarioResult` to the figure format."""
    if result.improvement is None:
        raise ValueError(
            "the scenario was run without a baseline prior; "
            "run it with ScenarioRunner(baseline_prior='gravity')"
        )
    return EstimationComparison(
        dataset=result.scenario.dataset,
        scenario=result.prior_label,
        improvement=result.improvement,
        ic_errors=result.errors,
        gravity_errors=result.baseline_errors,
        ic_prior_errors=result.prior_errors,
        gravity_prior_errors=result.baseline_prior_errors,
    )

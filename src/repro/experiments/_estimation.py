"""Shared machinery for the TM-estimation experiments (Figures 11-13).

All three experiments follow the same protocol:

1. take a calibration week and a target week from a dataset,
2. simulate the target week's measurements (link loads + marginals) over the
   dataset's topology,
3. build the gravity prior and one IC prior from whatever side information
   the scenario allows,
4. run the identical tomogravity + IPF pipeline with each prior,
5. report the per-bin percentage improvement of the IC-prior estimate over
   the gravity-prior estimate.

Only step 3 differs between the figures, so it is passed in as a callable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.metrics import percent_improvement, summarize_improvement
from repro.core.priors import GravityPrior
from repro.core.traffic_matrix import TrafficMatrixSeries
from repro.estimation.linear_system import LinkLoadSystem, simulate_link_loads
from repro.estimation.pipeline import TMEstimator
from repro.experiments._common import format_rows
from repro.synthesis.datasets import SyntheticDataset

__all__ = ["EstimationComparison", "run_prior_comparison"]


@dataclass(frozen=True)
class EstimationComparison:
    """Comparison of an IC prior against the gravity prior through the same pipeline.

    Attributes
    ----------
    dataset:
        Which dataset was used.
    scenario:
        Short name of the IC prior scenario (``"measured"``, ``"stable-fP"``,
        ``"stable-f"``).
    improvement:
        Per-bin percentage improvement of the IC-prior estimate over the
        gravity-prior estimate (the series plotted in the paper's figure).
    ic_errors, gravity_errors:
        Per-bin errors of the two final estimates.
    ic_prior_errors, gravity_prior_errors:
        Per-bin errors of the raw priors (before refinement), for diagnostics.
    """

    dataset: str
    scenario: str
    improvement: np.ndarray
    ic_errors: np.ndarray
    gravity_errors: np.ndarray
    ic_prior_errors: np.ndarray
    gravity_prior_errors: np.ndarray

    @property
    def mean_improvement(self) -> float:
        return float(np.mean(self.improvement))

    def format_table(self) -> str:
        summary = summarize_improvement(self.improvement)
        rows = [
            ["dataset", self.dataset],
            ["scenario", self.scenario],
            ["mean estimation error (gravity prior)", float(np.mean(self.gravity_errors))],
            ["mean estimation error (IC prior)", float(np.mean(self.ic_errors))],
            ["mean improvement %", summary["mean"]],
            ["median improvement %", summary["median"]],
            ["25th-75th percentile improvement %", f"{summary['p25']:.3g} .. {summary['p75']:.3g}"],
            ["mean raw prior error (gravity)", float(np.mean(self.gravity_prior_errors))],
            ["mean raw prior error (IC)", float(np.mean(self.ic_prior_errors))],
        ]
        return format_rows(["quantity", "value"], rows)


def run_prior_comparison(
    dataset: SyntheticDataset,
    target_week: TrafficMatrixSeries,
    build_ic_prior: Callable[[LinkLoadSystem], TrafficMatrixSeries],
    *,
    dataset_name: str,
    scenario: str,
    measurement_noise: float = 0.01,
    max_bins: int | None = None,
    seed: int = 0,
) -> EstimationComparison:
    """Run the shared estimation protocol with a scenario-specific IC prior.

    Parameters
    ----------
    dataset:
        The synthetic dataset (supplies the topology).
    target_week:
        Ground-truth traffic of the week being estimated.
    build_ic_prior:
        Callable receiving the simulated measurements and returning the IC
        prior series.
    dataset_name, scenario:
        Labels for the result.
    measurement_noise:
        Relative std of SNMP measurement noise applied to link/marginal counts.
    max_bins:
        Optional cap on the number of bins estimated (keeps benchmarks fast);
        ``None`` estimates the whole week.
    seed:
        Seed for the measurement noise.
    """
    if max_bins is not None and target_week.n_timesteps > max_bins:
        target_week = target_week[:max_bins]
    system = simulate_link_loads(
        dataset.topology, target_week, noise_std=measurement_noise, seed=seed
    )
    gravity_prior = GravityPrior().series(
        system.ingress, system.egress, nodes=target_week.nodes, bin_seconds=target_week.bin_seconds
    )
    ic_prior = build_ic_prior(system)
    estimator = TMEstimator()
    results = estimator.compare_priors(
        system, {"gravity": gravity_prior, "ic": ic_prior}, target_week
    )
    improvement = percent_improvement(results["gravity"].errors, results["ic"].errors)
    return EstimationComparison(
        dataset=dataset_name,
        scenario=scenario,
        improvement=improvement,
        ic_errors=results["ic"].errors,
        gravity_errors=results["gravity"].errors,
        ic_prior_errors=results["ic"].prior_errors,
        gravity_prior_errors=results["gravity"].prior_errors,
    )

"""Figure 3: how well the stable-fP IC model fits data, relative to gravity.

For one week of each dataset the stable-fP model is fitted (Section 5.1's
nonlinear program) and the per-bin relative L2 error compared with the
gravity model's reconstruction from the same week's marginals.  The paper
reports improvements of roughly 20-25 % on Geant and 6-8 % on Totem, despite
the IC model having about half the degrees of freedom.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fitting import fit_stable_fp
from repro.core.gravity import gravity_series
from repro.core.ic_model import degrees_of_freedom
from repro.core.metrics import percent_improvement, rel_l2_temporal_error, summarize_improvement
from repro.experiments._common import format_rows, get_dataset

__all__ = ["ModelFitResult", "run_model_fit"]


@dataclass(frozen=True)
class ModelFitResult:
    """Per-dataset comparison of the stable-fP fit against the gravity model.

    Attributes
    ----------
    dataset:
        ``"geant"`` or ``"totem"``.
    improvement:
        Per-bin percentage improvement of the IC fit over gravity (the series
        plotted in Figure 3).
    ic_errors, gravity_errors:
        The underlying per-bin error series.
    fitted_f:
        The fitted network-wide forward fraction.
    ic_dof, gravity_dof:
        Degrees of freedom of each model for this week (Section 5.1).
    """

    dataset: str
    improvement: np.ndarray
    ic_errors: np.ndarray
    gravity_errors: np.ndarray
    fitted_f: float
    ic_dof: int
    gravity_dof: int

    @property
    def mean_improvement(self) -> float:
        return float(np.mean(self.improvement))

    def format_table(self) -> str:
        summary = summarize_improvement(self.improvement)
        rows = [
            ["dataset", self.dataset],
            ["fitted f", self.fitted_f],
            ["mean IC error", float(np.mean(self.ic_errors))],
            ["mean gravity error", float(np.mean(self.gravity_errors))],
            ["mean improvement %", summary["mean"]],
            ["median improvement %", summary["median"]],
            ["stable-fP degrees of freedom", self.ic_dof],
            ["gravity degrees of freedom", self.gravity_dof],
        ]
        return format_rows(["quantity", "value"], rows)


def run_model_fit(
    dataset: str = "geant",
    *,
    bins_per_week: int | None = None,
    full_scale: bool = False,
    week: int = 0,
) -> ModelFitResult:
    """Run the Figure 3 experiment on one week of the chosen dataset.

    Parameters
    ----------
    dataset:
        ``"geant"`` (panel a) or ``"totem"`` (panel b).
    bins_per_week, full_scale:
        Workload size; defaults are reduced for speed.
    week:
        Which week of the dataset to fit.
    """
    data = get_dataset(dataset, n_weeks=max(week + 1, 1), bins_per_week=bins_per_week, full_scale=full_scale)
    series = data.week(week)
    fit = fit_stable_fp(series)
    gravity = gravity_series(series)
    gravity_errors = rel_l2_temporal_error(series, gravity)
    improvement = percent_improvement(gravity_errors, fit.errors)
    n, t = series.n_nodes, series.n_timesteps
    return ModelFitResult(
        dataset=dataset,
        improvement=improvement,
        ic_errors=fit.errors,
        gravity_errors=gravity_errors,
        fitted_f=float(fit.forward_fraction),
        ic_dof=degrees_of_freedom("stable-fP", n, t),
        gravity_dof=degrees_of_freedom("gravity", n, t),
    )

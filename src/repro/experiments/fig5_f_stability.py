"""Figure 5: stability of the fitted ``f`` over consecutive weeks.

The stable-fP fit is run independently on each week of the Totem-like
dataset (seven weeks in the paper); the fitted ``f`` values should be close
to one another and in the 0.2 range.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.characterization.stability import StabilityReport, parameter_stability
from repro.core.fitting import fit_stable_fp
from repro.experiments._common import format_rows, get_dataset

__all__ = ["FStabilityResult", "run_f_stability"]


@dataclass(frozen=True)
class FStabilityResult:
    """Fitted ``f`` per week and its stability summary.

    Attributes
    ----------
    dataset:
        Which dataset was used.
    weekly_f:
        The fitted forward fraction of each week.
    stability:
        Coefficient of variation / max relative change across weeks.
    true_f:
        The generating forward fraction of the synthetic dataset (available
        for validation; the paper has no ground truth).
    """

    dataset: str
    weekly_f: np.ndarray
    stability: StabilityReport
    true_f: float

    def format_table(self) -> str:
        rows = [[f"week {i + 1}", value] for i, value in enumerate(self.weekly_f)]
        rows.append(["mean", float(np.mean(self.weekly_f))])
        rows.append(["coefficient of variation", self.stability.coefficient_of_variation])
        rows.append(["max week-to-week change", self.stability.max_relative_change])
        rows.append(["generating f", self.true_f])
        return format_rows(["week", "fitted f"], rows)


def run_f_stability(
    dataset: str = "totem",
    *,
    n_weeks: int = 7,
    bins_per_week: int | None = None,
    full_scale: bool = False,
) -> FStabilityResult:
    """Fit the stable-fP model to each week and summarise the stability of ``f``."""
    data = get_dataset(dataset, n_weeks=n_weeks, bins_per_week=bins_per_week, full_scale=full_scale)
    weekly_f = np.array(
        [float(fit_stable_fp(week).forward_fraction) for week in data.weeks]
    )
    return FStabilityResult(
        dataset=dataset,
        weekly_f=weekly_f,
        stability=parameter_stability(weekly_f),
        true_f=float(data.ground_truths[0].forward_fraction),
    )

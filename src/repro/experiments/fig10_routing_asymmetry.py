"""Figure 10 / Section 5.6: routing asymmetry and the simplified IC model.

Under hot-potato routing between peer ASes that interconnect at multiple
points, the reverse traffic of a connection may leave the network at a
different node than where its forward traffic entered, making the effective
``f_ij`` asymmetric (``f_ij > f_ji``).  The simplified model — a single
network-wide ``f`` — is then misspecified, while the general model (per-pair
``f_ij``) is not.  This experiment generates traffic from a general-IC ground
truth with a controllable asymmetry level and compares the fit quality of the
simplified (stable-fP) model against the gravity baseline and against an
oracle general-IC reconstruction, quantifying how much accuracy the
simplification costs as asymmetry grows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fitting import fit_stable_fp
from repro.core.gravity import gravity_series
from repro.core.ic_model import general_ic_series
from repro.core.metrics import mean_relative_error
from repro.core.traffic_matrix import TrafficMatrixSeries
from repro.experiments._common import format_rows
from repro.synthesis.activity import ActivityModel
from repro.synthesis.preference import lognormal_preferences

__all__ = ["RoutingAsymmetryResult", "run_routing_asymmetry"]


@dataclass(frozen=True)
class RoutingAsymmetryResult:
    """Fit errors as a function of the injected routing asymmetry.

    Attributes
    ----------
    asymmetry_levels:
        The injected per-pair asymmetry magnitudes (std of the antisymmetric
        perturbation added to ``f_ij``).
    simplified_errors:
        Mean relative error of the simplified (stable-fP) fit at each level.
    general_oracle_errors:
        Error of the general-IC reconstruction using the true ``f_ij`` matrix
        (the best the general model could do).
    gravity_errors:
        Error of the gravity baseline at each level.
    """

    asymmetry_levels: np.ndarray
    simplified_errors: np.ndarray
    general_oracle_errors: np.ndarray
    gravity_errors: np.ndarray

    def format_table(self) -> str:
        rows = [
            [
                self.asymmetry_levels[i],
                self.simplified_errors[i],
                self.general_oracle_errors[i],
                self.gravity_errors[i],
            ]
            for i in range(self.asymmetry_levels.size)
        ]
        return format_rows(
            ["asymmetry level", "simplified IC error", "general IC (oracle) error", "gravity error"],
            rows,
        )


def run_routing_asymmetry(
    *,
    n_nodes: int = 12,
    n_bins: int = 48,
    base_f: float = 0.25,
    asymmetry_levels: tuple[float, ...] = (0.0, 0.05, 0.1, 0.2),
    seed: int = 3,
) -> RoutingAsymmetryResult:
    """Sweep the routing-asymmetry level and compare model fits.

    Parameters
    ----------
    n_nodes, n_bins:
        Size of the synthetic scenario.
    base_f:
        The network-wide forward fraction before asymmetry is injected.
    asymmetry_levels:
        Standard deviations of the antisymmetric perturbation of ``f_ij``
        (hot-potato routing moves reverse traffic to a different egress, which
        raises ``f_ij`` and lowers ``f_ji`` in equal measure).
    seed:
        Seed for the scenario.
    """
    rng = np.random.default_rng(seed)
    preference = lognormal_preferences(n_nodes, seed=rng)
    activity = ActivityModel(n_nodes, seed=rng).generate(n_bins)
    simplified, oracle, gravity = [], [], []
    for level in asymmetry_levels:
        perturbation = rng.normal(0.0, level, size=(n_nodes, n_nodes)) if level > 0 else np.zeros((n_nodes, n_nodes))
        antisymmetric = (perturbation - perturbation.T) / 2.0
        f_matrix = np.clip(base_f + antisymmetric, 0.02, 0.98)
        matrices = general_ic_series(f_matrix, activity, preference)
        noise = rng.lognormal(0.0, 0.05, size=matrices.shape)
        series = TrafficMatrixSeries(matrices * noise)
        fit = fit_stable_fp(series)
        simplified.append(fit.mean_error)
        oracle.append(mean_relative_error(series, matrices))
        gravity.append(mean_relative_error(series, gravity_series(series)))
    return RoutingAsymmetryResult(
        asymmetry_levels=np.asarray(asymmetry_levels, dtype=float),
        simplified_errors=np.asarray(simplified),
        general_oracle_errors=np.asarray(oracle),
        gravity_errors=np.asarray(gravity),
    )

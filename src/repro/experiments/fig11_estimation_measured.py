"""Figure 11: TM estimation with all IC parameters measured (Section 6.1).

This is the paper's "thought experiment" bounding the gain the IC model can
provide: ``f``, ``{P_i}`` and ``{A_i(t)}`` are taken from the optimisation fit
of the *same* week being estimated, composed into a prior, and pushed through
the same tomogravity + IPF pipeline as the gravity prior.  The paper reports
improvements of 10-20 % on Geant and 20-30 % on Totem.

The driver is a thin wrapper over the Scenario API: it declares the
``"measured"`` prior on the chosen dataset and lets
:class:`repro.scenarios.ScenarioRunner` execute the shared protocol.
"""

from __future__ import annotations

from repro.experiments._estimation import EstimationComparison, comparison_from_result
from repro.scenarios import Scenario, ScenarioRunner

__all__ = ["run_estimation_measured"]


def run_estimation_measured(
    dataset: str = "geant",
    *,
    bins_per_week: int | None = None,
    full_scale: bool = False,
    week: int = 0,
    max_bins: int | None = 48,
    measurement_noise: float = 0.01,
    stream: bool = False,
    chunk_bins: int | None = None,
) -> EstimationComparison:
    """Run the Figure 11 experiment on one week of the chosen dataset.

    Parameters
    ----------
    dataset:
        ``"geant"`` (panel a) or ``"totem"`` (panel b).
    bins_per_week, full_scale:
        Dataset size knobs.
    week:
        Which week to estimate (the fit uses the same week).
    max_bins:
        Cap on the number of bins run through the estimation pipeline
        (``None`` runs the whole week; the default keeps benchmarks quick).
    measurement_noise:
        Relative SNMP measurement noise.
    stream, chunk_bins:
        Execute through the chunked streaming pipeline (bounded peak memory;
        bit-identical same-seed synthesis).
    """
    scenario = Scenario(
        dataset=dataset,
        prior="measured",
        calibration_week=week,
        target_week=week,
        bins_per_week=bins_per_week,
        full_scale=full_scale,
        max_bins=max_bins,
        measurement_noise=measurement_noise,
        stream=stream,
        chunk_bins=chunk_bins,
        name=f"fig11/{dataset}",
    )
    return comparison_from_result(ScenarioRunner().run(scenario))

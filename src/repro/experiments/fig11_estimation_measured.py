"""Figure 11: TM estimation with all IC parameters measured (Section 6.1).

This is the paper's "thought experiment" bounding the gain the IC model can
provide: ``f``, ``{P_i}`` and ``{A_i(t)}`` are taken from the optimisation fit
of the *same* week being estimated, composed into a prior, and pushed through
the same tomogravity + IPF pipeline as the gravity prior.  The paper reports
improvements of 10-20 % on Geant and 20-30 % on Totem.
"""

from __future__ import annotations

from repro.core.fitting import fit_stable_fp
from repro.core.priors import MeasuredParameterPrior
from repro.experiments._common import get_dataset
from repro.experiments._estimation import EstimationComparison, run_prior_comparison

__all__ = ["run_estimation_measured"]


def run_estimation_measured(
    dataset: str = "geant",
    *,
    bins_per_week: int | None = None,
    full_scale: bool = False,
    week: int = 0,
    max_bins: int | None = 48,
    measurement_noise: float = 0.01,
) -> EstimationComparison:
    """Run the Figure 11 experiment on one week of the chosen dataset.

    Parameters
    ----------
    dataset:
        ``"geant"`` (panel a) or ``"totem"`` (panel b).
    bins_per_week, full_scale:
        Dataset size knobs.
    week:
        Which week to estimate.
    max_bins:
        Cap on the number of bins run through the estimation pipeline
        (``None`` runs the whole week; the default keeps benchmarks quick).
    measurement_noise:
        Relative SNMP measurement noise.
    """
    data = get_dataset(dataset, n_weeks=max(week + 1, 1), bins_per_week=bins_per_week, full_scale=full_scale)
    target = data.week(week)
    if max_bins is not None and target.n_timesteps > max_bins:
        target = target[:max_bins]
    fit = fit_stable_fp(target)
    prior = MeasuredParameterPrior.from_fit(fit)

    def build_prior(system):
        return prior.series(nodes=target.nodes, bin_seconds=target.bin_seconds)

    return run_prior_comparison(
        data,
        target,
        build_prior,
        dataset_name=dataset,
        scenario="measured",
        measurement_noise=measurement_noise,
        max_bins=max_bins,
    )

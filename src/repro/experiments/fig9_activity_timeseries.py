"""Figure 9: the fitted activity time series of large, medium and small nodes.

The paper plots ``A_i(t)`` for the node with the largest mean activity, an
intermediate node and one of the smallest, and observes strong daily
periodicity, weekend dips and more pronounced patterns at higher activity
levels.  This experiment fits one (multi-day) week, extracts those three
series and quantifies the periodicity and weekend behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.characterization.activity_analysis import ActivitySummary, analyze_activity, weekend_ratio
from repro.core.fitting import fit_stable_fp
from repro.experiments._common import format_rows, get_dataset

__all__ = ["ActivityTimeseriesResult", "run_activity_timeseries"]

_SECONDS_PER_DAY = 86400.0


@dataclass(frozen=True)
class ActivityTimeseriesResult:
    """Fitted activity ensemble and the Figure 9 node selection.

    Attributes
    ----------
    dataset:
        Which dataset was used.
    activity:
        The fitted ``(T, n)`` activity series.
    summary:
        Per-node summary (mean levels, dominant periods, node selection).
    selected_series:
        The three plotted series keyed by ``"largest"``, ``"medium"``,
        ``"smallest"``.
    diurnal_period_days:
        Dominant period of the largest node's series, in days (≈ 1 when the
        series covers several days).
    weekend_ratios:
        Weekend/weekday activity ratio of the three selected nodes.
    """

    dataset: str
    activity: np.ndarray
    summary: ActivitySummary
    selected_series: dict[str, np.ndarray]
    diurnal_period_days: float
    weekend_ratios: dict[str, float]

    def format_table(self) -> str:
        rows = []
        for label in ("largest", "medium", "smallest"):
            series = self.selected_series[label]
            rows.append(
                [
                    label,
                    float(series.mean()),
                    float(series.max()),
                    self.weekend_ratios[label],
                ]
            )
        table = format_rows(["node", "mean A(t)", "peak A(t)", "weekend/weekday ratio"], rows)
        return table + f"\ndominant period of largest node: {self.diurnal_period_days:.2f} days"


def run_activity_timeseries(
    dataset: str = "geant",
    *,
    bins_per_week: int | None = None,
    full_scale: bool = False,
    week: int = 0,
) -> ActivityTimeseriesResult:
    """Fit one week and extract the Figure 9 activity time series."""
    data = get_dataset(dataset, n_weeks=max(week + 1, 1), bins_per_week=bins_per_week, full_scale=full_scale)
    series = data.week(week)
    fit = fit_stable_fp(series)
    summary = analyze_activity(fit.activity, bin_seconds=series.bin_seconds)
    selection = {
        "largest": fit.activity[:, summary.largest],
        "medium": fit.activity[:, summary.median_node],
        "smallest": fit.activity[:, summary.smallest],
    }
    period_days = summary.dominant_periods[summary.largest] / _SECONDS_PER_DAY
    start = week * series.n_timesteps * series.bin_seconds
    ratios = {
        label: weekend_ratio(values, bin_seconds=series.bin_seconds, start_seconds=start)
        for label, values in selection.items()
    }
    return ActivityTimeseriesResult(
        dataset=dataset,
        activity=fit.activity,
        summary=summary,
        selected_series=selection,
        diurnal_period_days=float(period_days),
        weekend_ratios=ratios,
    )

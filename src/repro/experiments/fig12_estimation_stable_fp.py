"""Figure 12: TM estimation with ``f`` and ``P`` from a previous week (Section 6.2).

The stable-fP prior exploits the temporal stability of ``f`` and ``{P_i}``:
they are fitted to an earlier calibration week (one week back for Geant, two
weeks back for Totem in the paper), and the target week's activity is
recovered from its ingress/egress counts alone via the pseudo-inverse
construction of Eqs. 7-9.  The paper reports 10-20 % improvements over the
gravity prior.
"""

from __future__ import annotations

from repro.core.fitting import fit_stable_fp
from repro.core.priors import StableFPPrior
from repro.errors import ValidationError
from repro.experiments._common import get_dataset
from repro.experiments._estimation import EstimationComparison, run_prior_comparison

__all__ = ["run_estimation_stable_fp"]


def run_estimation_stable_fp(
    dataset: str = "geant",
    *,
    bins_per_week: int | None = None,
    full_scale: bool = False,
    calibration_week: int = 0,
    target_week: int | None = None,
    max_bins: int | None = 48,
    measurement_noise: float = 0.01,
) -> EstimationComparison:
    """Run the Figure 12 experiment: calibrate on one week, estimate another.

    Parameters
    ----------
    dataset:
        ``"geant"`` or ``"totem"``.
    calibration_week:
        Week used to fit ``f`` and ``{P_i}``.
    target_week:
        Week being estimated; defaults to one week after calibration for the
        Geant-like data and two weeks after for the Totem-like data (matching
        the paper's setup).
    max_bins, measurement_noise, bins_per_week, full_scale:
        As in the other estimation experiments.
    """
    gap = 1 if dataset == "geant" else 2
    if target_week is None:
        target_week = calibration_week + gap
    if target_week == calibration_week:
        raise ValidationError("target_week must differ from calibration_week")
    n_weeks = max(calibration_week, target_week) + 1
    data = get_dataset(dataset, n_weeks=n_weeks, bins_per_week=bins_per_week, full_scale=full_scale)
    calibration = data.week(calibration_week)
    target = data.week(target_week)
    fit = fit_stable_fp(calibration)
    prior_builder = StableFPPrior.from_fit(fit)

    def build_prior(system):
        return prior_builder.series(
            system.ingress, system.egress, nodes=target.nodes, bin_seconds=target.bin_seconds
        )

    return run_prior_comparison(
        data,
        target,
        build_prior,
        dataset_name=dataset,
        scenario="stable-fP",
        measurement_noise=measurement_noise,
        max_bins=max_bins,
    )

"""Figure 12: TM estimation with ``f`` and ``P`` from a previous week (Section 6.2).

The stable-fP prior exploits the temporal stability of ``f`` and ``{P_i}``:
they are fitted to an earlier calibration week (one week back for Geant, two
weeks back for Totem in the paper — the ``calibration_gap`` metadata of the
registered datasets), and the target week's activity is recovered from its
ingress/egress counts alone via the pseudo-inverse construction of Eqs. 7-9.
The paper reports 10-20 % improvements over the gravity prior.

The driver is a thin wrapper over the Scenario API around the registered
``"stable_fp"`` prior.
"""

from __future__ import annotations

from repro.experiments._estimation import EstimationComparison, comparison_from_result
from repro.scenarios import Scenario, ScenarioRunner

__all__ = ["run_estimation_stable_fp"]


def run_estimation_stable_fp(
    dataset: str = "geant",
    *,
    bins_per_week: int | None = None,
    full_scale: bool = False,
    calibration_week: int = 0,
    target_week: int | None = None,
    max_bins: int | None = 48,
    measurement_noise: float = 0.01,
    stream: bool = False,
    chunk_bins: int | None = None,
) -> EstimationComparison:
    """Run the Figure 12 experiment: calibrate on one week, estimate another.

    Parameters
    ----------
    dataset:
        ``"geant"`` or ``"totem"``.
    calibration_week:
        Week used to fit ``f`` and ``{P_i}``.
    target_week:
        Week being estimated; defaults to the dataset's registered
        calibration gap after the calibration week (one week for the
        Geant-like data, two for the Totem-like data, matching the paper's
        setup).  Must differ from ``calibration_week``.
    max_bins, measurement_noise, bins_per_week, full_scale:
        As in the other estimation experiments.
    stream, chunk_bins:
        Execute through the chunked streaming pipeline (bounded peak memory;
        bit-identical same-seed synthesis).
    """
    scenario = Scenario(
        dataset=dataset,
        prior="stable_fp",
        calibration_week=calibration_week,
        target_week=target_week,
        bins_per_week=bins_per_week,
        full_scale=full_scale,
        max_bins=max_bins,
        measurement_noise=measurement_noise,
        stream=stream,
        chunk_bins=chunk_bins,
        name=f"fig12/{dataset}",
    )
    return comparison_from_result(ScenarioRunner().run(scenario))

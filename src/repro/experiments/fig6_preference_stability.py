"""Figure 6: stability of the fitted preference vector over weeks.

The preference vector ``{P_i}`` is fitted independently per week (three weeks
of Geant, seven of Totem in the paper).  The per-node values should be nearly
identical across weeks — while being highly variable across nodes, with a few
nodes up to ten times more preferred than typical.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.characterization.stability import StabilityReport, correlation, preference_stability
from repro.core.fitting import fit_stable_fp
from repro.experiments._common import format_rows, get_dataset

__all__ = ["PreferenceStabilityResult", "run_preference_stability"]


@dataclass(frozen=True)
class PreferenceStabilityResult:
    """Fitted weekly preference vectors and their stability summary.

    Attributes
    ----------
    dataset:
        Which dataset was used.
    weekly_preference:
        Array ``(weeks, n)`` of fitted preference vectors (each sums to 1).
    stability:
        Week-over-week stability report.
    truth_correlation:
        Correlation between the mean fitted preference and the generating
        preference vector (synthetic ground truth; 1.0 is perfect recovery).
    spread_ratio:
        Max over min positive fitted preference (cross-node variability).
    """

    dataset: str
    weekly_preference: np.ndarray
    stability: StabilityReport
    truth_correlation: float
    spread_ratio: float

    def format_table(self) -> str:
        mean_pref = self.weekly_preference.mean(axis=0)
        order = np.argsort(mean_pref)[::-1]
        rows = [
            [f"node {int(i)}", mean_pref[i], self.weekly_preference[:, i].std()]
            for i in order[: min(10, mean_pref.size)]
        ]
        table = format_rows(["node (top by preference)", "mean P", "std across weeks"], rows)
        summary = format_rows(
            ["quantity", "value"],
            [
                ["week-to-week correlation", self.stability.week_to_week_correlation],
                ["max coefficient of variation", self.stability.coefficient_of_variation],
                ["correlation with ground truth", self.truth_correlation],
                ["max/min preference ratio", self.spread_ratio],
            ],
        )
        return table + "\n\n" + summary


def run_preference_stability(
    dataset: str = "geant",
    *,
    n_weeks: int = 3,
    bins_per_week: int | None = None,
    full_scale: bool = False,
) -> PreferenceStabilityResult:
    """Fit each week independently and summarise preference stability."""
    data = get_dataset(dataset, n_weeks=n_weeks, bins_per_week=bins_per_week, full_scale=full_scale)
    weekly = np.stack([fit_stable_fp(week).preference for week in data.weeks])
    truth = data.ground_truths[0].preference
    mean_fitted = weekly.mean(axis=0)
    positive = mean_fitted[mean_fitted > 0]
    spread = float(positive.max() / positive.min()) if positive.size else float("inf")
    return PreferenceStabilityResult(
        dataset=dataset,
        weekly_preference=weekly,
        stability=preference_stability(weekly),
        truth_correlation=correlation(mean_fitted, truth),
        spread_ratio=spread,
    )

"""Shared helpers for the experiment drivers.

The experiments repeatedly need (a) the synthetic stand-in datasets at a
chosen scale and (b) simple ASCII table formatting.  Dataset construction is
memoised because several experiments (and several benchmarks in one pytest
session) use the same weeks.
"""

from __future__ import annotations

from repro._tables import format_rows
from repro.synthesis.datasets import SyntheticDataset, load_dataset

__all__ = ["get_dataset", "format_rows", "format_series_summary"]


def get_dataset(
    name: str,
    *,
    n_weeks: int,
    bins_per_week: int | None = None,
    full_scale: bool = False,
    seed: int | None = None,
) -> SyntheticDataset:
    """Return (and cache) a registered synthetic stand-in dataset.

    Thin wrapper over :func:`repro.synthesis.datasets.load_dataset`, kept for
    backwards compatibility; the cache is shared with the scenario runner so
    experiments, benchmarks and sweeps reuse the same synthesis runs.

    Parameters
    ----------
    name:
        A dataset registered in :data:`repro.registry.DATASETS`
        (``"geant"`` or ``"totem"`` out of the box).
    n_weeks, bins_per_week, full_scale, seed:
        Passed through to the dataset factory; ``seed=None`` keeps the
        factory default.
    """
    return load_dataset(
        name, n_weeks=n_weeks, bins_per_week=bins_per_week, full_scale=full_scale, seed=seed
    )


def format_series_summary(label: str, values) -> str:
    """One-line min/mean/max summary of a numeric series."""
    import numpy as np

    array = np.asarray(values, dtype=float)
    finite = array[np.isfinite(array)]
    if finite.size == 0:
        return f"{label}: (no finite values)"
    return (
        f"{label}: min={finite.min():.3g} mean={finite.mean():.3g} "
        f"median={np.median(finite):.3g} max={finite.max():.3g}"
    )

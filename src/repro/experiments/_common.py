"""Shared helpers for the experiment drivers.

The experiments repeatedly need (a) the synthetic stand-in datasets at a
chosen scale and (b) simple ASCII table formatting.  Dataset construction is
memoised because several experiments (and several benchmarks in one pytest
session) use the same weeks.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence

from repro.synthesis.datasets import (
    SyntheticDataset,
    make_geant_like_dataset,
    make_totem_like_dataset,
)

__all__ = ["get_dataset", "format_rows", "format_series_summary"]


@lru_cache(maxsize=8)
def get_dataset(
    name: str,
    *,
    n_weeks: int,
    bins_per_week: int | None = None,
    full_scale: bool = False,
    seed: int | None = None,
) -> SyntheticDataset:
    """Return (and cache) one of the synthetic stand-in datasets.

    Parameters
    ----------
    name:
        ``"geant"`` or ``"totem"``.
    n_weeks, bins_per_week, full_scale, seed:
        Passed through to the dataset factory; ``seed=None`` keeps the
        factory default.
    """
    if name == "geant":
        kwargs = {"bins_per_week": bins_per_week, "full_scale": full_scale}
        if seed is not None:
            kwargs["seed"] = seed
        return make_geant_like_dataset(n_weeks, **kwargs)
    if name == "totem":
        kwargs = {"bins_per_week": bins_per_week, "full_scale": full_scale}
        if seed is not None:
            kwargs["seed"] = seed
        return make_totem_like_dataset(n_weeks, **kwargs)
    raise ValueError(f"unknown dataset {name!r}; expected 'geant' or 'totem'")


def format_rows(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a simple fixed-width ASCII table."""
    columns = [str(h) for h in headers]
    text_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(column) for column in columns]
    for row in text_rows:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    line = "  ".join(column.ljust(widths[i]) for i, column in enumerate(columns))
    separator = "  ".join("-" * width for width in widths)
    body = [
        "  ".join(value.ljust(widths[i]) for i, value in enumerate(row)) for row in text_rows
    ]
    return "\n".join([line, separator, *body])


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_series_summary(label: str, values) -> str:
    """One-line min/mean/max summary of a numeric series."""
    import numpy as np

    array = np.asarray(values, dtype=float)
    finite = array[np.isfinite(array)]
    if finite.size == 0:
        return f"{label}: (no finite values)"
    return (
        f"{label}: min={finite.min():.3g} mean={finite.mean():.3g} "
        f"median={np.median(finite):.3g} max={finite.max():.3g}"
    )

"""Figure 7: the distributional tail of the preference values.

The complementary CDF of one week's fitted ``{P_i}`` is compared against
maximum-likelihood exponential and lognormal fits.  The paper finds the
lognormal (``mu ≈ -4.3``, ``sigma ≈ 1.7``) to approximate the tail far better
than the exponential, while cautioning that with only 22-23 points the fits
should not be over-interpreted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.characterization.distributions import (
    DistributionFit,
    compare_tail_fits,
    empirical_ccdf,
)
from repro.core.fitting import fit_stable_fp
from repro.experiments._common import format_rows, get_dataset

__all__ = ["PreferenceCCDFResult", "run_preference_ccdf"]


@dataclass(frozen=True)
class PreferenceCCDFResult:
    """Empirical CCDF of the fitted preferences and the two candidate fits.

    Attributes
    ----------
    dataset:
        Which dataset was used.
    preference:
        The fitted preference vector of the analysed week.
    ccdf_values, ccdf_probabilities:
        The empirical CCDF points (sorted values and tail probabilities).
    fits:
        The exponential and lognormal MLE fits keyed by name.
    lognormal_preferred:
        Whether the lognormal fit achieves the higher log-likelihood — the
        paper's qualitative conclusion.
    """

    dataset: str
    preference: np.ndarray
    ccdf_values: np.ndarray
    ccdf_probabilities: np.ndarray
    fits: dict[str, DistributionFit]
    lognormal_preferred: bool

    def format_table(self) -> str:
        rows = []
        for name, fit in self.fits.items():
            parameters = ", ".join(f"{k}={v:.3g}" for k, v in fit.parameters.items())
            rows.append([name, parameters, fit.log_likelihood, fit.ks_distance])
        table = format_rows(["distribution", "parameters", "log-likelihood", "KS distance"], rows)
        verdict = (
            "lognormal fits the tail better (matches the paper)"
            if self.lognormal_preferred
            else "exponential fits better (does NOT match the paper)"
        )
        return table + "\n" + verdict


def run_preference_ccdf(
    dataset: str = "geant",
    *,
    bins_per_week: int | None = None,
    full_scale: bool = False,
    week: int = 0,
) -> PreferenceCCDFResult:
    """Fit one week, compute the preference CCDF and compare tail models."""
    data = get_dataset(dataset, n_weeks=max(week + 1, 1), bins_per_week=bins_per_week, full_scale=full_scale)
    fit = fit_stable_fp(data.week(week))
    preference = fit.preference
    positive = preference[preference > 0]
    values, probabilities = empirical_ccdf(positive)
    fits = compare_tail_fits(positive)
    lognormal_preferred = fits["lognormal"].log_likelihood > fits["exponential"].log_likelihood
    return PreferenceCCDFResult(
        dataset=dataset,
        preference=preference,
        ccdf_values=values,
        ccdf_probabilities=probabilities,
        fits=fits,
        lognormal_preferred=bool(lognormal_preferred),
    )

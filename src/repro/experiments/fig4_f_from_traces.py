"""Figure 4: measuring ``f`` directly from bidirectional link traces.

The paper measures ``f`` for the (IPLS, CLEV) and (CLEV, IPLS) node pairs
from two-hour Abilene packet traces, per 5-minute bin, and draws three
conclusions: values in the 0.2-0.3 range are reasonable, the two directions
give similar values (spatial stability), and the values are stable over time.
This experiment runs the same measurement procedure
(:func:`repro.traces.matching.measure_forward_fraction`) on synthetic
bidirectional traces whose application mix targets the same aggregate ``f``,
and additionally reports the per-application forward fractions the paper
cites from earlier studies (web ≈ 0.06, p2p ≈ 0.35, interactive ≈ 0.05).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments._common import format_rows
from repro.traces.applications import DEFAULT_APPLICATION_MIX, aggregate_forward_fraction
from repro.traces.matching import FMeasurement, measure_forward_fraction
from repro.traces.trace_generator import BidirectionalTraceGenerator

__all__ = ["FTraceResult", "run_f_from_traces"]


@dataclass(frozen=True)
class FTraceResult:
    """Outcome of the Figure 4 measurement.

    Attributes
    ----------
    measurement:
        The per-bin measurement (both directions).
    true_f_a, true_f_b:
        Ground-truth aggregate ``f`` of connections initiated at each node
        (available because the trace is synthetic).
    per_application_f:
        Expected per-application forward fractions of the generating mix.
    """

    measurement: FMeasurement
    true_f_a: float
    true_f_b: float
    per_application_f: dict[str, float]

    @property
    def mean_measured_f(self) -> tuple[float, float]:
        return self.measurement.mean_f()

    def format_table(self) -> str:
        mean_ab, mean_ba = self.measurement.mean_f()
        std_ab, std_ba = self.measurement.temporal_spread()
        rows = [
            [f"measured f ({self.measurement.node_a}->{self.measurement.node_b})", mean_ab],
            [f"measured f ({self.measurement.node_b}->{self.measurement.node_a})", mean_ba],
            ["temporal std (a->b)", std_ab],
            ["temporal std (b->a)", std_ba],
            ["spatial gap |f_ab - f_ba|", self.measurement.spatial_gap()],
            ["unknown traffic fraction", self.measurement.unknown_fraction],
            ["true f (a-initiated)", self.true_f_a],
            ["true f (b-initiated)", self.true_f_b],
        ]
        rows.extend([f"application f: {name}", value] for name, value in self.per_application_f.items())
        rows.append(["aggregate mix f (expected)", aggregate_forward_fraction()])
        return format_rows(["quantity", "value"], rows)


def run_f_from_traces(
    *,
    duration_seconds: float = 7200.0,
    bin_seconds: float = 300.0,
    connections_per_hour: int = 3000,
    seed: int = 5,
) -> FTraceResult:
    """Generate an Abilene-like trace pair and measure ``f`` per bin.

    The defaults mirror the paper's two-hour window with 5-minute bins.
    """
    generator = BidirectionalTraceGenerator(
        "IPLS", "CLEV", connections_per_hour=connections_per_hour, seed=seed
    )
    pair = generator.generate(duration_seconds)
    measurement = measure_forward_fraction(pair, bin_seconds=bin_seconds)
    per_application = {
        profile.name: profile.expected_forward_fraction for profile in DEFAULT_APPLICATION_MIX
    }
    return FTraceResult(
        measurement=measurement,
        true_f_a=pair.true_forward_fraction(pair.node_a),
        true_f_b=pair.true_forward_fraction(pair.node_b),
        per_application_f=per_application,
    )

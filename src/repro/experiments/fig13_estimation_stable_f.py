"""Figure 13: TM estimation when only ``f`` is known (Section 6.3).

The stable-f prior assumes the operator knows only the forward fraction
(e.g. from a one-off trace study such as Figure 4); both activity and
preference are recovered per bin from the ingress/egress counts via the
closed forms of Eqs. 11-12.  The paper reports modest but positive gains:
around 8 % on Geant and only 1-2 % on Totem — the weakest of the three IC
priors, but still preferable to the gravity prior.
"""

from __future__ import annotations

from repro.core.priors import StableFPrior
from repro.experiments._common import get_dataset
from repro.experiments._estimation import EstimationComparison, run_prior_comparison

__all__ = ["run_estimation_stable_f"]


def run_estimation_stable_f(
    dataset: str = "geant",
    *,
    bins_per_week: int | None = None,
    full_scale: bool = False,
    calibration_week: int = 0,
    target_week: int = 1,
    max_bins: int | None = 48,
    measurement_noise: float = 0.01,
    measured_forward_fraction: float | None = None,
) -> EstimationComparison:
    """Run the Figure 13 experiment: only ``f`` is carried over from calibration.

    In the paper ``f`` comes from a direct trace measurement (the Figure 4
    procedure), not from a traffic-matrix fit.  By default this experiment
    therefore uses the dataset's generating forward fraction — exactly the
    value a trace measurement on this synthetic traffic returns — as the
    "measured" ``f``; pass ``measured_forward_fraction`` to study sensitivity
    to a mis-measured value, or set it to the calibration-week fit to study
    the fully inference-driven variant.
    """
    n_weeks = max(calibration_week, target_week) + 1
    data = get_dataset(dataset, n_weeks=n_weeks, bins_per_week=bins_per_week, full_scale=full_scale)
    target = data.week(target_week)
    if measured_forward_fraction is None:
        measured_f = float(data.ground_truths[calibration_week].forward_fraction)
    else:
        measured_f = float(measured_forward_fraction)
    prior_builder = StableFPrior(measured_f)

    def build_prior(system):
        return prior_builder.series(
            system.ingress, system.egress, nodes=target.nodes, bin_seconds=target.bin_seconds
        )

    return run_prior_comparison(
        data,
        target,
        build_prior,
        dataset_name=dataset,
        scenario="stable-f",
        measurement_noise=measurement_noise,
        max_bins=max_bins,
    )

"""Figure 13: TM estimation when only ``f`` is known (Section 6.3).

The stable-f prior assumes the operator knows only the forward fraction
(e.g. from a one-off trace study such as Figure 4); both activity and
preference are recovered per bin from the ingress/egress counts via the
closed forms of Eqs. 11-12.  The paper reports modest but positive gains:
around 8 % on Geant and only 1-2 % on Totem — the weakest of the three IC
priors, but still preferable to the gravity prior.

The driver is a thin wrapper over the Scenario API around the registered
``"stable_f"`` prior.
"""

from __future__ import annotations

from repro.experiments._estimation import EstimationComparison, comparison_from_result
from repro.scenarios import Scenario, ScenarioRunner

__all__ = ["run_estimation_stable_f"]


def run_estimation_stable_f(
    dataset: str = "geant",
    *,
    bins_per_week: int | None = None,
    full_scale: bool = False,
    calibration_week: int = 0,
    target_week: int = 1,
    max_bins: int | None = 48,
    measurement_noise: float = 0.01,
    measured_forward_fraction: float | None = None,
    stream: bool = False,
    chunk_bins: int | None = None,
) -> EstimationComparison:
    """Run the Figure 13 experiment: only ``f`` is carried over from calibration.

    In the paper ``f`` comes from a direct trace measurement (the Figure 4
    procedure), not from a traffic-matrix fit.  By default this experiment
    therefore uses the dataset's generating forward fraction — exactly the
    value a trace measurement on this synthetic traffic returns — as the
    "measured" ``f``; pass ``measured_forward_fraction`` to study sensitivity
    to a mis-measured value, or set it to the calibration-week fit to study
    the fully inference-driven variant.
    """
    scenario = Scenario(
        dataset=dataset,
        prior="stable_f",
        calibration_week=calibration_week,
        target_week=target_week,
        bins_per_week=bins_per_week,
        full_scale=full_scale,
        max_bins=max_bins,
        measurement_noise=measurement_noise,
        measured_forward_fraction=measured_forward_fraction,
        stream=stream,
        chunk_bins=chunk_bins,
        name=f"fig13/{dataset}",
    )
    return comparison_from_result(ScenarioRunner().run(scenario))

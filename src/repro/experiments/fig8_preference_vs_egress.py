"""Figure 8: preference versus normalised egress volume.

The paper plots each node's fitted ``P_i`` against its mean normalised egress
count ``X_{*i}/X_{**}`` and observes that, above the median traffic level,
egress volume is a poor predictor of preference — i.e. preference carries
information the marginals alone do not.  The paper also reports (Section 5.4)
that preference shows no correlation with mean activity.  This experiment
computes both comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.characterization.stability import correlation
from repro.core.fitting import fit_stable_fp
from repro.experiments._common import format_rows, get_dataset

__all__ = ["PreferenceVsEgressResult", "run_preference_vs_egress"]


@dataclass(frozen=True)
class PreferenceVsEgressResult:
    """Per-node preference and normalised egress, with correlation summaries.

    Attributes
    ----------
    dataset:
        Which dataset was used.
    preference:
        Fitted ``P_i`` per node.
    normalized_egress:
        Mean ``X_{*i}/X_{**}`` per node.
    correlation_all:
        Pearson correlation between preference and normalised egress over all
        nodes.
    correlation_above_median:
        Same, restricted to nodes whose egress exceeds the median (the regime
        where the paper finds little correlation).
    preference_activity_correlation:
        Correlation between preference and mean fitted activity (the paper
        finds none).
    """

    dataset: str
    preference: np.ndarray
    normalized_egress: np.ndarray
    correlation_all: float
    correlation_above_median: float
    preference_activity_correlation: float

    def format_table(self) -> str:
        order = np.argsort(self.normalized_egress)[::-1]
        rows = [
            [f"node {int(i)}", self.normalized_egress[i], self.preference[i]]
            for i in order[: min(10, order.size)]
        ]
        table = format_rows(["node (top by egress)", "mean egress share", "fitted P"], rows)
        summary = format_rows(
            ["quantity", "value"],
            [
                ["corr(P, egress share), all nodes", self.correlation_all],
                ["corr(P, egress share), above-median nodes", self.correlation_above_median],
                ["corr(P, mean activity)", self.preference_activity_correlation],
            ],
        )
        return table + "\n\n" + summary


def run_preference_vs_egress(
    dataset: str = "geant",
    *,
    bins_per_week: int | None = None,
    full_scale: bool = False,
    week: int = 0,
) -> PreferenceVsEgressResult:
    """Compare fitted preference with normalised egress counts for one week."""
    data = get_dataset(dataset, n_weeks=max(week + 1, 1), bins_per_week=bins_per_week, full_scale=full_scale)
    series = data.week(week)
    fit = fit_stable_fp(series)
    egress_share = series.egress.mean(axis=0)
    egress_share = egress_share / egress_share.sum()
    preference = fit.preference
    median = float(np.median(egress_share))
    above = egress_share >= median
    corr_above = correlation(preference[above], egress_share[above]) if above.sum() >= 2 else 0.0
    mean_activity = fit.activity.mean(axis=0)
    return PreferenceVsEgressResult(
        dataset=dataset,
        preference=preference,
        normalized_egress=egress_share,
        correlation_all=correlation(preference, egress_share),
        correlation_above_median=corr_above,
        preference_activity_correlation=correlation(preference, mean_activity),
    )

"""Experiment drivers: one module per figure of the paper's evaluation.

Every experiment exposes a ``run_*`` function taking keyword parameters with
fast defaults (reduced bin counts) and a ``full_scale`` switch for the
paper-sized workload.  Results are small dataclasses with a ``format_table()``
method producing the ASCII equivalent of the paper's figure, so the benchmark
harness and the CLI can print directly comparable output.

Each driver is registered in :data:`repro.registry.EXPERIMENTS_REGISTRY`
under its figure identifier with an ``accepts`` metadata tuple naming the
CLI-settable knobs it understands; ``python -m repro run <id>`` runs one
from the command line.  The estimation figures (11-13) are thin wrappers
over :mod:`repro.scenarios`.  :data:`EXPERIMENTS` remains as the plain
name → function mapping.
"""

from repro.experiments.example_network import run_example_network
from repro.experiments.fig3_model_fit import run_model_fit
from repro.experiments.fig4_f_from_traces import run_f_from_traces
from repro.experiments.fig5_f_stability import run_f_stability
from repro.experiments.fig6_preference_stability import run_preference_stability
from repro.experiments.fig7_preference_ccdf import run_preference_ccdf
from repro.experiments.fig8_preference_vs_egress import run_preference_vs_egress
from repro.experiments.fig9_activity_timeseries import run_activity_timeseries
from repro.experiments.fig10_routing_asymmetry import run_routing_asymmetry
from repro.experiments.fig11_estimation_measured import run_estimation_measured
from repro.experiments.fig12_estimation_stable_fp import run_estimation_stable_fp
from repro.experiments.fig13_estimation_stable_f import run_estimation_stable_f
from repro.registry import EXPERIMENTS_REGISTRY

_DATASET_KNOBS = ("dataset", "bins_per_week", "full_scale")
_STREAMING_KNOBS = _DATASET_KNOBS + ("stream", "chunk_bins")

# identifier -> (driver, description, CLI-settable keyword parameters)
_EXPERIMENT_SPECS = {
    "fig2": (run_example_network, "Example network conditional egress probabilities", ()),
    "fig3": (run_model_fit, "IC model fit quality vs the gravity model", _DATASET_KNOBS),
    "fig4": (run_f_from_traces, "Forward fraction f measured from packet traces", ()),
    "fig5": (run_f_stability, "Week-over-week stability of f", _DATASET_KNOBS),
    "fig6": (run_preference_stability, "Week-over-week stability of the preference vector", _DATASET_KNOBS),
    "fig7": (run_preference_ccdf, "CCDF of preference values vs lognormal/exponential", _DATASET_KNOBS),
    "fig8": (run_preference_vs_egress, "Preference vs egress share (little correlation)", _DATASET_KNOBS),
    "fig9": (run_activity_timeseries, "Diurnal/weekly activity time series", _DATASET_KNOBS),
    "fig10": (run_routing_asymmetry, "Simplified-model degradation under routing asymmetry", ()),
    "fig11": (run_estimation_measured, "TM estimation, all IC parameters measured (Section 6.1)", _STREAMING_KNOBS),
    "fig12": (run_estimation_stable_fp, "TM estimation, f and P from a previous week (Section 6.2)", _STREAMING_KNOBS),
    "fig13": (run_estimation_stable_f, "TM estimation, only f known (Section 6.3)", _STREAMING_KNOBS),
}

for _name, (_runner, _description, _accepts) in _EXPERIMENT_SPECS.items():
    if _name not in EXPERIMENTS_REGISTRY:
        EXPERIMENTS_REGISTRY.register(
            _name, _runner, description=_description, metadata={"accepts": _accepts}
        )

EXPERIMENTS = {name: spec[0] for name, spec in _EXPERIMENT_SPECS.items()}

__all__ = [
    "EXPERIMENTS",
    "run_example_network",
    "run_model_fit",
    "run_f_from_traces",
    "run_f_stability",
    "run_preference_stability",
    "run_preference_ccdf",
    "run_preference_vs_egress",
    "run_activity_timeseries",
    "run_routing_asymmetry",
    "run_estimation_measured",
    "run_estimation_stable_fp",
    "run_estimation_stable_f",
]

"""Experiment drivers: one module per figure of the paper's evaluation.

Every experiment exposes a ``run_*`` function taking keyword parameters with
fast defaults (reduced bin counts) and a ``full_scale`` switch for the
paper-sized workload.  Results are small dataclasses with a ``format_table()``
method producing the ASCII equivalent of the paper's figure, so the benchmark
harness and the CLI can print directly comparable output.

The :data:`EXPERIMENTS` registry maps experiment identifiers (``"fig3"``,
``"fig11"``, ...) to their run functions; ``python -m repro.cli <id>`` runs
one from the command line.
"""

from repro.experiments.example_network import run_example_network
from repro.experiments.fig3_model_fit import run_model_fit
from repro.experiments.fig4_f_from_traces import run_f_from_traces
from repro.experiments.fig5_f_stability import run_f_stability
from repro.experiments.fig6_preference_stability import run_preference_stability
from repro.experiments.fig7_preference_ccdf import run_preference_ccdf
from repro.experiments.fig8_preference_vs_egress import run_preference_vs_egress
from repro.experiments.fig9_activity_timeseries import run_activity_timeseries
from repro.experiments.fig10_routing_asymmetry import run_routing_asymmetry
from repro.experiments.fig11_estimation_measured import run_estimation_measured
from repro.experiments.fig12_estimation_stable_fp import run_estimation_stable_fp
from repro.experiments.fig13_estimation_stable_f import run_estimation_stable_f

EXPERIMENTS = {
    "fig2": run_example_network,
    "fig3": run_model_fit,
    "fig4": run_f_from_traces,
    "fig5": run_f_stability,
    "fig6": run_preference_stability,
    "fig7": run_preference_ccdf,
    "fig8": run_preference_vs_egress,
    "fig9": run_activity_timeseries,
    "fig10": run_routing_asymmetry,
    "fig11": run_estimation_measured,
    "fig12": run_estimation_stable_fp,
    "fig13": run_estimation_stable_f,
}

__all__ = [
    "EXPERIMENTS",
    "run_example_network",
    "run_model_fit",
    "run_f_from_traces",
    "run_f_stability",
    "run_preference_stability",
    "run_preference_ccdf",
    "run_preference_vs_egress",
    "run_activity_timeseries",
    "run_routing_asymmetry",
    "run_estimation_measured",
    "run_estimation_stable_fp",
    "run_estimation_stable_f",
]

"""Figure 2 / Section 3 worked example: why packet independence fails.

The paper's three-node example has node A initiating 3 connections of 100
packets in each direction, node B 3 connections of 2 packets each way and
node C 3 connections of 1 packet each way, with every node equally likely to
be the responder.  Even though *connections* are independent, the resulting
packet-level conditional probabilities ``P[E = A | I = x]`` differ wildly from
the marginal ``P[E = A]`` — the quantities the paper lists as ≈0.50, ≈0.93,
≈0.95 versus ≈0.65.  This experiment reconstructs the example's traffic
matrix from the IC decomposition and reports those probabilities.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments._common import format_rows

__all__ = ["ExampleNetworkResult", "run_example_network"]


@dataclass(frozen=True)
class ExampleNetworkResult:
    """Outcome of the Figure 2 worked example.

    Attributes
    ----------
    traffic_matrix:
        The 3x3 packet-count matrix of the example (including self-loops).
    conditional_egress_given_ingress:
        ``P[E = A | I = x]`` for x in A, B, C.
    marginal_egress:
        ``P[E = A]``.
    gravity_would_predict_equal:
        Whether the gravity model's prediction (all conditionals equal to the
        marginal) holds — expected to be False.
    """

    traffic_matrix: np.ndarray
    conditional_egress_given_ingress: dict[str, float]
    marginal_egress: float
    gravity_would_predict_equal: bool

    def format_table(self) -> str:
        rows = [
            [f"P[E=A | I={node}]", probability]
            for node, probability in self.conditional_egress_given_ingress.items()
        ]
        rows.append(["P[E=A]", self.marginal_egress])
        return format_rows(["quantity", "value"], rows)


def run_example_network() -> ExampleNetworkResult:
    """Reconstruct the Figure 2 example and its packet-level probabilities."""
    nodes = ("A", "B", "C")
    # Connection volumes per initiator (packets per direction, per connection):
    # each node initiates one connection to every node (including itself).
    per_connection = {"A": 100.0, "B": 2.0, "C": 1.0}
    n = len(nodes)
    matrix = np.zeros((n, n))
    for i, initiator in enumerate(nodes):
        volume = per_connection[initiator]
        for j in range(n):
            # forward traffic initiator -> responder
            matrix[i, j] += volume
            # reverse traffic responder -> initiator
            matrix[j, i] += volume
    # Total ingress at a node = all traffic entering the network there = row sum.
    total = matrix.sum()
    egress_a = matrix[:, 0]
    ingress_totals = matrix.sum(axis=1)
    conditionals = {
        node: float(egress_a[i] / ingress_totals[i]) for i, node in enumerate(nodes)
    }
    marginal = float(matrix[:, 0].sum() / total)
    spread = max(conditionals.values()) - min(conditionals.values())
    return ExampleNetworkResult(
        traffic_matrix=matrix,
        conditional_egress_given_ingress=conditionals,
        marginal_egress=marginal,
        gravity_would_predict_equal=bool(spread < 1e-9),
    )

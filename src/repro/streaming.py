"""The chunked dataset protocol: bounded-memory traffic-matrix streams.

The paper's method is defined per 15-minute bin over multi-week series, but
until this module every consumer materialised whole ``(T, n, n)`` cubes.  A
:class:`ChunkStream` instead yields ``(t0, block)`` pairs where ``block`` is
the ``(T_chunk, n, n)`` traffic of bins ``[t0, t0 + T_chunk)``, together with
the metadata (``n_bins``, ``n_nodes``, node names, bin width) consumers need
up front.  Streams are **re-iterable**: every call to :meth:`ChunkStream.chunks`
starts a fresh pass, so multi-pass algorithms (ALS fitting, prior + estimate
passes) work without ever holding more than one chunk of ``n^2``-sized data.

Two concrete streams cover the common cases:

* :class:`ArrayChunkStream` adapts an in-memory array or
  :class:`~repro.core.traffic_matrix.TrafficMatrixSeries` (chunks are views,
  nothing is copied), and
* :class:`FunctionChunkStream` wraps a factory of chunk iterators (used by
  the synthesis layer, where chunks are generated on the fly from
  deterministic per-chunk RNG state).

:func:`as_chunk_stream` is the one shared adapter through which every
consumer — fitting, metrics, estimators, the scenario runner — accepts either
a cube or a stream.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.core.traffic_matrix import TrafficMatrixSeries
from repro.errors import ShapeError, ValidationError

__all__ = [
    "ChunkStream",
    "ArrayChunkStream",
    "FunctionChunkStream",
    "CachedChunkStream",
    "as_chunk_stream",
    "cache_chunks",
    "iter_chunks",
    "default_chunk_bins",
    "zip_chunks",
]

# Default working-set budget for one chunk of (T_chunk, n, n) traffic.  At
# Geant scale (n=22) this is ~540 bins per chunk; at n=100 it is ~26 bins.
_DEFAULT_CHUNK_BYTES = 2 * 1024 * 1024


def default_chunk_bins(n_nodes: int, *, budget_bytes: int = _DEFAULT_CHUNK_BYTES) -> int:
    """Chunk length (in bins) whose ``(chunk, n, n)`` block fits the budget."""
    if n_nodes < 1:
        raise ValidationError("n_nodes must be >= 1")
    per_bin = max(int(n_nodes) * int(n_nodes) * 8, 1)
    return max(int(budget_bytes) // per_bin, 1)


class ChunkStream:
    """Base class of the chunked dataset protocol.

    Attributes
    ----------
    n_bins, n_nodes:
        Total number of time bins and network size, known before iteration.
    nodes:
        Node names shared by every chunk.
    bin_seconds:
        Bin width shared by every chunk.
    chunk_bins:
        Nominal chunk length; the final chunk of a pass may be shorter.
    """

    def __init__(
        self,
        *,
        n_bins: int,
        nodes: Sequence[str],
        bin_seconds: float,
        chunk_bins: int | None = None,
    ):
        if n_bins < 1:
            raise ValidationError("a chunk stream needs at least one bin")
        if bin_seconds <= 0:
            raise ValidationError("bin_seconds must be positive")
        self._n_bins = int(n_bins)
        self._nodes = tuple(str(node) for node in nodes)
        self._bin_seconds = float(bin_seconds)
        chunk = default_chunk_bins(len(self._nodes)) if chunk_bins is None else int(chunk_bins)
        if chunk < 1:
            raise ValidationError("chunk_bins must be >= 1")
        self._chunk_bins = min(chunk, self._n_bins)

    @property
    def n_bins(self) -> int:
        return self._n_bins

    @property
    def n_nodes(self) -> int:
        return len(self._nodes)

    @property
    def nodes(self) -> tuple[str, ...]:
        return self._nodes

    @property
    def bin_seconds(self) -> float:
        return self._bin_seconds

    @property
    def chunk_bins(self) -> int:
        return self._chunk_bins

    def chunk_bounds(self) -> Iterator[tuple[int, int]]:
        """The ``(start, stop)`` bin ranges a pass will yield, in order."""
        for start in range(0, self._n_bins, self._chunk_bins):
            yield start, min(start + self._chunk_bins, self._n_bins)

    def chunks(self) -> Iterator[tuple[int, np.ndarray]]:
        """Yield ``(t0, (T_chunk, n, n))`` blocks covering ``[0, n_bins)``."""
        raise NotImplementedError

    # -- derived conveniences ------------------------------------------------

    def materialize(self) -> TrafficMatrixSeries:
        """Assemble the whole stream into an in-memory series (O(T) memory)."""
        values = np.empty((self._n_bins, self.n_nodes, self.n_nodes))
        for t0, block in self.chunks():
            values[t0 : t0 + block.shape[0]] = block
        return TrafficMatrixSeries(values, self._nodes, bin_seconds=self._bin_seconds)

    def marginals(self) -> tuple[np.ndarray, np.ndarray]:
        """One-pass ``(ingress, egress)`` series, each of shape ``(T, n)``."""
        n = self.n_nodes
        ingress = np.empty((self._n_bins, n))
        egress = np.empty((self._n_bins, n))
        for t0, block in self.chunks():
            stop = t0 + block.shape[0]
            ingress[t0:stop] = block.sum(axis=2)
            egress[t0:stop] = block.sum(axis=1)
        return ingress, egress


class ArrayChunkStream(ChunkStream):
    """Adapter exposing an in-memory cube through the chunk protocol.

    Chunks are views into the underlying array — adapting a cube costs no
    copies, which is what lets batch and streaming code share one code path.
    """

    def __init__(
        self,
        values,
        nodes: Sequence[str] | None = None,
        *,
        bin_seconds: float = 300.0,
        chunk_bins: int | None = None,
    ):
        if isinstance(values, TrafficMatrixSeries):
            nodes = values.nodes if nodes is None else nodes
            bin_seconds = values.bin_seconds
            values = values.values
        array = np.asarray(values, dtype=float)
        if array.ndim != 3 or array.shape[1] != array.shape[2]:
            raise ShapeError(f"chunk stream values must have shape (T, n, n), got {array.shape}")
        if nodes is None:
            nodes = tuple(f"node{i:02d}" for i in range(array.shape[1]))
        if len(tuple(nodes)) != array.shape[1]:
            raise ShapeError("nodes must match the array dimension")
        super().__init__(
            n_bins=array.shape[0], nodes=nodes, bin_seconds=bin_seconds, chunk_bins=chunk_bins
        )
        self._values = array

    def chunks(self) -> Iterator[tuple[int, np.ndarray]]:
        for start, stop in self.chunk_bounds():
            yield start, self._values[start:stop]


class FunctionChunkStream(ChunkStream):
    """A re-iterable stream backed by a factory of chunk iterators.

    ``factory`` is called once per pass with the resolved ``chunk_bins`` and
    must return an iterator of ``(t0, block)`` pairs covering ``[0, n_bins)``
    in order.  The synthesis layer uses this to regenerate chunks from
    deterministic RNG state on every pass.
    """

    def __init__(
        self,
        factory: Callable[[int], Iterable[tuple[int, np.ndarray]]],
        *,
        n_bins: int,
        nodes: Sequence[str],
        bin_seconds: float,
        chunk_bins: int | None = None,
    ):
        super().__init__(
            n_bins=n_bins, nodes=nodes, bin_seconds=bin_seconds, chunk_bins=chunk_bins
        )
        self._factory = factory

    def chunks(self) -> Iterator[tuple[int, np.ndarray]]:
        covered = 0
        for t0, block in self._factory(self._chunk_bins):
            if t0 != covered:
                raise ValidationError(
                    f"chunk stream skipped bins: expected chunk at t0={covered}, got t0={t0}"
                )
            covered += block.shape[0]
            yield t0, block
        if covered != self._n_bins:
            raise ValidationError(
                f"chunk stream ended early: covered {covered} of {self._n_bins} bins"
            )


class CachedChunkStream(ChunkStream):
    """A budget-bounded replay cache in front of a generative stream.

    Multi-pass consumers (the streaming ALS fit makes two passes per
    iteration) otherwise regenerate every chunk on every pass.  This wrapper
    stores the blocks of the first pass — verbatim, so replayed passes are
    bit-identical — until ``budget_bytes`` is reached; blocks beyond the
    budget are regenerated from the inner stream on every pass.  Peak memory
    is therefore bounded by ``budget_bytes`` plus one chunk, never by the
    series length.

    Wrapping an :class:`ArrayChunkStream` is a no-op at the
    :func:`cache_chunks` level (its chunks are already free views); wrapping
    copies nothing eagerly — the cache fills as the first pass progresses.

    Passes may be interleaved: a second iterator started while the first is
    mid-pass serves whatever prefix is cached and regenerates the rest from
    the inner stream without ever appending to the cache itself (only one
    in-flight pass fills), so concurrent multi-pass readers see complete,
    duplicate-free, bit-identical sequences.
    """

    def __init__(self, inner: ChunkStream, *, budget_bytes: int):
        if budget_bytes < 0:
            raise ValidationError("budget_bytes must be non-negative")
        super().__init__(
            n_bins=inner.n_bins,
            nodes=inner.nodes,
            bin_seconds=inner.bin_seconds,
            chunk_bins=inner.chunk_bins,
        )
        self._inner = inner
        self._budget = int(budget_bytes)
        self._cached: list[tuple[int, np.ndarray]] = []
        self._cached_bytes = 0
        self._cached_bins = 0
        self._full = self._budget == 0
        self._filling = False

    @property
    def cached_bins(self) -> int:
        """Number of leading bins currently held by the cache."""
        return self._cached_bins

    def chunks(self) -> Iterator[tuple[int, np.ndarray]]:
        # ``served`` tracks what THIS pass has yielded; concurrent passes may
        # grow the shared cache underneath us, and a pass must never use the
        # global high-water mark to decide what it may skip.
        served = 0
        for t0, block in self._cached:
            served = t0 + block.shape[0]
            yield t0, block
        if served >= self._n_bins:
            return
        # Only one in-flight pass extends the cache: a concurrent second
        # reader regenerating the same chunks must not append duplicates.
        fill = not self._filling
        if fill:
            self._filling = True
        try:
            for t0, block in self._inner.chunks():
                if t0 + block.shape[0] <= served:
                    continue  # already served from the cache by this pass
                if fill and not self._full and t0 >= self._cached_bins:
                    if (
                        t0 == self._cached_bins
                        and self._cached_bytes + block.nbytes <= self._budget
                    ):
                        self._cached.append((t0, block))
                        self._cached_bytes += block.nbytes
                        self._cached_bins = t0 + block.shape[0]
                    else:
                        self._full = True
                served = t0 + block.shape[0]
                yield t0, block
        finally:
            if fill:
                self._filling = False


def cache_chunks(source, *, budget_bytes: int | None) -> ChunkStream:
    """Wrap ``source`` in a :class:`CachedChunkStream` when it would help.

    ``budget_bytes=None`` (or 0) disables caching; array-backed streams are
    returned untouched because their chunks are already zero-cost views.
    """
    stream = as_chunk_stream(source)
    if not budget_bytes or isinstance(stream, (ArrayChunkStream, CachedChunkStream)):
        return stream
    return CachedChunkStream(stream, budget_bytes=budget_bytes)


def as_chunk_stream(
    source,
    *,
    chunk_bins: int | None = None,
    bin_seconds: float | None = None,
) -> ChunkStream:
    """The shared adapter: coerce ``source`` into a :class:`ChunkStream`.

    Accepts an existing stream (re-wrapped only if ``chunk_bins`` differs and
    the stream is an array adapter), a :class:`TrafficMatrixSeries`, or a
    ``(T, n, n)`` array.  This is the single entry point through which every
    consumer of ``SyntheticDataset.series`` accepts either a cube or a stream.
    """
    if isinstance(source, ChunkStream):
        if chunk_bins is not None and chunk_bins != source.chunk_bins:
            if isinstance(source, ArrayChunkStream):
                return ArrayChunkStream(
                    source._values,
                    source.nodes,
                    bin_seconds=source.bin_seconds,
                    chunk_bins=chunk_bins,
                )
            raise ValidationError(
                "cannot re-chunk a generative stream; pass chunk_bins where it is created"
            )
        return source
    if isinstance(source, TrafficMatrixSeries):
        return ArrayChunkStream(source, chunk_bins=chunk_bins)
    return ArrayChunkStream(
        source,
        bin_seconds=300.0 if bin_seconds is None else bin_seconds,
        chunk_bins=chunk_bins,
    )


def iter_chunks(source, *, chunk_bins: int | None = None) -> Iterator[tuple[int, np.ndarray]]:
    """One pass of ``(t0, block)`` chunks over any cube or stream."""
    return as_chunk_stream(source, chunk_bins=chunk_bins).chunks()


def _stream_label(streams, index: int) -> str:
    return f"stream #{index} ({type(streams[index]).__name__})"


def zip_chunks(*streams: ChunkStream) -> Iterator[tuple[int, tuple[np.ndarray, ...]]]:
    """Iterate several equal-length streams in lock step.

    All streams must agree on ``n_bins`` and on chunk boundaries (wrap array
    sources with the same ``chunk_bins``); yields ``(t0, (block, ...))``.
    Disagreements raise :class:`ValidationError` (a ``ValueError``) naming
    the offending streams — including a stream whose iterator ends before
    the others, which a plain ``zip`` would silently truncate to.
    """
    import itertools

    if not streams:
        raise ValidationError("zip_chunks needs at least one stream")
    lengths = {stream.n_bins for stream in streams}
    if len(lengths) != 1:
        raise ValidationError(f"streams disagree on n_bins: {sorted(lengths)}")
    iterators = [stream.chunks() for stream in streams]
    exhausted = object()
    for parts in itertools.zip_longest(*iterators, fillvalue=exhausted):
        done = [i for i, part in enumerate(parts) if part is exhausted]
        if done:
            alive = [i for i in range(len(parts)) if i not in done]
            raise ValidationError(
                "streams ended at different chunk counts: "
                + ", ".join(_stream_label(streams, i) for i in done)
                + " exhausted while "
                + ", ".join(_stream_label(streams, i) for i in alive)
                + " still yields chunks; refusing to truncate the longer stream(s)"
            )
        t0 = parts[0][0]
        size = parts[0][1].shape[0]
        for index, (other_t0, block) in enumerate(parts[1:], start=1):
            if other_t0 != t0 or block.shape[0] != size:
                raise ValidationError(
                    f"streams disagree on chunk boundaries: {_stream_label(streams, 0)} "
                    f"yields bins [{t0}, {t0 + size}) but {_stream_label(streams, index)} "
                    f"yields [{other_t0}, {other_t0 + block.shape[0]}); create them "
                    "with the same chunk_bins"
                )
        yield t0, tuple(block for _, block in parts)

"""Execute scenarios: one, a batch, or a full component grid.

:class:`ScenarioRunner` replays the estimation protocol shared by the
paper's Figures 11-13 for any registered (dataset, prior, estimator)
combination:

1. build (or fetch from the shared cache) the dataset at the requested
   scale,
2. simulate the target week's measurements over the topology,
3. build the scenario's prior and — unless disabled — the gravity baseline
   prior from the same measurements,
4. run both through the estimator, and
5. record per-bin errors, the per-bin improvement over the baseline, and
   per-stage timing.

Grid sweeps run on a shared-plan scheduler: every dataset column is
synthesized (or, for streaming cells, *planned* — spatial draws, activity
series and eagerly checkpointed noise-RNG states) exactly once in the
parent and shipped to the workers; cells are grouped by dataset column so
each worker's :class:`SweepSharedState` reuses the column's measurement
systems, gravity-baseline estimates and memoised streamed stable-fP fits
across the cells it runs.  *Where* the workers live is an executor choice
(:mod:`repro.scenarios.executors`): in this process, a local
``ProcessPoolExecutor`` fed over shared memory, or ``repro sweep-worker``
daemons on other machines fed plan state over TCP.  Results are
deterministic and bit-identical to the serial in-memory sweep under any
executor and worker count.
"""

from __future__ import annotations

import dataclasses
import os
import sys
import tempfile
import time
import warnings
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro._tables import format_rows
from repro.backend import use_backend
from repro.core.metrics import percent_improvement, summarize_improvement
from repro.core.priors import (
    STREAMING_PRIOR_BUILDERS,
    PriorContext,
    StreamingPriorContext,
)
from repro.core.traffic_matrix import TrafficMatrixSeries
from repro.errors import ValidationError
from repro.estimation.linear_system import simulate_link_loads, simulate_link_loads_streaming
from repro.obs import get_metrics, get_tracer, tracer_from_context, use_tracer, worker_context
from repro.registry import (
    DATASETS,
    ESTIMATORS,
    PRIORS,
    TOPOLOGIES,
    RegistryEntry,
    canonical_name,
)
from repro.scenarios.scenario import Scenario
from repro.scenarios.spill import SPILL_AUTO_MIN_BINS, SpillStore
from repro.synthesis.datasets import (
    load_dataset,
    open_dataset_stream,
    streaming_dataset_from_state,
)

__all__ = [
    "ScenarioResult",
    "ScenarioRunner",
    "SweepResult",
    "SweepSharedState",
    "run_scenario",
    "sweep",
    "FIT_CACHE_BYTES",
]

# Default replay-cache budget for multi-pass streaming fits (the stable-fP
# ALS makes 2 passes per iteration): chunks of the calibration series are
# regenerated once instead of once per pass, within this many bytes.  A
# full-scale Geant week is ~8 MiB, so paper-scale fits cache whole weeks
# while the budget still bounds the worst case.  Pass
# ``ScenarioRunner(fit_cache_bytes=None)`` for the strictly chunk-bounded
# pre-cache behaviour.
FIT_CACHE_BYTES = 64 * 1024 * 1024


def _peak_rss_mb() -> float | None:
    """Peak resident set size of this process in MiB (None when unavailable)."""
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    except (ImportError, ValueError, OSError):  # pragma: no cover - non-POSIX
        return None
    # ru_maxrss is kilobytes on Linux, bytes on macOS.
    if sys.platform == "darwin":  # pragma: no cover - platform-specific
        peak /= 1024.0
    return float(peak) / 1024.0


class SweepSharedState:
    """Per-process reuse caches for the cells of one sweep.

    Cells that share a dataset column, target week and measurement knobs
    solve against the *same* measurement system, and every cell compared
    against the same baseline prior re-derives the *same* baseline estimate.
    This object memoises both — keyed by the full value tuple that
    determines them — so a worker (or the serial path) computes each once
    per column instead of once per cell.  It also memoises streamed
    stable-fP fits (:meth:`fit`): overlapping-window grids, where many
    cells calibrate against the same week of the same plan, pay each
    distinct ALS fit once per worker instead of once per cell.  Reuse
    returns the identical arrays a fresh computation would produce — the
    streamed fit is deterministic in its inputs — so results are
    bit-identical to the unshared path; the ``*_builds`` counters exist so
    tests can prove the sharing actually happens.
    """

    def __init__(self):
        self.systems: dict[tuple, object] = {}
        self.baselines: dict[tuple, object] = {}
        self.fits: dict[tuple, object] = {}
        self.system_builds = 0
        self.baseline_builds = 0
        self.fit_builds = 0
        self._pinned: list = []

    def pin(self, anchor) -> None:
        """Keep ``anchor`` alive while this state exists.

        Cache keys embed ``id(anchor)`` (the dataset column's identity);
        pinning guarantees a recycled id can never alias a different
        column's entries for the lifetime of the sweep.
        """
        self._pinned.append(anchor)

    def _memo(self, cache: dict, key: tuple, build, kind: str):
        metrics = get_metrics()
        metrics.counter("repro_sweep_shared_requests_total", kind=kind).inc()
        cached = cache.get(key)
        if cached is None:
            cached = build()
            setattr(self, f"{kind}_builds", getattr(self, f"{kind}_builds") + 1)
            metrics.counter("repro_sweep_shared_builds_total", kind=kind).inc()
            cache[key] = cached
        return cached

    def system(self, key: tuple, build):
        return self._memo(self.systems, key, build, "system")

    def baseline(self, key: tuple, build):
        return self._memo(self.baselines, key, build, "baseline")

    def fit(self, key: tuple, build):
        return self._memo(self.fits, key, build, "fit")


@dataclass
class ScenarioResult:
    """Everything a scenario run produced.

    Attributes
    ----------
    scenario:
        The configuration that was executed.
    prior_label, baseline_label:
        Display names of the scenario prior and the baseline prior
        (``baseline_label`` is ``None`` when no baseline was run).
    estimate:
        The refined traffic-matrix estimate (``None`` for streaming runs,
        which deliberately never materialise the ``(T, n, n)`` estimate; the
        per-bin error series are the deliverable).
    errors, prior_errors:
        Per-bin relative L2 error of the estimate and of the raw prior.
        Spilled runs hold lazy :class:`~repro.scenarios.spill.SpilledSeries`
        handles here instead of arrays; they load from their ``.npz`` shards
        on first use.
    baseline_errors, baseline_prior_errors:
        Same two series for the baseline prior, when one was run.
    improvement:
        Per-bin percentage improvement over the baseline estimate.
    spilled:
        Extra out-of-core artifacts of a spilled run: with an explicit
        ``spill_dir``, the chunk-sharded ``(T, n, n)`` ``"estimate"`` cube
        (auto-spilled runs keep only the small error series on disk).
    timing:
        Seconds spent per stage: ``dataset``, ``prior``, ``estimation`` and
        ``total``, plus ``peak_rss_mb`` — the process's high-water resident
        set size after the run (the number the streaming pipeline bounds) —
        and ``spill_dir`` when the run spilled.
    """

    scenario: Scenario
    prior_label: str
    baseline_label: str | None
    estimate: TrafficMatrixSeries | None
    errors: np.ndarray
    prior_errors: np.ndarray
    baseline_errors: np.ndarray | None = None
    baseline_prior_errors: np.ndarray | None = None
    improvement: np.ndarray | None = None
    spilled: dict[str, object] = field(default_factory=dict)
    timing: dict[str, float] = field(default_factory=dict)

    @property
    def mean_error(self) -> float:
        """Mean per-bin error of the refined estimate."""
        return float(np.mean(np.asarray(self.errors)))

    @property
    def mean_improvement(self) -> float:
        """Mean per-bin improvement over the baseline estimate."""
        if self.improvement is None:
            raise ValidationError("scenario was run without a baseline prior")
        return float(np.mean(np.asarray(self.improvement)))

    def format_table(self) -> str:
        """ASCII summary mirroring the experiment drivers' tables."""
        rows: list[list[object]] = [
            ["scenario", self.scenario.label],
            ["dataset", self.scenario.dataset],
            ["prior", self.prior_label],
            ["estimator", self.scenario.estimator],
            ["bins estimated", int(self.errors.shape[0])],
            ["mean estimation error", self.mean_error],
            ["mean raw prior error", float(np.mean(np.asarray(self.prior_errors)))],
        ]
        if self.improvement is not None:
            summary = summarize_improvement(np.asarray(self.improvement))
            rows += [
                [f"mean estimation error ({self.baseline_label} baseline)",
                 float(np.mean(np.asarray(self.baseline_errors)))],
                ["mean improvement %", summary["mean"]],
                ["median improvement %", summary["median"]],
                ["25th-75th percentile improvement %",
                 f"{summary['p25']:.3g} .. {summary['p75']:.3g}"],
            ]
        if self.scenario.backend is not None:
            rows.append(["backend", self.scenario.backend])
        rows.append(["runtime (s)", self.timing.get("total", float("nan"))])
        if self.scenario.stream:
            rows.append(["streamed chunk bins", self.timing.get("chunk_bins", "auto")])
        if self.timing.get("spill_dir"):
            rows.append(["spill directory", self.timing["spill_dir"]])
        if self.timing.get("peak_rss_mb") is not None:
            rows.append(["peak RSS (MiB)", f"{self.timing['peak_rss_mb']:.1f}"])
        return format_rows(["quantity", "value"], rows)


class ScenarioRunner:
    """Executes :class:`Scenario` objects against the registries.

    Parameters
    ----------
    baseline_prior:
        Registered prior every run is compared against (default
        ``"gravity"``, the paper's baseline).  ``None`` disables the
        comparison, halving the estimation work.
    fit_cache_bytes:
        Replay-cache budget for multi-pass streaming fits (see
        :data:`FIT_CACHE_BYTES`); ``None`` keeps streamed prior fits
        strictly chunk-bounded, regenerating their chunks on every ALS pass
        (the pre-cache behaviour, used as the benchmark baseline).
    fit_memo:
        Memoise streamed stable-fP fits in the sweep's
        :class:`SweepSharedState`, keyed by the pinned plan identity, the
        fitted week and bin count, and the fit knobs, so overlapping-window
        grids pay each distinct fit once per worker instead of once per
        cell.  The fit is deterministic in those inputs, so reuse is
        bit-identical; ``False`` restores the per-cell re-fit (the
        benchmark baseline).  Single runs (no shared state) never memoise.
    """

    def __init__(
        self,
        *,
        baseline_prior: str | None = "gravity",
        fit_cache_bytes: int | None = FIT_CACHE_BYTES,
        fit_memo: bool = True,
    ):
        self._baseline = baseline_prior
        self._fit_cache_bytes = fit_cache_bytes
        self._fit_memo = fit_memo

    # -- week resolution ----------------------------------------------------

    @staticmethod
    def resolve_weeks(scenario: Scenario) -> tuple[int, int]:
        """The (calibration_week, target_week) pair a scenario will use.

        A missing ``target_week`` falls back to the prior's ``week_mode``
        metadata: ``"same"`` targets the calibration week, ``"next"`` the
        following week, and ``"gap"`` jumps the dataset's ``calibration_gap``
        (and must land on a different week, per Section 6.2).
        """
        prior_entry = PRIORS.entry(scenario.prior)
        mode = prior_entry.metadata.get("week_mode", "same")
        calibration = scenario.calibration_week
        if scenario.target_week is not None:
            target = scenario.target_week
        elif mode == "next":
            target = calibration + 1
        elif mode == "gap":
            dataset_entry = DATASETS.entry(scenario.dataset)
            target = calibration + int(dataset_entry.metadata.get("calibration_gap", 1))
        else:
            target = calibration
        if mode == "gap" and target == calibration:
            raise ValidationError("target_week must differ from calibration_week")
        return calibration, target

    @staticmethod
    def _resolve_topology(scenario: Scenario, data):
        """The topology the measurements are simulated over.

        Defaults to the dataset's own; an explicit override must be a
        no-argument registered factory whose node set matches the dataset's
        (the synthesized traffic is defined over those nodes).
        """
        if scenario.topology is None:
            return data.topology
        entry = TOPOLOGIES.entry(scenario.topology)
        if entry.metadata.get("parameterized"):
            raise ValidationError(
                f"topology {scenario.topology!r} takes parameters and cannot be "
                "used as a scenario override; register a concrete instance instead"
            )
        topology = entry.obj()
        if tuple(topology.nodes) != tuple(data.topology.nodes):
            raise ValidationError(
                f"topology {scenario.topology!r} has nodes {topology.nodes[:4]}... "
                f"({topology.n_nodes} PoPs) but dataset {scenario.dataset!r} "
                f"is defined over {data.topology.n_nodes} PoPs; node sets must match"
            )
        return topology

    # -- execution ----------------------------------------------------------

    @staticmethod
    def _weeks_to_synthesize(scenario: Scenario, calibration_week: int, target_week: int) -> int:
        return max(max(calibration_week, target_week) + 1, scenario.n_weeks or 0)

    def run(self, scenario: Scenario, *, dataset=None, shared: SweepSharedState | None = None) -> ScenarioResult:
        """Execute one scenario and return its :class:`ScenarioResult`.

        ``dataset`` optionally supplies a pre-built dataset covering the
        scenario's weeks: a materialised
        :class:`~repro.synthesis.datasets.SyntheticDataset` for in-memory
        runs, or a :class:`~repro.synthesis.datasets.StreamingDataset`
        (typically rebuilt from a shipped generation plan) for streaming
        runs; by default the shared :func:`load_dataset` /
        :func:`open_dataset_stream` caches are used.

        ``shared`` supplies the per-process :class:`SweepSharedState` the
        sweep scheduler uses to reuse measurement systems and baseline
        estimates across cells; single runs normally leave it ``None``.

        ``scenario.backend`` selects the compute backend for the run: the
        whole execution happens inside a :func:`repro.backend.use_backend`
        context, so prior fitting (``fit_stable_fp``) and the estimator's
        refinement/IPF stages run on that backend while synthesis stays on
        the host.
        """
        scenario.validate()
        started = time.perf_counter()
        with use_backend(scenario.backend):
            if scenario.stream:
                if dataset is not None and not hasattr(dataset, "week_stream"):
                    raise ValidationError(
                        "streaming scenarios regenerate chunks; pass dataset=None "
                        "or a pre-opened StreamingDataset"
                    )
                result = self._run_streaming(scenario, data=dataset, shared=shared)
            else:
                if dataset is not None and not hasattr(dataset, "weeks"):
                    raise ValidationError(
                        "in-memory scenarios need a materialised SyntheticDataset; "
                        "got a streaming dataset (set stream=True to use it)"
                    )
                result = self._run_in_memory(scenario, dataset=dataset, shared=shared)
        metrics = get_metrics()
        if metrics.enabled:
            mode = "stream" if scenario.stream else "memory"
            metrics.counter("repro_scenario_runs_total", mode=mode).inc()
            metrics.histogram("repro_scenario_run_seconds", mode=mode).observe(
                time.perf_counter() - started
            )
        return result

    # -- shared-state keys ---------------------------------------------------

    @staticmethod
    def _system_key(scenario: Scenario, target_week: int, data) -> tuple:
        """The value tuple determining a cell's simulated measurement system.

        The dataset column's identity is the generation *plan* for streaming
        datasets (wrapper objects are rebuilt per cell, the cached plan is
        what actually determines the traffic) and the dataset object itself
        for materialised ones; callers pin the anchor on the shared state so
        its id cannot be recycled.
        """
        return (
            scenario.stream,
            scenario.dataset,
            id(getattr(data, "plan", data)),
            scenario.bins_per_week,
            scenario.full_scale,
            scenario.dataset_seed,
            scenario.chunk_bins,
            target_week,
            scenario.max_bins,
            scenario.measurement_noise,
            scenario.seed,
            scenario.topology,
        )

    def _is_baseline_prior(self, scenario: Scenario) -> bool:
        """Whether the cell's scenario prior is the sweep's baseline prior."""
        return self._baseline is not None and scenario.prior == canonical_name(self._baseline)

    def _baseline_key(self, system_key: tuple, scenario: Scenario, calibration_week: int) -> tuple:
        """The value tuple determining a cell's baseline estimation result."""
        return (
            system_key,
            canonical_name(self._baseline),
            scenario.estimator,
            scenario.backend,
            calibration_week,
            scenario.measured_forward_fraction,
        )

    def _run_in_memory(self, scenario: Scenario, *, dataset=None, shared=None) -> ScenarioResult:
        """The materialised (non-streaming) execution path of :meth:`run`."""
        prior_entry = PRIORS.entry(scenario.prior)
        estimator_factory = ESTIMATORS.get(scenario.estimator)
        calibration_week, target_week = self.resolve_weeks(scenario)

        tracer = get_tracer()
        started = time.perf_counter()
        weeks_needed = self._weeks_to_synthesize(scenario, calibration_week, target_week)
        with tracer.span("synthesize", dataset=scenario.dataset, weeks=weeks_needed):
            if dataset is not None:
                if dataset.n_weeks < weeks_needed:
                    raise ValidationError(
                        f"pre-synthesized dataset has {dataset.n_weeks} weeks but the "
                        f"scenario needs {weeks_needed}"
                    )
                data = dataset
            else:
                data = load_dataset(
                    scenario.dataset,
                    n_weeks=weeks_needed,
                    bins_per_week=scenario.bins_per_week,
                    full_scale=scenario.full_scale,
                    seed=scenario.dataset_seed,
                )
            topology = self._resolve_topology(scenario, data)
        dataset_seconds = time.perf_counter() - started

        target = data.week(target_week)
        if scenario.max_bins is not None and target.n_timesteps > scenario.max_bins:
            target = target[: scenario.max_bins]
        if shared is not None:
            shared.pin(data)
        system_key = self._system_key(scenario, target_week, data)

        def build_system():
            return simulate_link_loads(
                topology, target, noise_std=scenario.measurement_noise, seed=scenario.seed
            )

        system = shared.system(system_key, build_system) if shared is not None else build_system()
        context = PriorContext(
            dataset=data,
            target=target,
            system=system,
            calibration_week=calibration_week,
            target_week=target_week,
            measured_forward_fraction=scenario.measured_forward_fraction,
        )

        prior_started = time.perf_counter()
        estimator = estimator_factory(**({"fast_path": True} if scenario.fast_path else {}))
        sharing_main = shared is not None and self._is_baseline_prior(scenario)
        with tracer.span("build_prior", prior=scenario.prior):
            prior = None if sharing_main else prior_entry.obj(context)
        prior_seconds = time.perf_counter() - prior_started

        estimation_started = time.perf_counter()
        with tracer.span("estimate", estimator=scenario.estimator):
            baseline_entry: RegistryEntry | None = None
            baseline = None
            if self._baseline is not None and scenario.prior != canonical_name(self._baseline):
                baseline_entry = PRIORS.entry(self._baseline)

                def build_baseline():
                    return estimator.estimate(
                        system, baseline_entry.obj(context), ground_truth=target
                    )

                if shared is not None:
                    baseline = shared.baseline(
                        self._baseline_key(system_key, scenario, calibration_week), build_baseline
                    )
                else:
                    baseline = build_baseline()

            def build_main():
                main_prior = prior if prior is not None else prior_entry.obj(context)
                return estimator.estimate(system, main_prior, ground_truth=target)

            if sharing_main:
                # A cell whose scenario prior *is* the sweep baseline computes
                # exactly the estimate its sibling cells use as their baseline;
                # share one computation through the same memo.
                main = shared.baseline(
                    self._baseline_key(system_key, scenario, calibration_week), build_main
                )
            else:
                main = build_main()
        estimation_seconds = time.perf_counter() - estimation_started

        improvement = None
        if baseline is not None:
            improvement = percent_improvement(baseline.errors, main.errors)
        total_seconds = time.perf_counter() - started
        return ScenarioResult(
            scenario=scenario,
            prior_label=prior_entry.metadata.get("display", prior_entry.name),
            baseline_label=(
                baseline_entry.metadata.get("display", baseline_entry.name)
                if baseline_entry is not None
                else None
            ),
            estimate=main.estimate,
            errors=main.errors,
            prior_errors=main.prior_errors,
            baseline_errors=baseline.errors if baseline is not None else None,
            baseline_prior_errors=baseline.prior_errors if baseline is not None else None,
            improvement=improvement,
            timing={
                "dataset": dataset_seconds,
                "prior": prior_seconds,
                "estimation": estimation_seconds,
                "total": total_seconds,
                "peak_rss_mb": _peak_rss_mb(),
            },
        )

    @staticmethod
    def _resolve_spill(scenario: Scenario, n_bins: int) -> tuple[SpillStore | None, bool]:
        """The ``(store, spill_estimate)`` spill decision of a streaming run.

        An explicit ``spill_dir`` always spills, *including* the
        chunk-sharded estimate cube (each cell into a subdirectory named
        after its label, so sweeps share one run directory).  Without one,
        runs past :data:`~repro.scenarios.spill.SPILL_AUTO_MIN_BINS` bins
        spill only their (small) per-bin error series into a fresh
        temporary run directory — never the ``O(T n^2)`` estimate, which
        the streaming path deliberately avoids materialising unless a run
        directory was asked for explicitly.
        """
        shard_bins = scenario.spill_shard_bins or 2048
        if scenario.spill_dir is not None:
            safe_label = scenario.label.replace("/", "-").replace(" ", "_")
            return (
                SpillStore(
                    os.path.join(scenario.spill_dir, safe_label), shard_bins=shard_bins
                ),
                True,
            )
        if n_bins >= SPILL_AUTO_MIN_BINS:
            return (
                SpillStore(tempfile.mkdtemp(prefix="repro-spill-"), shard_bins=shard_bins),
                False,
            )
        return None, False

    def _run_streaming(self, scenario: Scenario, *, data=None, shared=None) -> ScenarioResult:
        """Execute a scenario through the chunked streaming pipeline.

        Mirrors :meth:`run` stage by stage, but nothing ``(T, n, n)``-sized is
        ever materialised: synthesis yields chunks from deterministic RNG
        state, measurements are accumulated chunk-wise, priors are built as
        chunk streams, and the estimator consumes them via
        ``TMEstimator.estimate_stream``.  Peak memory is bounded by the chunk
        size (plus the ``O(T (n_links + n))`` marginal series and any
        fit-cache/spill buffers), not by the series length — the regime
        month-scale full-mesh runs need.

        ``data`` optionally supplies a pre-opened
        :class:`~repro.synthesis.datasets.StreamingDataset` (the sweep
        scheduler rebuilds one per worker from the parent's shipped
        generation plan, so workers never re-plan or re-pay the noise-RNG
        prefix); ``shared`` enables measurement-system and baseline reuse
        across the cells of a sweep.
        """
        prior_entry = PRIORS.entry(scenario.prior)
        estimator_factory = ESTIMATORS.get(scenario.estimator)
        calibration_week, target_week = self.resolve_weeks(scenario)
        # Fail fast on missing streaming support — before paying the
        # (potentially month-scale) synthesis and calibration passes.
        scenario_builder = self._streaming_prior(prior_entry.name)
        baseline_entry: RegistryEntry | None = None
        baseline_builder = None
        if self._baseline is not None and scenario.prior != canonical_name(self._baseline):
            baseline_entry = PRIORS.entry(self._baseline)
            baseline_builder = self._streaming_prior(baseline_entry.name)
        estimator = estimator_factory(**({"fast_path": True} if scenario.fast_path else {}))
        if not hasattr(estimator, "estimate_stream"):
            raise ValidationError(
                f"estimator {scenario.estimator!r} does not support streaming "
                "(it lacks an estimate_stream method); run without stream"
            )

        tracer = get_tracer()
        started = time.perf_counter()
        weeks_needed = self._weeks_to_synthesize(scenario, calibration_week, target_week)
        with tracer.span("synthesize", dataset=scenario.dataset, weeks=weeks_needed, stream=True):
            if data is not None:
                if data.n_weeks < weeks_needed:
                    raise ValidationError(
                        f"pre-opened streaming dataset has {data.n_weeks} weeks but "
                        f"the scenario needs {weeks_needed}"
                    )
            else:
                data = open_dataset_stream(
                    scenario.dataset,
                    n_weeks=weeks_needed,
                    bins_per_week=scenario.bins_per_week,
                    full_scale=scenario.full_scale,
                    seed=scenario.dataset_seed,
                    chunk_bins=scenario.chunk_bins,
                )
            topology = self._resolve_topology(scenario, data)
            target_stream = data.week_stream(target_week, max_bins=scenario.max_bins)
        dataset_seconds = time.perf_counter() - started

        if shared is not None:
            shared.pin(data)
        system_key = self._system_key(scenario, target_week, data)

        def build_system():
            return simulate_link_loads_streaming(
                topology, target_stream, noise_std=scenario.measurement_noise, seed=scenario.seed
            )

        system = shared.system(system_key, build_system) if shared is not None else build_system()
        fit_memo = None
        if shared is not None and self._fit_memo:
            # Everything that determines a streamed stable-fP fit beyond the
            # (week, bin-count, cache-budget) suffix the context appends:
            # the pinned plan identity — i.e. the exact traffic — plus the
            # scale knobs and the backend the reductions run on.
            fit_key_base = (
                "fit",
                scenario.dataset,
                id(getattr(data, "plan", data)),
                scenario.bins_per_week,
                scenario.full_scale,
                scenario.dataset_seed,
                scenario.chunk_bins,
                scenario.backend,
            )

            def fit_memo(suffix, build, _base=fit_key_base):
                return shared.fit(_base + tuple(suffix), build)

        context = StreamingPriorContext(
            dataset=data,
            target_stream=target_stream,
            system=system,
            calibration_week=calibration_week,
            target_week=target_week,
            measured_forward_fraction=scenario.measured_forward_fraction,
            fit_cache_bytes=self._fit_cache_bytes,
            fit_memo=fit_memo,
        )
        spill, spill_estimate = self._resolve_spill(scenario, target_stream.n_bins)

        prior_started = time.perf_counter()
        with tracer.span("build_prior", prior=scenario.prior, stream=True):
            prior_stream = scenario_builder(context)
        prior_seconds = time.perf_counter() - prior_started

        estimation_started = time.perf_counter()
        with tracer.span("estimate", estimator=scenario.estimator, stream=True):
            baseline = None
            if baseline_builder is not None:

                def build_baseline():
                    return estimator.estimate_stream(
                        system, baseline_builder(context), ground_truth_stream=target_stream
                    )

                if shared is not None:
                    baseline = shared.baseline(
                        self._baseline_key(system_key, scenario, calibration_week), build_baseline
                    )
                else:
                    baseline = build_baseline()
            estimate_writer = (
                spill.writer("estimate") if spill is not None and spill_estimate else None
            )

            def build_main():
                return estimator.estimate_stream(
                    system,
                    prior_stream,
                    ground_truth_stream=target_stream,
                    chunk_sink=estimate_writer,
                )

            if shared is not None and estimate_writer is None and self._is_baseline_prior(scenario):
                # A cell whose scenario prior *is* the sweep baseline computes
                # exactly the estimate its sibling cells use as their baseline;
                # share one computation through the same memo.  (Runs writing
                # estimate shards always execute, so the shards get written.)
                main = shared.baseline(
                    self._baseline_key(system_key, scenario, calibration_week), build_main
                )
            else:
                main = build_main()
        estimation_seconds = time.perf_counter() - estimation_started

        improvement = None
        if baseline is not None:
            improvement = percent_improvement(baseline.errors, main.errors)
        series = {
            "errors": main.errors,
            "prior_errors": main.prior_errors,
            "baseline_errors": baseline.errors if baseline is not None else None,
            "baseline_prior_errors": baseline.prior_errors if baseline is not None else None,
            "improvement": improvement,
        }
        spilled: dict[str, object] = {}
        if spill is not None:
            series = {
                name: spill.add_series(name, values) if values is not None else None
                for name, values in series.items()
            }
            if estimate_writer is not None:
                spilled["estimate"] = estimate_writer.finish()
        total_seconds = time.perf_counter() - started
        timing = {
            "dataset": dataset_seconds,
            "prior": prior_seconds,
            "estimation": estimation_seconds,
            "total": total_seconds,
            "chunk_bins": target_stream.chunk_bins,
            "peak_rss_mb": _peak_rss_mb(),
        }
        if spill is not None:
            timing["spill_dir"] = str(spill.directory)
        return ScenarioResult(
            scenario=scenario,
            prior_label=prior_entry.metadata.get("display", prior_entry.name),
            baseline_label=(
                baseline_entry.metadata.get("display", baseline_entry.name)
                if baseline_entry is not None
                else None
            ),
            estimate=None,
            errors=series["errors"],
            prior_errors=series["prior_errors"],
            baseline_errors=series["baseline_errors"],
            baseline_prior_errors=series["baseline_prior_errors"],
            improvement=series["improvement"],
            spilled=spilled,
            timing=timing,
        )

    @staticmethod
    def _streaming_prior(name: str):
        """The streaming builder registered for a prior, with a clear error."""
        builder = STREAMING_PRIOR_BUILDERS.get(canonical_name(name))
        if builder is None:
            raise ValidationError(
                f"prior {name!r} has no streaming builder; priors with streaming "
                f"support: {sorted(STREAMING_PRIOR_BUILDERS)} (run without stream)"
            )
        return builder

    def run_batch(self, scenarios: Iterable[Scenario]) -> list[ScenarioResult]:
        """Run several scenarios in order, sharing the dataset cache."""
        return [self.run(scenario) for scenario in scenarios]

    def sweep(
        self,
        *,
        priors: Sequence[str],
        datasets: Sequence[str],
        base: Scenario | dict | None = None,
        jobs: int | None = 1,
        executor=None,
        result_sink=None,
        **overrides,
    ) -> "SweepResult":
        """Run the full priors × datasets grid and collect a comparison.

        Parameters
        ----------
        priors, datasets:
            Registered component names spanning the grid.
        base:
            Scenario (or plain dict) supplying the shared knobs; the grid
            cell overwrites its ``dataset`` and ``prior``.
        jobs:
            Number of workers running grid cells concurrently.  ``1`` (the
            default) runs the cells serially in this process; ``None`` uses
            one worker per CPU.  Local executors cap the pool at the host's
            CPU count (surplus workers cannot run concurrently and would
            only split the column groups; a warning reports the effective
            count once), and a single-worker pool collapses to the
            in-process path.  A remote executor honours the full request —
            its workers are other machines.
        executor:
            Where the cells run (see :mod:`repro.scenarios.executors`):
            ``None``/``"auto"`` keeps the historical jobs-driven choice
            between the in-process path and the local shared-memory pool;
            ``"in-process"`` or ``"local-pool"`` force one; a
            :class:`~repro.scenarios.executors.RemoteExecutor` instance
            ships column batches to ``repro sweep-worker`` daemons.
            Results are deterministic regardless of executor or ``jobs``:
            every cell carries its own explicit ``seed``/``dataset_seed``,
            cells are scheduled in column groups and collected in grid
            order, and the reuse caches return the identical arrays a fresh
            computation would, so scheduling cannot change the outcome.
            Each dataset column is synthesized (in-memory cells) or planned
            with eagerly checkpointed noise states (streaming cells) **once
            in the parent** and shipped to the workers — through shared
            memory locally, as plan state over TCP remotely — so the grid
            pays one synthesis per column rather than one per
            (worker, column); workers only run the estimation pipelines,
            reusing the column's measurement system, baseline estimate and
            memoised streamed fits across its cells.
        result_sink:
            A :class:`~repro.scenarios.executors.ResultSink` receiving each
            cell's result the moment it completes, after which the result
            is **dropped** — the returned :class:`SweepResult` carries only
            failures and timing, and the driver's memory no longer grows
            with the grid.  ``None`` (the default) accumulates results in
            the driver as before.
        overrides:
            Additional Scenario fields applied on top of ``base``.
        """
        if not priors or not datasets:
            raise ValidationError("sweep needs at least one prior and one dataset")
        if isinstance(base, dict):
            base = Scenario.from_dict({"dataset": datasets[0], "prior": priors[0], **base})
        elif base is None:
            base = Scenario(dataset=datasets[0], prior=priors[0])
        cells = [
            base.replace(dataset=dataset, prior=prior, **overrides)
            for dataset in datasets
            for prior in priors
        ]
        return self.run_cells(
            cells,
            jobs=jobs,
            executor=executor,
            result_sink=result_sink,
            priors=tuple(canonical_name(prior) for prior in priors),
            datasets=tuple(canonical_name(dataset) for dataset in datasets),
        )

    def run_cells(
        self,
        cells: Sequence[Scenario],
        *,
        jobs: int | None = 1,
        executor=None,
        result_sink=None,
        priors: Sequence[str] | None = None,
        datasets: Sequence[str] | None = None,
    ) -> "SweepResult":
        """Run an explicit list of scenario cells through the sweep machinery.

        The scheduler, executors, per-column week pinning and shared-state
        reuse are exactly those of :meth:`sweep`; the difference is that the
        caller supplies the cells directly, so grids a priors × datasets
        product cannot express — e.g. overlapping-window sweeps where many
        cells share a calibration week but target different weeks — still
        get column batching, shared-plan shipping and fit memoisation.
        ``priors``/``datasets`` optionally override the result's axis
        labels; by default they are derived from the cells in first-seen
        order.
        """
        started = time.perf_counter()
        cells = list(cells)
        if not cells:
            raise ValidationError("run_cells needs at least one scenario cell")
        # Priors resolve different default target weeks, and n_weeks is part
        # of the synthesis cache key *and* changes the generated traffic; pin
        # every cell of a dataset column to the column-wide maximum so the
        # column shares one synthesis run and one ground truth.
        weeks_needed: dict[str, int] = {}
        for cell in cells:
            try:
                calibration, target = self.resolve_weeks(cell)
            except Exception:  # noqa: BLE001 - leave the failure to the cell run below
                continue
            needed = max(max(calibration, target) + 1, cell.n_weeks or 0)
            weeks_needed[cell.dataset] = max(weeks_needed.get(cell.dataset, 0), needed)
        cells = [
            cell.replace(n_weeks=weeks_needed[cell.dataset])
            if cell.dataset in weeks_needed
            else cell
            for cell in cells
        ]
        outcomes, executor_name = self._execute_cells(
            cells, jobs=jobs, executor=executor, sink=result_sink
        )
        results: list[ScenarioResult] = []
        failures: list[tuple[Scenario, str]] = []
        cells_ok = 0
        for cell, (result, message) in zip(cells, outcomes):
            if message is None:
                cells_ok += 1
                if result_sink is None:
                    results.append(result)
            else:
                failures.append((cell, message))
        if result_sink is not None and hasattr(result_sink, "finish"):
            result_sink.finish()
        wall = time.perf_counter() - started
        worker_peaks = [
            result.timing["peak_rss_mb"]
            for result in results
            if result.timing.get("peak_rss_mb") is not None
        ]
        timing = {
            "total": wall,
            "cells": len(cells),
            "cells_ok": cells_ok,
            "cells_per_second": len(cells) / wall if wall > 0 else float("nan"),
            "peak_rss_mb": _peak_rss_mb(),
            "worker_peak_rss_mb": max(worker_peaks) if worker_peaks else None,
            "executor": executor_name,
            "streamed": result_sink is not None,
        }
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("repro_sweep_cells_total", status="ok").inc(cells_ok)
            metrics.counter("repro_sweep_cells_total", status="failed").inc(len(failures))
            metrics.gauge("repro_sweep_cells_per_second").set(timing["cells_per_second"])
            if timing["peak_rss_mb"] is not None:
                metrics.gauge("repro_sweep_peak_rss_mb").set(timing["peak_rss_mb"])
            if timing["worker_peak_rss_mb"] is not None:
                metrics.gauge("repro_sweep_worker_peak_rss_mb").set(timing["worker_peak_rss_mb"])
        return SweepResult(
            priors=(
                tuple(priors)
                if priors is not None
                else tuple(dict.fromkeys(cell.prior for cell in cells))
            ),
            datasets=(
                tuple(datasets)
                if datasets is not None
                else tuple(dict.fromkeys(cell.dataset for cell in cells))
            ),
            results=results,
            failures=failures,
            timing=timing,
        )

    def _execute_cells(
        self, cells: list[Scenario], *, jobs, executor, sink=None
    ) -> tuple[list, str]:
        """Resolve the executor and run the cells; returns (outcomes, name)."""
        from repro.scenarios import executors as executors_module

        resolved, plan_jobs = executors_module.resolve_executor(
            executor, jobs=jobs, n_cells=len(cells), cpu_count=os.cpu_count()
        )
        plan = executors_module.SweepPlan(
            runner=self, cells=cells, jobs=plan_jobs, sink=sink
        )
        return resolved.execute(plan), resolved.name

    def _run_cell_guarded(self, cell: Scenario, *, dataset=None, shared=None) -> tuple:
        """Run one cell on this runner, wrapping failures like the workers do.

        The cell is traced as one ``sweep_cell`` span; a failure closes the
        span with an ``error=`` attribute (the exception never escapes, so
        the span records it explicitly) and increments the cell-failure
        counter.
        """
        span = get_tracer().span(
            "sweep_cell", label=cell.label, dataset=cell.dataset, prior=cell.prior
        )
        with span:
            try:
                return self.run(cell, dataset=dataset, shared=shared), None
            except Exception as exc:  # noqa: BLE001 - a cell failure should not kill the grid
                message = f"{type(exc).__name__}: {exc}"
                span.set(error=message)
                get_metrics().counter("repro_sweep_cell_failures_total").inc()
                return None, message

    @staticmethod
    def _dataset_key(cell: Scenario) -> tuple | None:
        """The parent-side synthesis key of a cell, or ``None`` when not shippable.

        In-memory cells ship their materialised week cubes; streaming cells
        ship the (much smaller) generation-plan state, keyed separately
        because the plan also depends on the chunking.  Cells whose week
        requirements could not be resolved fall back to the worker's own
        dataset caches.
        """
        if cell.n_weeks is None:
            return None
        if cell.stream:
            return (
                "stream",
                cell.dataset,
                cell.n_weeks,
                cell.bins_per_week,
                cell.full_scale,
                cell.dataset_seed,
                cell.chunk_bins,
            )
        return (cell.dataset, cell.n_weeks, cell.bins_per_week, cell.full_scale, cell.dataset_seed)

    @staticmethod
    def _column_batches(items: list[tuple], jobs: int) -> list[list[tuple]]:
        """Group ``(index, cell, key)`` items by dataset column, then split to fill ``jobs``.

        Column grouping keeps every cell of a column on one worker, so the
        worker's shared state reuses the column's measurement system and
        baseline estimate; when there are fewer columns than workers the
        largest groups are split (deterministically) until the workers are
        occupied — reuse degrades gracefully, correctness never depends on
        the grouping.
        """
        groups: dict[tuple, list[tuple]] = {}
        for item in items:
            _, cell, _ = item
            column = (
                cell.dataset, cell.n_weeks, cell.bins_per_week, cell.full_scale, cell.dataset_seed
            )
            groups.setdefault(column, []).append(item)
        batches = list(groups.values())
        while len(batches) < jobs and any(len(batch) > 1 for batch in batches):
            largest_at = max(range(len(batches)), key=lambda at: len(batches[at]))
            largest = batches.pop(largest_at)
            half = (len(largest) + 1) // 2
            batches.extend([largest[:half], largest[half:]])
        return batches

    def _prepare_sweep_items(self, cells: list[Scenario]) -> tuple[list[tuple], dict]:
        """Prepare each distinct dataset column once, in the parent.

        In-memory columns come through the shared :func:`load_dataset`
        cache; streaming columns are opened as a :class:`StreamingDataset`
        whose noise-state checkpoints are populated eagerly, so workers
        never re-plan or re-pay the noise-RNG prefix.  Returns the
        ``(index, cell, key)`` work items (``key=None`` routes a cell to
        the worker's own dataset caches) and the ``{key: dataset}`` map
        executors ship — through shared memory locally, as plan state over
        TCP remotely.
        """
        datasets: dict[tuple, object] = {}
        keys: list[tuple | None] = []
        for cell in cells:
            key = self._dataset_key(cell)
            if key is not None and key not in datasets:
                try:
                    if cell.stream:
                        datasets[key] = open_dataset_stream(
                            cell.dataset,
                            n_weeks=cell.n_weeks,
                            bins_per_week=cell.bins_per_week,
                            full_scale=cell.full_scale,
                            seed=cell.dataset_seed,
                            chunk_bins=cell.chunk_bins,
                        ).checkpoint_noise()
                    else:
                        datasets[key] = load_dataset(
                            cell.dataset,
                            n_weeks=cell.n_weeks,
                            bins_per_week=cell.bins_per_week,
                            full_scale=cell.full_scale,
                            seed=cell.dataset_seed,
                        )
                except Exception:  # noqa: BLE001 - the cell run will report it
                    key = None
            keys.append(key)
        items = [(index, cell, key) for index, (cell, key) in enumerate(zip(cells, keys))]
        return items, datasets

    def _sweep_parallel(self, cells: list[Scenario], jobs: int, *, emit) -> None:
        """Run the grid cells in worker processes, emitting on completion.

        Every distinct dataset column is prepared once here in the parent
        (:meth:`_prepare_sweep_items`) and handed to each worker process at
        startup.  The bulky arrays (week cubes, or the plan's activity
        series) travel through ``multiprocessing.shared_memory`` — W
        workers map **one** copy of each column instead of unpickling W
        private ones — with a transparent fallback to the pickle path on
        platforms (or failures) where shared memory is unavailable.  Cells
        are scheduled in column groups so each worker's shared state reuses
        the column's measurement system, baseline estimate and memoised
        streamed fits.

        ``emit`` (normally :meth:`SweepPlan.emit`) receives each cell's
        ``(index, result, message)`` as its batch completes — not in grid
        order — so a plan with a :class:`ResultSink` streams results out of
        the driver while other batches are still running.  On pool failure
        the serial fallback only re-runs the cells no batch delivered.
        """
        items, datasets = self._prepare_sweep_items(cells)
        batches = self._column_batches(items, jobs)
        trace_ctx = worker_context()
        payloads = [
            (self._baseline, self._fit_cache_bytes, self._fit_memo, batch, trace_ctx)
            for batch in batches
        ]
        shm_payload, shm_blocks = _export_datasets_shm(datasets)
        pickled = datasets if shm_payload is None else {}
        delivered: set[int] = set()
        try:
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(batches)),
                initializer=_init_sweep_worker,
                initargs=(pickled, shm_payload),
            ) as pool:
                futures = [pool.submit(_run_sweep_batch, payload) for payload in payloads]
                for future in as_completed(futures):
                    outcomes, trace_events = future.result()
                    get_tracer().ingest(trace_events)
                    for index, result, message in outcomes:
                        delivered.add(index)
                        emit(index, result, message)
                return
        except (OSError, PermissionError, RuntimeError) as exc:
            warnings.warn(
                f"parallel sweep unavailable ({type(exc).__name__}: {exc}); "
                "falling back to a serial run",
                RuntimeWarning,
                stacklevel=3,
            )
            shared = SweepSharedState()
            for index, cell in enumerate(cells):
                if index in delivered:
                    continue
                result, message = self._run_cell_guarded(cell, shared=shared)
                emit(index, result, message)
        finally:
            _release_shm_blocks(shm_blocks, unlink=True)


# ---------------------------------------------------------------------------
# shared-memory dataset shipping for parallel sweeps
# ---------------------------------------------------------------------------

def _export_datasets_shm(datasets: dict[tuple, object]):
    """Move each dataset column's bulky arrays into shared-memory segments.

    Returns ``(payload, blocks)`` where ``payload`` maps each synthesis key
    to one of

    * ``("cube", shell, weeks_meta)`` — a materialised dataset with its
      ``weeks`` stripped (everything else, topology and ground truths
      included, still pickles; it is small) plus per-week
      ``(segment_name, shape, bin_seconds)`` tuples, or
    * ``("plan", state, arrays_meta)`` — a streaming dataset's generation
      state (:class:`~repro.synthesis.datasets.StreamingDatasetState`) with
      its plan arrays stripped, plus ``{field: (segment_name, shape)}`` for
      the spatial/activity arrays,

    and ``blocks`` holds the parent's handles for cleanup after the pool
    exits.  Returns ``(None, [])`` when shared memory is unavailable or any
    allocation fails, which routes the sweep onto the pickle path.
    """
    if not datasets:
        return {}, []
    try:
        from multiprocessing import shared_memory
    except ImportError:  # pragma: no cover - platform without shared memory
        return None, []

    blocks: list = []

    def export_array(values) -> tuple[str, tuple]:
        values = np.ascontiguousarray(np.asarray(values, dtype=float))
        segment = shared_memory.SharedMemory(create=True, size=max(values.nbytes, 1))
        blocks.append(segment)
        view = np.ndarray(values.shape, dtype=np.float64, buffer=segment.buf)
        view[...] = values
        return segment.name, values.shape

    payload: dict[tuple, tuple] = {}
    try:
        for key, data in datasets.items():
            if hasattr(data, "export_state"):
                state = data.export_state()
                arrays_meta = {
                    name: export_array(getattr(state, name))
                    for name in type(state).ARRAY_FIELDS
                }
                payload[key] = ("plan", state.strip_arrays(), arrays_meta)
            else:
                weeks_meta = []
                for week in data.weeks:
                    name, shape = export_array(week.values)
                    weeks_meta.append((name, shape, week.bin_seconds))
                shell = dataclasses.replace(data, weeks=[])
                payload[key] = ("cube", shell, weeks_meta)
    except (OSError, ValueError, TypeError):  # pragma: no cover - exotic platforms
        _release_shm_blocks(blocks, unlink=True)
        return None, []
    return payload, blocks


def _release_shm_blocks(blocks, *, unlink: bool) -> None:
    """Close (and optionally unlink) shared-memory handles, ignoring races."""
    for segment in blocks:
        try:
            segment.close()
            if unlink:
                segment.unlink()
        except (OSError, FileNotFoundError):  # pragma: no cover - already gone
            pass


def _attach_shm_array(name: str, shape):
    """Map one array out of a named shared-memory segment (zero copies).

    Returns ``(values, segment)``; the caller must keep ``segment`` alive
    for as long as the array is used.  The attach is untracked wherever the
    stdlib allows it, so the worker's resource tracker does not try to unlink
    segments the parent owns.
    """
    from multiprocessing import shared_memory

    try:
        segment = shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track flag
        segment = shared_memory.SharedMemory(name=name)
        # Under fork/forkserver the worker shares the parent's resource
        # tracker, where the attach-register is an idempotent no-op and the
        # parent's eventual unlink-unregister must stay balanced — touch
        # nothing.  Under spawn the worker runs its own tracker, which would
        # otherwise "clean up" (unlink) the parent's segments at worker
        # shutdown; deregister the attach there.
        try:
            import multiprocessing

            if multiprocessing.get_start_method(allow_none=True) == "spawn":
                from multiprocessing import resource_tracker

                resource_tracker.unregister(segment._name, "shared_memory")  # noqa: SLF001
        except Exception:  # noqa: BLE001 - tracker internals vary by version
            pass
    values = np.ndarray(shape, dtype=np.float64, buffer=segment.buf)
    return values, segment


# Dataset columns the parent prepared for this worker process, keyed by
# the synthesis key; populated once per worker by the pool initializer so
# each cell's payload only needs to carry the key.
_WORKER_DATASETS: dict[tuple, object] = {}

# Shared-memory handles this worker attached; referenced for the worker's
# lifetime so the mapped arrays stay valid.
_WORKER_SHM_BLOCKS: list = []

# Per-worker reuse caches (measurement systems, baseline estimates); reset
# by the pool initializer so state never leaks between sweeps.
_WORKER_SHARED = SweepSharedState()


def _init_sweep_worker(datasets: dict[tuple, object], shm_payload=None) -> None:
    global _WORKER_SHARED
    _WORKER_DATASETS.clear()
    _WORKER_DATASETS.update(datasets)
    _WORKER_SHARED = SweepSharedState()
    # Symmetric cleanup: a re-initialised worker must drop (and unmap) the
    # segments of any previous attach, or they stay mapped for its lifetime.
    _release_shm_blocks(_WORKER_SHM_BLOCKS, unlink=False)
    _WORKER_SHM_BLOCKS.clear()
    if not shm_payload:
        return
    for key, (kind, shell, meta) in shm_payload.items():
        if kind == "plan":
            arrays = {}
            for field_name, (name, shape) in meta.items():
                values, segment = _attach_shm_array(name, shape)
                _WORKER_SHM_BLOCKS.append(segment)
                arrays[field_name] = values
            _WORKER_DATASETS[key] = streaming_dataset_from_state(shell, arrays)
        else:
            weeks = []
            for name, shape, bin_seconds in meta:
                values, segment = _attach_shm_array(name, shape)
                _WORKER_SHM_BLOCKS.append(segment)
                weeks.append(
                    TrafficMatrixSeries._from_validated(  # noqa: SLF001 - validated in the parent
                        values, shell.topology.nodes, bin_seconds=bin_seconds
                    )
                )
            _WORKER_DATASETS[key] = dataclasses.replace(shell, weeks=weeks)


def _run_sweep_batch(payload: tuple) -> tuple[list[tuple], list[dict]]:
    """Execute one column batch of sweep cells inside a worker process.

    The cells of a batch share this worker's :class:`SweepSharedState`
    (measurement systems, baseline estimates) and whatever dataset columns
    the initializer attached; each returns ``(index, result, message)`` so
    the parent can reassemble grid order across batches.  When the parent
    runs traced, its span context rides in the payload: the batch executes
    under a capture-mode tracer whose events (``sweep_cell`` spans parented
    onto the parent's active span, attributed to this worker's pid) travel
    back alongside the outcomes for the parent to ingest.
    """
    baseline, fit_cache_bytes, fit_memo, items, trace_ctx = payload
    runner = ScenarioRunner(
        baseline_prior=baseline, fit_cache_bytes=fit_cache_bytes, fit_memo=fit_memo
    )
    tracer = tracer_from_context(trace_ctx, worker=f"pool-{os.getpid()}")
    outcomes = []
    with use_tracer(tracer):
        for index, cell, dataset_key in items:
            dataset = _WORKER_DATASETS.get(dataset_key) if dataset_key is not None else None
            result, message = runner._run_cell_guarded(  # noqa: SLF001 - same-module helper
                cell, dataset=dataset, shared=_WORKER_SHARED
            )
            outcomes.append((index, result, message))
    return outcomes, tracer.drain()


@dataclass
class SweepResult:
    """Results of a priors × datasets grid sweep.

    ``results`` holds the successful cells; ``failures`` pairs each failed
    scenario with its error message, so one singular configuration cannot
    sink a whole batch.  ``timing`` carries the sweep-level aggregates: wall
    seconds, ``cells_per_second`` and the parent/worker peak RSS.
    """

    priors: tuple[str, ...]
    datasets: tuple[str, ...]
    results: list[ScenarioResult]
    failures: list[tuple[Scenario, str]]
    timing: dict = field(default_factory=dict)

    def result_for(self, dataset: str, prior: str) -> ScenarioResult | None:
        """The cell for (dataset, prior), or ``None`` if it failed."""
        for result in self.results:
            if result.scenario.dataset == dataset and result.scenario.prior == prior:
                return result
        return None

    def format_table(self) -> str:
        """Grid of mean improvement % over the baseline (rows = priors)."""
        headers = ["prior \\ dataset", *self.datasets]
        rows: list[list[object]] = []
        for prior in self.priors:
            row: list[object] = [prior]
            for dataset in self.datasets:
                cell = self.result_for(dataset, prior)
                if cell is None:
                    row.append("failed")
                elif cell.improvement is None:
                    row.append(f"err={cell.mean_error:.4g}")
                else:
                    row.append(f"{cell.mean_improvement:+.2f}%")
            rows.append(row)
        table = format_rows(headers, rows)
        if self.failures:
            lines = [table, "", "failed cells:"]
            lines += [f"  {scenario.label}: {message}" for scenario, message in self.failures]
            return "\n".join(lines)
        return table

    def format_summary(self) -> str:
        """One line of sweep-level throughput and memory aggregates."""
        parts = []
        if self.timing.get("total") is not None:
            parts.append(f"wall {self.timing['total']:.2f}s")
        if self.timing.get("cells_per_second") is not None:
            parts.append(f"{self.timing['cells_per_second']:.2f} cells/s")
        if self.timing.get("peak_rss_mb") is not None:
            parts.append(f"parent peak RSS {self.timing['peak_rss_mb']:.1f} MiB")
        if self.timing.get("worker_peak_rss_mb") is not None:
            parts.append(f"max worker peak RSS {self.timing['worker_peak_rss_mb']:.1f} MiB")
        return "; ".join(parts) if parts else "no sweep timing recorded"

    def format_timing(self) -> str:
        """Per-cell timing breakdown of the successful runs."""
        rows = [
            [
                result.scenario.label,
                result.timing.get("dataset", 0.0),
                result.timing.get("prior", 0.0),
                result.timing.get("estimation", 0.0),
                result.timing.get("total", 0.0),
            ]
            for result in self.results
        ]
        return format_rows(["scenario", "dataset s", "prior s", "estimation s", "total s"], rows)


def run_scenario(scenario: Scenario | dict, **runner_kwargs) -> ScenarioResult:
    """Convenience wrapper: run one scenario (or scenario dict)."""
    if isinstance(scenario, dict):
        scenario = Scenario.from_dict(scenario)
    return ScenarioRunner(**runner_kwargs).run(scenario)


def sweep(
    *,
    priors: Sequence[str],
    datasets: Sequence[str],
    base: Scenario | dict | None = None,
    jobs: int | None = 1,
    executor=None,
    **overrides,
) -> SweepResult:
    """Convenience wrapper around :meth:`ScenarioRunner.sweep`."""
    return ScenarioRunner().sweep(
        priors=priors, datasets=datasets, base=base, jobs=jobs, executor=executor,
        **overrides,
    )

"""Execute scenarios: one, a batch, or a full component grid.

:class:`ScenarioRunner` replays the estimation protocol shared by the
paper's Figures 11-13 for any registered (dataset, prior, estimator)
combination:

1. build (or fetch from the shared cache) the dataset at the requested
   scale,
2. simulate the target week's measurements over the topology,
3. build the scenario's prior and — unless disabled — the gravity baseline
   prior from the same measurements,
4. run both through the estimator, and
5. record per-bin errors, the per-bin improvement over the baseline, and
   per-stage timing.

Because dataset synthesis is memoised in
:func:`repro.synthesis.datasets.load_dataset`, a sweep over N priors and M
datasets performs M synthesis runs, not N×M.
"""

from __future__ import annotations

import dataclasses
import os
import sys
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro._tables import format_rows
from repro.backend import use_backend
from repro.core.metrics import percent_improvement, summarize_improvement
from repro.core.priors import (
    STREAMING_PRIOR_BUILDERS,
    PriorContext,
    StreamingPriorContext,
)
from repro.core.traffic_matrix import TrafficMatrixSeries
from repro.errors import ValidationError
from repro.estimation.linear_system import simulate_link_loads, simulate_link_loads_streaming
from repro.registry import (
    DATASETS,
    ESTIMATORS,
    PRIORS,
    TOPOLOGIES,
    RegistryEntry,
    canonical_name,
)
from repro.scenarios.scenario import Scenario
from repro.synthesis.datasets import load_dataset, open_dataset_stream

__all__ = ["ScenarioResult", "ScenarioRunner", "SweepResult", "run_scenario", "sweep"]


def _peak_rss_mb() -> float | None:
    """Peak resident set size of this process in MiB (None when unavailable)."""
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    except (ImportError, ValueError, OSError):  # pragma: no cover - non-POSIX
        return None
    # ru_maxrss is kilobytes on Linux, bytes on macOS.
    if sys.platform == "darwin":  # pragma: no cover - platform-specific
        peak /= 1024.0
    return float(peak) / 1024.0


@dataclass
class ScenarioResult:
    """Everything a scenario run produced.

    Attributes
    ----------
    scenario:
        The configuration that was executed.
    prior_label, baseline_label:
        Display names of the scenario prior and the baseline prior
        (``baseline_label`` is ``None`` when no baseline was run).
    estimate:
        The refined traffic-matrix estimate (``None`` for streaming runs,
        which deliberately never materialise the ``(T, n, n)`` estimate; the
        per-bin error series are the deliverable).
    errors, prior_errors:
        Per-bin relative L2 error of the estimate and of the raw prior.
    baseline_errors, baseline_prior_errors:
        Same two series for the baseline prior, when one was run.
    improvement:
        Per-bin percentage improvement over the baseline estimate.
    timing:
        Seconds spent per stage: ``dataset``, ``prior``, ``estimation`` and
        ``total``, plus ``peak_rss_mb`` — the process's high-water resident
        set size after the run (the number the streaming pipeline bounds).
    """

    scenario: Scenario
    prior_label: str
    baseline_label: str | None
    estimate: TrafficMatrixSeries | None
    errors: np.ndarray
    prior_errors: np.ndarray
    baseline_errors: np.ndarray | None = None
    baseline_prior_errors: np.ndarray | None = None
    improvement: np.ndarray | None = None
    timing: dict[str, float] = field(default_factory=dict)

    @property
    def mean_error(self) -> float:
        """Mean per-bin error of the refined estimate."""
        return float(np.mean(self.errors))

    @property
    def mean_improvement(self) -> float:
        """Mean per-bin improvement over the baseline estimate."""
        if self.improvement is None:
            raise ValidationError("scenario was run without a baseline prior")
        return float(np.mean(self.improvement))

    def format_table(self) -> str:
        """ASCII summary mirroring the experiment drivers' tables."""
        rows: list[list[object]] = [
            ["scenario", self.scenario.label],
            ["dataset", self.scenario.dataset],
            ["prior", self.prior_label],
            ["estimator", self.scenario.estimator],
            ["bins estimated", int(self.errors.shape[0])],
            ["mean estimation error", self.mean_error],
            ["mean raw prior error", float(np.mean(self.prior_errors))],
        ]
        if self.improvement is not None:
            summary = summarize_improvement(self.improvement)
            rows += [
                [f"mean estimation error ({self.baseline_label} baseline)",
                 float(np.mean(self.baseline_errors))],
                ["mean improvement %", summary["mean"]],
                ["median improvement %", summary["median"]],
                ["25th-75th percentile improvement %",
                 f"{summary['p25']:.3g} .. {summary['p75']:.3g}"],
            ]
        if self.scenario.backend is not None:
            rows.append(["backend", self.scenario.backend])
        rows.append(["runtime (s)", self.timing.get("total", float("nan"))])
        if self.scenario.stream:
            rows.append(["streamed chunk bins", self.timing.get("chunk_bins", "auto")])
        if self.timing.get("peak_rss_mb") is not None:
            rows.append(["peak RSS (MiB)", f"{self.timing['peak_rss_mb']:.1f}"])
        return format_rows(["quantity", "value"], rows)


class ScenarioRunner:
    """Executes :class:`Scenario` objects against the registries.

    Parameters
    ----------
    baseline_prior:
        Registered prior every run is compared against (default
        ``"gravity"``, the paper's baseline).  ``None`` disables the
        comparison, halving the estimation work.
    """

    def __init__(self, *, baseline_prior: str | None = "gravity"):
        self._baseline = baseline_prior

    # -- week resolution ----------------------------------------------------

    @staticmethod
    def resolve_weeks(scenario: Scenario) -> tuple[int, int]:
        """The (calibration_week, target_week) pair a scenario will use.

        A missing ``target_week`` falls back to the prior's ``week_mode``
        metadata: ``"same"`` targets the calibration week, ``"next"`` the
        following week, and ``"gap"`` jumps the dataset's ``calibration_gap``
        (and must land on a different week, per Section 6.2).
        """
        prior_entry = PRIORS.entry(scenario.prior)
        mode = prior_entry.metadata.get("week_mode", "same")
        calibration = scenario.calibration_week
        if scenario.target_week is not None:
            target = scenario.target_week
        elif mode == "next":
            target = calibration + 1
        elif mode == "gap":
            dataset_entry = DATASETS.entry(scenario.dataset)
            target = calibration + int(dataset_entry.metadata.get("calibration_gap", 1))
        else:
            target = calibration
        if mode == "gap" and target == calibration:
            raise ValidationError("target_week must differ from calibration_week")
        return calibration, target

    @staticmethod
    def _resolve_topology(scenario: Scenario, data):
        """The topology the measurements are simulated over.

        Defaults to the dataset's own; an explicit override must be a
        no-argument registered factory whose node set matches the dataset's
        (the synthesized traffic is defined over those nodes).
        """
        if scenario.topology is None:
            return data.topology
        entry = TOPOLOGIES.entry(scenario.topology)
        if entry.metadata.get("parameterized"):
            raise ValidationError(
                f"topology {scenario.topology!r} takes parameters and cannot be "
                "used as a scenario override; register a concrete instance instead"
            )
        topology = entry.obj()
        if tuple(topology.nodes) != tuple(data.topology.nodes):
            raise ValidationError(
                f"topology {scenario.topology!r} has nodes {topology.nodes[:4]}... "
                f"({topology.n_nodes} PoPs) but dataset {scenario.dataset!r} "
                f"is defined over {data.topology.n_nodes} PoPs; node sets must match"
            )
        return topology

    # -- execution ----------------------------------------------------------

    @staticmethod
    def _weeks_to_synthesize(scenario: Scenario, calibration_week: int, target_week: int) -> int:
        return max(max(calibration_week, target_week) + 1, scenario.n_weeks or 0)

    def run(self, scenario: Scenario, *, dataset=None) -> ScenarioResult:
        """Execute one scenario and return its :class:`ScenarioResult`.

        ``dataset`` optionally supplies a pre-synthesized
        :class:`~repro.synthesis.datasets.SyntheticDataset` covering the
        scenario's weeks (parallel sweeps synthesize each grid column once in
        the parent and ship it to the workers); by default the shared
        :func:`load_dataset` cache is used.

        ``scenario.backend`` selects the compute backend for the run: the
        whole execution happens inside a :func:`repro.backend.use_backend`
        context, so prior fitting (``fit_stable_fp``) and the estimator's
        refinement/IPF stages run on that backend while synthesis stays on
        the host.
        """
        scenario.validate()
        with use_backend(scenario.backend):
            if scenario.stream:
                if dataset is not None:
                    raise ValidationError(
                        "streaming scenarios regenerate chunks; pass dataset=None"
                    )
                return self._run_streaming(scenario)
            return self._run_in_memory(scenario, dataset=dataset)

    def _run_in_memory(self, scenario: Scenario, *, dataset=None) -> ScenarioResult:
        """The materialised (non-streaming) execution path of :meth:`run`."""
        prior_entry = PRIORS.entry(scenario.prior)
        estimator_factory = ESTIMATORS.get(scenario.estimator)
        calibration_week, target_week = self.resolve_weeks(scenario)

        started = time.perf_counter()
        weeks_needed = self._weeks_to_synthesize(scenario, calibration_week, target_week)
        if dataset is not None:
            if dataset.n_weeks < weeks_needed:
                raise ValidationError(
                    f"pre-synthesized dataset has {dataset.n_weeks} weeks but the "
                    f"scenario needs {weeks_needed}"
                )
            data = dataset
        else:
            data = load_dataset(
                scenario.dataset,
                n_weeks=weeks_needed,
                bins_per_week=scenario.bins_per_week,
                full_scale=scenario.full_scale,
                seed=scenario.dataset_seed,
            )
        topology = self._resolve_topology(scenario, data)
        dataset_seconds = time.perf_counter() - started

        target = data.week(target_week)
        if scenario.max_bins is not None and target.n_timesteps > scenario.max_bins:
            target = target[: scenario.max_bins]
        system = simulate_link_loads(
            topology, target, noise_std=scenario.measurement_noise, seed=scenario.seed
        )
        context = PriorContext(
            dataset=data,
            target=target,
            system=system,
            calibration_week=calibration_week,
            target_week=target_week,
            measured_forward_fraction=scenario.measured_forward_fraction,
        )

        prior_started = time.perf_counter()
        priors = {}
        baseline_entry: RegistryEntry | None = None
        if self._baseline is not None and scenario.prior != canonical_name(self._baseline):
            baseline_entry = PRIORS.entry(self._baseline)
            priors["baseline"] = baseline_entry.obj(context)
        priors["scenario"] = prior_entry.obj(context)
        prior_seconds = time.perf_counter() - prior_started

        estimation_started = time.perf_counter()
        estimator = estimator_factory()
        results = estimator.compare_priors(system, priors, target)
        estimation_seconds = time.perf_counter() - estimation_started

        main = results["scenario"]
        baseline = results.get("baseline")
        improvement = None
        if baseline is not None:
            improvement = percent_improvement(baseline.errors, main.errors)
        total_seconds = time.perf_counter() - started
        return ScenarioResult(
            scenario=scenario,
            prior_label=prior_entry.metadata.get("display", prior_entry.name),
            baseline_label=(
                baseline_entry.metadata.get("display", baseline_entry.name)
                if baseline_entry is not None
                else None
            ),
            estimate=main.estimate,
            errors=main.errors,
            prior_errors=main.prior_errors,
            baseline_errors=baseline.errors if baseline is not None else None,
            baseline_prior_errors=baseline.prior_errors if baseline is not None else None,
            improvement=improvement,
            timing={
                "dataset": dataset_seconds,
                "prior": prior_seconds,
                "estimation": estimation_seconds,
                "total": total_seconds,
                "peak_rss_mb": _peak_rss_mb(),
            },
        )

    def _run_streaming(self, scenario: Scenario) -> ScenarioResult:
        """Execute a scenario through the chunked streaming pipeline.

        Mirrors :meth:`run` stage by stage, but nothing ``(T, n, n)``-sized is
        ever materialised: synthesis yields chunks from deterministic RNG
        state, measurements are accumulated chunk-wise, priors are built as
        chunk streams, and the estimator consumes them via
        ``TMEstimator.estimate_stream``.  Peak memory is bounded by the chunk
        size (plus the ``O(T (n_links + n))`` marginal series), not by the
        series length — the regime month-scale full-mesh runs need.
        """
        prior_entry = PRIORS.entry(scenario.prior)
        estimator_factory = ESTIMATORS.get(scenario.estimator)
        calibration_week, target_week = self.resolve_weeks(scenario)
        # Fail fast on missing streaming support — before paying the
        # (potentially month-scale) synthesis and calibration passes.
        scenario_builder = self._streaming_prior(prior_entry.name)
        baseline_entry: RegistryEntry | None = None
        baseline_builder = None
        if self._baseline is not None and scenario.prior != canonical_name(self._baseline):
            baseline_entry = PRIORS.entry(self._baseline)
            baseline_builder = self._streaming_prior(baseline_entry.name)
        estimator = estimator_factory()
        if not hasattr(estimator, "estimate_stream"):
            raise ValidationError(
                f"estimator {scenario.estimator!r} does not support streaming "
                "(it lacks an estimate_stream method); run without stream"
            )

        started = time.perf_counter()
        data = open_dataset_stream(
            scenario.dataset,
            n_weeks=self._weeks_to_synthesize(scenario, calibration_week, target_week),
            bins_per_week=scenario.bins_per_week,
            full_scale=scenario.full_scale,
            seed=scenario.dataset_seed,
            chunk_bins=scenario.chunk_bins,
        )
        topology = self._resolve_topology(scenario, data)
        target_stream = data.week_stream(target_week, max_bins=scenario.max_bins)
        dataset_seconds = time.perf_counter() - started

        system = simulate_link_loads_streaming(
            topology, target_stream, noise_std=scenario.measurement_noise, seed=scenario.seed
        )
        context = StreamingPriorContext(
            dataset=data,
            target_stream=target_stream,
            system=system,
            calibration_week=calibration_week,
            target_week=target_week,
            measured_forward_fraction=scenario.measured_forward_fraction,
        )

        prior_started = time.perf_counter()
        priors = {}
        if baseline_builder is not None:
            priors["baseline"] = baseline_builder(context)
        priors["scenario"] = scenario_builder(context)
        prior_seconds = time.perf_counter() - prior_started

        estimation_started = time.perf_counter()
        results = {
            name: estimator.estimate_stream(
                system, prior_stream, ground_truth_stream=target_stream
            )
            for name, prior_stream in priors.items()
        }
        estimation_seconds = time.perf_counter() - estimation_started

        main = results["scenario"]
        baseline = results.get("baseline")
        improvement = None
        if baseline is not None:
            improvement = percent_improvement(baseline.errors, main.errors)
        total_seconds = time.perf_counter() - started
        return ScenarioResult(
            scenario=scenario,
            prior_label=prior_entry.metadata.get("display", prior_entry.name),
            baseline_label=(
                baseline_entry.metadata.get("display", baseline_entry.name)
                if baseline_entry is not None
                else None
            ),
            estimate=None,
            errors=main.errors,
            prior_errors=main.prior_errors,
            baseline_errors=baseline.errors if baseline is not None else None,
            baseline_prior_errors=baseline.prior_errors if baseline is not None else None,
            improvement=improvement,
            timing={
                "dataset": dataset_seconds,
                "prior": prior_seconds,
                "estimation": estimation_seconds,
                "total": total_seconds,
                "chunk_bins": target_stream.chunk_bins,
                "peak_rss_mb": _peak_rss_mb(),
            },
        )

    @staticmethod
    def _streaming_prior(name: str):
        """The streaming builder registered for a prior, with a clear error."""
        builder = STREAMING_PRIOR_BUILDERS.get(canonical_name(name))
        if builder is None:
            raise ValidationError(
                f"prior {name!r} has no streaming builder; priors with streaming "
                f"support: {sorted(STREAMING_PRIOR_BUILDERS)} (run without stream)"
            )
        return builder

    def run_batch(self, scenarios: Iterable[Scenario]) -> list[ScenarioResult]:
        """Run several scenarios in order, sharing the dataset cache."""
        return [self.run(scenario) for scenario in scenarios]

    def sweep(
        self,
        *,
        priors: Sequence[str],
        datasets: Sequence[str],
        base: Scenario | dict | None = None,
        jobs: int | None = 1,
        **overrides,
    ) -> "SweepResult":
        """Run the full priors × datasets grid and collect a comparison.

        Parameters
        ----------
        priors, datasets:
            Registered component names spanning the grid.
        base:
            Scenario (or plain dict) supplying the shared knobs; the grid
            cell overwrites its ``dataset`` and ``prior``.
        jobs:
            Number of worker processes running grid cells concurrently.
            ``1`` (the default) runs the cells serially in this process;
            ``None`` uses one worker per CPU.  Results are deterministic
            regardless of ``jobs``: every cell carries its own explicit
            ``seed``/``dataset_seed``, and cells are collected in grid order,
            so scheduling cannot change the outcome.  Each dataset column is
            synthesized **once in the parent** and shipped to the workers
            (pickled into each worker process at startup), so the grid pays
            one synthesis per column rather than one per (worker, column);
            workers only run the independent estimation pipelines.
        overrides:
            Additional Scenario fields applied on top of ``base``.
        """
        if not priors or not datasets:
            raise ValidationError("sweep needs at least one prior and one dataset")
        if isinstance(base, dict):
            base = Scenario.from_dict({"dataset": datasets[0], "prior": priors[0], **base})
        elif base is None:
            base = Scenario(dataset=datasets[0], prior=priors[0])
        cells = [
            base.replace(dataset=dataset, prior=prior, **overrides)
            for dataset in datasets
            for prior in priors
        ]
        # Priors resolve different default target weeks, and n_weeks is part
        # of the synthesis cache key *and* changes the generated traffic; pin
        # every cell of a dataset column to the column-wide maximum so the
        # column shares one synthesis run and one ground truth.
        weeks_needed: dict[str, int] = {}
        for cell in cells:
            try:
                calibration, target = self.resolve_weeks(cell)
            except Exception:  # noqa: BLE001 - leave the failure to the cell run below
                continue
            needed = max(max(calibration, target) + 1, cell.n_weeks or 0)
            weeks_needed[cell.dataset] = max(weeks_needed.get(cell.dataset, 0), needed)
        cells = [
            cell.replace(n_weeks=weeks_needed[cell.dataset])
            if cell.dataset in weeks_needed
            else cell
            for cell in cells
        ]
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs > 1 and len(cells) > 1:
            outcomes = self._sweep_parallel(cells, jobs)
        else:
            outcomes = [self._run_cell_guarded(cell) for cell in cells]
        results: list[ScenarioResult] = []
        failures: list[tuple[Scenario, str]] = []
        for cell, (result, message) in zip(cells, outcomes):
            if message is None:
                results.append(result)
            else:
                failures.append((cell, message))
        return SweepResult(
            priors=tuple(canonical_name(prior) for prior in priors),
            datasets=tuple(canonical_name(dataset) for dataset in datasets),
            results=results,
            failures=failures,
        )

    def _run_cell_guarded(self, cell: Scenario) -> tuple:
        """Run one cell on this runner, wrapping failures like the workers do."""
        try:
            return self.run(cell), None
        except Exception as exc:  # noqa: BLE001 - a cell failure should not kill the grid
            return None, f"{type(exc).__name__}: {exc}"

    @staticmethod
    def _dataset_key(cell: Scenario) -> tuple | None:
        """The synthesis-cache key of a cell, or ``None`` when not shippable.

        Streaming cells regenerate chunks in the worker (shipping a cube
        would defeat the point), and cells whose week requirements could not
        be resolved fall back to the worker's own ``load_dataset`` path.
        """
        if cell.stream or cell.n_weeks is None:
            return None
        return (cell.dataset, cell.n_weeks, cell.bins_per_week, cell.full_scale, cell.dataset_seed)

    def _sweep_parallel(self, cells: list[Scenario], jobs: int) -> list[tuple]:
        """Run the grid cells in worker processes, preserving grid order.

        Every distinct dataset column is synthesized once here in the parent
        (through the shared :func:`load_dataset` cache) and handed to each
        worker process at startup, so workers never re-synthesize.  The bulky
        week arrays travel through ``multiprocessing.shared_memory`` — W
        workers map **one** copy of each column instead of unpickling W
        private ones — with a transparent fallback to the historical pickle
        path on platforms (or failures) where shared memory is unavailable.
        """
        datasets: dict[tuple, object] = {}
        keys: list[tuple | None] = []
        for cell in cells:
            key = self._dataset_key(cell)
            if key is not None and key not in datasets:
                try:
                    datasets[key] = load_dataset(
                        cell.dataset,
                        n_weeks=cell.n_weeks,
                        bins_per_week=cell.bins_per_week,
                        full_scale=cell.full_scale,
                        seed=cell.dataset_seed,
                    )
                except Exception:  # noqa: BLE001 - the cell run will report it
                    key = None
            keys.append(key)
        payloads = [(self._baseline, cell, key) for cell, key in zip(cells, keys)]
        shm_payload, shm_blocks = _export_datasets_shm(datasets)
        pickled = datasets if shm_payload is None else {}
        try:
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(cells)),
                initializer=_init_sweep_worker,
                initargs=(pickled, shm_payload),
            ) as pool:
                return list(pool.map(_run_sweep_cell, payloads))
        except (OSError, PermissionError, RuntimeError) as exc:
            warnings.warn(
                f"parallel sweep unavailable ({type(exc).__name__}: {exc}); "
                "falling back to a serial run",
                RuntimeWarning,
                stacklevel=3,
            )
            return [self._run_cell_guarded(cell) for cell in cells]
        finally:
            _release_shm_blocks(shm_blocks, unlink=True)


# ---------------------------------------------------------------------------
# shared-memory dataset shipping for parallel sweeps
# ---------------------------------------------------------------------------

def _export_datasets_shm(datasets: dict[tuple, object]):
    """Move each dataset column's week arrays into shared-memory segments.

    Returns ``(payload, blocks)`` where ``payload`` maps each synthesis-cache
    key to ``(shell, weeks_meta)`` — the dataset with its ``weeks`` stripped
    (everything else, topology and ground truths included, still pickles; it
    is small) plus per-week ``(segment_name, shape, bin_seconds)`` tuples —
    and ``blocks`` holds the parent's handles for cleanup after the pool
    exits.  Returns ``(None, [])`` when shared memory is unavailable or any
    allocation fails, which routes the sweep onto the pickle path.
    """
    if not datasets:
        return {}, []
    try:
        from multiprocessing import shared_memory
    except ImportError:  # pragma: no cover - platform without shared memory
        return None, []
    blocks: list = []
    payload: dict[tuple, tuple] = {}
    try:
        for key, data in datasets.items():
            weeks_meta = []
            for week in data.weeks:
                values = np.ascontiguousarray(np.asarray(week.values, dtype=float))
                segment = shared_memory.SharedMemory(create=True, size=max(values.nbytes, 1))
                blocks.append(segment)
                view = np.ndarray(values.shape, dtype=np.float64, buffer=segment.buf)
                view[...] = values
                weeks_meta.append((segment.name, values.shape, week.bin_seconds))
            shell = dataclasses.replace(data, weeks=[])
            payload[key] = (shell, weeks_meta)
    except (OSError, ValueError, TypeError):  # pragma: no cover - exotic platforms
        _release_shm_blocks(blocks, unlink=True)
        return None, []
    return payload, blocks


def _release_shm_blocks(blocks, *, unlink: bool) -> None:
    """Close (and optionally unlink) shared-memory handles, ignoring races."""
    for segment in blocks:
        try:
            segment.close()
            if unlink:
                segment.unlink()
        except (OSError, FileNotFoundError):  # pragma: no cover - already gone
            pass


def _attach_shm_week(name: str, shape):
    """Map one week out of a named shared-memory segment (zero copies).

    Returns ``(values, segment)``; the caller must keep ``segment`` alive
    for as long as the array is used.  The attach is untracked wherever the
    stdlib allows it, so the worker's resource tracker does not try to unlink
    segments the parent owns.
    """
    from multiprocessing import shared_memory

    try:
        segment = shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track flag
        segment = shared_memory.SharedMemory(name=name)
        # Under fork/forkserver the worker shares the parent's resource
        # tracker, where the attach-register is an idempotent no-op and the
        # parent's eventual unlink-unregister must stay balanced — touch
        # nothing.  Under spawn the worker runs its own tracker, which would
        # otherwise "clean up" (unlink) the parent's segments at worker
        # shutdown; deregister the attach there.
        try:
            import multiprocessing

            if multiprocessing.get_start_method(allow_none=True) == "spawn":
                from multiprocessing import resource_tracker

                resource_tracker.unregister(segment._name, "shared_memory")  # noqa: SLF001
        except Exception:  # noqa: BLE001 - tracker internals vary by version
            pass
    values = np.ndarray(shape, dtype=np.float64, buffer=segment.buf)
    return values, segment


# Dataset columns the parent synthesized for this worker process, keyed by
# the synthesis-cache tuple; populated once per worker by the pool
# initializer so each cell's payload only needs to carry the key.
_WORKER_DATASETS: dict[tuple, object] = {}

# Shared-memory handles this worker attached; referenced for the worker's
# lifetime so the mapped week arrays stay valid.
_WORKER_SHM_BLOCKS: list = []


def _init_sweep_worker(datasets: dict[tuple, object], shm_payload=None) -> None:
    _WORKER_DATASETS.clear()
    _WORKER_DATASETS.update(datasets)
    # Symmetric cleanup: a re-initialised worker must drop (and unmap) the
    # segments of any previous attach, or they stay mapped for its lifetime.
    _release_shm_blocks(_WORKER_SHM_BLOCKS, unlink=False)
    _WORKER_SHM_BLOCKS.clear()
    if not shm_payload:
        return
    for key, (shell, weeks_meta) in shm_payload.items():
        weeks = []
        for name, shape, bin_seconds in weeks_meta:
            values, segment = _attach_shm_week(name, shape)
            _WORKER_SHM_BLOCKS.append(segment)
            weeks.append(
                TrafficMatrixSeries._from_validated(  # noqa: SLF001 - validated in the parent
                    values, shell.topology.nodes, bin_seconds=bin_seconds
                )
            )
        dataset = dataclasses.replace(shell, weeks=weeks)
        _WORKER_DATASETS[key] = dataset


def _run_sweep_cell(payload: tuple) -> tuple:
    """Execute one sweep cell; top-level so worker processes can pickle it.

    Returns ``(result, None)`` on success and ``(None, message)`` on failure,
    so one singular configuration cannot sink a whole batch.
    """
    baseline, cell, dataset_key = payload
    dataset = _WORKER_DATASETS.get(dataset_key) if dataset_key is not None else None
    try:
        return ScenarioRunner(baseline_prior=baseline).run(cell, dataset=dataset), None
    except Exception as exc:  # noqa: BLE001 - a cell failure should not kill the grid
        return None, f"{type(exc).__name__}: {exc}"


@dataclass
class SweepResult:
    """Results of a priors × datasets grid sweep.

    ``results`` holds the successful cells; ``failures`` pairs each failed
    scenario with its error message, so one singular configuration cannot
    sink a whole batch.
    """

    priors: tuple[str, ...]
    datasets: tuple[str, ...]
    results: list[ScenarioResult]
    failures: list[tuple[Scenario, str]]

    def result_for(self, dataset: str, prior: str) -> ScenarioResult | None:
        """The cell for (dataset, prior), or ``None`` if it failed."""
        for result in self.results:
            if result.scenario.dataset == dataset and result.scenario.prior == prior:
                return result
        return None

    def format_table(self) -> str:
        """Grid of mean improvement % over the baseline (rows = priors)."""
        headers = ["prior \\ dataset", *self.datasets]
        rows: list[list[object]] = []
        for prior in self.priors:
            row: list[object] = [prior]
            for dataset in self.datasets:
                cell = self.result_for(dataset, prior)
                if cell is None:
                    row.append("failed")
                elif cell.improvement is None:
                    row.append(f"err={cell.mean_error:.4g}")
                else:
                    row.append(f"{cell.mean_improvement:+.2f}%")
            rows.append(row)
        table = format_rows(headers, rows)
        if self.failures:
            lines = [table, "", "failed cells:"]
            lines += [f"  {scenario.label}: {message}" for scenario, message in self.failures]
            return "\n".join(lines)
        return table

    def format_timing(self) -> str:
        """Per-cell timing breakdown of the successful runs."""
        rows = [
            [
                result.scenario.label,
                result.timing.get("dataset", 0.0),
                result.timing.get("prior", 0.0),
                result.timing.get("estimation", 0.0),
                result.timing.get("total", 0.0),
            ]
            for result in self.results
        ]
        return format_rows(["scenario", "dataset s", "prior s", "estimation s", "total s"], rows)


def run_scenario(scenario: Scenario | dict, **runner_kwargs) -> ScenarioResult:
    """Convenience wrapper: run one scenario (or scenario dict)."""
    if isinstance(scenario, dict):
        scenario = Scenario.from_dict(scenario)
    return ScenarioRunner(**runner_kwargs).run(scenario)


def sweep(
    *,
    priors: Sequence[str],
    datasets: Sequence[str],
    base: Scenario | dict | None = None,
    jobs: int | None = 1,
    **overrides,
) -> SweepResult:
    """Convenience wrapper around :meth:`ScenarioRunner.sweep`."""
    return ScenarioRunner().sweep(
        priors=priors, datasets=datasets, base=base, jobs=jobs, **overrides
    )

"""The declarative :class:`Scenario` configuration object.

A scenario names *what* to run — dataset, prior, estimator, optional
topology override — plus the scale and noise knobs, without saying *how*;
the how lives in :mod:`repro.scenarios.runner`.  Scenarios are frozen
dataclasses, so they hash, compare and round-trip through plain dicts,
which keeps batch configurations serialisable with nothing but ``json``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, fields

from repro.errors import ValidationError
from repro.registry import (
    BACKENDS,
    DATASETS,
    ESTIMATORS,
    PRIORS,
    TOPOLOGIES,
    canonical_name,
)

__all__ = ["Scenario"]


@dataclass(frozen=True)
class Scenario:
    """One named estimation run: registered components plus knobs.

    Attributes
    ----------
    dataset:
        Name of a registered dataset (``repro list datasets``).
    prior:
        Name of a registered prior strategy (``repro list priors``).
    estimator:
        Name of a registered estimator factory.
    topology:
        Optional registered topology overriding the dataset's own; its node
        set must match the dataset's.
    calibration_week, target_week:
        Week indices.  ``target_week=None`` lets the prior's ``week_mode``
        metadata pick the paper's default (same week, next week, or the
        dataset's calibration gap).
    n_weeks:
        Optional floor on the number of weeks synthesized.  By default just
        enough weeks for the calibration/target pair are generated; sweeps
        raise the floor to the grid-wide maximum so every cell of a dataset
        column shares one synthesis run (and therefore identical ground
        truth).
    bins_per_week, full_scale:
        Dataset scale knobs, as in the experiment drivers.
    max_bins:
        Cap on the number of bins pushed through the estimation pipeline.
    measurement_noise:
        Relative std of the simulated SNMP noise.
    seed:
        Seed for the measurement noise.
    dataset_seed:
        Optional override of the dataset factory's generation seed.
    measured_forward_fraction:
        Optional externally measured ``f`` for priors that use one.
    stream:
        Execute through the chunked streaming pipeline: the dataset is opened
        as a :class:`repro.synthesis.datasets.StreamingDataset` and synthesis,
        priors and estimation all run one ``(T_chunk, n, n)`` block at a
        time, bounding peak memory by the chunk size instead of the series
        length.  Same-seed synthesis is bit-identical to the in-memory path.
    chunk_bins:
        Chunk length (in bins) for streaming runs; ``None`` picks a size
        whose block fits a small fixed budget.
    spill_dir:
        Out-of-core results for streaming runs: per-bin error series (and
        the estimate cube, chunk by chunk) are written as ``.npz`` shards
        under this run directory, and the :class:`ScenarioResult` holds lazy
        handles that load on first use.  ``None`` spills automatically — to
        a fresh temporary run directory — once the estimated series reaches
        :data:`repro.scenarios.spill.SPILL_AUTO_MIN_BINS` bins; in-memory
        (non-streaming) runs never spill.
    spill_shard_bins:
        Bins per ``.npz`` shard when spilling (default 2048).  Smaller
        shards lower the peak memory of shard-at-a-time consumers
        (``repro report``, :meth:`~repro.scenarios.spill.SpilledSeries.iter_blocks`)
        at the cost of more files.
    backend:
        Registered compute backend (:mod:`repro.backend`) the run executes
        on: prior fitting and the estimation stages run against that array
        namespace (synthesis stays on the host; transfers happen at the
        chunk boundaries).  ``None`` follows the ambient selection
        (``REPRO_BACKEND`` environment variable, default ``numpy``).
    fast_path:
        Run the estimator with the incremental fast path
        (:mod:`repro.estimation.fastpath`): cached tomogravity
        factorisations and IPF solutions are reused across bins —
        bit-identical for repeated weights, ≤1e-10 for exactly rescaled
        priors.  Off by default so figure reproduction stays
        byte-identical to the historical per-bin path.
    name:
        Optional human label; defaults to ``"<dataset>/<prior>"``.
    """

    dataset: str
    prior: str
    estimator: str = "tomogravity"
    topology: str | None = None
    calibration_week: int = 0
    target_week: int | None = None
    n_weeks: int | None = None
    bins_per_week: int | None = None
    full_scale: bool = False
    max_bins: int | None = 48
    measurement_noise: float = 0.01
    seed: int = 0
    dataset_seed: int | None = None
    measured_forward_fraction: float | None = None
    stream: bool = False
    chunk_bins: int | None = None
    spill_dir: str | None = None
    spill_shard_bins: int | None = None
    backend: str | None = None
    fast_path: bool = False
    name: str | None = None

    def __post_init__(self):
        for component in ("dataset", "prior", "estimator", "topology", "backend"):
            value = getattr(self, component)
            if value is not None:
                object.__setattr__(self, component, canonical_name(value))

    @property
    def label(self) -> str:
        """Display label: the explicit name, or ``"<dataset>/<prior>"``."""
        return self.name or f"{self.dataset}/{self.prior}"

    def validate(self) -> "Scenario":
        """Check components against the registries and knobs for sanity.

        Returns ``self`` so it chains; raises :class:`ValidationError` or
        :class:`repro.errors.RegistryError` with the valid choices named.
        """
        DATASETS.entry(self.dataset)
        PRIORS.entry(self.prior)
        ESTIMATORS.entry(self.estimator)
        if self.topology is not None:
            TOPOLOGIES.entry(self.topology)
        if self.backend is not None:
            BACKENDS.entry(self.backend)  # availability is checked at run time
        if self.calibration_week < 0:
            raise ValidationError("calibration_week must be >= 0")
        if self.target_week is not None and self.target_week < 0:
            raise ValidationError("target_week must be >= 0")
        if self.n_weeks is not None and self.n_weeks < 1:
            raise ValidationError("n_weeks must be >= 1 (or None for the minimum)")
        if self.max_bins is not None and self.max_bins < 1:
            raise ValidationError("max_bins must be >= 1 (or None for the whole week)")
        if self.bins_per_week is not None and self.bins_per_week < 2:
            raise ValidationError("bins_per_week must be >= 2")
        if self.measurement_noise < 0:
            raise ValidationError("measurement_noise must be >= 0")
        if self.chunk_bins is not None and self.chunk_bins < 1:
            raise ValidationError("chunk_bins must be >= 1 (or None for the default)")
        if self.spill_dir is not None and not self.stream:
            raise ValidationError("spill_dir only applies to streaming scenarios (set stream)")
        if self.spill_shard_bins is not None:
            if not self.stream:
                raise ValidationError(
                    "spill_shard_bins only applies to streaming scenarios (set stream)"
                )
            if self.spill_shard_bins < 1:
                raise ValidationError("spill_shard_bins must be >= 1 (or None for the default)")
        return self

    def to_dict(self) -> dict:
        """Plain-dict form; ``Scenario.from_dict(s.to_dict()) == s``."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        """Build a scenario from a plain dict, rejecting unknown keys."""
        valid = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - valid)
        if unknown:
            raise ValidationError(
                f"unknown Scenario fields {unknown}; valid fields: {sorted(valid)}"
            )
        for required in ("dataset", "prior"):
            if required not in data:
                raise ValidationError(f"Scenario requires the {required!r} field")
        return cls(**data)

    def replace(self, **changes) -> "Scenario":
        """A copy with the given fields replaced (dataclasses.replace)."""
        return dataclasses.replace(self, **changes)

"""Out-of-core scenario results: ``.npz`` shard spilling and lazy loading.

Month-scale streamed runs keep only ``O(T)`` per-bin series in memory — but
"only O(T)" stops being small once sweeps stack many cells of many-week
series, and the ``(T, n, n)`` estimate cube cannot be materialised at all.
This module gives the scenario runner an out-of-core results plane:

* :class:`SpillStore` manages one run directory and writes any per-bin
  series (error vectors, estimate cubes) as ``.npz`` shards of a bounded
  number of bins each, either from a complete array or chunk by chunk
  through a :class:`ShardWriter` sink;
* :class:`SpilledSeries` is the lazy handle stored on
  :class:`~repro.scenarios.runner.ScenarioResult` — it knows its shape and
  shard paths up front, loads (and caches) the concatenated array only when
  the values are actually consumed, and pickles as paths, so sweep workers
  hand results to the parent without shipping the data.

Shards are plain ``numpy.savez_compressed`` files named
``<series>-<start>.npz`` with a single ``values`` array, so they are usable
with nothing but numpy.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import ValidationError

__all__ = ["SpilledSeries", "ShardWriter", "SpillStore", "SPILL_AUTO_MIN_BINS"]

# A streamed run whose per-bin series reach this many bins spills them to
# disk automatically (an explicit spill directory always spills).
SPILL_AUTO_MIN_BINS = 4096


class SpilledSeries:
    """A lazy, picklable handle over a series spilled to ``.npz`` shards.

    Behaves like an array where it matters (``shape``, ``len``,
    ``np.asarray`` / any numpy reduction via ``__array__``, indexing) while
    costing no memory until the values are first consumed; the loaded array
    is cached on the instance but excluded from pickling.
    """

    def __init__(self, paths: list, shape: tuple):
        self._paths = [Path(path) for path in paths]
        self._shape = tuple(int(axis) for axis in shape)
        self._loaded: np.ndarray | None = None

    @property
    def paths(self) -> tuple:
        """The shard files backing this series, in bin order."""
        return tuple(self._paths)

    @property
    def shape(self) -> tuple:
        return self._shape

    def __len__(self) -> int:
        return self._shape[0]

    def load(self) -> np.ndarray:
        """Read and concatenate the shards (cached after the first call)."""
        if self._loaded is None:
            parts = []
            for path in self._paths:
                with np.load(path) as payload:
                    parts.append(payload["values"])
            values = parts[0] if len(parts) == 1 else np.concatenate(parts, axis=0)
            if values.shape != self._shape:
                raise ValidationError(
                    f"spilled shards reassemble to shape {values.shape}, "
                    f"expected {self._shape}; was the spill directory modified?"
                )
            self._loaded = values
        return self._loaded

    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        values = self.load()
        if dtype is not None and values.dtype != dtype:
            return values.astype(dtype)
        return values

    def __getitem__(self, item):
        return self.load()[item]

    def __getstate__(self):
        return {"paths": [str(path) for path in self._paths], "shape": self._shape}

    def __setstate__(self, state):
        self.__init__(state["paths"], state["shape"])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SpilledSeries(shape={self._shape}, shards={len(self._paths)})"


class ShardWriter:
    """Chunk sink that persists ``(t0, block)`` pairs as bounded shards.

    Blocks are buffered until ``shard_bins`` bins accumulate, then flushed as
    one ``.npz`` shard; peak memory is one shard, never the series.  Chunks
    must arrive in bin order (which is how every streaming stage produces
    them).  Call :meth:`finish` to flush the tail and obtain the
    :class:`SpilledSeries` handle.
    """

    def __init__(self, directory: Path, name: str, *, shard_bins: int):
        if shard_bins < 1:
            raise ValidationError("shard_bins must be >= 1")
        self._directory = Path(directory)
        self._name = str(name)
        self._shard_bins = int(shard_bins)
        self._buffer: list[np.ndarray] = []
        self._buffered = 0
        self._written = 0
        self._paths: list[Path] = []
        self._item_shape: tuple | None = None

    def __call__(self, t0: int, block: np.ndarray) -> None:
        block = np.asarray(block)
        if t0 != self._written + self._buffered:
            raise ValidationError(
                f"spill writer for {self._name!r} expected a chunk at bin "
                f"{self._written + self._buffered}, got {t0}"
            )
        if self._item_shape is None:
            self._item_shape = block.shape[1:]
        self._buffer.append(block)
        self._buffered += block.shape[0]
        while self._buffered >= self._shard_bins:
            self._flush(self._shard_bins)

    def _flush(self, n_bins: int) -> None:
        stacked = np.concatenate(self._buffer, axis=0) if len(self._buffer) > 1 else self._buffer[0]
        shard, rest = stacked[:n_bins], stacked[n_bins:]
        path = self._directory / f"{self._name}-{self._written:08d}.npz"
        np.savez_compressed(path, values=shard)
        self._paths.append(path)
        self._written += shard.shape[0]
        self._buffer = [rest] if rest.shape[0] else []
        self._buffered = rest.shape[0]

    def finish(self) -> SpilledSeries:
        """Flush any buffered tail and return the lazy series handle."""
        if self._buffered:
            self._flush(self._buffered)
        if self._written == 0:
            raise ValidationError(f"spill writer for {self._name!r} received no chunks")
        return SpilledSeries(self._paths, (self._written, *(self._item_shape or ())))


class SpillStore:
    """One run directory of spilled series shards.

    Parameters
    ----------
    directory:
        Where the shards live; created (including parents) if missing.
    shard_bins:
        Bins per shard for both :meth:`add_series` and :meth:`writer`.
    """

    def __init__(self, directory, *, shard_bins: int = 2048):
        if shard_bins < 1:
            raise ValidationError("shard_bins must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._shard_bins = int(shard_bins)

    def writer(self, name: str) -> ShardWriter:
        """A chunk sink persisting the named series shard by shard."""
        return ShardWriter(self.directory, name, shard_bins=self._shard_bins)

    def add_series(self, name: str, values) -> SpilledSeries:
        """Spill a complete array and return its lazy handle."""
        values = np.asarray(values)
        if values.ndim < 1 or values.shape[0] < 1:
            raise ValidationError("spilled series need at least one bin")
        writer = self.writer(name)
        for start in range(0, values.shape[0], self._shard_bins):
            writer(start, values[start : start + self._shard_bins])
        return writer.finish()

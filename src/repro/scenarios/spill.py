"""Out-of-core scenario results: ``.npz`` shard spilling and lazy loading.

Month-scale streamed runs keep only ``O(T)`` per-bin series in memory — but
"only O(T)" stops being small once sweeps stack many cells of many-week
series, and the ``(T, n, n)`` estimate cube cannot be materialised at all.
This module gives the scenario runner an out-of-core results plane:

* :class:`SpillStore` manages one run directory and writes any per-bin
  series (error vectors, estimate cubes) as ``.npz`` shards of a bounded
  number of bins each, either from a complete array or chunk by chunk
  through a :class:`ShardWriter` sink;
* :class:`SpilledSeries` is the lazy handle stored on
  :class:`~repro.scenarios.runner.ScenarioResult` — it knows its shape and
  shard paths up front, answers integer/slice indexing and
  :meth:`~SpilledSeries.iter_blocks` by reading only the shards the request
  overlaps, loads (and caches) the concatenated array only when a consumer
  asks for everything, and pickles as paths, so sweep workers hand results
  to the parent without shipping the data;
* :func:`discover_spilled_series` rebuilds the lazy handles from a bare
  shard directory — shapes come from the ``.npy`` headers inside each
  archive member, so discovery never decompresses a shard.

Shards are plain ``numpy.savez_compressed`` files named
``<series>-<start>.npz`` with a single ``values`` array, so they are usable
with nothing but numpy.
"""

from __future__ import annotations

import re
import zipfile
from pathlib import Path

import numpy as np

from repro.errors import ValidationError
from repro.obs import get_metrics

__all__ = [
    "SpilledSeries",
    "ShardWriter",
    "SpillStore",
    "SPILL_AUTO_MIN_BINS",
    "discover_spilled_series",
]

_SHARD_NAME = re.compile(r"^(?P<name>.+)-(?P<start>\d{8})\.npz$")


def _shard_shape(path) -> tuple:
    """Shape of a shard's ``values`` array, read from the ``.npy`` header.

    ``savez_compressed`` archives are zip files of ``.npy`` members; the
    member header carries the shape, so sizing a shard costs a few hundred
    bytes of I/O instead of a decompression.
    """
    try:
        with zipfile.ZipFile(path) as archive:
            with archive.open("values.npy") as member:
                version = np.lib.format.read_magic(member)
                if version == (1, 0):
                    shape, _, _ = np.lib.format.read_array_header_1_0(member)
                elif version == (2, 0):
                    shape, _, _ = np.lib.format.read_array_header_2_0(member)
                else:  # pragma: no cover - future numpy header revisions
                    raise KeyError(version)
        return shape
    except (KeyError, ValueError, OSError, zipfile.BadZipFile):
        # Unrecognised layout: fall back to actually loading the shard.
        with np.load(path) as payload:
            return payload["values"].shape

# A streamed run whose per-bin series reach this many bins spills them to
# disk automatically (an explicit spill directory always spills).
SPILL_AUTO_MIN_BINS = 4096


class SpilledSeries:
    """A lazy, picklable handle over a series spilled to ``.npz`` shards.

    Behaves like an array where it matters (``shape``, ``len``,
    ``np.asarray`` / any numpy reduction via ``__array__``, indexing) while
    costing no memory until the values are first consumed.  Integer and
    slice access along the bin axis read only the shards they overlap (one
    decompressed shard is kept as a cursor for repeated nearby access), and
    :meth:`iter_blocks` walks the series one shard at a time — the marts
    layer reduces month-scale archives through it in bounded memory.  A
    full :meth:`load` caches the concatenated array on the instance but is
    excluded from pickling.
    """

    def __init__(self, paths: list, shape: tuple, starts: list | None = None):
        self._paths = [Path(path) for path in paths]
        self._shape = tuple(int(axis) for axis in shape)
        self._loaded: np.ndarray | None = None
        self._starts = None if starts is None else [int(start) for start in starts]
        self._shard_cursor: tuple[int, np.ndarray] | None = None

    @property
    def paths(self) -> tuple:
        """The shard files backing this series, in bin order."""
        return tuple(self._paths)

    @property
    def shape(self) -> tuple:
        return self._shape

    def __len__(self) -> int:
        return self._shape[0]

    # -- shard geometry ------------------------------------------------------

    def _shard_starts(self) -> list:
        """Start bin of each shard (series-relative), derived lazily.

        Shard names embed their absolute start bin; when the handle was not
        built by a :class:`ShardWriter` (discovery, unpickling) the starts
        are recovered from the filenames, falling back to header reads for
        foreign names.
        """
        if self._starts is None:
            starts = []
            for path in self._paths:
                match = _SHARD_NAME.match(path.name)
                if match is None:
                    starts = None
                    break
                starts.append(int(match.group("start")))
            if starts is None:
                lengths = [int(_shard_shape(path)[0]) for path in self._paths]
                starts = [0]
                for length in lengths[:-1]:
                    starts.append(starts[-1] + length)
            else:
                base = starts[0]
                starts = [start - base for start in starts]
            if sorted(starts) != starts or len(set(starts)) != len(starts):
                raise ValidationError(
                    f"spilled shards are not in bin order: {self._paths}"
                )
            self._starts = starts
        return self._starts

    def _shard_index(self, bin_index: int) -> int:
        """Index of the shard containing the (series-relative) bin."""
        starts = self._shard_starts()
        position = int(np.searchsorted(starts, bin_index, side="right")) - 1
        return max(position, 0)

    def _load_shard(self, index: int) -> np.ndarray:
        """Decompress one shard, keeping a single-shard cursor cache."""
        if self._loaded is not None:
            starts = self._shard_starts()
            stop = starts[index + 1] if index + 1 < len(starts) else self._shape[0]
            return self._loaded[starts[index] : stop]
        if self._shard_cursor is not None and self._shard_cursor[0] == index:
            return self._shard_cursor[1]
        with np.load(self._paths[index]) as payload:
            values = payload["values"]
        self._shard_cursor = (index, values)
        return values

    def iter_blocks(self, start: int = 0, stop: int | None = None):
        """Yield ``(t0, block)`` pairs covering ``[start, stop)`` shard by shard.

        Only shards overlapping the window are read, one at a time; blocks
        at the window edges are trimmed.  This is the streaming access path
        of :mod:`repro.marts` — peak memory is one decompressed shard.
        """
        n_bins = self._shape[0]
        start, stop, _ = slice(start, stop).indices(n_bins)
        if stop <= start:
            return
        starts = self._shard_starts()
        first = self._shard_index(start)
        for index in range(first, len(self._paths)):
            shard_start = starts[index]
            if shard_start >= stop:
                break
            values = self._load_shard(index)
            lo = max(start - shard_start, 0)
            hi = min(stop - shard_start, values.shape[0])
            if hi <= lo:
                continue
            yield shard_start + lo, values[lo:hi]

    def _read_range(self, start: int, stop: int) -> np.ndarray:
        """Materialise the ``[start, stop)`` window from overlapping shards."""
        parts = [block for _, block in self.iter_blocks(start, stop)]
        if not parts:
            return np.empty((0, *self._shape[1:]))
        if len(parts) == 1:
            return parts[0]
        return np.concatenate(parts, axis=0)

    def load(self) -> np.ndarray:
        """Read and concatenate the shards (cached after the first call)."""
        if self._loaded is None:
            parts = []
            for path in self._paths:
                with np.load(path) as payload:
                    parts.append(payload["values"])
            values = parts[0] if len(parts) == 1 else np.concatenate(parts, axis=0)
            if values.shape != self._shape:
                raise ValidationError(
                    f"spilled shards reassemble to shape {values.shape}, "
                    f"expected {self._shape}; was the spill directory modified?"
                )
            self._loaded = values
        return self._loaded

    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        values = self.load()
        if dtype is not None and values.dtype != dtype:
            return values.astype(dtype)
        return values

    def __getitem__(self, item):
        """Index the series, reading only the shards the request overlaps.

        Integer and slice access along the bin axis (alone or as the leading
        element of a tuple) stay shard-local; anything fancier (boolean or
        integer-array indexing) falls back to a full :meth:`load`.
        """
        if self._loaded is not None:
            return self._loaded[item]
        if isinstance(item, tuple):
            if not item:
                return self.load()[item]
            lead, rest = item[0], item[1:]
            if isinstance(lead, (int, np.integer)):
                return self[lead][rest] if rest else self[lead]
            if isinstance(lead, slice):
                block = self[lead]
                return block[(slice(None), *rest)] if rest else block
            return self.load()[item]
        if isinstance(item, (int, np.integer)):
            index = int(item)
            n_bins = self._shape[0]
            if index < 0:
                index += n_bins
            if not 0 <= index < n_bins:
                raise IndexError(
                    f"bin {int(item)} out of range for {n_bins}-bin spilled series"
                )
            shard = self._shard_index(index)
            return self._load_shard(shard)[index - self._shard_starts()[shard]]
        if isinstance(item, slice):
            start, stop, step = item.indices(self._shape[0])
            indices = range(start, stop, step)
            if len(indices) == 0:
                return np.empty((0, *self._shape[1:]))
            if step == 1:
                return self._read_range(start, stop)
            low, high = min(indices), max(indices) + 1
            window = self._read_range(low, high)
            adjusted_stop: int | None = stop - low
            if step < 0 and adjusted_stop < 0:
                adjusted_stop = None
            return window[start - low : adjusted_stop : step]
        return self.load()[item]

    def __getstate__(self):
        return {"paths": [str(path) for path in self._paths], "shape": self._shape}

    def __setstate__(self, state):
        self.__init__(state["paths"], state["shape"])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SpilledSeries(shape={self._shape}, shards={len(self._paths)})"


class ShardWriter:
    """Chunk sink that persists ``(t0, block)`` pairs as bounded shards.

    Blocks are buffered until ``shard_bins`` bins accumulate, then flushed as
    one ``.npz`` shard; peak memory is one shard, never the series.  Chunks
    must arrive in bin order (which is how every streaming stage produces
    them).  Call :meth:`finish` to flush the tail and obtain the
    :class:`SpilledSeries` handle.

    ``start_bin`` shifts the expected first chunk (and the shard file names)
    to an absolute bin offset — a resumed :mod:`repro.ingest` service
    appends new shards after the ones a previous run left behind, and
    :func:`discover_spilled_series` reassembles the contiguous whole.
    :meth:`flush` persists the buffered tail early (as a short shard)
    without closing the writer, so long-running sinks can bound data loss
    at their checkpoint cadence.
    """

    def __init__(self, directory: Path, name: str, *, shard_bins: int, start_bin: int = 0):
        if shard_bins < 1:
            raise ValidationError("shard_bins must be >= 1")
        if start_bin < 0:
            raise ValidationError("start_bin must be >= 0")
        self._directory = Path(directory)
        self._name = str(name)
        self._shard_bins = int(shard_bins)
        self._buffer: list[np.ndarray] = []
        self._buffered = 0
        self._start = int(start_bin)
        self._written = int(start_bin)
        self._paths: list[Path] = []
        self._starts: list[int] = []
        self._item_shape: tuple | None = None

    def __call__(self, t0: int, block: np.ndarray) -> None:
        block = np.asarray(block)
        if t0 != self._written + self._buffered:
            raise ValidationError(
                f"spill writer for {self._name!r} expected a chunk at bin "
                f"{self._written + self._buffered}, got {t0}"
            )
        if self._item_shape is None:
            self._item_shape = block.shape[1:]
        self._buffer.append(block)
        self._buffered += block.shape[0]
        while self._buffered >= self._shard_bins:
            self._flush(self._shard_bins)

    def _flush(self, n_bins: int) -> None:
        stacked = np.concatenate(self._buffer, axis=0) if len(self._buffer) > 1 else self._buffer[0]
        shard, rest = stacked[:n_bins], stacked[n_bins:]
        path = self._directory / f"{self._name}-{self._written:08d}.npz"
        np.savez_compressed(path, values=shard)
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("repro_spill_bytes_total").inc(path.stat().st_size)
            metrics.counter("repro_spill_shards_total").inc()
        self._paths.append(path)
        self._starts.append(self._written - self._start)
        self._written += shard.shape[0]
        self._buffer = [rest] if rest.shape[0] else []
        self._buffered = rest.shape[0]

    def flush(self) -> None:
        """Persist the buffered tail now, as a (possibly short) shard."""
        if self._buffered:
            self._flush(self._buffered)

    def finish(self) -> SpilledSeries:
        """Flush any buffered tail and return the lazy series handle."""
        self.flush()
        if self._written == self._start:
            raise ValidationError(f"spill writer for {self._name!r} received no chunks")
        return SpilledSeries(
            self._paths,
            (self._written - self._start, *(self._item_shape or ())),
            starts=self._starts,
        )


class SpillStore:
    """One run directory of spilled series shards.

    Parameters
    ----------
    directory:
        Where the shards live; created (including parents) if missing.
    shard_bins:
        Bins per shard for both :meth:`add_series` and :meth:`writer`.
    """

    def __init__(self, directory, *, shard_bins: int = 2048):
        if shard_bins < 1:
            raise ValidationError("shard_bins must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._shard_bins = int(shard_bins)

    def writer(self, name: str, *, start_bin: int = 0) -> ShardWriter:
        """A chunk sink persisting the named series shard by shard."""
        return ShardWriter(
            self.directory, name, shard_bins=self._shard_bins, start_bin=start_bin
        )

    def add_series(self, name: str, values) -> SpilledSeries:
        """Spill a complete array and return its lazy handle."""
        values = np.asarray(values)
        if values.ndim < 1 or values.shape[0] < 1:
            raise ValidationError("spilled series need at least one bin")
        writer = self.writer(name)
        for start in range(0, values.shape[0], self._shard_bins):
            writer(start, values[start : start + self._shard_bins])
        return writer.finish()


def discover_spilled_series(directory) -> dict:
    """Rebuild ``{name: SpilledSeries}`` from a bare shard directory.

    Finds every ``<name>-<start>.npz`` shard, groups by series name, sizes
    each shard from its ``.npy`` header (no decompression) and validates
    that the shards tile the bin axis contiguously — a gap (e.g. a sidecar
    writer that was killed before flushing) raises, so callers can fall
    back to a slower source of truth instead of reporting over holes.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise ValidationError(f"spill directory {directory} does not exist")
    grouped: dict[str, list] = {}
    for path in sorted(directory.iterdir()):
        match = _SHARD_NAME.match(path.name)
        if match is None or not path.is_file():
            continue
        grouped.setdefault(match.group("name"), []).append(
            (int(match.group("start")), path)
        )
    series: dict[str, SpilledSeries] = {}
    for name, shards in grouped.items():
        shards.sort()
        paths = [path for _, path in shards]
        shapes = [_shard_shape(path) for path in paths]
        item_shape = shapes[0][1:]
        if any(shape[1:] != item_shape for shape in shapes):
            raise ValidationError(
                f"spilled series {name!r} mixes item shapes: {shapes}"
            )
        base = shards[0][0]
        starts, expected = [], base
        for (start, path), shape in zip(shards, shapes):
            if start != expected:
                raise ValidationError(
                    f"spilled series {name!r} has a gap: expected a shard at "
                    f"bin {expected}, found {path.name}"
                )
            starts.append(start - base)
            expected = start + shape[0]
        series[name] = SpilledSeries(
            paths, (expected - base, *item_shape), starts=starts
        )
    return series

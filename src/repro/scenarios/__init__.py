"""Declarative estimation scenarios over the component registries.

This package is the composition layer of the reproduction: instead of
hard-wiring a dataset, prior and estimator inside an experiment driver, a
:class:`Scenario` names registered components plus the scale/seed knobs, and
a :class:`ScenarioRunner` executes it (or a whole grid of them) through the
shared measurement-simulation and estimation pipeline::

    from repro.scenarios import Scenario, ScenarioRunner

    scenario = Scenario(dataset="geant", prior="stable_fp", bins_per_week=96)
    result = ScenarioRunner().run(scenario)
    print(result.format_table())

Scenarios round-trip through plain dicts (:meth:`Scenario.to_dict` /
:meth:`Scenario.from_dict`), so batch configurations can live in JSON files
without this package needing a serialisation dependency.  New components
plug in through the decorators in :mod:`repro.registry`
(``register_prior``, ``register_dataset``, ...) and are immediately
available to every scenario and to the ``repro`` CLI.
"""

from repro.scenarios.scenario import Scenario
from repro.scenarios.executors import (
    InProcessExecutor,
    LocalPoolExecutor,
    RemoteExecutor,
    ResultSink,
    SpawnedWorkers,
    SweepExecutor,
    SweepPlan,
    run_sweep_worker,
)
from repro.scenarios.runner import (
    FIT_CACHE_BYTES,
    ScenarioResult,
    ScenarioRunner,
    SweepResult,
    SweepSharedState,
    run_scenario,
    sweep,
)
from repro.scenarios.spill import (
    SPILL_AUTO_MIN_BINS,
    SpilledSeries,
    SpillStore,
    discover_spilled_series,
)

__all__ = [
    "Scenario",
    "ScenarioResult",
    "ScenarioRunner",
    "SweepResult",
    "SweepSharedState",
    "SweepExecutor",
    "SweepPlan",
    "InProcessExecutor",
    "LocalPoolExecutor",
    "RemoteExecutor",
    "ResultSink",
    "SpawnedWorkers",
    "run_sweep_worker",
    "SpilledSeries",
    "SpillStore",
    "discover_spilled_series",
    "SPILL_AUTO_MIN_BINS",
    "FIT_CACHE_BYTES",
    "run_scenario",
    "sweep",
]

"""Sweep executors: where the cells of a grid actually run.

:meth:`ScenarioRunner.sweep` builds the grid; *executors* decide where its
cells execute.  Three implementations cover the scaling ladder:

* :class:`InProcessExecutor` — every cell runs serially in the calling
  process, sharing one :class:`~repro.scenarios.runner.SweepSharedState`.
  The reference path: all other executors must match it bit for bit.
* :class:`LocalPoolExecutor` — the shared-plan ``ProcessPoolExecutor``
  scheduler: dataset columns are synthesized (or planned) once in the
  parent, shipped to local workers over shared memory, and cells run in
  column batches.
* :class:`RemoteExecutor` — the same column batches shipped to ``repro
  sweep-worker`` daemons over TCP.  Streaming columns travel as their
  generation-plan state (:meth:`StreamingDataset.export_state`), in-memory
  columns as pickled week cubes; workers run the cells and send the
  per-cell results back.  Cells that spill expect ``spill_dir`` to be a
  directory *shared* between the parent and every worker (NFS or
  equivalent): workers write ``.npz`` shards there and return lazy
  :class:`~repro.scenarios.spill.SpilledSeries` handles that the parent
  reads from the same paths.

Every executor preserves the sweep's determinism contract: cells carry
explicit seeds, batches are formed by the same column-grouping rule, and
results are reassembled in grid order, so the choice of executor (and the
number or speed of its workers) cannot change a single bit of the output.

**Security note:** the worker protocol exchanges pickled Python objects
over plain TCP with no authentication.  Run ``repro sweep-worker`` only on
a trusted, private network (loopback, a lab LAN, a VPC) — never expose the
port to untrusted peers, since unpickling attacker-controlled bytes runs
arbitrary code.
"""

from __future__ import annotations

import os
import pickle
import re
import socket
import struct
import subprocess
import sys
import threading
import warnings
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ExecutorError, ValidationError
from repro.obs import get_metrics, get_tracer, tracer_from_context, use_tracer, worker_context

__all__ = [
    "SweepExecutor",
    "InProcessExecutor",
    "LocalPoolExecutor",
    "RemoteExecutor",
    "ResultSink",
    "SweepPlan",
    "SpawnedWorkers",
    "resolve_executor",
    "run_sweep_worker",
    "SWEEP_WORKER_PROTOCOL",
]

# Bumped whenever the wire messages change shape; client and daemon must
# agree exactly (there is no cross-version compatibility machinery).
# 2: batch requests carry the caller's trace context ("trace", "worker"),
#    batch replies carry the worker's span events ("trace_events").
SWEEP_WORKER_PROTOCOL = 2


class ResultSink:
    """Protocol: consume sweep cell results the moment they complete.

    A sink turns the sweep's result channel from *accumulate in the
    driver* into *stream to the consumer*: executors deliver each cell
    through :meth:`SweepPlan.emit` as it finishes (in completion order,
    not grid order), the sink reduces or persists it, and the driver keeps
    none of it — :class:`~repro.scenarios.runner.SweepResult.results`
    stays empty.  Delivery is serialised under the plan lock, so sinks
    need no locking of their own.  :meth:`finish` runs once after every
    cell is delivered.
    """

    def cell(self, index: int, scenario, result, message: str | None) -> None:
        raise NotImplementedError

    def finish(self):  # pragma: no cover - optional hook
        return None


@dataclass
class SweepPlan:
    """One sweep's work, handed from the runner to its executor.

    ``cells`` are already week-pinned and in grid order; ``jobs`` is the
    *requested* worker count before any local CPU capping (remote executors
    may honour widths a single host cannot).  ``sink`` is the optional
    :class:`ResultSink`; executors must deliver every cell exactly once
    through :meth:`emit`, which either forwards the result to the sink
    (streaming mode — the plan retains only the message) or records it for
    :meth:`outcomes` (accumulate mode, the historical behaviour).
    """

    runner: object
    cells: list
    jobs: int = 1
    sink: ResultSink | None = None
    _lock: threading.Lock = field(default_factory=threading.Lock, init=False, repr=False)
    _outcomes: list = field(default_factory=list, init=False, repr=False)
    _delivered: list = field(default_factory=list, init=False, repr=False)

    def __post_init__(self):
        self._outcomes = [None] * len(self.cells)
        self._delivered = [False] * len(self.cells)

    def emit(self, index: int, result, message: str | None) -> None:
        """Deliver one completed cell (thread-safe, exactly once per cell)."""
        with get_tracer().span("emit", index=index, sink=self.sink is not None):
            with self._lock:
                if self._delivered[index]:
                    raise ExecutorError(
                        f"cell {index} was delivered twice — executor bug"
                    )
                self._delivered[index] = True
                if self.sink is not None:
                    self.sink.cell(index, self.cells[index], result, message)
                    self._outcomes[index] = (None, message)
                else:
                    self._outcomes[index] = (result, message)

    def pending(self) -> list:
        """Indices of cells not yet delivered."""
        with self._lock:
            return [at for at, done in enumerate(self._delivered) if not done]

    def outcomes(self) -> list[tuple]:
        """The per-cell ``(result, message)`` list, once all cells delivered."""
        missing = self.pending()
        if missing:
            raise ExecutorError(f"executor delivered no outcome for cells {missing}")
        return list(self._outcomes)


class SweepExecutor:
    """Protocol: turn a :class:`SweepPlan` into per-cell outcomes.

    ``execute`` delivers every cell through :meth:`SweepPlan.emit` as it
    completes and returns ``plan.outcomes()`` — one ``(result, message)``
    pair per cell, in cell order, where ``message`` is ``None`` for a
    success and the error string for a failed cell, exactly like the
    serial path produces.  (When the plan carries a sink, the emitted
    results stream to it instead and the returned pairs hold ``None``
    results.)
    """

    name = "executor"

    def execute(self, plan: SweepPlan) -> list[tuple]:
        raise NotImplementedError


class InProcessExecutor(SweepExecutor):
    """Run every cell serially in the calling process (the reference path)."""

    name = "in-process"

    def execute(self, plan: SweepPlan) -> list[tuple]:
        from repro.scenarios.runner import SweepSharedState

        shared = SweepSharedState()
        for index, cell in enumerate(plan.cells):
            result, message = plan.runner._run_cell_guarded(cell, shared=shared)
            plan.emit(index, result, message)
        return plan.outcomes()


class LocalPoolExecutor(SweepExecutor):
    """Run column batches in local worker processes (shared-memory shipping).

    Wraps the runner's shared-plan ``ProcessPoolExecutor`` scheduler; on
    pool failure (sandboxes without process support, shared-memory limits)
    it falls back to a serial run with a warning, like ``--jobs`` always
    has.
    """

    name = "local-pool"

    def __init__(self, jobs: int):
        if jobs < 1:
            raise ValidationError("LocalPoolExecutor needs jobs >= 1")
        self.jobs = int(jobs)

    def execute(self, plan: SweepPlan) -> list[tuple]:
        plan.runner._sweep_parallel(plan.cells, self.jobs, emit=plan.emit)
        return plan.outcomes()


def resolve_executor(spec, *, jobs: int | None, n_cells: int, cpu_count: int | None):
    """Resolve a user-facing executor spec into ``(executor, plan_jobs)``.

    ``spec`` is an executor instance (used as-is), a name (``"auto"``,
    ``"in-process"``, ``"local-pool"``) or ``None`` (same as ``"auto"``).
    ``jobs=None`` means one per CPU.  ``auto`` keeps the historical
    semantics: cap the pool at the host's CPU count — now warning once
    when the cap bites — and collapse to the in-process path when only one
    worker could run or the grid has a single cell.  ``plan_jobs`` is the
    uncapped request, which remote executors may use to split batches
    wider than this host's CPUs.
    """
    requested = (cpu_count or 1) if jobs is None else int(jobs)
    if requested < 1:
        raise ValidationError("jobs must be >= 1 (or None for one per CPU)")
    if isinstance(spec, SweepExecutor):
        return spec, requested
    name = "auto" if spec is None else str(spec)
    if name == "remote":
        raise ValidationError(
            "the remote executor needs worker addresses; pass a "
            "RemoteExecutor([...]) instance (CLI: --remote-workers HOST:PORT ...)"
        )
    if name in ("in-process", "serial"):
        return InProcessExecutor(), requested
    capped = max(1, min(requested, cpu_count or requested))
    if capped < requested:
        _warn_jobs_capped(requested, capped, cpu_count)
    if name in ("local", "local-pool"):
        return LocalPoolExecutor(capped), requested
    if name == "auto":
        if capped > 1 and n_cells > 1:
            return LocalPoolExecutor(capped), requested
        return InProcessExecutor(), requested
    raise ValidationError(
        f"unknown sweep executor {spec!r}; valid executors: auto, in-process, "
        "local-pool, or a RemoteExecutor instance"
    )


# Emitted at most once per process: sweeps are often run in loops, and the
# cap is a property of the host, not of any one call.
_JOBS_CAP_WARNED = False


def _warn_jobs_capped(requested: int, capped: int, cpu_count: int | None) -> None:
    global _JOBS_CAP_WARNED
    if _JOBS_CAP_WARNED:
        return
    _JOBS_CAP_WARNED = True
    warnings.warn(
        f"sweep jobs={requested} exceeds this host's {cpu_count} CPU(s); "
        f"running {capped} local worker(s).  Workers beyond the CPU count buy "
        "no local concurrency — use the remote executor (--executor remote "
        "--remote-workers HOST:PORT ...) to go wider across machines",
        RuntimeWarning,
        stacklevel=4,
    )


# ---------------------------------------------------------------------------
# remote execution: wire protocol
# ---------------------------------------------------------------------------
#
# Frames are length-prefixed pickles: an 8-byte big-endian unsigned length
# followed by that many pickle bytes.  The client speaks a strict
# request/response sequence per connection:
#
#   {"op": "ping"}                                  -> {"ok", "protocol"}
#   {"op": "dataset", "key", "kind", "payload"}      -> {"ok"[, "error"]}
#   {"op": "batch", "baseline", "fit_cache_bytes",
#    "fit_memo", "items", "trace", "worker"}          -> {"ok", "outcomes",
#                                                        "peak_rss_mb",
#                                                        "trace_events"}
#   {"op": "shutdown"}                               -> {"ok"}  (daemon exits)
#
# ``kind`` is "plan" (a StreamingDatasetState with arrays inline) or "cube"
# (a pickled materialised dataset); ``items`` is a column batch of
# ``(index, scenario, dataset_key)`` tuples and ``outcomes`` the matching
# ``(index, result, message)`` list.  One connection serves one sweep: the
# daemon's dataset cache and SweepSharedState live exactly as long as the
# connection, so nothing leaks between sweeps (or clients).


def _send_message(sock: socket.socket, message: dict) -> None:
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(struct.pack("!Q", len(payload)) + payload)


def _recv_exact(sock: socket.socket, n_bytes: int) -> bytes:
    chunks = []
    remaining = n_bytes
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise EOFError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _recv_message(sock: socket.socket) -> dict:
    (length,) = struct.unpack("!Q", _recv_exact(sock, 8))
    return pickle.loads(_recv_exact(sock, length))


def _roundtrip(sock: socket.socket, message: dict) -> dict:
    _send_message(sock, message)
    return _recv_message(sock)


def _parse_address(worker) -> tuple[str, int]:
    """Accept ``"host:port"`` strings or ``(host, port)`` pairs."""
    if isinstance(worker, str):
        host, separator, port = worker.rpartition(":")
        if not separator or not host:
            raise ValidationError(
                f"worker address {worker!r} must look like HOST:PORT"
            )
        try:
            return host, int(port)
        except ValueError:
            raise ValidationError(
                f"worker address {worker!r} has a non-integer port"
            ) from None
    host, port = worker
    return str(host), int(port)


class RemoteExecutor(SweepExecutor):
    """Ship column batches to ``repro sweep-worker`` daemons over TCP.

    Parameters
    ----------
    workers:
        Daemon addresses (``"host:port"`` strings or ``(host, port)``
        pairs).  Batches are assigned round-robin in deterministic batch
        order; each worker runs its batches sequentially over one
        connection, so its per-connection
        :class:`~repro.scenarios.runner.SweepSharedState` (measurement
        systems, baselines, memoised streamed fits) is reused across every
        batch it receives.
    connect_timeout:
        Seconds to wait for each daemon's TCP accept.  Batch execution
        itself is not timed out (month-scale cells are expected to be
        slow).

    Unlike the local pool there is **no** silent serial fallback: an
    unreachable or failing worker raises :class:`ExecutorError`, because
    degrading a fleet-sized sweep to one serial host behind the caller's
    back would look like success while hiding the operational failure.
    """

    name = "remote"

    def __init__(self, workers, *, connect_timeout: float = 30.0):
        addresses = [_parse_address(worker) for worker in workers]
        if not addresses:
            raise ValidationError("RemoteExecutor needs at least one worker address")
        self._addresses = addresses
        self._connect_timeout = float(connect_timeout)

    def execute(self, plan: SweepPlan) -> list[tuple]:
        from repro.scenarios.runner import ScenarioRunner

        runner = plan.runner
        items, datasets = runner._prepare_sweep_items(plan.cells)
        # Split for the full requested width — remote workers are not bound
        # by this host's CPU count — but never below one batch per worker.
        split = max(int(plan.jobs or 1), len(self._addresses))
        batches = ScenarioRunner._column_batches(items, split)
        assignments: list[list] = [[] for _ in self._addresses]
        for at, batch in enumerate(batches):
            assignments[at % len(self._addresses)].append(batch)

        errors: list[str] = []
        lock = threading.Lock()
        threads = [
            threading.Thread(
                target=self._drive_worker,
                args=(address, assigned, datasets, runner, plan, errors, lock),
                name=f"sweep-remote-{address[0]}:{address[1]}",
            )
            for address, assigned in zip(self._addresses, assignments)
            if assigned
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise ExecutorError(
                "remote sweep failed: " + "; ".join(sorted(errors))
            )
        missing = plan.pending()
        if missing:
            raise ExecutorError(
                f"remote sweep returned no outcome for cells {missing}; "
                "client and workers are likely running different versions "
                f"(protocol {SWEEP_WORKER_PROTOCOL})"
            )
        return plan.outcomes()

    def _drive_worker(
        self, address, assigned, datasets, runner, plan, errors, lock
    ) -> None:
        label = f"{address[0]}:{address[1]}"
        tracer = get_tracer()

        def fail(message: str, *, span, reason: str) -> None:
            # Every failure path converges here: the error lands in the
            # shared list, on the still-open worker span (so no span leaks
            # open or unattributed), and on the failure counter.
            with lock:
                errors.append(message)
            span.set(error=message)
            get_metrics().counter(
                "repro_executor_failures_total", worker=label, reason=reason
            ).inc()

        with tracer.span("remote_worker", worker=label) as span:
            try:
                sock = socket.create_connection(address, timeout=self._connect_timeout)
            except OSError as exc:
                fail(f"worker {label} unreachable ({exc})", span=span, reason="unreachable")
                return
            try:
                # Cells can legitimately run for minutes; only the connect is
                # bounded above.
                sock.settimeout(None)
                hello = _roundtrip(sock, {"op": "ping"})
                if hello.get("protocol") != SWEEP_WORKER_PROTOCOL:
                    fail(
                        f"worker {label} speaks protocol "
                        f"{hello.get('protocol')!r}, expected {SWEEP_WORKER_PROTOCOL}",
                        span=span,
                        reason="protocol",
                    )
                    return
                needed = sorted(
                    {key for batch in assigned for (_, _, key) in batch if key is not None},
                    key=repr,
                )
                for key in needed:
                    data = datasets[key]
                    if hasattr(data, "export_state"):
                        kind, payload = "plan", data.export_state()
                    else:
                        kind, payload = "cube", data
                    reply = _roundtrip(
                        sock, {"op": "dataset", "key": key, "kind": kind, "payload": payload}
                    )
                    if not reply.get("ok"):
                        fail(
                            f"worker {label} rejected dataset {key!r}: "
                            f"{reply.get('error', 'unknown error')}",
                            span=span,
                            reason="dataset",
                        )
                        return
                for batch in assigned:
                    reply = _roundtrip(
                        sock,
                        {
                            "op": "batch",
                            "baseline": runner._baseline,
                            "fit_cache_bytes": runner._fit_cache_bytes,
                            "fit_memo": runner._fit_memo,
                            "items": batch,
                            "trace": worker_context(tracer),
                            "worker": label,
                        },
                    )
                    if not reply.get("ok"):
                        fail(
                            f"worker {label} failed a batch: "
                            f"{reply.get('error', 'unknown error')}",
                            span=span,
                            reason="batch",
                        )
                        return
                    # The worker ran its cells under a capture tracer seeded
                    # from this thread's context; merge its spans here so the
                    # driver's trace file tells the whole distributed story.
                    tracer.ingest(reply.get("trace_events"))
                    if reply.get("peak_rss_mb") is not None:
                        get_metrics().gauge(
                            "repro_executor_worker_rss_mb", worker=label
                        ).set(reply["peak_rss_mb"])
                    # Stream each cell to the plan as its batch lands, instead
                    # of accumulating the whole grid's results in this driver.
                    for index, result, message in reply["outcomes"]:
                        plan.emit(index, result, message)
            except (OSError, EOFError, pickle.PickleError, struct.error) as exc:
                fail(
                    f"worker {label} failed ({type(exc).__name__}: {exc})",
                    span=span,
                    reason="connection",
                )
            finally:
                sock.close()


# ---------------------------------------------------------------------------
# the worker daemon (``repro sweep-worker``)
# ---------------------------------------------------------------------------

def _rebuild_dataset(kind: str, payload):
    if kind == "plan":
        from repro.synthesis.datasets import streaming_dataset_from_state

        return streaming_dataset_from_state(payload)
    if kind == "cube":
        return payload
    raise ValidationError(f"unknown dataset kind {kind!r}")


def _serve_connection(conn: socket.socket) -> bool:
    """Serve one client connection; returns True when shutdown was requested.

    The dataset cache and shared state are connection-scoped: the rebuilt
    plans stay alive (and keep their ids stable, which the shared-state
    keys embed) for exactly one sweep, then everything is dropped.
    """
    from repro.scenarios.runner import (
        ScenarioRunner,
        SweepSharedState,
        _peak_rss_mb,
    )

    datasets: dict[tuple, object] = {}
    shared = SweepSharedState()
    while True:
        try:
            message = _recv_message(conn)
        except EOFError:
            return False
        op = message.get("op")
        if op == "ping":
            _send_message(conn, {"ok": True, "protocol": SWEEP_WORKER_PROTOCOL})
        elif op == "dataset":
            try:
                datasets[message["key"]] = _rebuild_dataset(
                    message["kind"], message["payload"]
                )
                _send_message(conn, {"ok": True})
            except Exception as exc:  # noqa: BLE001 - reported to the client
                _send_message(
                    conn, {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
                )
        elif op == "batch":
            try:
                runner = ScenarioRunner(
                    baseline_prior=message["baseline"],
                    fit_cache_bytes=message["fit_cache_bytes"],
                    fit_memo=message.get("fit_memo", True),
                )
                # A traced client ships its span context; run the cells under
                # a capture tracer so their spans (attributed to this worker)
                # travel back in the reply and merge into the client's trace.
                tracer = tracer_from_context(
                    message.get("trace"), worker=message.get("worker") or "sweep-worker"
                )
                outcomes = []
                with use_tracer(tracer):
                    for index, cell, dataset_key in message["items"]:
                        dataset = (
                            datasets.get(dataset_key) if dataset_key is not None else None
                        )
                        result, error = runner._run_cell_guarded(
                            cell, dataset=dataset, shared=shared
                        )
                        outcomes.append((index, result, error))
                _send_message(
                    conn,
                    {
                        "ok": True,
                        "outcomes": outcomes,
                        "peak_rss_mb": _peak_rss_mb(),
                        "trace_events": tracer.drain(),
                    },
                )
            except Exception as exc:  # noqa: BLE001 - reported to the client
                _send_message(
                    conn, {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
                )
        elif op == "shutdown":
            _send_message(conn, {"ok": True})
            return True
        else:
            _send_message(conn, {"ok": False, "error": f"unknown op {op!r}"})


def run_sweep_worker(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    max_connections: int | None = None,
    output=None,
) -> int:
    """Run a sweep-worker daemon until shutdown (the ``repro sweep-worker`` loop).

    Binds ``host:port`` (``port=0`` picks an ephemeral port) and announces
    the bound address on ``output`` as ``sweep-worker listening on
    HOST:PORT`` so launchers can parse it.  Connections are served one at a
    time — a worker daemon is one execution slot; run several daemons for
    parallelism — and the daemon exits after ``max_connections`` clients or
    a ``shutdown`` request.  See the module docstring for the trusted-
    network requirement.
    """
    stream = output if output is not None else sys.stdout
    server = socket.create_server((host, port), backlog=8)
    bound_host, bound_port = server.getsockname()[:2]
    print(f"sweep-worker listening on {bound_host}:{bound_port}", file=stream, flush=True)
    served = 0
    try:
        while True:
            conn, _ = server.accept()
            try:
                shutdown = _serve_connection(conn)
            finally:
                conn.close()
            if shutdown:
                return 0
            served += 1
            if max_connections is not None and served >= max_connections:
                return 0
    finally:
        server.close()


# ---------------------------------------------------------------------------
# loopback worker launching (``--remote-workers spawn:N``)
# ---------------------------------------------------------------------------

_LISTENING_LINE = re.compile(r"listening on ([0-9.]+:\d+)")


class SpawnedWorkers:
    """N loopback ``repro sweep-worker`` subprocesses, torn down on close.

    The launch helper behind ``--remote-workers spawn:N``: each worker
    binds an ephemeral loopback port and announces it on stdout; the
    parsed addresses are ready for :class:`RemoteExecutor`.  Workers serve
    one connection (one sweep) and exit on their own; :meth:`close` waits
    briefly, then terminates stragglers (e.g. workers the sweep never
    connected to).  Loopback only — multi-host fleets manage their own
    daemon lifecycle.

    Usable as a context manager::

        with SpawnedWorkers(4) as workers:
            runner.sweep(..., executor=RemoteExecutor(workers.addresses))
    """

    def __init__(self, count: int, *, startup_timeout: float = 30.0):
        if count < 1:
            raise ValidationError("spawn:N needs N >= 1 workers")
        self._startup_timeout = float(startup_timeout)
        self._processes: list[subprocess.Popen] = []
        self.addresses: list[str] = []
        # The workers must import the same repro package as this process,
        # whether it came from an install or a PYTHONPATH=src checkout.
        package_root = str(Path(__file__).resolve().parent.parent.parent)
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_root if not existing else package_root + os.pathsep + existing
        )
        try:
            for _ in range(int(count)):
                process = subprocess.Popen(
                    [
                        sys.executable,
                        "-m",
                        "repro",
                        "sweep-worker",
                        "--port",
                        "0",
                        "--max-connections",
                        "1",
                    ],
                    stdout=subprocess.PIPE,
                    text=True,
                    env=env,
                )
                self._processes.append(process)
            for process in self._processes:
                self.addresses.append(self._read_address(process))
        except Exception:
            self.close()
            raise

    def _read_address(self, process: subprocess.Popen) -> str:
        """Parse the daemon's ``listening on HOST:PORT`` announcement."""
        holder: dict = {}

        def reader():
            holder["line"] = process.stdout.readline()

        thread = threading.Thread(target=reader, daemon=True)
        thread.start()
        thread.join(self._startup_timeout)
        line = holder.get("line", "")
        match = _LISTENING_LINE.search(line or "")
        if match is None:
            raise ExecutorError(
                f"spawned sweep-worker did not announce an address within "
                f"{self._startup_timeout:.0f}s (got {line!r})"
            )
        return match.group(1)

    def close(self, *, timeout: float = 10.0) -> None:
        """Reap every worker: brief grace for natural exit, then terminate.

        Workers that served their sweep exit on their own almost
        immediately; the terminate path is for workers the sweep never
        connected to (more workers than batches) or a failed launch.
        """
        for process in self._processes:
            try:
                process.wait(timeout=min(timeout, 2.0))
            except subprocess.TimeoutExpired:
                process.terminate()
                try:
                    process.wait(timeout=timeout)
                except subprocess.TimeoutExpired:  # pragma: no cover - last resort
                    process.kill()
                    process.wait()
            if process.stdout is not None:
                process.stdout.close()
        self._processes = []

    def __enter__(self) -> "SpawnedWorkers":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self.addresses)

"""Long-format CSV persistence for traffic-matrix series.

The format is one row per (time bin, OD pair):

.. code-block:: text

    bin,origin,destination,bytes
    0,at,be,123456.0
    0,at,ch,78910.0
    ...

with a header line, which is the lowest-common-denominator exchange format
between traffic-matrix tools.  Zero entries are written too, so a file is
self-describing (the node set and bin count are recoverable from it alone).
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.core.traffic_matrix import TrafficMatrixSeries
from repro.errors import ValidationError

__all__ = ["save_series_csv", "load_series_csv"]

_HEADER = ["bin", "origin", "destination", "bytes"]


def save_series_csv(series: TrafficMatrixSeries, path: str | Path) -> None:
    """Write ``series`` to ``path`` in long CSV format (see module docstring)."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_HEADER + [f"bin_seconds={series.bin_seconds:g}"])
        for t in range(series.n_timesteps):
            matrix = series.values[t]
            for i, origin in enumerate(series.nodes):
                for j, destination in enumerate(series.nodes):
                    writer.writerow([t, origin, destination, repr(float(matrix[i, j]))])


def load_series_csv(path: str | Path) -> TrafficMatrixSeries:
    """Read a series previously written by :func:`save_series_csv`.

    Node order follows first appearance in the file; bins must be dense
    (0..T-1) but rows may appear in any order.  Missing OD entries default to
    zero; duplicate entries raise :class:`ValidationError`.
    """
    path = Path(path)
    bin_seconds = 300.0
    entries: dict[tuple[int, str, str], float] = {}
    nodes: list[str] = []
    seen_nodes: set[str] = set()
    max_bin = -1
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or [c.strip() for c in header[:4]] != _HEADER:
            raise ValidationError(f"{path} does not look like a repro traffic-matrix CSV")
        for cell in header[4:]:
            if cell.startswith("bin_seconds="):
                bin_seconds = float(cell.split("=", 1)[1])
        for row in reader:
            if not row or all(not cell.strip() for cell in row):
                continue
            if len(row) < 4:
                raise ValidationError(f"malformed CSV row: {row!r}")
            bin_index = int(row[0])
            origin, destination = row[1].strip(), row[2].strip()
            value = float(row[3])
            for node in (origin, destination):
                if node not in seen_nodes:
                    seen_nodes.add(node)
                    nodes.append(node)
            key = (bin_index, origin, destination)
            if key in entries:
                raise ValidationError(f"duplicate entry for {key} in {path}")
            entries[key] = value
            max_bin = max(max_bin, bin_index)
    if max_bin < 0 or not nodes:
        raise ValidationError(f"{path} contains no traffic-matrix entries")
    index = {node: k for k, node in enumerate(nodes)}
    values = np.zeros((max_bin + 1, len(nodes), len(nodes)))
    for (bin_index, origin, destination), value in entries.items():
        values[bin_index, index[origin], index[destination]] = value
    return TrafficMatrixSeries(values, nodes, bin_seconds=bin_seconds)

"""Totem-style XML for a single traffic matrix.

The public Totem repository (the source of the paper's D2 dataset) publishes
each 15-minute traffic matrix as an XML document of the form

.. code-block:: xml

    <TrafficMatrixFile>
      <IntraTM>
        <src id="at"> <dst id="be">1234.5</dst> ... </src>
        ...
      </IntraTM>
    </TrafficMatrixFile>

This module writes and parses that structure (using only the standard
library's ``xml.etree``), so real Totem matrices can be loaded directly.
"""

from __future__ import annotations

from pathlib import Path
from xml.etree import ElementTree

import numpy as np

from repro.core.traffic_matrix import TrafficMatrix
from repro.errors import ValidationError

__all__ = ["matrix_to_totem_xml", "matrix_from_totem_xml"]


def matrix_to_totem_xml(matrix: TrafficMatrix, path: str | Path) -> None:
    """Write ``matrix`` to ``path`` as a Totem-style ``<TrafficMatrixFile>``."""
    root = ElementTree.Element("TrafficMatrixFile")
    intra = ElementTree.SubElement(root, "IntraTM")
    for i, origin in enumerate(matrix.nodes):
        source = ElementTree.SubElement(intra, "src", {"id": origin})
        for j, destination in enumerate(matrix.nodes):
            cell = ElementTree.SubElement(source, "dst", {"id": destination})
            cell.text = repr(float(matrix.values[i, j]))
    tree = ElementTree.ElementTree(root)
    ElementTree.indent(tree)
    tree.write(Path(path), encoding="unicode", xml_declaration=True)


def matrix_from_totem_xml(path: str | Path) -> TrafficMatrix:
    """Parse a Totem-style traffic-matrix XML file into a :class:`TrafficMatrix`.

    Node order follows first appearance (source elements first, then any
    destination-only nodes); missing cells default to zero.
    """
    try:
        tree = ElementTree.parse(Path(path))
    except ElementTree.ParseError as exc:
        raise ValidationError(f"{path} is not well-formed XML: {exc}") from exc
    intra = tree.getroot().find("IntraTM")
    if intra is None:
        # Some exports put <IntraTM> at the root directly.
        if tree.getroot().tag == "IntraTM":
            intra = tree.getroot()
        else:
            raise ValidationError(f"{path} contains no <IntraTM> element")
    entries: dict[tuple[str, str], float] = {}
    nodes: list[str] = []
    seen: set[str] = set()

    def register(node: str) -> None:
        if node not in seen:
            seen.add(node)
            nodes.append(node)

    for source in intra.findall("src"):
        origin = source.get("id")
        if origin is None:
            raise ValidationError(f"{path}: <src> element without an id attribute")
        register(origin)
        for cell in source.findall("dst"):
            destination = cell.get("id")
            if destination is None:
                raise ValidationError(f"{path}: <dst> element without an id attribute")
            register(destination)
            entries[(origin, destination)] = float(cell.text or 0.0)
    if not nodes:
        raise ValidationError(f"{path} contains no traffic entries")
    index = {node: k for k, node in enumerate(nodes)}
    values = np.zeros((len(nodes), len(nodes)))
    for (origin, destination), value in entries.items():
        values[index[origin], index[destination]] = value
    return TrafficMatrix(values, nodes)

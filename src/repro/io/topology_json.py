"""JSON exchange format for PoP-level topologies.

The schema is deliberately small::

    {
      "name": "geant",
      "nodes": ["at", "be", ...],
      "links": [
        {"source": "at", "target": "be", "weight": 3.0, "capacity": 1e10},
        ...
      ]
    }

Links are directional (matching :class:`repro.topology.topology.Topology`);
exporting and re-importing a topology is lossless.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ValidationError
from repro.topology.topology import Link, Topology

__all__ = ["topology_to_json", "topology_from_json"]


def topology_to_json(topology: Topology, path: str | Path | None = None) -> str:
    """Serialise ``topology`` to a JSON string, optionally writing it to ``path``."""
    document = {
        "name": topology.name,
        "nodes": list(topology.nodes),
        "links": [
            {
                "source": link.source,
                "target": link.target,
                "weight": link.weight,
                "capacity": link.capacity,
            }
            for link in topology.links
        ],
    }
    text = json.dumps(document, indent=2)
    if path is not None:
        Path(path).write_text(text)
    return text


def topology_from_json(source: str | Path) -> Topology:
    """Build a :class:`Topology` from a JSON string or a path to a JSON file."""
    if isinstance(source, Path) or (isinstance(source, str) and "\n" not in source and Path(source).exists()):
        text = Path(source).read_text()
    else:
        text = str(source)
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValidationError(f"invalid topology JSON: {exc}") from exc
    for key in ("name", "nodes", "links"):
        if key not in document:
            raise ValidationError(f"topology JSON is missing the {key!r} field")
    topology = Topology(document["name"], document["nodes"])
    for entry in document["links"]:
        try:
            topology.add_link(
                Link(
                    source=entry["source"],
                    target=entry["target"],
                    weight=float(entry.get("weight", 1.0)),
                    capacity=float(entry.get("capacity", 10e9)),
                )
            )
        except KeyError as exc:
            raise ValidationError(f"topology JSON link missing field {exc.args[0]!r}") from exc
    return topology

"""Interchange formats for traffic matrices and topologies.

The public traffic-matrix datasets the paper uses are distributed as text
files (the Totem repository publishes per-interval XML matrices; many
research groups exchange simple CSV dumps).  This subpackage provides small,
dependency-free readers and writers so that users with real data can load it
straight into :class:`repro.core.traffic_matrix.TrafficMatrixSeries` and run
every experiment in this repository on it:

* :func:`save_series_csv` / :func:`load_series_csv` — long-format CSV
  (``bin,origin,destination,bytes``) for whole series,
* :func:`matrix_to_totem_xml` / :func:`matrix_from_totem_xml` — the
  Totem-style ``<IntraTM>`` XML for a single matrix,
* :func:`topology_to_json` / :func:`topology_from_json` — topology exchange.
"""

from repro.io.csv_format import load_series_csv, save_series_csv
from repro.io.totem_xml import matrix_from_totem_xml, matrix_to_totem_xml
from repro.io.topology_json import topology_from_json, topology_to_json

__all__ = [
    "save_series_csv",
    "load_series_csv",
    "matrix_to_totem_xml",
    "matrix_from_totem_xml",
    "topology_to_json",
    "topology_from_json",
]

"""Synthetic traffic-matrix generation and dataset factories.

Section 5.5 of the paper proposes using the stable-fP IC model for synthetic
traffic-matrix generation: choose an ``f`` in the empirical 0.2-0.3 range,
draw long-tailed (lognormal) preference values, generate diurnal activity
time series and compose them with Eq. 5.  This subpackage implements that
recipe and uses it to build the synthetic stand-ins for the paper's datasets:

* :mod:`repro.synthesis.preference` — lognormal / exponential preference
  generators,
* :mod:`repro.synthesis.activity` — a cyclostationary diurnal activity model
  (daily periodicity, weekend dips, per-node scale heterogeneity, noise),
* :mod:`repro.synthesis.generator` — IC-based and gravity-based synthetic TM
  generators,
* :mod:`repro.synthesis.datasets` — Geant-like (D1) and Totem-like (D2)
  multi-week dataset factories with known ground truth.
"""

from repro.synthesis.preference import (
    exponential_preferences,
    lognormal_preferences,
)
from repro.synthesis.activity import ActivityModel, DiurnalProfile
from repro.synthesis.generator import (
    GravityTMGenerator,
    ICTMGenerator,
    SyntheticTMConfig,
)
from repro.synthesis.datasets import (
    StreamingDataset,
    SyntheticDataset,
    load_dataset,
    make_geant_like_dataset,
    make_totem_like_dataset,
    open_dataset_stream,
    register_dataset_stream,
    streamable_dataset_names,
)

__all__ = [
    "lognormal_preferences",
    "exponential_preferences",
    "ActivityModel",
    "DiurnalProfile",
    "SyntheticTMConfig",
    "ICTMGenerator",
    "GravityTMGenerator",
    "SyntheticDataset",
    "StreamingDataset",
    "load_dataset",
    "open_dataset_stream",
    "register_dataset_stream",
    "streamable_dataset_names",
    "make_geant_like_dataset",
    "make_totem_like_dataset",
]

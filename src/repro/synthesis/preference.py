"""Preference-vector generators.

The paper finds the empirical preference values ``{P_i}`` to be long-tailed:
most are small, a few are up to ten times larger than typical, and a
lognormal with ``mu ≈ -4.3`` and ``sigma ≈ 1.7`` approximates their tail far
better than an exponential (Figure 7).  Both distributions are provided so
the synthetic-generation ablations can compare them.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError

__all__ = ["lognormal_preferences", "exponential_preferences"]

#: Maximum-likelihood lognormal parameters the paper reports for both datasets.
PAPER_LOGNORMAL_MU = -4.3
PAPER_LOGNORMAL_SIGMA = 1.7


def lognormal_preferences(
    n_nodes: int,
    *,
    mu: float = PAPER_LOGNORMAL_MU,
    sigma: float = PAPER_LOGNORMAL_SIGMA,
    seed: int | np.random.Generator = 0,
) -> np.ndarray:
    """Draw a normalised preference vector from a lognormal distribution.

    The defaults are the paper's maximum-likelihood estimates.  The returned
    vector is normalised to sum to one (the convention used throughout the
    package).
    """
    if n_nodes < 1:
        raise ValidationError("n_nodes must be >= 1")
    if sigma < 0:
        raise ValidationError("sigma must be non-negative")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    values = rng.lognormal(mu, sigma, int(n_nodes))
    return values / values.sum()


def exponential_preferences(
    n_nodes: int,
    *,
    scale: float = 0.05,
    seed: int | np.random.Generator = 0,
) -> np.ndarray:
    """Draw a normalised preference vector from an exponential distribution.

    Provided as the short-tailed alternative the paper compares against
    (following Roughan's suggestion of exponential node loads for gravity
    synthesis).
    """
    if n_nodes < 1:
        raise ValidationError("n_nodes must be >= 1")
    if scale <= 0:
        raise ValidationError("scale must be positive")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    values = rng.exponential(scale, int(n_nodes))
    total = values.sum()
    if total <= 0:  # pragma: no cover - essentially impossible
        return np.full(int(n_nodes), 1.0 / n_nodes)
    return values / total

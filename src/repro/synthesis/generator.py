"""Synthetic traffic-matrix generators.

:class:`ICTMGenerator` follows the recipe of Section 5.5: pick ``f`` (0.2-0.3),
draw long-tailed preferences, generate diurnal activity series and compose
them with the stable-fP equation.  Two realism knobs push the generated data
away from the *exact* stable-fP model, which matters when the generated data
is used as a stand-in for real measurements (otherwise the fitting step would
trivially achieve zero error):

* ``f_jitter_sigma`` perturbs the per-pair forward fraction around the network
  value (the general-IC deviation discussed in Section 5.6), and
* ``noise_sigma`` applies multiplicative lognormal measurement noise, standing
  in for netflow sampling and binning artefacts.

:class:`GravityTMGenerator` produces gravity-consistent synthetic matrices
(the approach of Roughan [17]) and is used as the generation baseline in the
ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._validation import normalized, require_probability
from repro.core.ic_model import general_ic_matrix
from repro.core.traffic_matrix import TrafficMatrixSeries
from repro.errors import ValidationError
from repro.synthesis.activity import ActivityModel, DiurnalProfile
from repro.synthesis.preference import lognormal_preferences

__all__ = ["SyntheticTMConfig", "ICTMGenerator", "GravityTMGenerator"]


@dataclass(frozen=True)
class SyntheticTMConfig:
    """Configuration of an IC-based synthetic traffic-matrix generator.

    Attributes
    ----------
    forward_fraction:
        Network-wide ``f``; the paper recommends 0.2-0.3.
    preference_mu, preference_sigma:
        Lognormal parameters of the preference draw (paper: -4.3, 1.7).
    mean_activity:
        Mean per-node activity level in bytes per bin.
    activity_heterogeneity:
        Lognormal sigma of per-node base activity spread.
    activity_noise_sigma:
        Per-bin multiplicative noise on activity.
    f_jitter_sigma:
        Standard deviation of the per-pair perturbation of ``f`` (0 gives the
        exact simplified model; > 0 gives general-IC structure).
    f_responder_sigma:
        Standard deviation of a per-*responder-node* offset added to ``f_ij``:
        the forward fraction of a connection depends on what is being served
        at the responder (a PoP hosting mostly web servers sees a lower ``f``
        toward it than one hosting p2p users).  Unlike pair-level jitter this
        does not average out in the node marginals, so it is what separates
        the stable-fP prior from the cruder stable-f closed form.
    spatial_bias_sigma:
        Sigma of a *static* per-pair lognormal bias factor applied to every
        bin.  This stands in for all the pair-specific structure real traffic
        has that neither the gravity model nor the simplified IC model can
        represent (peering relationships, content placement, routing policy);
        it is what keeps model fits away from zero error on real data.
    noise_sigma:
        Multiplicative lognormal measurement noise applied to the final
        matrices (0 disables) — netflow sampling and binning artefacts.
    diurnal:
        Shared diurnal profile for the activity model.
    """

    forward_fraction: float = 0.25
    preference_mu: float = -4.3
    preference_sigma: float = 1.7
    mean_activity: float = 1e7
    activity_heterogeneity: float = 1.2
    activity_noise_sigma: float = 0.15
    f_jitter_sigma: float = 0.03
    f_responder_sigma: float = 0.05
    spatial_bias_sigma: float = 0.25
    noise_sigma: float = 0.1
    diurnal: DiurnalProfile = field(default_factory=DiurnalProfile)

    def __post_init__(self):
        require_probability(self.forward_fraction, "forward_fraction")
        if min(self.f_jitter_sigma, self.noise_sigma, self.spatial_bias_sigma, self.f_responder_sigma) < 0:
            raise ValidationError("jitter, bias and noise sigmas must be non-negative")
        if self.mean_activity <= 0:
            raise ValidationError("mean_activity must be positive")


@dataclass(frozen=True)
class GroundTruth:
    """Ground-truth parameters behind a generated series (for validation)."""

    forward_fraction: float
    forward_fraction_matrix: np.ndarray
    preference: np.ndarray
    activity: np.ndarray
    spatial_bias: np.ndarray | None = None


class ICTMGenerator:
    """Generate traffic-matrix series from the IC model (Section 5.5 recipe)."""

    def __init__(
        self,
        nodes,
        config: SyntheticTMConfig | None = None,
        *,
        seed: int = 0,
    ):
        self._nodes = tuple(str(node) for node in nodes)
        if len(self._nodes) < 2:
            raise ValidationError("need at least two nodes to generate traffic")
        self._config = config or SyntheticTMConfig()
        self._seed = int(seed)

    @property
    def nodes(self) -> tuple[str, ...]:
        return self._nodes

    @property
    def config(self) -> SyntheticTMConfig:
        return self._config

    def generate(
        self,
        n_bins: int,
        *,
        bin_seconds: float = 300.0,
        start_seconds: float = 0.0,
    ) -> tuple[TrafficMatrixSeries, GroundTruth]:
        """Generate ``n_bins`` of traffic together with the ground truth behind it."""
        config = self._config
        n = len(self._nodes)
        rng = np.random.default_rng(self._seed)
        preference = lognormal_preferences(
            n, mu=config.preference_mu, sigma=config.preference_sigma, seed=rng
        )
        preference = normalized(preference, "preference")
        activity_model = ActivityModel(
            n,
            mean_level=config.mean_activity,
            heterogeneity_sigma=config.activity_heterogeneity,
            noise_sigma=config.activity_noise_sigma,
            profile=config.diurnal,
            seed=rng,
        )
        activity = activity_model.generate(
            n_bins, bin_seconds=bin_seconds, start_seconds=start_seconds
        )
        responder_offset = (
            rng.normal(0.0, config.f_responder_sigma, size=n)
            if config.f_responder_sigma > 0
            else np.zeros(n)
        )
        f_matrix = np.clip(
            config.forward_fraction
            + responder_offset[np.newaxis, :]
            + rng.normal(0.0, config.f_jitter_sigma, size=(n, n)),
            0.01,
            0.99,
        )
        spatial_bias = (
            rng.lognormal(0.0, config.spatial_bias_sigma, size=(n, n))
            if config.spatial_bias_sigma > 0
            else np.ones((n, n))
        )
        matrices = np.empty((n_bins, n, n))
        for t in range(n_bins):
            matrices[t] = general_ic_matrix(f_matrix, activity[t], preference) * spatial_bias
        if config.noise_sigma > 0:
            matrices = matrices * rng.lognormal(0.0, config.noise_sigma, size=matrices.shape)
        series = TrafficMatrixSeries(matrices, self._nodes, bin_seconds=bin_seconds)
        truth = GroundTruth(
            forward_fraction=config.forward_fraction,
            forward_fraction_matrix=f_matrix,
            preference=preference,
            activity=activity,
            spatial_bias=spatial_bias,
        )
        return series, truth


class GravityTMGenerator:
    """Generate gravity-consistent traffic matrices (Roughan-style baseline).

    Node loads are drawn from an exponential distribution (as suggested in
    the work the paper contrasts with) and modulated by the same diurnal
    waveform so the comparison with the IC generator isolates the *spatial*
    structure.
    """

    def __init__(
        self,
        nodes,
        *,
        mean_load: float = 1e7,
        diurnal: DiurnalProfile | None = None,
        noise_sigma: float = 0.1,
        seed: int = 0,
    ):
        self._nodes = tuple(str(node) for node in nodes)
        if len(self._nodes) < 2:
            raise ValidationError("need at least two nodes to generate traffic")
        if mean_load <= 0:
            raise ValidationError("mean_load must be positive")
        if noise_sigma < 0:
            raise ValidationError("noise_sigma must be non-negative")
        self._mean_load = float(mean_load)
        self._diurnal = diurnal or DiurnalProfile()
        self._noise_sigma = float(noise_sigma)
        self._seed = int(seed)

    def generate(
        self, n_bins: int, *, bin_seconds: float = 300.0, start_seconds: float = 0.0
    ) -> TrafficMatrixSeries:
        """Generate ``n_bins`` of gravity-structured traffic."""
        n = len(self._nodes)
        rng = np.random.default_rng(self._seed)
        ingress_base = rng.exponential(self._mean_load, n)
        egress_base = rng.exponential(self._mean_load, n)
        times = start_seconds + np.arange(n_bins) * bin_seconds
        waveform = self._diurnal.waveform(times)
        matrices = np.empty((n_bins, n, n))
        for t in range(n_bins):
            ingress = ingress_base * waveform[t]
            egress = egress_base * waveform[t]
            total = ingress.sum()
            matrices[t] = np.outer(ingress, egress) / max(total, 1e-12)
        if self._noise_sigma > 0:
            matrices = matrices * rng.lognormal(0.0, self._noise_sigma, size=matrices.shape)
        return TrafficMatrixSeries(matrices, self._nodes, bin_seconds=bin_seconds)

"""Synthetic traffic-matrix generators.

:class:`ICTMGenerator` follows the recipe of Section 5.5: pick ``f`` (0.2-0.3),
draw long-tailed preferences, generate diurnal activity series and compose
them with the stable-fP equation.  Two realism knobs push the generated data
away from the *exact* stable-fP model, which matters when the generated data
is used as a stand-in for real measurements (otherwise the fitting step would
trivially achieve zero error):

* ``f_jitter_sigma`` perturbs the per-pair forward fraction around the network
  value (the general-IC deviation discussed in Section 5.6), and
* ``noise_sigma`` applies multiplicative lognormal measurement noise, standing
  in for netflow sampling and binning artefacts.

:class:`GravityTMGenerator` produces gravity-consistent synthetic matrices
(the approach of Roughan [17]) and is used as the generation baseline in the
ablation benchmarks.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro._validation import normalized, require_probability
from repro.core.ic_model import general_ic_series
from repro.core.traffic_matrix import TrafficMatrixSeries
from repro.errors import ValidationError
from repro.synthesis.activity import ActivityModel, DiurnalProfile
from repro.synthesis.preference import lognormal_preferences

__all__ = ["SyntheticTMConfig", "ICTMGenerator", "GenerationPlan", "GravityTMGenerator"]


@dataclass(frozen=True)
class SyntheticTMConfig:
    """Configuration of an IC-based synthetic traffic-matrix generator.

    Attributes
    ----------
    forward_fraction:
        Network-wide ``f``; the paper recommends 0.2-0.3.
    preference_mu, preference_sigma:
        Lognormal parameters of the preference draw (paper: -4.3, 1.7).
    mean_activity:
        Mean per-node activity level in bytes per bin.
    activity_heterogeneity:
        Lognormal sigma of per-node base activity spread.
    activity_noise_sigma:
        Per-bin multiplicative noise on activity.
    f_jitter_sigma:
        Standard deviation of the per-pair perturbation of ``f`` (0 gives the
        exact simplified model; > 0 gives general-IC structure).
    f_responder_sigma:
        Standard deviation of a per-*responder-node* offset added to ``f_ij``:
        the forward fraction of a connection depends on what is being served
        at the responder (a PoP hosting mostly web servers sees a lower ``f``
        toward it than one hosting p2p users).  Unlike pair-level jitter this
        does not average out in the node marginals, so it is what separates
        the stable-fP prior from the cruder stable-f closed form.
    spatial_bias_sigma:
        Sigma of a *static* per-pair lognormal bias factor applied to every
        bin.  This stands in for all the pair-specific structure real traffic
        has that neither the gravity model nor the simplified IC model can
        represent (peering relationships, content placement, routing policy);
        it is what keeps model fits away from zero error on real data.
    noise_sigma:
        Multiplicative lognormal measurement noise applied to the final
        matrices (0 disables) — netflow sampling and binning artefacts.
    diurnal:
        Shared diurnal profile for the activity model.
    """

    forward_fraction: float = 0.25
    preference_mu: float = -4.3
    preference_sigma: float = 1.7
    mean_activity: float = 1e7
    activity_heterogeneity: float = 1.2
    activity_noise_sigma: float = 0.15
    f_jitter_sigma: float = 0.03
    f_responder_sigma: float = 0.05
    spatial_bias_sigma: float = 0.25
    noise_sigma: float = 0.1
    diurnal: DiurnalProfile = field(default_factory=DiurnalProfile)

    def __post_init__(self):
        require_probability(self.forward_fraction, "forward_fraction")
        if min(self.f_jitter_sigma, self.noise_sigma, self.spatial_bias_sigma, self.f_responder_sigma) < 0:
            raise ValidationError("jitter, bias and noise sigmas must be non-negative")
        if self.mean_activity <= 0:
            raise ValidationError("mean_activity must be positive")


@dataclass(frozen=True)
class GroundTruth:
    """Ground-truth parameters behind a generated series (for validation)."""

    forward_fraction: float
    forward_fraction_matrix: np.ndarray
    preference: np.ndarray
    activity: np.ndarray
    spatial_bias: np.ndarray | None = None


@dataclass
class GenerationPlan:
    """Everything needed to (re)generate any chunk of a planned series.

    A plan materialises only the *small* state of a generation run — the
    spatial parameters (``O(n^2)``) and the activity series (``O(T n)``) —
    plus the measurement-noise RNG state captured right after the spatial
    draws.  The ``(T, n, n)`` traffic itself is produced chunk by chunk from
    that state, so the same plan backs both the in-memory cube (all chunks
    concatenated) and bounded-memory streaming, with bit-identical numbers.

    ``noise_states`` caches the RNG state at bin offsets already visited, so
    re-streaming from a week boundary does not replay the whole noise stream.
    """

    n_bins: int
    bin_seconds: float
    preference: np.ndarray
    activity: np.ndarray
    forward_fraction_matrix: np.ndarray
    spatial_bias: np.ndarray
    noise_sigma: float
    noise_states: dict[int, dict] = field(default_factory=dict)

    @property
    def n_nodes(self) -> int:
        return self.preference.shape[0]

    def truth(self, forward_fraction: float) -> GroundTruth:
        """The ground truth behind the planned series."""
        return GroundTruth(
            forward_fraction=forward_fraction,
            forward_fraction_matrix=self.forward_fraction_matrix,
            preference=self.preference,
            activity=self.activity,
            spatial_bias=self.spatial_bias,
        )

    def _noise_rng_at(self, start_bin: int) -> np.random.Generator | None:
        """A generator positioned at ``start_bin`` of the noise stream.

        Noise values are drawn sequentially (``n^2`` per bin), so the state at
        an arbitrary offset is reached by replaying from the nearest cached
        state at or before it, discarding the skipped draws chunk-wise.
        """
        if self.noise_sigma <= 0:
            return None
        anchor = max((b for b in self.noise_states if b <= start_bin), default=None)
        if anchor is None:  # pragma: no cover - state 0 is always cached
            raise ValidationError("generation plan is missing its initial noise state")
        rng = np.random.default_rng(0)
        rng.bit_generator.state = copy.deepcopy(self.noise_states[anchor])
        self._replay_span(rng, anchor, start_bin)
        if start_bin not in self.noise_states:
            # Streams are multi-pass (fits, measurement, estimation) and
            # always resume at the same week boundaries; caching the exact
            # start state makes every pass after the first replay-free.
            self.noise_states[start_bin] = copy.deepcopy(rng.bit_generator.state)
        return rng

    def _replay_span(self, rng: np.random.Generator, start: int, stop: int) -> None:
        """Draw and discard the noise of bins ``[start, stop)``, caching states.

        This is the only place skipped noise draws are paid for, which is
        what the plan-cache regression tests instrument to prove that a
        checkpointed plan starts any chunk in ``O(chunk)`` draws.
        """
        n = self.n_nodes
        position = start
        while position < stop:
            # Stepping by the cache stride keeps the discard batches small
            # *and* lands on every stride anchor, so one replay (or one
            # checkpoint pass) caches all the states later reads resume from.
            step = min(stop - position, _STATE_CACHE_STRIDE - position % _STATE_CACHE_STRIDE)
            rng.lognormal(0.0, self.noise_sigma, size=(step, n, n))
            position += step
            self._maybe_cache_state(position, rng)

    def _maybe_cache_state(self, position: int, rng: np.random.Generator) -> None:
        """Cache the noise-stream state at coarse anchors (bounds dict growth)."""
        if position % _STATE_CACHE_STRIDE == 0 and position not in self.noise_states:
            self.noise_states[position] = copy.deepcopy(rng.bit_generator.state)

    def checkpoint_noise_states(self) -> "GenerationPlan":
        """Populate every noise-state checkpoint of the plan in one pass.

        Walks the noise stream from the furthest cached anchor to the end of
        the plan, caching the RNG state at every :data:`_STATE_CACHE_STRIDE`
        boundary.  Afterwards *any* chunk read — a worker's first, a resume
        from a week boundary — replays at most one stride of draws instead of
        the whole prefix.  The sweep scheduler calls this once per dataset
        column in the parent and ships the (small) state dict to the workers.

        Returns ``self`` so it chains; a no-op for noise-free plans and for
        plans already checkpointed.
        """
        if self.noise_sigma <= 0:
            return self
        anchor = max(b for b in self.noise_states if b <= self.n_bins)
        last_needed = (self.n_bins // _STATE_CACHE_STRIDE) * _STATE_CACHE_STRIDE
        if anchor >= last_needed:
            return self
        rng = np.random.default_rng(0)
        rng.bit_generator.state = copy.deepcopy(self.noise_states[anchor])
        self._replay_span(rng, anchor, last_needed)
        return self


# Noise-stream RNG states are cached at multiples of this many bins; replaying
# to an arbitrary offset therefore discards at most a stride of draws.
_STATE_CACHE_STRIDE = 256


# Chunk length used when materialising a full cube: large enough to amortise
# kernel dispatch, small enough to keep the scale/noise temporaries in cache.
_GENERATE_CHUNK_BINS = 512


class ICTMGenerator:
    """Generate traffic-matrix series from the IC model (Section 5.5 recipe)."""

    def __init__(
        self,
        nodes,
        config: SyntheticTMConfig | None = None,
        *,
        seed: int = 0,
    ):
        self._nodes = tuple(str(node) for node in nodes)
        if len(self._nodes) < 2:
            raise ValidationError("need at least two nodes to generate traffic")
        self._config = config or SyntheticTMConfig()
        self._seed = int(seed)

    @property
    def nodes(self) -> tuple[str, ...]:
        return self._nodes

    @property
    def config(self) -> SyntheticTMConfig:
        return self._config

    def plan(
        self,
        n_bins: int,
        *,
        bin_seconds: float = 300.0,
        start_seconds: float = 0.0,
    ) -> GenerationPlan:
        """Draw the spatial parameters and activity; defer the per-bin traffic.

        The draws happen in exactly the order of the historical one-shot
        ``generate`` (preference, activity base levels, activity noise,
        responder offsets, pair jitter, spatial bias), and the RNG state is
        captured afterwards so the remaining measurement-noise stream can be
        consumed chunk by chunk — concatenated chunks are bit-identical to
        the single full-cube draw.
        """
        config = self._config
        n = len(self._nodes)
        rng = np.random.default_rng(self._seed)
        preference = lognormal_preferences(
            n, mu=config.preference_mu, sigma=config.preference_sigma, seed=rng
        )
        preference = normalized(preference, "preference")
        activity_model = ActivityModel(
            n,
            mean_level=config.mean_activity,
            heterogeneity_sigma=config.activity_heterogeneity,
            noise_sigma=config.activity_noise_sigma,
            profile=config.diurnal,
            seed=rng,
        )
        activity = activity_model.generate(
            n_bins, bin_seconds=bin_seconds, start_seconds=start_seconds
        )
        responder_offset = (
            rng.normal(0.0, config.f_responder_sigma, size=n)
            if config.f_responder_sigma > 0
            else np.zeros(n)
        )
        f_matrix = np.clip(
            config.forward_fraction
            + responder_offset[np.newaxis, :]
            + rng.normal(0.0, config.f_jitter_sigma, size=(n, n)),
            0.01,
            0.99,
        )
        spatial_bias = (
            rng.lognormal(0.0, config.spatial_bias_sigma, size=(n, n))
            if config.spatial_bias_sigma > 0
            else np.ones((n, n))
        )
        return GenerationPlan(
            n_bins=int(n_bins),
            bin_seconds=float(bin_seconds),
            preference=preference,
            activity=activity,
            forward_fraction_matrix=f_matrix,
            spatial_bias=spatial_bias,
            noise_sigma=float(config.noise_sigma),
            noise_states={0: copy.deepcopy(rng.bit_generator.state)},
        )

    def iter_chunks(
        self,
        plan: GenerationPlan,
        *,
        chunk_bins: int,
        start_bin: int = 0,
        stop_bin: int | None = None,
    ) -> Iterator[tuple[int, np.ndarray]]:
        """Yield ``(t0, (T_chunk, n, n))`` traffic blocks of a planned series.

        ``t0`` is relative to ``start_bin``, so a week sliced out of a longer
        plan streams with chunk offsets starting at zero.  Chunks carry the
        exact values the full cube would: the IC kernel is evaluated on the
        chunk's activity rows and the noise stream is resumed from the cached
        RNG state at ``start_bin``.
        """
        stop = plan.n_bins if stop_bin is None else min(int(stop_bin), plan.n_bins)
        start = int(start_bin)
        if not 0 <= start < stop:
            raise ValidationError(
                f"chunk range [{start}, {stop}) is empty or outside the planned {plan.n_bins} bins"
            )
        if chunk_bins < 1:
            raise ValidationError("chunk_bins must be >= 1")
        rng = plan._noise_rng_at(start)
        for t0 in range(start, stop, chunk_bins):
            t1 = min(t0 + chunk_bins, stop)
            block = general_ic_series(
                plan.forward_fraction_matrix, plan.activity[t0:t1], plan.preference
            )
            block *= plan.spatial_bias
            if rng is not None:
                block *= rng.lognormal(0.0, plan.noise_sigma, size=block.shape)
                plan._maybe_cache_state(t1, rng)
            yield t0 - start, block

    def generate(
        self,
        n_bins: int,
        *,
        bin_seconds: float = 300.0,
        start_seconds: float = 0.0,
    ) -> tuple[TrafficMatrixSeries, GroundTruth]:
        """Generate ``n_bins`` of traffic together with the ground truth behind it.

        This is the materialised path: one plan, all chunks concatenated.  It
        is bit-identical to the historical per-bin loop (the chunked IC
        kernel and the chunk-split noise draws both reproduce the one-shot
        values exactly).
        """
        plan = self.plan(n_bins, bin_seconds=bin_seconds, start_seconds=start_seconds)
        n = len(self._nodes)
        matrices = np.empty((n_bins, n, n))
        for t0, block in self.iter_chunks(plan, chunk_bins=_GENERATE_CHUNK_BINS):
            matrices[t0 : t0 + block.shape[0]] = block
        series = TrafficMatrixSeries(matrices, self._nodes, bin_seconds=bin_seconds)
        return series, plan.truth(self._config.forward_fraction)


class GravityTMGenerator:
    """Generate gravity-consistent traffic matrices (Roughan-style baseline).

    Node loads are drawn from an exponential distribution (as suggested in
    the work the paper contrasts with) and modulated by the same diurnal
    waveform so the comparison with the IC generator isolates the *spatial*
    structure.
    """

    def __init__(
        self,
        nodes,
        *,
        mean_load: float = 1e7,
        diurnal: DiurnalProfile | None = None,
        noise_sigma: float = 0.1,
        seed: int = 0,
    ):
        self._nodes = tuple(str(node) for node in nodes)
        if len(self._nodes) < 2:
            raise ValidationError("need at least two nodes to generate traffic")
        if mean_load <= 0:
            raise ValidationError("mean_load must be positive")
        if noise_sigma < 0:
            raise ValidationError("noise_sigma must be non-negative")
        self._mean_load = float(mean_load)
        self._diurnal = diurnal or DiurnalProfile()
        self._noise_sigma = float(noise_sigma)
        self._seed = int(seed)

    def generate(
        self, n_bins: int, *, bin_seconds: float = 300.0, start_seconds: float = 0.0
    ) -> TrafficMatrixSeries:
        """Generate ``n_bins`` of gravity-structured traffic."""
        n = len(self._nodes)
        rng = np.random.default_rng(self._seed)
        ingress_base = rng.exponential(self._mean_load, n)
        egress_base = rng.exponential(self._mean_load, n)
        times = start_seconds + np.arange(n_bins) * bin_seconds
        waveform = self._diurnal.waveform(times)
        matrices = np.empty((n_bins, n, n))
        for t in range(n_bins):
            ingress = ingress_base * waveform[t]
            egress = egress_base * waveform[t]
            total = ingress.sum()
            matrices[t] = np.outer(ingress, egress) / max(total, 1e-12)
        if self._noise_sigma > 0:
            matrices = matrices * rng.lognormal(0.0, self._noise_sigma, size=matrices.shape)
        return TrafficMatrixSeries(matrices, self._nodes, bin_seconds=bin_seconds)

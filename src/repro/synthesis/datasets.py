"""Dataset factories standing in for the paper's D1 (Geant) and D2 (Totem) data.

The real datasets are multi-week series of PoP-level traffic matrices built
from sampled netflow.  These factories generate synthetic equivalents with
known ground truth:

* the **Geant-like** dataset: 22 PoPs, 5-minute bins, 2016 bins per week
  (exactly the D1 dimensions),
* the **Totem-like** dataset: 23 PoPs (German PoP split in two), 15-minute
  bins, 672 bins per week (the D2 dimensions), with occasional measurement
  anomalies injected because the public Totem data is documented to contain
  them.

Weeks share the same underlying ``f`` and preference vector (that is the
stability property the paper verifies) but evolve their activity levels and
contain fresh noise, so week-over-week experiments are meaningful.  The
experiments default to a reduced number of bins per week to stay fast; pass
``full_scale=True`` for the paper-sized series.

Two access paths share one specification table (and therefore one RNG draw
order, so their numbers are bit-identical):

* :func:`load_dataset` materialises a :class:`SyntheticDataset` holding the
  whole multi-week cube (the historical path), while
* :func:`open_dataset_stream` returns a :class:`StreamingDataset` whose weeks
  are :class:`repro.streaming.ChunkStream` objects generated chunk by chunk
  from deterministic RNG state — month-scale series in O(chunk) memory.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Iterator

import numpy as np

from repro.core.traffic_matrix import TrafficMatrixSeries
from repro.errors import RegistryError, ValidationError
from repro.registry import DATASETS, canonical_name, register_dataset
from repro.streaming import ChunkStream, FunctionChunkStream, default_chunk_bins
from repro.synthesis.generator import (
    GenerationPlan,
    GroundTruth,
    ICTMGenerator,
    SyntheticTMConfig,
)
from repro.topology.library import geant_topology, totem_topology
from repro.topology.topology import Topology

__all__ = [
    "SyntheticDataset",
    "StreamingDataset",
    "StreamingDatasetState",
    "make_geant_like_dataset",
    "make_totem_like_dataset",
    "load_dataset",
    "open_dataset_stream",
    "register_dataset_stream",
    "streaming_dataset_from_state",
    "streamable_dataset_names",
]

GEANT_BINS_PER_WEEK = 2016  # 5-minute bins
TOTEM_BINS_PER_WEEK = 672   # 15-minute bins


@dataclass
class SyntheticDataset:
    """A multi-week synthetic dataset with its topology and ground truth.

    Attributes
    ----------
    name:
        ``"geant-like"`` or ``"totem-like"``.
    topology:
        The PoP-level topology the traffic notionally flows over.
    weeks:
        One :class:`TrafficMatrixSeries` per week.
    ground_truths:
        The per-week generating parameters (same ``f`` and preference across
        weeks; per-week activity).
    bin_seconds:
        Bin width shared by all weeks.
    """

    name: str
    topology: Topology
    weeks: list[TrafficMatrixSeries]
    ground_truths: list[GroundTruth]
    bin_seconds: float

    @property
    def n_weeks(self) -> int:
        return len(self.weeks)

    @property
    def nodes(self) -> tuple[str, ...]:
        return self.topology.nodes

    def week(self, index: int) -> TrafficMatrixSeries:
        """The ``index``-th week of traffic."""
        return self.weeks[index]

    def full_series(self) -> TrafficMatrixSeries:
        """All weeks concatenated into one series."""
        series = self.weeks[0]
        for week in self.weeks[1:]:
            series = series.concatenate(week)
        return series


# ---------------------------------------------------------------------------
# anomaly planning (shared by the cube and streaming paths)
# ---------------------------------------------------------------------------

def _plan_anomalies(
    seed: int, n_weeks: int, bins_per_week: int, n_nodes: int, rate: float
) -> list[list[tuple[int, int, int, float]]]:
    """Pre-draw the anomaly events of every week, in the historical RNG order.

    The public Totem dataset documents measurement anomalies; a small rate of
    per-bin disturbances keeps the synthetic stand-in honest about them.  The
    draws (bin, origin, destination, factor) happen week by week from one
    generator seeded ``seed + 7919``, exactly as the former per-week
    ``_inject_anomalies`` loop drew them, so applying the returned events in
    order reproduces its values bit for bit.
    """
    if rate <= 0:
        return [[] for _ in range(n_weeks)]
    rng = np.random.default_rng(seed + 7919)
    n_anomalies = int(rate * bins_per_week)
    events: list[list[tuple[int, int, int, float]]] = []
    for _ in range(n_weeks):
        week_events = []
        for _ in range(n_anomalies):
            bin_index = int(rng.integers(0, bins_per_week))
            i, j = int(rng.integers(0, n_nodes)), int(rng.integers(0, n_nodes))
            factor = float(rng.choice((0.0, 3.0, 5.0)))
            week_events.append((bin_index, i, j, factor))
        events.append(week_events)
    return events


def _apply_anomalies(
    block: np.ndarray, events: list[tuple[int, int, int, float]], start: int
) -> np.ndarray:
    """Apply the planned events that fall into ``block`` (bins ``start + k``)."""
    stop = start + block.shape[0]
    for bin_index, i, j, factor in events:
        if start <= bin_index < stop:
            block[bin_index - start, i, j] *= factor
    return block


# ---------------------------------------------------------------------------
# shared generation core
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _DatasetSpec:
    """Everything both access paths need to generate one named dataset."""

    name: str
    topology_factory: Callable[[], Topology]
    bin_seconds: float
    full_scale_bins: int
    reduced_bins: int
    default_seed: int
    anomaly_rate: float
    config_factory: Callable[[], SyntheticTMConfig]


def _geant_config() -> SyntheticTMConfig:
    return SyntheticTMConfig(
        forward_fraction=0.22,
        mean_activity=2e7,
        spatial_bias_sigma=0.4,
        noise_sigma=0.28,
        f_jitter_sigma=0.06,
        f_responder_sigma=0.08,
    )


def _totem_config() -> SyntheticTMConfig:
    return SyntheticTMConfig(
        forward_fraction=0.20,
        mean_activity=5e7,
        spatial_bias_sigma=0.45,
        noise_sigma=0.30,
        f_jitter_sigma=0.08,
        f_responder_sigma=0.10,
    )


_DATASET_SPECS: dict[str, _DatasetSpec] = {
    "geant": _DatasetSpec(
        name="geant-like",
        topology_factory=geant_topology,
        bin_seconds=300.0,
        full_scale_bins=GEANT_BINS_PER_WEEK,
        reduced_bins=288,
        default_seed=11,
        anomaly_rate=0.0,
        config_factory=_geant_config,
    ),
    "totem": _DatasetSpec(
        name="totem-like",
        topology_factory=totem_topology,
        bin_seconds=900.0,
        full_scale_bins=TOTEM_BINS_PER_WEEK,
        reduced_bins=96,
        default_seed=23,
        anomaly_rate=0.02,
        config_factory=_totem_config,
    ),
}


def _validate_scale(n_weeks: int, bins_per_week: int) -> None:
    if n_weeks < 1:
        raise ValidationError("n_weeks must be >= 1")
    if bins_per_week < 2:
        raise ValidationError("bins_per_week must be >= 2")


def _week_truths(plan: GenerationPlan, forward_fraction: float, bins_per_week: int) -> list[GroundTruth]:
    """Per-week ground truths sharing the plan's spatial parameters."""
    truths = []
    for start in range(0, plan.n_bins, bins_per_week):
        truths.append(
            GroundTruth(
                forward_fraction=forward_fraction,
                forward_fraction_matrix=plan.forward_fraction_matrix,
                preference=plan.preference,
                activity=plan.activity[start : start + bins_per_week],
            )
        )
    return truths


def _make_dataset(
    name: str,
    topology: Topology,
    *,
    n_weeks: int,
    bins_per_week: int,
    bin_seconds: float,
    config: SyntheticTMConfig,
    seed: int,
    anomaly_rate: float = 0.0,
) -> SyntheticDataset:
    _validate_scale(n_weeks, bins_per_week)
    # One generation run covers all weeks, so the spatial parameters (f and
    # preference) are exactly shared across weeks — the stability property the
    # paper verifies — while activity noise is fresh in every bin and the
    # diurnal/weekly waveform lines up with real week boundaries.
    generator = ICTMGenerator(topology.nodes, config, seed=seed)
    full_series, full_truth = generator.generate(
        n_weeks * bins_per_week, bin_seconds=bin_seconds, start_seconds=0.0
    )
    anomalies = _plan_anomalies(seed, n_weeks, bins_per_week, len(topology.nodes), anomaly_rate)
    weeks: list[TrafficMatrixSeries] = []
    truths: list[GroundTruth] = []
    for week_index in range(n_weeks):
        start = week_index * bins_per_week
        stop = start + bins_per_week
        values = np.array(full_series.values[start:stop], copy=True)
        values = _apply_anomalies(values, anomalies[week_index], 0)
        weeks.append(TrafficMatrixSeries(values, topology.nodes, bin_seconds=bin_seconds))
        truths.append(
            GroundTruth(
                forward_fraction=full_truth.forward_fraction,
                forward_fraction_matrix=full_truth.forward_fraction_matrix,
                preference=full_truth.preference,
                activity=full_truth.activity[start:stop],
            )
        )
    return SyntheticDataset(
        name=name,
        topology=topology,
        weeks=weeks,
        ground_truths=truths,
        bin_seconds=bin_seconds,
    )


@register_dataset(
    "geant",
    description="Geant-like D1 stand-in: 22 PoPs, 5-minute bins, 2016 bins/week at full scale",
    metadata={"calibration_gap": 1, "n_nodes": 22, "bin_seconds": 300.0, "streaming": True},
)
def make_geant_like_dataset(
    n_weeks: int = 3,
    *,
    bins_per_week: int | None = None,
    full_scale: bool = False,
    seed: int = 11,
    config: SyntheticTMConfig | None = None,
) -> SyntheticDataset:
    """Synthetic stand-in for the D1 (Geant) dataset: 22 PoPs, 5-minute bins.

    Parameters
    ----------
    n_weeks:
        Number of weeks to generate (the paper uses up to three from D1).
    bins_per_week:
        Number of bins per week.  Defaults to a reduced 288 (one day at
        5-minute bins) for fast experiments; ``full_scale=True`` selects the
        paper's 2016.
    full_scale:
        Generate the full 2016-bin weeks.
    seed:
        Dataset seed.
    config:
        Optional override of the generation parameters.
    """
    spec = _DATASET_SPECS["geant"]
    if bins_per_week is None:
        bins_per_week = spec.full_scale_bins if full_scale else spec.reduced_bins
    return _make_dataset(
        spec.name,
        spec.topology_factory(),
        n_weeks=n_weeks,
        bins_per_week=bins_per_week,
        bin_seconds=spec.bin_seconds,
        config=config or spec.config_factory(),
        seed=seed,
        anomaly_rate=spec.anomaly_rate,
    )


@register_dataset(
    "totem",
    description="Totem-like D2 stand-in: 23 PoPs, 15-minute bins, with injected anomalies",
    metadata={"calibration_gap": 2, "n_nodes": 23, "bin_seconds": 900.0, "streaming": True},
)
def make_totem_like_dataset(
    n_weeks: int = 7,
    *,
    bins_per_week: int | None = None,
    full_scale: bool = False,
    seed: int = 23,
    config: SyntheticTMConfig | None = None,
) -> SyntheticDataset:
    """Synthetic stand-in for the D2 (Totem) dataset: 23 PoPs, 15-minute bins.

    Defaults to a reduced 96 bins per week (one day at 15-minute bins);
    ``full_scale=True`` selects the paper's 672.  A small rate of measurement
    anomalies is injected, mirroring the documented artefacts in the public
    Totem data.
    """
    spec = _DATASET_SPECS["totem"]
    if bins_per_week is None:
        bins_per_week = spec.full_scale_bins if full_scale else spec.reduced_bins
    return _make_dataset(
        spec.name,
        spec.topology_factory(),
        n_weeks=n_weeks,
        bins_per_week=bins_per_week,
        bin_seconds=spec.bin_seconds,
        config=config or spec.config_factory(),
        seed=seed,
        anomaly_rate=spec.anomaly_rate,
    )


@lru_cache(maxsize=16)
def load_dataset(
    name: str,
    *,
    n_weeks: int,
    bins_per_week: int | None = None,
    full_scale: bool = False,
    seed: int | None = None,
) -> SyntheticDataset:
    """Build (and memoise) a registered dataset at the requested scale.

    This is the shared cache behind both the experiment drivers and the
    scenario runner, so a sweep over many priors reuses one synthesis run per
    dataset cell instead of regenerating the traffic for every scenario.

    Parameters
    ----------
    name:
        A name registered in :data:`repro.registry.DATASETS`.
    n_weeks, bins_per_week, full_scale, seed:
        Passed through to the dataset factory; ``seed=None`` keeps the
        factory default.
    """
    factory = DATASETS.get(name)
    kwargs: dict = {"bins_per_week": bins_per_week, "full_scale": full_scale}
    if seed is not None:
        kwargs["seed"] = seed
    return factory(n_weeks, **kwargs)


# ---------------------------------------------------------------------------
# the streaming access path
# ---------------------------------------------------------------------------

class StreamingDataset:
    """A multi-week dataset whose traffic is generated chunk by chunk.

    Shares the exact RNG draw order of the materialised
    :class:`SyntheticDataset` (same seed ⇒ bit-identical values), but holds
    only the ``O(n^2)`` spatial parameters and the ``O(T n)`` activity series
    in memory; every ``(T_chunk, n, n)`` traffic block is regenerated on
    demand from cached noise-stream state.  Week streams are re-iterable, so
    multi-pass consumers (ALS fitting, prior + estimation passes) work
    without ever materialising a week.
    """

    def __init__(
        self,
        *,
        name: str,
        topology: Topology,
        generator: ICTMGenerator,
        plan: GenerationPlan,
        anomalies: list[list[tuple[int, int, int, float]]],
        n_weeks: int,
        bins_per_week: int,
        chunk_bins: int | None = None,
    ):
        self.name = name
        self.topology = topology
        self._generator = generator
        self._plan = plan
        self._anomalies = anomalies
        self._n_weeks = int(n_weeks)
        self._bins_per_week = int(bins_per_week)
        self._chunk_bins = (
            default_chunk_bins(len(topology.nodes)) if chunk_bins is None else int(chunk_bins)
        )
        self.ground_truths = _week_truths(
            plan, generator.config.forward_fraction, bins_per_week
        )

    @property
    def nodes(self) -> tuple[str, ...]:
        return self.topology.nodes

    @property
    def n_weeks(self) -> int:
        return self._n_weeks

    @property
    def bins_per_week(self) -> int:
        return self._bins_per_week

    @property
    def bin_seconds(self) -> float:
        return self._plan.bin_seconds

    @property
    def n_bins(self) -> int:
        return self._plan.n_bins

    @property
    def chunk_bins(self) -> int:
        return self._chunk_bins

    def _check_week(self, index: int) -> int:
        index = int(index)
        if not 0 <= index < self._n_weeks:
            raise ValidationError(
                f"week index {index} out of range for {self._n_weeks} generated weeks"
            )
        return index

    def week_stream(
        self,
        index: int,
        *,
        chunk_bins: int | None = None,
        max_bins: int | None = None,
    ) -> ChunkStream:
        """A re-iterable chunk stream over week ``index`` (optionally trimmed).

        ``max_bins`` trims the stream to its first bins, mirroring how the
        scenario runner caps the bins pushed through the estimation pipeline.
        """
        index = self._check_week(index)
        start = index * self._bins_per_week
        n_bins = self._bins_per_week
        if max_bins is not None:
            if max_bins < 1:
                raise ValidationError("max_bins must be >= 1")
            n_bins = min(n_bins, int(max_bins))
        stop = start + n_bins
        events = self._anomalies[index]
        generator, plan = self._generator, self._plan

        def factory(resolved_chunk: int) -> Iterator[tuple[int, np.ndarray]]:
            for t0, block in generator.iter_chunks(
                plan, chunk_bins=resolved_chunk, start_bin=start, stop_bin=stop
            ):
                yield t0, _apply_anomalies(block, events, t0)

        return FunctionChunkStream(
            factory,
            n_bins=n_bins,
            nodes=self.topology.nodes,
            bin_seconds=self._plan.bin_seconds,
            chunk_bins=self._chunk_bins if chunk_bins is None else chunk_bins,
        )

    def week(self, index: int) -> TrafficMatrixSeries:
        """Week ``index`` materialised (compatibility with the cube path)."""
        return self.week_stream(index).materialize()

    @property
    def plan(self) -> GenerationPlan:
        """The generation plan backing every stream of this dataset."""
        return self._plan

    def checkpoint_noise(self) -> "StreamingDataset":
        """Eagerly populate the plan's noise-state checkpoints (chainable).

        After this, any chunk read — including a fresh worker's first read at
        an arbitrary week boundary — replays at most one state-cache stride
        of noise draws instead of the whole prefix.
        """
        self._plan.checkpoint_noise_states()
        return self

    def export_state(self) -> "StreamingDatasetState":
        """The complete, picklable generation state behind this dataset.

        The returned state is what the sweep scheduler ships to worker
        processes: the ``O(n^2)`` spatial parameters and ``O(T n)`` activity
        series (the only sizeable arrays), the noise-state checkpoints, the
        anomaly events and the scale knobs.  Rebuilding with
        :func:`streaming_dataset_from_state` costs no RNG draws at all.
        """
        plan = self._plan
        return StreamingDatasetState(
            name=self.name,
            topology=self.topology,
            config=self._generator.config,
            seed=self._generator._seed,  # noqa: SLF001 - same-module round-trip
            n_weeks=self._n_weeks,
            bins_per_week=self._bins_per_week,
            chunk_bins=self._chunk_bins,
            n_bins=plan.n_bins,
            bin_seconds=plan.bin_seconds,
            noise_sigma=plan.noise_sigma,
            noise_states={k: copy.deepcopy(v) for k, v in plan.noise_states.items()},
            anomalies=self._anomalies,
            preference=plan.preference,
            activity=plan.activity,
            forward_fraction_matrix=plan.forward_fraction_matrix,
            spatial_bias=plan.spatial_bias,
        )

    def full_stream(self, *, chunk_bins: int | None = None) -> ChunkStream:
        """All weeks as one continuous chunk stream."""
        generator, plan = self._generator, self._plan
        bins_per_week = self._bins_per_week
        anomalies = self._anomalies

        def factory(resolved_chunk: int) -> Iterator[tuple[int, np.ndarray]]:
            for t0, block in generator.iter_chunks(plan, chunk_bins=resolved_chunk):
                # A chunk may straddle week boundaries; apply each week's
                # events against its own week-relative bin offsets.
                first_week = t0 // bins_per_week
                last_week = (t0 + block.shape[0] - 1) // bins_per_week
                for week_index in range(first_week, last_week + 1):
                    week_start = week_index * bins_per_week
                    _apply_anomalies(
                        block[max(week_start - t0, 0) :],
                        anomalies[week_index],
                        max(t0 - week_start, 0),
                    )
                yield t0, block

        return FunctionChunkStream(
            factory,
            n_bins=plan.n_bins,
            nodes=self.topology.nodes,
            bin_seconds=plan.bin_seconds,
            chunk_bins=self._chunk_bins if chunk_bins is None else chunk_bins,
        )


@dataclass
class StreamingDatasetState:
    """Everything needed to rebuild a :class:`StreamingDataset` elsewhere.

    The arrays are the plan's ``O(n^2)`` spatial parameters plus the
    ``O(T n)`` activity series; :data:`ARRAY_FIELDS` names them so transports
    (the sweep scheduler's shared-memory shipping) can move them out-of-band
    and reattach zero-copy views before calling
    :func:`streaming_dataset_from_state`.
    """

    name: str
    topology: Topology
    config: SyntheticTMConfig
    seed: int
    n_weeks: int
    bins_per_week: int
    chunk_bins: int
    n_bins: int
    bin_seconds: float
    noise_sigma: float
    noise_states: dict[int, dict]
    anomalies: list[list[tuple[int, int, int, float]]]
    preference: np.ndarray | None = None
    activity: np.ndarray | None = None
    forward_fraction_matrix: np.ndarray | None = None
    spatial_bias: np.ndarray | None = None

    ARRAY_FIELDS = ("preference", "activity", "forward_fraction_matrix", "spatial_bias")

    def strip_arrays(self) -> "StreamingDatasetState":
        """A copy with the array fields dropped (they travel out-of-band)."""
        import dataclasses as _dc

        return _dc.replace(
            self, preference=None, activity=None, forward_fraction_matrix=None, spatial_bias=None
        )


def streaming_dataset_from_state(
    state: StreamingDatasetState,
    arrays: dict[str, np.ndarray] | None = None,
) -> StreamingDataset:
    """Rebuild a :class:`StreamingDataset` from shipped generation state.

    ``arrays`` optionally supplies the plan arrays (e.g. shared-memory
    views); fields already present on ``state`` win.  No RNG is consumed:
    chunk reads resume from the shipped noise-state checkpoints, so the
    rebuilt dataset is bit-identical to the one the state was exported from.
    """
    arrays = arrays or {}
    resolved = {
        field_name: (
            getattr(state, field_name)
            if getattr(state, field_name) is not None
            else arrays.get(field_name)
        )
        for field_name in StreamingDatasetState.ARRAY_FIELDS
    }
    missing = sorted(name for name, value in resolved.items() if value is None)
    if missing:
        raise ValidationError(f"streaming dataset state is missing plan arrays: {missing}")
    plan = GenerationPlan(
        n_bins=state.n_bins,
        bin_seconds=state.bin_seconds,
        preference=resolved["preference"],
        activity=resolved["activity"],
        forward_fraction_matrix=resolved["forward_fraction_matrix"],
        spatial_bias=resolved["spatial_bias"],
        noise_sigma=state.noise_sigma,
        noise_states=state.noise_states,
    )
    generator = ICTMGenerator(state.topology.nodes, state.config, seed=state.seed)
    return StreamingDataset(
        name=state.name,
        topology=state.topology,
        generator=generator,
        plan=plan,
        anomalies=state.anomalies,
        n_weeks=state.n_weeks,
        bins_per_week=state.bins_per_week,
        chunk_bins=state.chunk_bins,
    )


# Chunk-stream openers for externally registered datasets, keyed by the
# canonical dataset name.  Built-in datasets stream through _DATASET_SPECS
# (shared RNG draw order with the cube path); third-party datasets opt in
# here with a factory of their own.
_STREAM_OPENERS: dict[str, Callable] = {}


def register_dataset_stream(name: str, opener: Callable | None = None, *, overwrite: bool = False):
    """Let an externally registered dataset opt into :func:`open_dataset_stream`.

    ``opener`` is called as ``opener(n_weeks=..., bins_per_week=...,
    full_scale=..., seed=..., chunk_bins=...)`` and must return an object
    with the :class:`StreamingDataset` surface — at minimum ``topology``,
    ``nodes``, ``n_weeks``, ``bin_seconds`` and ``week_stream(index,
    max_bins=...)`` returning a :class:`repro.streaming.ChunkStream` (the
    protocol is fully generic; :class:`repro.streaming.FunctionChunkStream`
    over your own chunk generator is usually all you need).  ``bins_per_week``
    and ``seed`` arrive as ``None`` when the caller kept the defaults.

    Usable as a decorator::

        @register_dataset_stream("my_dataset")
        def open_my_dataset_stream(*, n_weeks, bins_per_week, full_scale, seed, chunk_bins):
            ...

    The dataset itself must already be registered with
    :func:`repro.registry.register_dataset`; registering a stream opener for
    a built-in (spec-backed) dataset is rejected because those stream through
    the shared generation specs that keep them bit-identical to the cube path.
    """

    def decorate(target: Callable) -> Callable:
        key = canonical_name(name)
        if key in _DATASET_SPECS:
            raise RegistryError(
                f"dataset {name!r} is a built-in with a spec-backed stream; "
                "its opener cannot be replaced"
            )
        if key in _STREAM_OPENERS and not overwrite:
            raise RegistryError(
                f"dataset {name!r} already has a stream opener; "
                "pass overwrite=True to replace it"
            )
        _STREAM_OPENERS[key] = target
        return target

    if opener is None:
        return decorate
    return decorate(opener)


def streamable_dataset_names() -> tuple[str, ...]:
    """Every dataset name :func:`open_dataset_stream` accepts, sorted."""
    return tuple(sorted(set(_DATASET_SPECS) | set(_STREAM_OPENERS)))


@lru_cache(maxsize=8)
def _open_stream_core(
    name: str,
    n_weeks: int,
    bins_per_week: int,
    seed: int,
    config: SyntheticTMConfig | None,
):
    """Build (and memoise) the shared generation state behind a stream."""
    spec = _DATASET_SPECS[name]
    topology = spec.topology_factory()
    generator = ICTMGenerator(topology.nodes, config or spec.config_factory(), seed=seed)
    plan = generator.plan(
        n_weeks * bins_per_week, bin_seconds=spec.bin_seconds, start_seconds=0.0
    )
    anomalies = _plan_anomalies(
        seed, n_weeks, bins_per_week, len(topology.nodes), spec.anomaly_rate
    )
    return topology, generator, plan, anomalies


def open_dataset_stream(
    name: str,
    *,
    n_weeks: int,
    bins_per_week: int | None = None,
    full_scale: bool = False,
    seed: int | None = None,
    chunk_bins: int | None = None,
    config: SyntheticTMConfig | None = None,
) -> StreamingDataset:
    """Open a registered dataset as a bounded-memory :class:`StreamingDataset`.

    Accepts the same scale knobs as :func:`load_dataset`.  The built-in
    ``geant``/``totem`` datasets stream through the shared generation specs
    (same seed ⇒ bit-identical to the cube path); externally registered
    datasets stream through the chunk factory they registered with
    :func:`register_dataset_stream`.  A dataset with neither raises a
    :class:`ValidationError` naming every registered dataset that *does*
    stream.
    """
    entry = DATASETS.entry(name)  # canonicalises and reports valid choices
    if entry.name not in _DATASET_SPECS:
        opener = _STREAM_OPENERS.get(entry.name)
        if opener is None:
            raise ValidationError(
                f"dataset {name!r} has no streaming factory; registered datasets "
                f"that stream: {list(streamable_dataset_names())} (run without "
                "--stream, or register a chunk factory with "
                "repro.synthesis.register_dataset_stream)"
            )
        if config is not None:
            raise ValidationError(
                "config overrides only apply to the built-in spec-backed datasets"
            )
        data = opener(
            n_weeks=int(n_weeks),
            bins_per_week=bins_per_week,
            full_scale=full_scale,
            seed=seed,
            chunk_bins=chunk_bins,
        )
        if not hasattr(data, "week_stream"):
            raise ValidationError(
                f"stream opener for dataset {name!r} returned "
                f"{type(data).__name__}, which lacks the required week_stream method"
            )
        return data
    spec = _DATASET_SPECS[entry.name]
    _validate_scale(n_weeks, 2 if bins_per_week is None else bins_per_week)
    if bins_per_week is None:
        bins_per_week = spec.full_scale_bins if full_scale else spec.reduced_bins
    resolved_seed = spec.default_seed if seed is None else int(seed)
    topology, generator, plan, anomalies = _open_stream_core(
        entry.name, int(n_weeks), int(bins_per_week), resolved_seed, config
    )
    return StreamingDataset(
        name=spec.name,
        topology=topology,
        generator=generator,
        plan=plan,
        anomalies=anomalies,
        n_weeks=n_weeks,
        bins_per_week=bins_per_week,
        chunk_bins=chunk_bins,
    )

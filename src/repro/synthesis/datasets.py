"""Dataset factories standing in for the paper's D1 (Geant) and D2 (Totem) data.

The real datasets are multi-week series of PoP-level traffic matrices built
from sampled netflow.  These factories generate synthetic equivalents with
known ground truth:

* the **Geant-like** dataset: 22 PoPs, 5-minute bins, 2016 bins per week
  (exactly the D1 dimensions),
* the **Totem-like** dataset: 23 PoPs (German PoP split in two), 15-minute
  bins, 672 bins per week (the D2 dimensions), with occasional measurement
  anomalies injected because the public Totem data is documented to contain
  them.

Weeks share the same underlying ``f`` and preference vector (that is the
stability property the paper verifies) but evolve their activity levels and
contain fresh noise, so week-over-week experiments are meaningful.  The
experiments default to a reduced number of bins per week to stay fast; pass
``full_scale=True`` for the paper-sized series.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.core.traffic_matrix import TrafficMatrixSeries
from repro.errors import ValidationError
from repro.registry import DATASETS, register_dataset
from repro.synthesis.generator import GroundTruth, ICTMGenerator, SyntheticTMConfig
from repro.topology.library import geant_topology, totem_topology
from repro.topology.topology import Topology

__all__ = [
    "SyntheticDataset",
    "make_geant_like_dataset",
    "make_totem_like_dataset",
    "load_dataset",
]

GEANT_BINS_PER_WEEK = 2016  # 5-minute bins
TOTEM_BINS_PER_WEEK = 672   # 15-minute bins


@dataclass
class SyntheticDataset:
    """A multi-week synthetic dataset with its topology and ground truth.

    Attributes
    ----------
    name:
        ``"geant-like"`` or ``"totem-like"``.
    topology:
        The PoP-level topology the traffic notionally flows over.
    weeks:
        One :class:`TrafficMatrixSeries` per week.
    ground_truths:
        The per-week generating parameters (same ``f`` and preference across
        weeks; per-week activity).
    bin_seconds:
        Bin width shared by all weeks.
    """

    name: str
    topology: Topology
    weeks: list[TrafficMatrixSeries]
    ground_truths: list[GroundTruth]
    bin_seconds: float

    @property
    def n_weeks(self) -> int:
        return len(self.weeks)

    @property
    def nodes(self) -> tuple[str, ...]:
        return self.topology.nodes

    def week(self, index: int) -> TrafficMatrixSeries:
        """The ``index``-th week of traffic."""
        return self.weeks[index]

    def full_series(self) -> TrafficMatrixSeries:
        """All weeks concatenated into one series."""
        series = self.weeks[0]
        for week in self.weeks[1:]:
            series = series.concatenate(week)
        return series


def _make_dataset(
    name: str,
    topology: Topology,
    *,
    n_weeks: int,
    bins_per_week: int,
    bin_seconds: float,
    config: SyntheticTMConfig,
    seed: int,
    anomaly_rate: float = 0.0,
) -> SyntheticDataset:
    if n_weeks < 1:
        raise ValidationError("n_weeks must be >= 1")
    if bins_per_week < 2:
        raise ValidationError("bins_per_week must be >= 2")
    # One generation run covers all weeks, so the spatial parameters (f and
    # preference) are exactly shared across weeks — the stability property the
    # paper verifies — while activity noise is fresh in every bin and the
    # diurnal/weekly waveform lines up with real week boundaries.
    generator = ICTMGenerator(topology.nodes, config, seed=seed)
    full_series, full_truth = generator.generate(
        n_weeks * bins_per_week, bin_seconds=bin_seconds, start_seconds=0.0
    )
    rng = np.random.default_rng(seed + 7919)
    weeks: list[TrafficMatrixSeries] = []
    truths: list[GroundTruth] = []
    for week_index in range(n_weeks):
        start = week_index * bins_per_week
        stop = start + bins_per_week
        values = np.array(full_series.values[start:stop], copy=True)
        if anomaly_rate > 0:
            values = _inject_anomalies(values, rng, anomaly_rate)
        weeks.append(TrafficMatrixSeries(values, topology.nodes, bin_seconds=bin_seconds))
        truths.append(
            GroundTruth(
                forward_fraction=full_truth.forward_fraction,
                forward_fraction_matrix=full_truth.forward_fraction_matrix,
                preference=full_truth.preference,
                activity=full_truth.activity[start:stop],
            )
        )
    return SyntheticDataset(
        name=name,
        topology=topology,
        weeks=weeks,
        ground_truths=truths,
        bin_seconds=bin_seconds,
    )


def _inject_anomalies(values: np.ndarray, rng: np.random.Generator, rate: float) -> np.ndarray:
    """Inject short multiplicative spikes/drops on random OD pairs.

    The public Totem dataset documents measurement anomalies; a small rate of
    per-bin disturbances keeps the synthetic stand-in honest about them.
    """
    t, n, _ = values.shape
    n_anomalies = int(rate * t)
    for _ in range(n_anomalies):
        bin_index = int(rng.integers(0, t))
        i, j = int(rng.integers(0, n)), int(rng.integers(0, n))
        factor = float(rng.choice((0.0, 3.0, 5.0)))
        values[bin_index, i, j] *= factor
    return values


@register_dataset(
    "geant",
    description="Geant-like D1 stand-in: 22 PoPs, 5-minute bins, 2016 bins/week at full scale",
    metadata={"calibration_gap": 1, "n_nodes": 22, "bin_seconds": 300.0},
)
def make_geant_like_dataset(
    n_weeks: int = 3,
    *,
    bins_per_week: int | None = None,
    full_scale: bool = False,
    seed: int = 11,
    config: SyntheticTMConfig | None = None,
) -> SyntheticDataset:
    """Synthetic stand-in for the D1 (Geant) dataset: 22 PoPs, 5-minute bins.

    Parameters
    ----------
    n_weeks:
        Number of weeks to generate (the paper uses up to three from D1).
    bins_per_week:
        Number of bins per week.  Defaults to a reduced 288 (one day at
        5-minute bins) for fast experiments; ``full_scale=True`` selects the
        paper's 2016.
    full_scale:
        Generate the full 2016-bin weeks.
    seed:
        Dataset seed.
    config:
        Optional override of the generation parameters.
    """
    if bins_per_week is None:
        bins_per_week = GEANT_BINS_PER_WEEK if full_scale else 288
    topology = geant_topology()
    config = config or SyntheticTMConfig(
        forward_fraction=0.22,
        mean_activity=2e7,
        spatial_bias_sigma=0.4,
        noise_sigma=0.28,
        f_jitter_sigma=0.06,
        f_responder_sigma=0.08,
    )
    return _make_dataset(
        "geant-like",
        topology,
        n_weeks=n_weeks,
        bins_per_week=bins_per_week,
        bin_seconds=300.0,
        config=config,
        seed=seed,
    )


@register_dataset(
    "totem",
    description="Totem-like D2 stand-in: 23 PoPs, 15-minute bins, with injected anomalies",
    metadata={"calibration_gap": 2, "n_nodes": 23, "bin_seconds": 900.0},
)
def make_totem_like_dataset(
    n_weeks: int = 7,
    *,
    bins_per_week: int | None = None,
    full_scale: bool = False,
    seed: int = 23,
    config: SyntheticTMConfig | None = None,
) -> SyntheticDataset:
    """Synthetic stand-in for the D2 (Totem) dataset: 23 PoPs, 15-minute bins.

    Defaults to a reduced 96 bins per week (one day at 15-minute bins);
    ``full_scale=True`` selects the paper's 672.  A small rate of measurement
    anomalies is injected, mirroring the documented artefacts in the public
    Totem data.
    """
    if bins_per_week is None:
        bins_per_week = TOTEM_BINS_PER_WEEK if full_scale else 96
    topology = totem_topology()
    config = config or SyntheticTMConfig(
        forward_fraction=0.20,
        mean_activity=5e7,
        spatial_bias_sigma=0.45,
        noise_sigma=0.30,
        f_jitter_sigma=0.08,
        f_responder_sigma=0.10,
    )
    return _make_dataset(
        "totem-like",
        topology,
        n_weeks=n_weeks,
        bins_per_week=bins_per_week,
        bin_seconds=900.0,
        config=config,
        seed=seed,
        anomaly_rate=0.02,
    )


@lru_cache(maxsize=16)
def load_dataset(
    name: str,
    *,
    n_weeks: int,
    bins_per_week: int | None = None,
    full_scale: bool = False,
    seed: int | None = None,
) -> SyntheticDataset:
    """Build (and memoise) a registered dataset at the requested scale.

    This is the shared cache behind both the experiment drivers and the
    scenario runner, so a sweep over many priors reuses one synthesis run per
    dataset cell instead of regenerating the traffic for every scenario.

    Parameters
    ----------
    name:
        A name registered in :data:`repro.registry.DATASETS`.
    n_weeks, bins_per_week, full_scale, seed:
        Passed through to the dataset factory; ``seed=None`` keeps the
        factory default.
    """
    factory = DATASETS.get(name)
    kwargs: dict = {"bins_per_week": bins_per_week, "full_scale": full_scale}
    if seed is not None:
        kwargs["seed"] = seed
    return factory(n_weeks, **kwargs)

"""Cyclostationary activity-level generation.

The paper finds the fitted activity series ``A_i(t)`` to show "familiar and
predictable diurnal patterns, with noticeable changes on weekends"
(Section 5.4), and points at cyclo-stationary models — superpositions of a
small number of periodic waveforms — as a suitable generative description.
:class:`ActivityModel` implements exactly that: each node's activity is a
heavy-tailed base level modulated by a shared daily waveform (fundamental
plus one harmonic), a weekend damping factor and multiplicative lognormal
noise.  Larger nodes get a more pronounced, cleaner diurnal shape, matching
the paper's observation that high-activity nodes aggregate more users.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError

__all__ = ["DiurnalProfile", "ActivityModel"]

_SECONDS_PER_DAY = 86400.0
_SECONDS_PER_WEEK = 7 * _SECONDS_PER_DAY


@dataclass(frozen=True)
class DiurnalProfile:
    """Shape of the shared daily activity waveform.

    Attributes
    ----------
    day_amplitude:
        Relative amplitude of the fundamental (24 h) component.
    harmonic_amplitude:
        Relative amplitude of the 12 h harmonic (gives the sharper
        business-hours peak).
    peak_hour:
        Local hour of day at which activity peaks.
    weekend_factor:
        Multiplicative damping applied on Saturday and Sunday (1 = none).
    """

    day_amplitude: float = 0.45
    harmonic_amplitude: float = 0.15
    peak_hour: float = 15.0
    weekend_factor: float = 0.6

    def __post_init__(self):
        if not 0.0 <= self.day_amplitude <= 1.0:
            raise ValidationError("day_amplitude must lie in [0, 1]")
        if not 0.0 <= self.harmonic_amplitude <= 1.0:
            raise ValidationError("harmonic_amplitude must lie in [0, 1]")
        if not 0.0 <= self.weekend_factor <= 1.5:
            raise ValidationError("weekend_factor must lie in [0, 1.5]")
        if not 0.0 <= self.peak_hour < 24.0:
            raise ValidationError("peak_hour must lie in [0, 24)")

    def waveform(self, times_seconds: np.ndarray) -> np.ndarray:
        """The multiplicative daily/weekly modulation at the given times."""
        times = np.asarray(times_seconds, dtype=float)
        hour = (times % _SECONDS_PER_DAY) / 3600.0
        phase = 2.0 * np.pi * (hour - self.peak_hour) / 24.0
        daily = 1.0 + self.day_amplitude * np.cos(phase) + self.harmonic_amplitude * np.cos(2.0 * phase)
        day_of_week = np.floor((times % _SECONDS_PER_WEEK) / _SECONDS_PER_DAY)
        weekend = np.where(day_of_week >= 5, self.weekend_factor, 1.0)
        return np.clip(daily, 0.05, None) * weekend


class ActivityModel:
    """Generate per-node activity time series ``A_i(t)``.

    Parameters
    ----------
    n_nodes:
        Number of access points.
    mean_level:
        Mean activity (bytes per bin) of a typical node.
    heterogeneity_sigma:
        Sigma of the lognormal spread of per-node base levels (how much the
        largest node dominates the smallest).
    noise_sigma:
        Sigma of the per-bin multiplicative lognormal noise.
    profile:
        Shared diurnal waveform.
    seed:
        Seed for base levels and noise.
    """

    def __init__(
        self,
        n_nodes: int,
        *,
        mean_level: float = 1e7,
        heterogeneity_sigma: float = 1.2,
        noise_sigma: float = 0.15,
        profile: DiurnalProfile | None = None,
        seed: int | np.random.Generator = 0,
    ):
        if n_nodes < 1:
            raise ValidationError("n_nodes must be >= 1")
        if mean_level <= 0:
            raise ValidationError("mean_level must be positive")
        if heterogeneity_sigma < 0 or noise_sigma < 0:
            raise ValidationError("sigmas must be non-negative")
        self._n = int(n_nodes)
        self._rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        self._noise_sigma = float(noise_sigma)
        self._profile = profile or DiurnalProfile()
        raw = self._rng.lognormal(0.0, heterogeneity_sigma, self._n)
        self._base_levels = mean_level * raw / raw.mean()
        # Larger nodes aggregate more users, so their diurnal swing is more
        # pronounced and their relative noise smaller.
        rank = np.argsort(np.argsort(self._base_levels)) / max(self._n - 1, 1)
        self._swing_scale = 0.6 + 0.4 * rank
        self._noise_scale = 1.3 - 0.6 * rank

    @property
    def base_levels(self) -> np.ndarray:
        """Per-node base activity levels (bytes per bin)."""
        return self._base_levels.copy()

    @property
    def profile(self) -> DiurnalProfile:
        """The shared diurnal profile."""
        return self._profile

    def generate(
        self,
        n_bins: int,
        *,
        bin_seconds: float = 300.0,
        start_seconds: float = 0.0,
    ) -> np.ndarray:
        """Generate an ``(n_bins, n_nodes)`` activity series.

        Parameters
        ----------
        n_bins:
            Number of time bins to generate.
        bin_seconds:
            Bin width in seconds.
        start_seconds:
            Offset of the first bin from Monday 00:00 (lets successive weeks
            continue the weekly cycle seamlessly).
        """
        if n_bins < 1:
            raise ValidationError("n_bins must be >= 1")
        if bin_seconds <= 0:
            raise ValidationError("bin_seconds must be positive")
        times = start_seconds + np.arange(n_bins) * bin_seconds
        waveform = self._profile.waveform(times)  # (T,)
        swing = 1.0 + self._swing_scale[None, :] * (waveform[:, None] - 1.0)
        noise = self._rng.lognormal(
            0.0, self._noise_sigma, size=(n_bins, self._n)
        ) ** self._noise_scale[None, :]
        activity = self._base_levels[None, :] * np.clip(swing, 0.02, None) * noise
        return activity

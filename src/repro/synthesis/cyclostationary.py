"""Cyclostationary modelling of activity time series.

Section 5.4 of the paper observes that fitted activity series ``A_i(t)`` show
familiar daily and weekly periodicities and points at cyclo-stationary models
— superpositions of a small number of periodic waveforms — as a natural
description, leaving the modelling itself to future work.  This module
implements that step: :class:`CyclostationaryModel` fits, per node, the mean
plus the ``K`` largest Fourier components of the observed series, and can then
regenerate new activity series of arbitrary length (with optional lognormal
innovation noise), to be fed back into the stable-fP generator for synthetic
traffic matrices calibrated to measured data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError, ValidationError

__all__ = ["CyclostationaryModel"]


@dataclass(frozen=True)
class _NodeSpectrum:
    mean: float
    frequencies: np.ndarray   # cycles per second of the retained components
    amplitudes: np.ndarray
    phases: np.ndarray
    residual_sigma: float


class CyclostationaryModel:
    """A per-node sum-of-sinusoids model of activity series.

    Parameters
    ----------
    n_components:
        Number of Fourier components retained per node (the paper's framing:
        "a limited number of periodic waveforms").
    """

    def __init__(self, n_components: int = 4):
        if n_components < 1:
            raise ValidationError("n_components must be >= 1")
        self._k = int(n_components)
        self._spectra: list[_NodeSpectrum] | None = None
        self._bin_seconds: float | None = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._spectra is not None

    @property
    def n_nodes(self) -> int:
        """Number of nodes the model was fitted to."""
        self._require_fitted()
        return len(self._spectra)

    def fit(self, activity, *, bin_seconds: float = 300.0) -> "CyclostationaryModel":
        """Fit the model to an observed ``(T, n)`` activity ensemble.

        Returns ``self`` so fitting and generation can be chained.
        """
        values = np.asarray(activity, dtype=float)
        if values.ndim != 2 or values.shape[0] < 2 * self._k + 2:
            raise ShapeError(
                f"activity must have shape (T, n) with T >= {2 * self._k + 2}, got {values.shape}"
            )
        if bin_seconds <= 0:
            raise ValidationError("bin_seconds must be positive")
        t = values.shape[0]
        spectra: list[_NodeSpectrum] = []
        frequencies = np.fft.rfftfreq(t, d=bin_seconds)
        for column in values.T:
            mean = float(column.mean())
            spectrum = np.fft.rfft(column - mean)
            magnitude = np.abs(spectrum)
            magnitude[0] = 0.0
            top = np.argsort(magnitude)[::-1][: self._k]
            amplitudes = 2.0 * np.abs(spectrum[top]) / t
            phases = np.angle(spectrum[top])
            reconstruction = mean + sum(
                amplitudes[k] * np.cos(2 * np.pi * frequencies[top[k]] * np.arange(t) * bin_seconds + phases[k])
                for k in range(len(top))
            )
            residual = column - reconstruction
            with np.errstate(divide="ignore", invalid="ignore"):
                relative = residual / np.maximum(np.abs(reconstruction), 1e-9)
            spectra.append(
                _NodeSpectrum(
                    mean=mean,
                    frequencies=frequencies[top],
                    amplitudes=amplitudes,
                    phases=phases,
                    residual_sigma=float(np.clip(np.std(relative), 0.0, 1.0)),
                )
            )
        self._spectra = spectra
        self._bin_seconds = float(bin_seconds)
        return self

    def reconstruct(self, n_bins: int | None = None) -> np.ndarray:
        """The deterministic (noise-free) reconstruction, ``(n_bins, n)``."""
        return self.generate(n_bins=n_bins, noise=False)

    def generate(
        self,
        n_bins: int | None = None,
        *,
        noise: bool = True,
        seed: int = 0,
        start_seconds: float = 0.0,
    ) -> np.ndarray:
        """Generate a new activity ensemble from the fitted waveforms.

        Parameters
        ----------
        n_bins:
            Length of the generated series; defaults to the fitted length.
        noise:
            Whether to apply per-bin multiplicative lognormal innovation noise
            whose magnitude matches the fit residuals.
        seed:
            Seed for the innovation noise.
        start_seconds:
            Time offset of the first generated bin (lets generated weeks
            continue the phase of the fitted one).
        """
        self._require_fitted()
        if n_bins is None:
            n_bins = self._fitted_length()
        if n_bins < 1:
            raise ValidationError("n_bins must be >= 1")
        times = start_seconds + np.arange(n_bins) * self._bin_seconds
        rng = np.random.default_rng(seed)
        columns = []
        for spectrum in self._spectra:
            waveform = spectrum.mean + sum(
                spectrum.amplitudes[k]
                * np.cos(2 * np.pi * spectrum.frequencies[k] * times + spectrum.phases[k])
                for k in range(spectrum.amplitudes.shape[0])
            )
            waveform = np.clip(waveform, 0.0, None)
            if noise and spectrum.residual_sigma > 0:
                waveform = waveform * rng.lognormal(0.0, spectrum.residual_sigma, n_bins)
            columns.append(waveform)
        return np.stack(columns, axis=1)

    def _fitted_length(self) -> int:
        # The fitted length is implied by the lowest retained frequency; for
        # generation we simply default to one week of bins at the fitted rate.
        return int(round(7 * 24 * 3600.0 / self._bin_seconds))

    def _require_fitted(self) -> None:
        if self._spectra is None:
            raise ValidationError("CyclostationaryModel must be fitted before use")

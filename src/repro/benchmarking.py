"""Benchmark harness and the ``BENCH_<rev>.json`` trajectory format.

Performance work needs a baseline: this module defines one shared on-disk
format for benchmark results, so that

* ``repro bench`` (the CLI harness) writes a ``BENCH_<rev>.json`` snapshot
  of the built-in micro-benchmarks (and, in full mode, the pytest-benchmark
  suite under ``benchmarks/``), and
* ad-hoc ``pytest benchmarks/`` runs can append to the very same format via
  :mod:`benchmarks._bench_utils` (set ``REPRO_BENCH_JSON``),

which gives successive revisions a comparable perf trajectory: collect the
``BENCH_*.json`` files and diff ``wall_seconds`` per benchmark name.

The built-in micro-benchmarks time the batched kernels introduced by the
batched execution engine against their per-bin per-entry reference loops and
record the speedups in ``extra_info`` (including the headline ``(n=50,
T=288)`` IC-series kernel).
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro._tables import format_rows
from repro.core.ic_model import simplified_ic_matrix, simplified_ic_series
from repro.estimation.ipf import (
    iterative_proportional_fitting,
    iterative_proportional_fitting_series,
)
from repro.estimation.linear_system import simulate_link_loads
from repro.estimation.tomogravity import tomogravity_estimate
from repro.synthesis.datasets import load_dataset
from repro.topology.library import geant_topology
from repro.topology.routing import build_routing_matrix

__all__ = [
    "BenchmarkRecord",
    "BenchComparison",
    "bench_ic_series_kernel",
    "bench_ic_series_backend",
    "bench_routing_matrix",
    "bench_ipf_series",
    "bench_tomogravity_batch",
    "bench_streaming_synthesis",
    "bench_ingest_throughput",
    "bench_sweep_grid",
    "bench_sweep_executor",
    "bench_report_marts",
    "bench_obs_overhead",
    "bench_serve_steady_state",
    "run_benchmarks",
    "run_pytest_benchmarks",
    "current_revision",
    "environment_info",
    "write_bench_json",
    "load_bench_json",
    "compare_bench_files",
    "format_records",
]


@dataclass
class BenchmarkRecord:
    """One benchmark measurement: a name, a wall time and headline numbers."""

    name: str
    wall_seconds: float
    extra_info: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "wall_seconds": self.wall_seconds,
            "extra_info": dict(self.extra_info),
        }


def current_revision() -> str:
    """Short git revision of the working tree, or ``"local"`` without git."""
    try:
        output = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
        return output or "local"
    except (OSError, subprocess.SubprocessError):
        return "local"


def environment_info() -> dict:
    """The environment fingerprint embedded in every BENCH file.

    Includes the available compute backends and their devices, so
    ``BENCH_*.json`` trajectories remain comparable across machines: a
    snapshot taken with a GPU backend present is distinguishable from a
    host-only one.
    """
    from repro.backend import available_backends, get_backend

    backends = {}
    for name in available_backends():
        try:
            backends[name] = get_backend(name).describe()
        except Exception:  # noqa: BLE001 - a broken backend must not sink the bench
            continue
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "backends": backends,
    }


def write_bench_json(
    records,
    *,
    directory: str | Path = ".",
    revision: str | None = None,
    path: str | Path | None = None,
) -> Path:
    """Write ``records`` as a ``BENCH_<revision>.json`` trajectory file.

    ``path`` overrides the default ``<directory>/BENCH_<revision>.json``
    location.  Returns the path written.
    """
    revision = revision or current_revision()
    if path is None:
        path = Path(directory) / f"BENCH_{revision}.json"
    path = Path(path)
    if path.parent and not path.parent.exists():
        path.parent.mkdir(parents=True, exist_ok=True)
    obs_record = next((r for r in records if r.name == "obs_overhead"), None)
    payload = {
        "format": "repro-bench-v1",
        "revision": revision,
        "created_unix": time.time(),
        "environment": environment_info(),
        # The telemetry plane's standing cost: disabled-instrumentation
        # overhead of the traced streaming pipeline (None when the obs
        # benchmark was not part of this run).
        "obs": {
            "overhead_pct": (
                obs_record.extra_info.get("overhead_pct") if obs_record else None
            ),
            "budget_pct": (
                obs_record.extra_info.get("budget_pct") if obs_record else None
            ),
            "within_budget": (
                obs_record.extra_info.get("within_budget") if obs_record else None
            ),
        },
        "benchmarks": [record.to_dict() for record in records],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_bench_json(path: str | Path) -> dict:
    """Read a ``BENCH_<rev>.json`` trajectory file, validating its format."""
    path = Path(path)
    payload = json.loads(path.read_text())
    if payload.get("format") != "repro-bench-v1":
        raise ValueError(
            f"{path} is not a repro-bench-v1 file (format={payload.get('format')!r})"
        )
    return payload


@dataclass
class BenchComparison:
    """Per-benchmark wall-time diff between two BENCH trajectory snapshots.

    ``rows`` holds ``(name, old_seconds, new_seconds, ratio)`` for every
    benchmark present in both files (``ratio = new / old``; NaN when the old
    time is zero), plus the names only one side has.  A benchmark regresses
    when its ratio exceeds ``1 + threshold`` — the threshold absorbs the
    run-to-run noise wall-clock micro-benchmarks inevitably carry.
    """

    old_revision: str
    new_revision: str
    threshold: float
    rows: list[tuple[str, float, float, float]]
    only_old: list[str]
    only_new: list[str]

    @property
    def regressions(self) -> list[tuple[str, float, float, float]]:
        """The rows whose slowdown exceeds the noise threshold."""
        return [row for row in self.rows if row[3] > 1.0 + self.threshold]

    @property
    def has_regressions(self) -> bool:
        return bool(self.regressions)

    def format_table(self) -> str:
        """ASCII report: per-benchmark times, ratios and regression flags."""
        header = (
            f"bench compare: {self.old_revision} -> {self.new_revision} "
            f"(regression threshold +{self.threshold * 100:.0f}%)"
        )
        rows = []
        for name, old_seconds, new_seconds, ratio in self.rows:
            flag = "REGRESSED" if ratio > 1.0 + self.threshold else (
                "improved" if ratio < 1.0 - self.threshold else "ok"
            )
            rows.append([name, f"{old_seconds:.6f}", f"{new_seconds:.6f}", f"{ratio:.3f}", flag])
        table = format_rows(["benchmark", "old s", "new s", "ratio", "status"], rows)
        lines = [header, table]
        if self.only_old:
            lines.append("only in old snapshot: " + ", ".join(sorted(self.only_old)))
        if self.only_new:
            lines.append("only in new snapshot: " + ", ".join(sorted(self.only_new)))
        if self.has_regressions:
            worst = max(self.regressions, key=lambda row: row[3])
            lines.append(
                f"{len(self.regressions)} regression(s); worst: {worst[0]} at {worst[3]:.2f}x"
            )
        else:
            lines.append("no regressions beyond the noise threshold")
        return "\n".join(lines)


def compare_bench_files(
    old_path: str | Path, new_path: str | Path, *, threshold: float = 0.25
) -> BenchComparison:
    """Diff two ``BENCH_<rev>.json`` snapshots benchmark by benchmark.

    Parameters
    ----------
    old_path, new_path:
        The baseline and candidate trajectory files (any two revisions'
        ``repro bench`` outputs).
    threshold:
        Relative slowdown treated as noise; a benchmark only counts as a
        regression when ``new > old * (1 + threshold)``.
    """
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    old_payload = load_bench_json(old_path)
    new_payload = load_bench_json(new_path)
    old_times = {
        bench["name"]: float(bench["wall_seconds"]) for bench in old_payload["benchmarks"]
    }
    new_times = {
        bench["name"]: float(bench["wall_seconds"]) for bench in new_payload["benchmarks"]
    }
    old_backends = _backend_times(old_payload)
    new_backends = _backend_times(new_payload)
    rows = []
    for name in sorted(set(old_times) & set(new_times)):
        old_seconds, new_seconds = old_times[name], new_times[name]
        ratio = new_seconds / old_seconds if old_seconds > 0 else float("nan")
        rows.append((name, old_seconds, new_seconds, ratio))
        # Per-backend sub-entries diff only the backends both snapshots ran:
        # a backend present on one machine and not the other (GPU vs host-only
        # CI) is reported as one-sided, never as a regression.
        old_sub = old_backends.get(name, {})
        new_sub = new_backends.get(name, {})
        for backend_name in sorted(set(old_sub) & set(new_sub)):
            old_b, new_b = old_sub[backend_name], new_sub[backend_name]
            ratio_b = new_b / old_b if old_b > 0 else float("nan")
            rows.append((f"{name}[{backend_name}]", old_b, new_b, ratio_b))
    only_old = sorted(set(old_times) - set(new_times))
    only_new = sorted(set(new_times) - set(old_times))
    for name in set(old_backends) & set(new_backends):
        only_old += [
            f"{name}[{backend}]" for backend in sorted(set(old_backends[name]) - set(new_backends[name]))
        ]
        only_new += [
            f"{name}[{backend}]" for backend in sorted(set(new_backends[name]) - set(old_backends[name]))
        ]
    return BenchComparison(
        old_revision=str(old_payload.get("revision", "?")),
        new_revision=str(new_payload.get("revision", "?")),
        threshold=float(threshold),
        rows=rows,
        only_old=only_old,
        only_new=only_new,
    )


def _backend_times(payload: dict) -> dict[str, dict[str, float]]:
    """Per-benchmark ``backends`` timing maps from a BENCH payload."""
    result: dict[str, dict[str, float]] = {}
    for bench in payload.get("benchmarks", []):
        backends = bench.get("extra_info", {}).get("backends")
        if isinstance(backends, dict) and backends:
            result[bench["name"]] = {
                str(name): float(seconds) for name, seconds in backends.items()
            }
    return result


def format_records(records) -> str:
    """ASCII table of benchmark names, wall times and headline extras."""
    rows = []
    for record in records:
        extras = ", ".join(
            f"{key}={value:.3g}" if isinstance(value, float) else f"{key}={value}"
            for key, value in sorted(record.extra_info.items())
        )
        rows.append([record.name, f"{record.wall_seconds:.6f}", extras])
    return format_rows(["benchmark", "wall s", "extra info"], rows)


# ---------------------------------------------------------------------------
# built-in micro-benchmarks (batched kernels vs their reference loops)
# ---------------------------------------------------------------------------

def _best_of(func, *, repeat: int) -> float:
    """Best-of-``repeat`` wall time of ``func()`` in seconds."""
    best = float("inf")
    for _ in range(max(1, repeat)):
        started = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - started)
    return best


def bench_ic_series_kernel(*, n: int = 50, timesteps: int = 288, repeat: int = 3) -> BenchmarkRecord:
    """Headline kernel benchmark: batched IC ``series()`` vs the per-bin loop.

    Times :func:`repro.core.ic_model.simplified_ic_series` on ``(T, n)``
    activity against the seed-era ``np.stack`` of per-bin
    :func:`simplified_ic_matrix` calls, verifies the outputs are bit-equal,
    and records the speedup.
    """
    rng = np.random.default_rng(0)
    activity = rng.random((timesteps, n)) * 1e6
    preference = rng.random(n) + 1e-3
    forward = 0.25

    def per_bin_loop():
        return np.stack(
            [simplified_ic_matrix(forward, activity[t], preference) for t in range(timesteps)]
        )

    def batched():
        return simplified_ic_series(forward, activity, preference)

    matches = bool(np.array_equal(per_bin_loop(), batched()))
    loop_seconds = _best_of(per_bin_loop, repeat=repeat)
    batch_seconds = _best_of(batched, repeat=repeat)
    return BenchmarkRecord(
        name="ic_series_kernel",
        wall_seconds=batch_seconds,
        extra_info={
            "n": n,
            "timesteps": timesteps,
            "loop_seconds": loop_seconds,
            "speedup_vs_loop": loop_seconds / max(batch_seconds, 1e-12),
            "matches_loop_bitwise": matches,
        },
    )


def bench_ic_series_backend(*, n: int = 50, timesteps: int = 288, repeat: int = 3) -> BenchmarkRecord:
    """Time the IC series kernel once per registered-and-available backend.

    Each backend gets the same ``(T, n)`` problem; inputs are shipped to the
    device **before** timing (the kernel cost is what the trajectory tracks,
    transfers are reported by ``repro bench`` elsewhere), and
    ``Backend.synchronize`` is called inside the timed region so asynchronous
    devices are measured honestly.  Results land under the ``backends`` key
    of ``extra_info`` — ``repro bench --compare`` diffs the backends both
    snapshots have and treats the rest as non-regressions, so a snapshot
    taken on a GPU machine still compares cleanly against a host-only one.
    """
    from repro.backend import available_backends, get_backend
    from repro.core.ic_model import simplified_ic_series as ic_series

    rng = np.random.default_rng(0)
    activity = rng.random((timesteps, n)) * 1e6
    preference = rng.random(n) + 1e-3
    forward = 0.25

    seconds_by_backend: dict[str, float] = {}
    devices: dict[str, str] = {}
    for name in available_backends():
        backend = get_backend(name)
        device_activity = backend.asarray(activity)
        device_preference = backend.asarray(preference)

        def timed(backend=backend, a=device_activity, p=device_preference):
            result = ic_series(forward, a, p, backend=backend)
            backend.synchronize()
            return result

        seconds_by_backend[name] = _best_of(timed, repeat=repeat)
        devices[name] = backend.describe()["device"]

    wall = seconds_by_backend.get("numpy", min(seconds_by_backend.values(), default=0.0))
    return BenchmarkRecord(
        name="ic_series_backend",
        wall_seconds=wall,
        extra_info={
            "n": n,
            "timesteps": timesteps,
            "backends": seconds_by_backend,
            "devices": devices,
        },
    )


def bench_routing_matrix(*, repeat: int = 3) -> BenchmarkRecord:
    """Sparse routing build plus sparse-vs-dense ``link_loads`` timings."""
    topology = geant_topology()
    build_seconds = _best_of(lambda: build_routing_matrix(topology), repeat=repeat)
    routing = build_routing_matrix(topology)
    rng = np.random.default_rng(1)
    traffic = rng.random((288, topology.n_nodes**2)) * 1e6
    dense_seconds = _best_of(lambda: routing.link_loads(traffic), repeat=repeat)
    sparse_seconds = _best_of(
        lambda: routing.link_loads(traffic, use_sparse=True), repeat=repeat
    )
    density = routing.sparse.nnz / float(routing.n_links * topology.n_nodes**2)
    return BenchmarkRecord(
        name="routing_matrix",
        wall_seconds=build_seconds,
        extra_info={
            "n_nodes": topology.n_nodes,
            "n_links": routing.n_links,
            "nnz_density": density,
            "link_loads_dense_seconds": dense_seconds,
            "link_loads_sparse_seconds": sparse_seconds,
            "sparse_speedup": dense_seconds / max(sparse_seconds, 1e-12),
        },
    )


def _small_system(bins: int):
    data = load_dataset("geant", n_weeks=1, bins_per_week=max(bins, 2))
    week = data.week(0)[:bins]
    return week, simulate_link_loads(data.topology, week, noise_std=0.0)


def bench_ipf_series(*, bins: int = 48, repeat: int = 3) -> BenchmarkRecord:
    """Batched IPF over a series vs the per-bin loop."""
    week, system = _small_system(bins)
    seeds = np.asarray(week.values, dtype=float)
    ingress, egress = system.ingress, system.egress

    def per_bin_loop():
        return np.stack(
            [
                iterative_proportional_fitting(seeds[t], ingress[t], egress[t])
                for t in range(seeds.shape[0])
            ]
        )

    def batched():
        return iterative_proportional_fitting_series(seeds, ingress, egress)

    matches = bool(np.array_equal(per_bin_loop(), batched()))
    loop_seconds = _best_of(per_bin_loop, repeat=repeat)
    batch_seconds = _best_of(batched, repeat=repeat)
    return BenchmarkRecord(
        name="ipf_series",
        wall_seconds=batch_seconds,
        extra_info={
            "bins": bins,
            "loop_seconds": loop_seconds,
            "speedup_vs_loop": loop_seconds / max(batch_seconds, 1e-12),
            "matches_loop_bitwise": matches,
        },
    )


def bench_tomogravity_batch(*, bins: int = 16, repeat: int = 3) -> BenchmarkRecord:
    """Batched tomogravity refinement vs calling it one bin at a time."""
    week, system = _small_system(bins)
    matrix, observations = system.augmented_system()
    priors = week.to_vectors()

    def per_bin_loop():
        return np.stack(
            [
                tomogravity_estimate(priors[t], matrix, observations[t])
                for t in range(priors.shape[0])
            ]
        )

    def batched():
        return tomogravity_estimate(priors, matrix, observations)

    matches = bool(np.array_equal(per_bin_loop(), batched()))
    loop_seconds = _best_of(per_bin_loop, repeat=repeat)
    batch_seconds = _best_of(batched, repeat=repeat)
    return BenchmarkRecord(
        name="tomogravity_batch",
        wall_seconds=batch_seconds,
        extra_info={
            "bins": bins,
            "loop_seconds": loop_seconds,
            "speedup_vs_loop": loop_seconds / max(batch_seconds, 1e-12),
            "matches_loop_bitwise": matches,
        },
    )


def bench_streaming_synthesis(*, bins: int = 288, repeat: int = 3) -> BenchmarkRecord:
    """Chunked synthesis vs the materialised cube: wall time and peak memory.

    Streams one geant-like week chunk by chunk (accumulating the marginals,
    the streaming pipeline's typical first pass) and compares against
    materialising the same week, recording both wall times and the
    ``tracemalloc`` peak of each path — the number the streaming data plane
    exists to bound.
    """
    import tracemalloc

    from repro.synthesis.datasets import open_dataset_stream

    stream_data = open_dataset_stream(
        "geant", n_weeks=1, bins_per_week=max(bins, 2), chunk_bins=32
    )

    def streamed():
        week_stream = stream_data.week_stream(0)
        return week_stream.marginals()

    def materialised():
        return stream_data.week(0)

    def peak_of(func) -> int:
        tracemalloc.start()
        func()
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return peak

    stream_peak = peak_of(streamed)
    cube_peak = peak_of(materialised)
    stream_seconds = _best_of(streamed, repeat=repeat)
    cube_seconds = _best_of(materialised, repeat=repeat)
    return BenchmarkRecord(
        name="streaming_synthesis",
        wall_seconds=stream_seconds,
        extra_info={
            "bins": bins,
            "chunk_bins": 32,
            "cube_seconds": cube_seconds,
            "stream_peak_bytes": stream_peak,
            "cube_peak_bytes": cube_peak,
            "peak_memory_ratio": cube_peak / max(stream_peak, 1),
        },
    )


def bench_ingest_throughput(
    *, bins: int = 64, records_per_pair: int = 4, repeat: int = 3
) -> BenchmarkRecord:
    """Records/sec and bins/sec through the live-ingestion binner.

    Pre-materialises the record batches of a geant-scale synthetic feed
    (so parsing/synthesis cost is excluded), then times
    :class:`repro.ingest.FlowBinner` aggregating them — the vectorised
    ``bincount`` scatter path ``repro serve`` runs on.  The service's
    ingestion SLO (>=100k records/sec on the CI container) is asserted
    against this record's ``records_per_sec``.
    """
    from repro.ingest import FlowBinner, SyntheticFlowSource
    from repro.synthesis.datasets import open_dataset_stream

    data = open_dataset_stream("geant", n_weeks=1, bins_per_week=max(bins, 2), chunk_bins=16)
    stream = data.week_stream(0)
    source = SyntheticFlowSource(stream, records_per_pair=records_per_pair)
    batches = list(source.batches())
    n_records = sum(len(batch) for batch in batches)

    def ingest():
        binner = FlowBinner(stream.nodes, bin_seconds=stream.bin_seconds, watermark_bins=1)
        for batch in batches:
            binner.push(batch)
        binner.flush()
        return binner

    seconds = _best_of(ingest, repeat=repeat)
    return BenchmarkRecord(
        name="ingest_throughput",
        wall_seconds=seconds,
        extra_info={
            "records": n_records,
            "bins": int(stream.n_bins),
            "records_per_pair": records_per_pair,
            "records_per_sec": n_records / max(seconds, 1e-12),
            "bins_per_sec": int(stream.n_bins) / max(seconds, 1e-12),
        },
    )


def bench_sweep_grid(
    *,
    priors: tuple = ("gravity", "measured", "stable_f", "stable_fp"),
    datasets: tuple = ("geant", "totem"),
    bins_per_week: int = 2016,
    max_bins: int = 8,
    jobs: int = 4,
    repeat: int = 2,
) -> BenchmarkRecord:
    """Shared-plan streamed grid sweep vs the pre-PR per-cell execution.

    The workload mirrors the paper's Sections 5.5-5.6 evaluation: a priors ×
    datasets grid over paper-length weeks, streamed in bounded memory, with
    a small estimated window per cell (the calibration fits dominate, as
    they do at month scale).  Three executions of the *same* grid cells are
    timed:

    * ``serial_stream_seconds`` — the pre-PR serial-stream sweep: every cell
      run independently with no fit replay-cache, no measurement/baseline
      reuse and a cold routing build per cell (exactly what
      ``sweep --stream`` did before the shared-plan scheduler);
    * ``shared_serial_seconds`` — the scheduler's serial path (shared plans,
      systems, baselines, cached fits and routing);
    * ``wall_seconds`` — the scheduler at ``jobs`` worker processes.

    Per-cell errors of all three runs are verified bit-identical before any
    timing is reported, and ``extra_info`` records cells/sec, the speedups,
    the max worker peak RSS and the CPU count (the ``jobs`` speedup is
    parallelism × sharing on a multi-core host, sharing alone on one CPU).
    """
    import os

    from repro.scenarios import Scenario, ScenarioRunner
    from repro.synthesis import datasets as datasets_module
    from repro.topology.routing import clear_routing_cache

    base = Scenario(
        dataset=datasets[0],
        prior=priors[0],
        bins_per_week=bins_per_week,
        max_bins=max_bins,
        calibration_week=0,
        target_week=1,
        stream=True,
    )
    kwargs = dict(priors=priors, datasets=datasets, base=base)

    def cold_start() -> None:
        datasets_module.load_dataset.cache_clear()
        datasets_module._open_stream_core.cache_clear()  # noqa: SLF001 - bench isolation
        clear_routing_cache()

    # Pre-PR emulation: independent per-cell runs, strictly chunk-bounded
    # fits, no cross-cell reuse, routing rebuilt per cell.
    cells = [
        base.replace(dataset=dataset, prior=prior)
        for dataset in datasets
        for prior in priors
    ]
    legacy_runner = ScenarioRunner(fit_cache_bytes=None)

    def run_legacy():
        # Pre-PR plans anchored the noise-RNG state only at coarse stride
        # multiples, so *every* pass over a mid-plan week replayed the
        # skipped draws from the nearest stride; suppress the exact-start
        # state cache for the duration of the legacy runs so the emulation
        # replays exactly what the seed code replayed.  Values are
        # unaffected — only the redundant draws return.
        from repro.synthesis import generator as generator_module

        stride = generator_module._STATE_CACHE_STRIDE  # noqa: SLF001
        plan_cls = generator_module.GenerationPlan
        original = plan_cls._noise_rng_at  # noqa: SLF001

        def stride_anchored(self, start_bin):
            rng = original(self, start_bin)
            if start_bin % stride:
                self.noise_states.pop(start_bin, None)
            return rng

        plan_cls._noise_rng_at = stride_anchored  # noqa: SLF001
        try:
            results = []
            for cell in cells:
                clear_routing_cache()
                results.append(legacy_runner.run(cell))
            return results
        finally:
            plan_cls._noise_rng_at = original  # noqa: SLF001

    def timed(run) -> tuple[float, object]:
        cold_start()
        started = time.perf_counter()
        outcome = run()
        return time.perf_counter() - started, outcome

    # The three modes are deterministic, so wall-clock noise is the only
    # variance; interleave them and keep the best of ``repeat`` rounds.
    serial_stream_seconds = shared_serial_seconds = wall_seconds = float("inf")
    legacy_results = shared_serial = swept = None
    for _ in range(max(1, repeat)):
        seconds, outcome = timed(run_legacy)
        if seconds < serial_stream_seconds:
            serial_stream_seconds, legacy_results = seconds, outcome
        seconds, outcome = timed(lambda: ScenarioRunner().sweep(jobs=1, **kwargs))
        if seconds < shared_serial_seconds:
            shared_serial_seconds, shared_serial = seconds, outcome
        seconds, outcome = timed(lambda: ScenarioRunner().sweep(jobs=jobs, **kwargs))
        if seconds < wall_seconds:
            wall_seconds, swept = seconds, outcome

    if swept.failures or shared_serial.failures:  # pragma: no cover - defensive
        raise RuntimeError(f"sweep grid cells failed: {swept.failures or shared_serial.failures}")
    matches = all(
        np.array_equal(np.asarray(legacy.errors), np.asarray(cell.errors))
        and np.array_equal(np.asarray(legacy.errors), np.asarray(serial_cell.errors))
        for legacy, cell, serial_cell in zip(
            legacy_results, swept.results, shared_serial.results
        )
    )
    if not matches:
        raise RuntimeError(
            "sweep_grid executions diverged: the shared-plan scheduler must be "
            "bit-identical to the per-cell serial run"
        )
    return BenchmarkRecord(
        name="sweep_grid",
        wall_seconds=wall_seconds,
        extra_info={
            "grid": f"{len(priors)}x{len(datasets)}",
            "bins_per_week": bins_per_week,
            "max_bins": max_bins,
            "jobs": jobs,
            "effective_workers": max(1, min(jobs, os.cpu_count() or jobs)),
            "cpu_count": os.cpu_count(),
            "cells": len(cells),
            "cells_per_second": swept.timing.get("cells_per_second"),
            "serial_stream_seconds": serial_stream_seconds,
            "shared_serial_seconds": shared_serial_seconds,
            "speedup_vs_serial_stream": serial_stream_seconds / max(wall_seconds, 1e-12),
            "serial_sharing_speedup": serial_stream_seconds / max(shared_serial_seconds, 1e-12),
            "worker_peak_rss_mb": swept.timing.get("worker_peak_rss_mb"),
            "matches_serial_bitwise": matches,
        },
    )


def bench_sweep_executor(
    *,
    n_targets: int = 6,
    bins_per_week: int = 2016,
    max_bins: int = 8,
    pool_jobs: int = 2,
    repeat: int = 2,
) -> BenchmarkRecord:
    """Overlapping-window sweep: executors and streamed-fit memoisation.

    The workload is the paper's rolling evaluation shape — ``n_targets``
    ``stable_fp`` cells over one streamed dataset column, every cell
    calibrating on week 0 and targeting a different later week, so all the
    cells of a worker share one calibration fit.  Three executions of the
    same cells are timed through :meth:`ScenarioRunner.run_cells`:

    * ``serial_seconds`` — :class:`InProcessExecutor`, memoisation off: the
      pre-PR behaviour, one streamed ALS fit per cell;
    * ``pool_unmemoised_seconds`` — :class:`LocalPoolExecutor` at
      ``pool_jobs``, memoisation off (parallelism without fit reuse);
    * ``wall_seconds`` — the same pool with memoisation on: each worker
      fits the shared (plan, window) once and replays it for the rest of
      its batch.

    All three runs are verified bit-identical before any timing is
    reported; ``memoisation_speedup`` (unmemoised pool / memoised pool,
    same executor both sides) isolates the fit-memo win from scheduling.
    """
    import os

    from repro.scenarios import InProcessExecutor, LocalPoolExecutor, Scenario, ScenarioRunner
    from repro.synthesis import datasets as datasets_module
    from repro.topology.routing import clear_routing_cache

    cells = [
        Scenario(
            dataset="geant",
            prior="stable_fp",
            bins_per_week=bins_per_week,
            max_bins=max_bins,
            calibration_week=0,
            target_week=week,
            n_weeks=n_targets + 1,
            stream=True,
        )
        for week in range(1, n_targets + 1)
    ]

    def cold_start() -> None:
        datasets_module.load_dataset.cache_clear()
        datasets_module._open_stream_core.cache_clear()  # noqa: SLF001 - bench isolation
        clear_routing_cache()

    def timed(run) -> tuple[float, object]:
        cold_start()
        started = time.perf_counter()
        outcome = run()
        return time.perf_counter() - started, outcome

    arms = {
        "serial": lambda: ScenarioRunner(fit_memo=False).run_cells(
            cells, executor=InProcessExecutor()
        ),
        "pool_unmemoised": lambda: ScenarioRunner(fit_memo=False).run_cells(
            cells, jobs=pool_jobs, executor=LocalPoolExecutor(pool_jobs)
        ),
        "pool_memoised": lambda: ScenarioRunner(fit_memo=True).run_cells(
            cells, jobs=pool_jobs, executor=LocalPoolExecutor(pool_jobs)
        ),
    }
    best = {name: (float("inf"), None) for name in arms}
    # Deterministic workloads: interleave the arms and keep the best round.
    for _ in range(max(1, repeat)):
        for name, run in arms.items():
            seconds, outcome = timed(run)
            if seconds < best[name][0]:
                best[name] = (seconds, outcome)
    serial_seconds, serial = best["serial"]
    pool_unmemoised_seconds, unmemoised = best["pool_unmemoised"]
    wall_seconds, memoised = best["pool_memoised"]

    failed = serial.failures or unmemoised.failures or memoised.failures
    if failed:  # pragma: no cover - defensive
        raise RuntimeError(f"sweep_executor cells failed: {failed}")
    matches = all(
        np.array_equal(np.asarray(a.errors), np.asarray(b.errors))
        and np.array_equal(np.asarray(a.errors), np.asarray(c.errors))
        for a, b, c in zip(serial.results, unmemoised.results, memoised.results)
    )
    if not matches:
        raise RuntimeError(
            "sweep_executor executions diverged: memoised and pooled runs must "
            "be bit-identical to the serial in-process run"
        )
    return BenchmarkRecord(
        name="sweep_executor",
        wall_seconds=wall_seconds,
        extra_info={
            "cells": len(cells),
            "bins_per_week": bins_per_week,
            "max_bins": max_bins,
            "pool_jobs": pool_jobs,
            "cpu_count": os.cpu_count(),
            "serial_seconds": serial_seconds,
            "pool_unmemoised_seconds": pool_unmemoised_seconds,
            "memoisation_speedup": pool_unmemoised_seconds / max(wall_seconds, 1e-12),
            "speedup_vs_serial": serial_seconds / max(wall_seconds, 1e-12),
            "matches_serial_bitwise": matches,
        },
    )


def bench_report_marts(
    *,
    bins: int = 2048,
    nodes: int = 22,
    shard_bins: int = 128,
    repeat: int = 3,
) -> BenchmarkRecord:
    """Streaming marts over a shard archive vs materialise-then-reduce.

    Builds a spilled archive (a gamma-traffic estimate cube plus a per-bin
    error series, sharded at ``shard_bins``) and answers the ``repro
    report`` catalogue two ways over fresh lazy handles each round:

    * ``wall_seconds`` — the streaming marts (:mod:`repro.marts`): one
      decompressed shard in memory at a time, exact rollups via
      per-bin sequential folds, sketched quantiles/CCDF;
    * ``materialised_seconds`` — the pre-PR baseline: ``.load()`` the
      series into memory, then numpy reductions answering the same
      questions (``cube.sum(axis=0)``, top-K by argsort, hour-of-day
      ``np.add.at`` rollup, ``np.quantile`` over the errors and the
      positive cube values).

    The exact marts are verified bit-identical to the materialised numpy
    oracle before any number is reported, and ``tracemalloc`` peaks of
    both arms are recorded — the ``peak_memory_ratio`` is the headline:
    report memory stays one shard + sketch state, never the series.
    """
    import tempfile
    import tracemalloc

    from repro.marts import (
        ErrorQuantilesMart,
        OdCcdfMart,
        OverviewMart,
        TopTalkersMart,
        TrafficByHourMart,
    )
    from repro.scenarios.spill import SpillStore, discover_spilled_series

    quantiles = (0.5, 0.9, 0.95, 0.99)
    rng = np.random.default_rng(7)

    with tempfile.TemporaryDirectory(prefix="repro-bench-marts-") as tmp:
        store = SpillStore(tmp, shard_bins=shard_bins)
        writer = store.writer("estimate")
        for start in range(0, bins, shard_bins):
            t_chunk = min(shard_bins, bins - start)
            writer(start, rng.gamma(2.0, 50_000.0, size=(t_chunk, nodes, nodes)))
        writer.finish()
        store.add_series("errors", rng.uniform(0.1, 0.6, size=bins))

        top_k = 10
        bins_per_hour = 12

        def streamed() -> dict:
            series = discover_spilled_series(tmp)
            marts = {
                "overview": OverviewMart(),
                "top_talkers": TopTalkersMart(k=top_k),
                "traffic_by_hour": TrafficByHourMart(bins_per_hour=bins_per_hour),
                "od_ccdf": OdCcdfMart(),
            }
            for t0, block in series["estimate"].iter_blocks():
                for mart in marts.values():
                    mart.update(t0, block)
            errors = ErrorQuantilesMart().consume(series["errors"].iter_blocks())
            return {name: mart.result() for name, mart in marts.items()} | {
                "error_quantiles": errors.result()
            }

        def materialised() -> dict:
            series = discover_spilled_series(tmp)
            cube = series["estimate"].load()
            errors = series["errors"].load()
            od_sum = cube.sum(axis=0)
            bin_totals = cube.sum(axis=(1, 2))
            order = np.argsort(od_sum, axis=None)[::-1][:top_k]
            hours = (np.arange(bins) // bins_per_hour) % 24
            hour_sums = np.zeros(24)
            np.add.at(hour_sums, hours, bin_totals)
            positives = cube[cube > 0]
            return {
                "od_sum": od_sum,
                "total": float(od_sum.sum()),
                "max_bin_total": float(bin_totals.max()),
                "min_bin_total": float(bin_totals.min()),
                "ingress": od_sum.sum(axis=1),
                "egress": od_sum.sum(axis=0),
                "top": [(int(i), float(od_sum.flat[i])) for i in order],
                "hour_sums": hour_sums,
                "value_quantiles": np.quantile(positives, quantiles),
                "error_quantiles": np.quantile(errors, quantiles),
                "error_mean": float(errors.mean()),
                "error_min": float(errors.min()),
                "error_max": float(errors.max()),
            }

        streamed_report = streamed()
        oracle = materialised()
        top = streamed_report["top_talkers"]
        exact_match = (
            streamed_report["overview"]["total_traffic"] == oracle["total"]
            and streamed_report["overview"]["max_bin_total"] == oracle["max_bin_total"]
            and streamed_report["overview"]["min_bin_total"] == oracle["min_bin_total"]
            and np.array_equal(np.asarray(top["ingress_totals"]), oracle["ingress"])
            and np.array_equal(np.asarray(top["egress_totals"]), oracle["egress"])
            and [row["total"] for row in top["rows"]]
            == [value for _, value in oracle["top"]]
            and np.array_equal(
                np.asarray(
                    [row["total"] for row in streamed_report["traffic_by_hour"]["rows"]]
                ),
                oracle["hour_sums"][oracle["hour_sums"] != 0],
            )
            and streamed_report["error_quantiles"]["mean"]
            == float(np.asarray(oracle["error_mean"]))
            and streamed_report["error_quantiles"]["min"] == oracle["error_min"]
            and streamed_report["error_quantiles"]["max"] == oracle["error_max"]
        )
        if not exact_match:
            raise RuntimeError(
                "report_marts diverged: the exact streaming marts must match "
                "the materialised numpy reductions bit for bit"
            )

        def peak_of(func) -> int:
            tracemalloc.start()
            func()
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            return peak

        streamed_peak = peak_of(streamed)
        materialised_peak = peak_of(materialised)
        streamed_seconds = _best_of(streamed, repeat=repeat)
        materialised_seconds = _best_of(materialised, repeat=repeat)

    return BenchmarkRecord(
        name="report_marts",
        wall_seconds=streamed_seconds,
        extra_info={
            "bins": bins,
            "nodes": nodes,
            "shard_bins": shard_bins,
            "materialised_seconds": materialised_seconds,
            "speedup_vs_materialised": materialised_seconds
            / max(streamed_seconds, 1e-12),
            "streamed_peak_bytes": streamed_peak,
            "materialised_peak_bytes": materialised_peak,
            "peak_memory_ratio": materialised_peak / max(streamed_peak, 1),
            "exact_marts_match_oracle": exact_match,
        },
    )


def bench_obs_overhead(*, bins: int = 96, chunk_bins: int = 16, repeat: int = 3) -> BenchmarkRecord:
    """Disabled-instrumentation overhead of the traced streaming pipeline.

    The telemetry plane's hot-path contract is that the null tracer/registry
    make instrumentation ~free when observability is off.  This benchmark
    holds the contract to a number: it times ``TMEstimator.estimate_stream``
    (whose chunk loop enters an ``estimate_chunk`` span per chunk) under the
    ambient null twins against a seed-path replica of the same chunk loop —
    identical reshape → tomogravity → IPF arithmetic with no instrumentation
    calls at all — after verifying the two produce bit-identical estimates.

    ``overhead_pct`` is the headline; the budget is <2%.  Wall-clock noise
    on a busy CI container can exceed the budget, so a first miss triggers
    one re-measurement at doubled ``repeat`` and only a gross (>10%) miss
    raises — ``within_budget`` records the verdict either way.
    """
    from repro.backend import get_backend
    from repro.estimation.pipeline import TMEstimator
    from repro.estimation.tomogravity import tomogravity_estimate as refine
    from repro.streaming import ArrayChunkStream

    from repro.streaming import zip_chunks

    week, system = _small_system(bins)
    n = system.n_nodes
    t = system.n_timesteps
    prior_cube = np.asarray(week.values, dtype=float)
    estimator = TMEstimator()
    backend = get_backend("numpy")

    def instrumented():
        stream = ArrayChunkStream(
            prior_cube, week.nodes, bin_seconds=300.0, chunk_bins=chunk_bins
        )
        return estimator.estimate_stream(system, stream, collect_estimate=True)

    def seed_loop():
        # The pre-instrumentation chunk loop verbatim: same observation
        # system per call, same chunk stream, same reshape → tomogravity →
        # IPF arithmetic — minus every tracer/metrics call.
        matrix, observations = estimator._observation_system(  # noqa: SLF001
            system, backend
        )
        stream = ArrayChunkStream(
            prior_cube, week.nodes, bin_seconds=300.0, chunk_bins=chunk_bins
        )
        collected = np.empty((t, n, n))
        for t0, blocks in zip_chunks(stream):
            prior_block = blocks[0]
            stop = t0 + prior_block.shape[0]
            prior_vectors = prior_block.reshape(prior_block.shape[0], n * n)
            refined = refine(prior_vectors, matrix, observations[t0:stop])
            collected[t0:stop] = iterative_proportional_fitting_series(
                refined.reshape(-1, n, n),
                system.ingress[t0:stop],
                system.egress[t0:stop],
            )
        return collected

    matches = bool(np.array_equal(instrumented().estimate.values, seed_loop()))
    if not matches:
        raise RuntimeError(
            "obs_overhead replica diverged: the instrumented streaming pipeline "
            "must match the uninstrumented seed loop bit for bit"
        )

    budget_pct = 2.0

    def measure(rounds: int) -> tuple[float, float]:
        # Interleave the arms (both already warm from the equality check):
        # back-to-back blocks of the same deterministic workload pick up
        # drifting container load as a phantom overhead.
        seed_best = stream_best = float("inf")
        for _ in range(max(1, rounds)):
            started = time.perf_counter()
            seed_loop()
            seed_best = min(seed_best, time.perf_counter() - started)
            started = time.perf_counter()
            instrumented()
            stream_best = min(stream_best, time.perf_counter() - started)
        return seed_best, stream_best

    seed_seconds, stream_seconds = measure(repeat)
    overhead_pct = (stream_seconds - seed_seconds) / max(seed_seconds, 1e-12) * 100.0
    if overhead_pct > budget_pct:
        # One retry at doubled rounds before believing a busy-container blip.
        seed_seconds, stream_seconds = measure(max(2, repeat * 2))
        overhead_pct = (stream_seconds - seed_seconds) / max(seed_seconds, 1e-12) * 100.0
    if overhead_pct > 10.0:
        raise RuntimeError(
            f"disabled-instrumentation overhead is {overhead_pct:.1f}% "
            "(>10%): the null tracer/registry hot path has regressed"
        )
    return BenchmarkRecord(
        name="obs_overhead",
        wall_seconds=stream_seconds,
        extra_info={
            "bins": bins,
            "chunk_bins": chunk_bins,
            "seed_seconds": seed_seconds,
            "overhead_pct": overhead_pct,
            "budget_pct": budget_pct,
            "within_budget": bool(overhead_pct <= budget_pct),
            "matches_seed_bitwise": matches,
        },
    )


def bench_serve_steady_state(
    *, n_nodes: int = 32, bins: int = 64, chunk_bins: int = 16, repeat: int = 3
) -> BenchmarkRecord:
    """Steady-state serve throughput with the incremental fast path on vs off.

    Replays a committed synthetic scenario through two full
    :class:`~repro.ingest.IngestService` runs — an n>=30 ring-with-chords
    topology carrying a rank-1 rescaled traffic series ``X(t) = s(t) · X₀``
    (half the bins exactly steady, half following a diurnal-style sinusoid),
    the workload the gravity prior turns into the factorization cache's
    equal/scaled tiers.  The slow arm re-runs the per-bin gram/``pinv``
    oracle every bin; the fast arm reuses one cached correction operator and
    the IPF solve memo.

    Before timing, both sinks are parsed and compared: the fast path must
    match the oracle within 1e-10 relative (the cold first chunk is exact,
    hence bitwise), otherwise the benchmark raises.  Timed rounds reuse the
    fast estimator across runs so they measure the *steady state* — the
    cache-warm regime a long-running daemon lives in.  ``speedup_bins_per_sec``
    is the headline; the target is >=3x.
    """
    import tempfile

    from repro.estimation.pipeline import TMEstimator
    from repro.ingest import IngestService, SyntheticFlowSource
    from repro.streaming import ArrayChunkStream
    from repro.topology import Topology

    topology = Topology("bench-serve-ring", tuple(f"pop{i:02d}" for i in range(n_nodes)))
    for i in range(n_nodes):
        topology.add_bidirectional_link(f"pop{i:02d}", f"pop{(i + 1) % n_nodes:02d}")
        topology.add_bidirectional_link(
            f"pop{i:02d}", f"pop{(i + n_nodes // 4) % n_nodes:02d}"
        )

    rng = np.random.default_rng(1207)
    base = rng.gamma(2.0, 50.0, size=(n_nodes, n_nodes))
    np.fill_diagonal(base, 0.0)
    scales = np.ones(bins)
    # Second half: a diurnal-style rescaling of the same spatial shape — the
    # structure detector's scaled tier (the first half exercises the
    # bit-identical equal tier).
    ramp = np.arange(bins // 2, bins)
    scales[bins // 2 :] = 1.0 + 0.2 * np.sin(2.0 * np.pi * ramp / 24.0)
    cube = scales[:, np.newaxis, np.newaxis] * base

    def make_source():
        stream = ArrayChunkStream(
            cube, topology.nodes, bin_seconds=300.0, chunk_bins=chunk_bins
        )
        return SyntheticFlowSource(stream)

    def serve(estimator, sink_path) -> None:
        IngestService(
            make_source(),
            topology,
            estimator=estimator,
            bin_seconds=300.0,
            chunk_bins=chunk_bins,
            prior="gravity",
            sink=sink_path,
        ).run()

    def read_estimates(sink_path) -> np.ndarray:
        rows = []
        with open(sink_path, encoding="utf-8") as handle:
            for line in handle:
                rows.append(np.asarray(json.loads(line)["estimate"], dtype=float))
        return np.stack(rows)

    fast = TMEstimator(fast_path=True)
    slow = TMEstimator()
    with tempfile.TemporaryDirectory() as tmp:
        tmp_dir = Path(tmp)
        run_index = 0

        def run_arm(estimator) -> tuple[float, Path]:
            nonlocal run_index
            run_index += 1
            sink = tmp_dir / f"run-{run_index}.jsonl"
            started = time.perf_counter()
            serve(estimator, sink)
            return time.perf_counter() - started, sink

        # Verification pass (also the warm-up): the fast arm starts cold
        # here, so its first chunk runs the exact path and every later chunk
        # exercises the equal/scaled cache tiers against the slow oracle.
        _, fast_sink = run_arm(fast)
        _, slow_sink = run_arm(slow)
        fast_values = read_estimates(fast_sink)
        slow_values = read_estimates(slow_sink)
        scale = max(float(np.abs(slow_values).max()), 1e-12)
        max_rel_diff = float(np.abs(fast_values - slow_values).max()) / scale
        if max_rel_diff > 1e-10:
            raise RuntimeError(
                f"serve fast path diverged from the per-bin oracle: max relative "
                f"difference {max_rel_diff:.3e} exceeds 1e-10"
            )
        first_chunk_bitwise = bool(
            np.array_equal(fast_values[:chunk_bins], slow_values[:chunk_bins])
        )

        def measure(rounds: int) -> tuple[float, float]:
            fast_best = slow_best = float("inf")
            for _ in range(max(1, rounds)):
                seconds, _ = run_arm(fast)
                fast_best = min(fast_best, seconds)
                seconds, _ = run_arm(slow)
                slow_best = min(slow_best, seconds)
            return fast_best, slow_best

        fast_seconds, slow_seconds = measure(repeat)
        speedup = slow_seconds / max(fast_seconds, 1e-12)
        if speedup < 3.0:
            # Busy-container blip insurance before believing a miss.
            fast_seconds, slow_seconds = measure(max(2, repeat * 2))
            speedup = slow_seconds / max(fast_seconds, 1e-12)
        if speedup < 2.0:
            raise RuntimeError(
                f"serve steady-state fast path is only {speedup:.2f}x the oracle "
                "(<2x): the factorization cache has regressed"
            )
    stats = fast.fast_path_stats()
    return BenchmarkRecord(
        name="serve_steady_state",
        wall_seconds=fast_seconds,
        extra_info={
            "n_nodes": n_nodes,
            "bins": bins,
            "chunk_bins": chunk_bins,
            "slow_seconds": slow_seconds,
            "bins_per_sec_fast": bins / max(fast_seconds, 1e-12),
            "bins_per_sec_slow": bins / max(slow_seconds, 1e-12),
            "speedup_bins_per_sec": speedup,
            "target_speedup": 3.0,
            "meets_target": bool(speedup >= 3.0),
            "max_rel_diff": max_rel_diff,
            "first_chunk_bitwise": first_chunk_bitwise,
            "factor_cache": stats["factor_cache"],
            "ipf_cache": stats["ipf_cache"],
        },
    )


def run_pytest_benchmarks(*, benchmarks_dir: str | Path = "benchmarks") -> list[BenchmarkRecord]:
    """Run the pytest-benchmark suite and adapt its JSON into records.

    Returns an empty list (with a stderr note) when the suite directory or
    the ``pytest-benchmark`` plugin is unavailable, so ``repro bench`` can
    run from an installed package as well as from a checkout.
    """
    directory = Path(benchmarks_dir)
    if not directory.is_dir():
        print(f"note: benchmark suite directory {directory} not found; skipping", file=sys.stderr)
        return []
    try:
        import pytest_benchmark  # noqa: F401
    except ImportError:
        print("note: pytest-benchmark is not installed; skipping the suite", file=sys.stderr)
        return []
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        json_path = Path(tmp) / "pytest_bench.json"
        command = [
            sys.executable,
            "-m",
            "pytest",
            str(directory),
            "--benchmark-only",
            f"--benchmark-json={json_path}",
            "-q",
        ]
        completed = subprocess.run(command, capture_output=True, text=True)
        if not json_path.exists():
            print(
                f"note: pytest benchmark run produced no JSON (exit {completed.returncode}); "
                "skipping the suite",
                file=sys.stderr,
            )
            return []
        if completed.returncode != 0:
            # A partial suite must not masquerade as a healthy trajectory point.
            print(
                f"warning: pytest benchmark suite exited {completed.returncode}; "
                "the BENCH records cover only the benchmarks that completed",
                file=sys.stderr,
            )
        payload = json.loads(json_path.read_text())
    records = []
    for bench in payload.get("benchmarks", []):
        stats = bench.get("stats", {})
        records.append(
            BenchmarkRecord(
                name=bench.get("fullname", bench.get("name", "unknown")),
                wall_seconds=float(stats.get("mean", float("nan"))),
                extra_info=dict(bench.get("extra_info", {})),
            )
        )
    return records


def run_benchmarks(
    *,
    quick: bool = False,
    repeat: int = 3,
    benchmarks_dir: str | Path = "benchmarks",
) -> list[BenchmarkRecord]:
    """Run the benchmark set and return the records.

    ``quick`` limits the run to the built-in micro-benchmarks (seconds, used
    by the CI smoke job); the full mode also executes the pytest-benchmark
    suite under ``benchmarks_dir``, which regenerates every paper figure and
    takes minutes.
    """
    records = [
        bench_ic_series_kernel(repeat=repeat),
        bench_ic_series_backend(repeat=repeat),
        bench_routing_matrix(repeat=repeat),
        bench_ipf_series(repeat=repeat),
        bench_tomogravity_batch(repeat=repeat),
        bench_streaming_synthesis(repeat=repeat),
        bench_ingest_throughput(repeat=repeat),
        # The grid bench runs whole sweeps, not micro-kernels; cap its rounds
        # so --repeat scales it down but never past two interleaved rounds.
        bench_sweep_grid(repeat=min(max(1, repeat), 2)),
        bench_sweep_executor(repeat=min(max(1, repeat), 2)),
        bench_report_marts(repeat=repeat),
        bench_obs_overhead(repeat=repeat),
        # Whole service runs per round: cap like the sweep benches.
        bench_serve_steady_state(repeat=min(max(1, repeat), 2)),
    ]
    if not quick:
        records.extend(run_pytest_benchmarks(benchmarks_dir=benchmarks_dir))
    return records
